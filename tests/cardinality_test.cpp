// Label-cardinality guard in the metrics registry.
//
// At portal scale a per-user label family would mint one series per user
// (10k users = 10k map nodes per family); the registry caps each family at
// a first-come top-K and collapses everything past the cap into a single
// `other` bucket, counting the redirected traffic. The auditor-facing
// cardinality_violations() hook recounts the maps, so a series minted
// behind the guard's back is caught.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "condorg/util/metrics.h"

namespace cu = condorg::util;

namespace {

TEST(CardinalityGuard, UnderCapEveryLabelSetGetsItsOwnSeries) {
  cu::MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.counter("portal.user_jobs",
                     {{"user", "u" + std::to_string(i)}}).inc();
  }
  EXPECT_EQ(registry.cardinality_overflows(), 0u);
  int seen = 0;
  registry.for_each_counter("portal.user_jobs",
                            [&](std::string_view, std::uint64_t n) {
                              ++seen;
                              EXPECT_EQ(n, 1u);
                            });
  EXPECT_EQ(seen, 10);
}

TEST(CardinalityGuard, OverCapLabelSetsCollapseIntoOther) {
  cu::MetricsRegistry registry;
  registry.set_label_cardinality_cap(2);
  cu::Counter& u1 = registry.counter("jobs", {{"user", "u1"}});
  cu::Counter& u2 = registry.counter("jobs", {{"user", "u2"}});
  u1.inc();
  u2.inc();
  EXPECT_EQ(registry.cardinality_overflows(), 0u);

  // Third and fourth distinct label sets land in the shared bucket.
  registry.counter("jobs", {{"user", "u3"}}).inc();
  registry.counter("jobs", {{"user", "u4"}}).inc(2);
  EXPECT_EQ(registry.cardinality_overflows(), 2u);
  EXPECT_EQ(registry.counter_value("jobs{user=other}"), 3u);
  EXPECT_EQ(registry.counter_value("jobs{user=u3}"), 0u) << "never minted";

  // The per-family overflow counter mirrors the redirected-lookup count.
  EXPECT_EQ(registry.counter_value("metrics.cardinality_overflow{family=jobs}"),
            2u);

  // Established winners keep their own series and draw no overflow.
  registry.counter("jobs", {{"user", "u1"}}).inc();
  EXPECT_EQ(registry.counter_value("jobs{user=u1}"), 2u);
  EXPECT_EQ(registry.cardinality_overflows(), 2u);
}

TEST(CardinalityGuard, CapIsPerFamilyAndPerKind) {
  cu::MetricsRegistry registry;
  registry.set_label_cardinality_cap(1);
  registry.counter("a", {{"user", "u1"}}).inc();
  registry.counter("b", {{"user", "u1"}}).inc();  // different family
  registry.gauge("a", {{"user", "u1"}});          // different kind
  EXPECT_EQ(registry.cardinality_overflows(), 0u);

  registry.counter("a", {{"user", "u2"}}).inc();
  EXPECT_EQ(registry.cardinality_overflows(), 1u);
  registry.counter("b", {{"user", "u2"}}).inc();
  EXPECT_EQ(registry.cardinality_overflows(), 2u);
}

TEST(CardinalityGuard, UnlabelledSeriesBypassTheCap) {
  cu::MetricsRegistry registry;
  registry.set_label_cardinality_cap(1);
  registry.counter("x").inc();
  registry.counter("y").inc();
  registry.counter("z").inc();
  EXPECT_EQ(registry.cardinality_overflows(), 0u);
  EXPECT_TRUE(registry.cardinality_violations().empty());
}

TEST(CardinalityGuard, ViolationsStayEmptyWithTheGuardInPlace) {
  cu::MetricsRegistry registry;
  registry.set_label_cardinality_cap(3);
  for (int i = 0; i < 50; ++i) {
    registry.counter("portal.user_jobs",
                     {{"user", "u" + std::to_string(i)}}).inc();
  }
  EXPECT_TRUE(registry.cardinality_violations().empty());
  EXPECT_EQ(registry.cardinality_overflows(), 47u);
}

TEST(CardinalityGuard, ViolationsDetectSeriesMintedPastTheCap) {
  cu::MetricsRegistry registry;
  // Guard off: every label set mints a series (the "bypass" scenario).
  registry.set_label_cardinality_cap(0);
  for (int i = 0; i < 8; ++i) {
    registry.counter("leaky", {{"user", "u" + std::to_string(i)}}).inc();
  }
  EXPECT_TRUE(registry.cardinality_violations().empty()) << "cap disabled";

  // Re-arming a smaller cap exposes the over-minted family to the auditor.
  registry.set_label_cardinality_cap(4);
  const std::vector<std::string> violations =
      registry.cardinality_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("leaky"), std::string::npos);
}

}  // namespace
