#include <gtest/gtest.h>

#include <memory>

#include "condorg/classad/parser.h"
#include "condorg/condor/collector.h"
#include "condorg/condor/negotiator.h"
#include "condorg/condor/shadow.h"
#include "condorg/condor/startd.h"
#include "condorg/sim/world.h"

namespace cc = condorg::condor;
namespace cs = condorg::sim;
namespace ca = condorg::classad;

namespace {

struct PoolFixture : public ::testing::Test {
  PoolFixture()
      : submit(world.add_host("submit.wisc.edu")),
        node1(world.add_host("node1")),
        node2(world.add_host("node2")),
        collector(submit, world.net()) {}

  cc::StartdOptions slot_options(double advertise = 60.0) {
    cc::StartdOptions options;
    options.collector = collector.address();
    options.advertise_period = advertise;
    options.checkpoint_interval = 100.0;
    options.base_ad = ca::parse_ad("[Arch = \"X86_64\"; Memory = 512]");
    return options;
  }

  /// Run a shadow for a job on `startd`; returns the shadow for inspection.
  std::unique_ptr<cc::Shadow> run_shadow(
      const std::string& job_id, double work, double checkpoint,
      const cs::Address& startd, std::string* done = nullptr,
      std::string* requeue_reason = nullptr, double* requeue_ckpt = nullptr) {
    cc::ShadowJob job;
    job.job_id = job_id;
    job.total_work_seconds = work;
    job.checkpointed_work = checkpoint;
    cc::ShadowOptions options;
    options.poll_interval = 30.0;
    auto shadow = std::make_unique<cc::Shadow>(
        submit, world.net(), job, startd, job_id + ".claim1", options,
        [done](const std::string& id) {
          if (done) *done = id;
        },
        [requeue_reason, requeue_ckpt](const std::string&, double ckpt,
                                       const std::string& reason) {
          if (requeue_reason) *requeue_reason = reason;
          if (requeue_ckpt) *requeue_ckpt = ckpt;
        });
    shadow->start();
    return shadow;
  }

  cs::World world;
  cs::Host& submit;
  cs::Host& node1;
  cs::Host& node2;
  cc::Collector collector;
};

}  // namespace

// ---------- Collector ----------

TEST_F(PoolFixture, StartdAdvertisesToCollector) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  world.sim().run_until(5.0);
  EXPECT_EQ(collector.live_count(), 1u);
  const auto ads = collector.query();
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0]->eval_string("Name"), "slot1@node1");
  EXPECT_EQ(ads[0]->eval_string("State"), "Unclaimed");
  EXPECT_EQ(ads[0]->eval_string("Arch"), "X86_64");
}

TEST_F(PoolFixture, DeadStartdAgesOut) {
  auto startd = std::make_unique<cc::Startd>(node1, world.net(),
                                             "slot1@node1", slot_options());
  world.sim().run_until(5.0);
  EXPECT_EQ(collector.live_count(), 1u);
  node1.crash();
  // TTL = 60 * 3 = 180s after the last ad.
  world.sim().run_until(400.0);
  EXPECT_EQ(collector.live_count(), 0u);
}

TEST_F(PoolFixture, CollectorQueryWithConstraint) {
  cc::Startd s1(node1, world.net(), "slot1@node1", slot_options());
  auto big = slot_options();
  big.base_ad = ca::parse_ad("[Arch = \"X86_64\"; Memory = 4096]");
  cc::Startd s2(node2, world.net(), "slot1@node2", big);
  world.sim().run_until(5.0);
  const auto ads = collector.query(ca::parse_expr("Memory > 1024"));
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0]->eval_string("Name"), "slot1@node2");
}

TEST_F(PoolFixture, ReAdvertiseExtendsTtl) {
  // Repeated advertisements keep pushing the deadline; the collector's
  // expiry heap must discard the superseded (earlier) deadline nodes rather
  // than evict a live entry.
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  world.sim().run_until(400.0);  // well past the first ad's 180s TTL
  EXPECT_EQ(collector.live_count(), 1u);
}

TEST_F(PoolFixture, InvalidateRemovesDespitePendingDeadline) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  world.sim().run_until(5.0);
  ASSERT_EQ(collector.live_count(), 1u);
  node1.crash();  // stop further advertisements
  collector.invalidate("slot1@node1");
  EXPECT_EQ(collector.live_count(), 0u);
  // The orphaned deadline node must age out harmlessly.
  world.sim().run_until(400.0);
  EXPECT_EQ(collector.live_count(), 0u);
}

TEST_F(PoolFixture, QueryConstraintAgreesWithPerAdEvaluation) {
  cc::Startd s1(node1, world.net(), "slot1@node1", slot_options());
  auto big = slot_options();
  big.base_ad = ca::parse_ad("[Arch = \"X86_64\"; Memory = 4096]");
  cc::Startd s2(node2, world.net(), "slot1@node2", big);
  world.sim().run_until(5.0);
  const auto constraint = ca::parse_expr("Memory > 1024");
  const auto all = collector.query();
  const auto filtered = collector.query(constraint);
  std::vector<std::string> expected;
  for (const auto& ad : all) {
    const ca::Value v = constraint->evaluate(ad.get(), nullptr);
    if (v.is_bool() && v.as_bool()) expected.push_back(*ad->eval_string("Name"));
  }
  std::vector<std::string> got;
  for (const auto& ad : filtered) got.push_back(*ad->eval_string("Name"));
  EXPECT_EQ(got, expected);
  // Name-ordered results: the map key order is the query contract.
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(*all[0]->eval_string("Name"), "slot1@node1");
  EXPECT_EQ(*all[1]->eval_string("Name"), "slot1@node2");
}

// ---------- claim / activate / complete ----------

TEST_F(PoolFixture, JobRunsToCompletion) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string done;
  auto shadow = run_shadow("job1", 500.0, 0.0, startd.address(), &done);
  world.sim().run_until(600.0);
  EXPECT_EQ(done, "job1");
  EXPECT_EQ(shadow->outcome(), cc::Shadow::Outcome::kDone);
  EXPECT_EQ(startd.jobs_completed(), 1u);
  EXPECT_EQ(startd.state(), cc::Startd::State::kUnclaimed);
  EXPECT_DOUBLE_EQ(shadow->last_checkpoint(), 500.0);
}

TEST_F(PoolFixture, SecondClaimOnClaimedSlotFails) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string done1;
  auto shadow1 = run_shadow("job1", 500.0, 0.0, startd.address(), &done1);
  world.sim().run_until(10.0);
  ASSERT_EQ(startd.state(), cc::Startd::State::kRunning);
  std::string reason;
  auto shadow2 = run_shadow("job2", 500.0, 0.0, startd.address(), nullptr,
                            &reason);
  world.sim().run_until(50.0);
  EXPECT_EQ(shadow2->outcome(), cc::Shadow::Outcome::kRequeued);
  EXPECT_EQ(reason, "claim failed");
  world.sim().run_until(600.0);
  EXPECT_EQ(done1, "job1");  // original job unaffected
}

TEST_F(PoolFixture, CheckpointsFlowToShadow) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string done;
  auto shadow = run_shadow("job1", 450.0, 0.0, startd.address(), &done);
  world.sim().run_until(250.0);
  // checkpoint_interval = 100: at least two periodic checkpoints by now.
  EXPECT_GE(shadow->checkpoints_received(), 2u);
  EXPECT_GT(shadow->last_checkpoint(), 100.0);
  world.sim().run_until(600.0);
  EXPECT_EQ(done, "job1");
}

TEST_F(PoolFixture, ResumeFromCheckpointRunsOnlyRemainder) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string done;
  // 1000s of total work, 800 already checkpointed elsewhere.
  auto shadow = run_shadow("job1", 1000.0, 800.0, startd.address(), &done);
  world.sim().run_until(300.0);  // 200s of work + protocol overhead
  EXPECT_EQ(done, "job1");
}

// ---------- eviction & migration ----------

TEST_F(PoolFixture, AllocationExpiryEvictsWithCheckpointAndExits) {
  auto options = slot_options();
  options.allocation_expires_at = 300.0;  // glide-in batch slot ends
  cc::Startd startd(node1, world.net(), "glidein1@node1", options);
  std::string reason;
  double ckpt = -1;
  auto shadow =
      run_shadow("job1", 10000.0, 0.0, startd.address(), nullptr, &reason,
                 &ckpt);
  world.sim().run_until(400.0);
  EXPECT_EQ(reason, "allocation expired");
  // Eviction checkpoint captured nearly all the work done (~300s minus
  // claim/activate protocol time).
  EXPECT_GT(ckpt, 290.0);
  EXPECT_LT(ckpt, 301.0);
  EXPECT_TRUE(startd.exited());
  EXPECT_EQ(startd.evictions(), 1u);
  world.sim().run_until(1000.0);
  EXPECT_EQ(collector.live_count(), 0u);  // explicit invalidation
}

TEST_F(PoolFixture, MigrationConservesWork) {
  // Run on node1 until eviction, then resume on node2 from the checkpoint;
  // total computation must equal the job's demand, not more.
  auto options1 = slot_options();
  options1.allocation_expires_at = 300.0;
  cc::Startd startd1(node1, world.net(), "s1@node1", options1);

  std::string reason;
  double ckpt = 0;
  auto shadow1 =
      run_shadow("job1", 600.0, 0.0, startd1.address(), nullptr, &reason,
                 &ckpt);
  world.sim().run_until(400.0);
  ASSERT_EQ(reason, "allocation expired");
  ASSERT_GT(ckpt, 0.0);

  cc::Startd startd2(node2, world.net(), "s2@node2", slot_options());
  std::string done;
  double done_at = -1;
  const double resumed_at = world.now();
  cc::ShadowJob job;
  job.job_id = "job1";
  job.total_work_seconds = 600.0;
  job.checkpointed_work = ckpt;
  auto shadow3 = std::make_unique<cc::Shadow>(
      submit, world.net(), job, startd2.address(), "job1.claim2",
      cc::ShadowOptions{},
      [&](const std::string& id) {
        done = id;
        done_at = world.now();
      },
      nullptr);
  shadow3->start();
  world.sim().run_until(world.now() + 700.0);
  EXPECT_EQ(done, "job1");
  // Only the remaining 600 - ckpt (~300s) of work ran on node2, not the
  // full 600: migration conserved the checkpointed work.
  ASSERT_GT(done_at, 0.0);
  EXPECT_LT(done_at - resumed_at, (600.0 - ckpt) + 60.0);
  EXPECT_GT(done_at - resumed_at, (600.0 - ckpt) - 10.0);
}

TEST_F(PoolFixture, OwnerReturnEvictsJob) {
  auto options = slot_options();
  options.owner_activity = true;
  options.mean_owner_away_seconds = 200.0;
  options.mean_owner_busy_seconds = 100.0;
  cc::Startd startd(node1, world.net(), "desktop@node1", options);
  std::string reason;
  auto shadow = run_shadow("job1", 1e6, 0.0, startd.address(), nullptr,
                           &reason);
  world.sim().run_until(5000.0);
  EXPECT_EQ(reason, "owner returned");
  EXPECT_GE(startd.evictions(), 1u);
}

TEST_F(PoolFixture, NodeCrashDetectedByPolling) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string reason;
  double ckpt = -1;
  auto shadow = run_shadow("job1", 10000.0, 0.0, startd.address(), nullptr,
                           &reason, &ckpt);
  world.sim().run_until(350.0);
  node1.crash();  // no eviction notice, no checkpoint message
  world.sim().run_until(1000.0);
  EXPECT_EQ(reason, "execution machine lost");
  // Progress bounded by the last checkpoint/poll before the crash.
  EXPECT_GE(ckpt, 200.0);
  EXPECT_LE(ckpt, 350.0);
}

// ---------- glide-in lifecycle ----------

TEST_F(PoolFixture, IdleGlideInShutsDownGracefully) {
  auto options = slot_options();
  options.idle_timeout = 600.0;
  bool exited = false;
  cc::Startd startd(node1, world.net(), "glidein@node1", options,
                    [&] { exited = true; });
  world.sim().run_until(1000.0);
  EXPECT_TRUE(exited);
  EXPECT_TRUE(startd.exited());
  EXPECT_EQ(collector.live_count(), 0u);
}

TEST_F(PoolFixture, BusyGlideInDoesNotIdleOut) {
  auto options = slot_options();
  options.idle_timeout = 600.0;
  cc::Startd startd(node1, world.net(), "glidein@node1", options);
  std::string done;
  auto shadow = run_shadow("job1", 2000.0, 0.0, startd.address(), &done);
  world.sim().run_until(2200.0);
  EXPECT_EQ(done, "job1");  // survived past the idle timeout while busy
}

// ---------- remote syscalls ----------

TEST_F(PoolFixture, RemoteIoFlowsToShadow) {
  auto options = slot_options();
  options.io_interval = 50.0;
  options.io_bytes_per_op = 1 << 20;
  cc::Startd startd(node1, world.net(), "slot1@node1", options);
  std::string done;
  auto shadow = run_shadow("job1", 500.0, 0.0, startd.address(), &done);
  world.sim().run_until(700.0);
  EXPECT_EQ(done, "job1");
  EXPECT_GE(shadow->io_ops(), 8u);
  EXPECT_EQ(shadow->io_bytes(), shadow->io_ops() * (1u << 20));
}

// ---------- negotiator ----------

TEST_F(PoolFixture, MatchJobsToSlotsRespectsRequirementsAndRank) {
  std::vector<cc::IdleJob> jobs;
  jobs.push_back(
      {"j1", ca::parse_ad("[Requirements = other.Memory >= 1024; Rank = "
                          "other.Memory]")});
  jobs.push_back({"j2", ca::parse_ad("[Requirements = true]")});
  std::vector<ca::ClassAd> slots;
  slots.push_back(ca::parse_ad("[Name = \"small\"; Memory = 512]"));
  slots.push_back(ca::parse_ad("[Name = \"big\"; Memory = 4096]"));
  slots.push_back(ca::parse_ad("[Name = \"huge\"; Memory = 8192]"));
  const auto matches = cc::match_jobs_to_slots(jobs, slots);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].job_id, "j1");
  EXPECT_EQ(matches[0].slot_ad.eval_string("Name"), "huge");  // rank
  EXPECT_EQ(matches[1].job_id, "j2");  // takes any remaining slot
}

TEST_F(PoolFixture, MatchDoesNotReuseSlots) {
  std::vector<cc::IdleJob> jobs = {{"a", ca::ClassAd{}},
                                   {"b", ca::ClassAd{}},
                                   {"c", ca::ClassAd{}}};
  std::vector<ca::ClassAd> slots = {ca::parse_ad("[Name = \"one\"]"),
                                    ca::parse_ad("[Name = \"two\"]")};
  const auto matches = cc::match_jobs_to_slots(jobs, slots);
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_NE(matches[0].slot_ad.eval_string("Name"),
            matches[1].slot_ad.eval_string("Name"));
}

TEST_F(PoolFixture, NegotiatorCyclesMatchIdleJobs) {
  cc::Startd s1(node1, world.net(), "s1@node1", slot_options());
  cc::Startd s2(node2, world.net(), "s2@node2", slot_options());

  std::vector<cc::IdleJob> queue = {
      {"j1", ca::parse_ad("[Requirements = other.Arch == \"X86_64\"]")},
      {"j2", ca::parse_ad("[Requirements = other.Arch == \"X86_64\"]")}};
  std::vector<cc::Match> matched;
  cc::Negotiator negotiator(
      submit, collector,
      [&] { return queue; },
      [&](const cc::Match& m) {
        matched.push_back(m);
        std::erase_if(queue, [&](const cc::IdleJob& j) {
          return j.job_id == m.job_id;
        });
      });
  world.sim().run_until(5.0);  // let ads arrive
  negotiator.negotiate_once();
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(queue.empty());
  EXPECT_GE(negotiator.matches_made(), 2u);
}

TEST_F(PoolFixture, NegotiatorSkipsClaimedSlots) {
  cc::Startd startd(node1, world.net(), "s1@node1", slot_options());
  std::string done;
  auto shadow = run_shadow("running", 1000.0, 0.0, startd.address(), &done);
  world.sim().run_until(70.0);  // job running; fresh ad says "Running"
  std::vector<cc::IdleJob> queue = {{"idle", ca::ClassAd{}}};
  std::vector<cc::Match> matched;
  cc::Negotiator negotiator(
      submit, collector, [&] { return queue; },
      [&](const cc::Match& m) { matched.push_back(m); });
  negotiator.negotiate_once();
  EXPECT_TRUE(matched.empty());
}

TEST_F(PoolFixture, NegotiatorSlotConstraintIsConfigurable) {
  cc::Startd startd(node1, world.net(), "s1@node1", slot_options());
  std::string done;
  auto shadow = run_shadow("running", 1000.0, 0.0, startd.address(), &done);
  world.sim().run_until(70.0);  // job running; fresh ad says "Running"
  std::vector<cc::IdleJob> queue = {{"idle", ca::ClassAd{}}};
  std::vector<cc::Match> matched;
  cc::Negotiator::Options options;
  options.slot_constraint = "State == \"Running\"";  // deliberately inverted
  cc::Negotiator negotiator(
      submit, collector, [&] { return queue; },
      [&](const cc::Match& m) { matched.push_back(m); }, options);
  negotiator.negotiate_once();
  // The default constraint would skip the busy slot; the configured one
  // selects it instead.
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0].slot_ad.eval_string("State"), "Running");
}

// ---------- explicit shutdown request ----------

TEST_F(PoolFixture, ShutdownMessageEvictsAndExits) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  std::string reason;
  double ckpt = -1;
  auto shadow = run_shadow("job1", 10000.0, 0.0, startd.address(), nullptr,
                           &reason, &ckpt);
  world.sim().run_until(500.0);
  ASSERT_EQ(startd.state(), cc::Startd::State::kRunning);
  // Remote shutdown request (what a pool drain would send).
  cs::RpcClient admin(submit, world.net(), "admin.rpc");
  bool acked = false;
  admin.call(startd.address(), "startd.shutdown", {}, 30.0,
             [&](bool ok, const cs::Payload&) { acked = ok; });
  world.sim().run_until(700.0);
  EXPECT_TRUE(acked);
  EXPECT_TRUE(startd.exited());
  EXPECT_EQ(reason, "requested");
  EXPECT_GT(ckpt, 400.0);  // job left with a checkpoint
}

TEST_F(PoolFixture, ActivateWithWrongClaimRejected) {
  cc::Startd startd(node1, world.net(), "slot1@node1", slot_options());
  cs::RpcClient rogue(submit, world.net(), "rogue.rpc");
  cs::Payload claim;
  claim.set("claim_id", "legit");
  claim.set("job_id", "j");
  claim.set("shadow", "submit.wisc.edu/nowhere");
  bool claimed = false;
  rogue.call(startd.address(), "startd.claim", std::move(claim), 30.0,
             [&](bool ok, const cs::Payload& r) {
               claimed = ok && r.get_bool("ok");
             });
  world.sim().run_until(10.0);
  ASSERT_TRUE(claimed);
  cs::Payload activate;
  activate.set("claim_id", "FORGED");
  activate.set_double("total_work", 100);
  bool activated = true;
  rogue.call(startd.address(), "startd.activate", std::move(activate), 30.0,
             [&](bool ok, const cs::Payload& r) {
               activated = ok && r.get_bool("ok");
             });
  world.sim().run_until(20.0);
  EXPECT_FALSE(activated);
  EXPECT_EQ(startd.state(), cc::Startd::State::kClaimed);
}
