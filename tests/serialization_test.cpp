// Round-trip and determinism properties: everything written to stable
// storage or the wire must survive serialize/deserialize unchanged, and
// whole-world runs must be bit-identical for identical seeds (the property
// crash-recovery verification rests on).
#include <gtest/gtest.h>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/core/job.h"
#include "condorg/gram/protocol.h"
#include "condorg/sim/message.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cs = condorg::sim;
namespace gram = condorg::gram;
namespace cw = condorg::workloads;

// ---------- Payload ----------

TEST(PayloadSerde, RoundTripAllTypes) {
  cs::Payload p;
  p.set("s", "hello world");
  p.set_int("i", -123456789);
  p.set_uint("u", 0xFFFFFFFFFFFFFFFFull);
  p.set_double("d", 3.14159265358979);
  p.set_bool("b", true);
  p.set("empty", "");
  const cs::Payload q = cs::Payload::deserialize(p.serialize());
  EXPECT_EQ(q.get("s"), "hello world");
  EXPECT_EQ(q.get_int("i"), -123456789);
  EXPECT_EQ(q.get_uint("u"), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_DOUBLE_EQ(q.get_double("d"), 3.14159265358979);
  EXPECT_TRUE(q.get_bool("b"));
  EXPECT_TRUE(q.has("empty"));
  EXPECT_EQ(q.fields().size(), p.fields().size());
}

TEST(PayloadSerde, EmptyAndGarbage) {
  EXPECT_TRUE(cs::Payload::deserialize("").fields().empty());
  // Garbage without separators: silently ignored fields, no crash.
  const cs::Payload q = cs::Payload::deserialize("no-separators-here");
  EXPECT_TRUE(q.fields().empty());
}

// ---------- GramJobSpec ----------

TEST(GramSpecSerde, RoundTrip) {
  gram::GramJobSpec spec;
  spec.executable = "bin/x";
  spec.output = "out/y";
  spec.gass_url = "host/gass";
  spec.runtime_seconds = 123.5;
  spec.walltime_limit = 4567.0;
  spec.cpus = 7;
  spec.output_size = 1 << 30;
  spec.tag = "job42";
  cs::Payload payload;
  spec.to_payload(payload);
  const gram::GramJobSpec back = gram::GramJobSpec::from_payload(payload);
  EXPECT_EQ(back.executable, spec.executable);
  EXPECT_EQ(back.output, spec.output);
  EXPECT_EQ(back.gass_url, spec.gass_url);
  EXPECT_DOUBLE_EQ(back.runtime_seconds, spec.runtime_seconds);
  EXPECT_DOUBLE_EQ(back.walltime_limit, spec.walltime_limit);
  EXPECT_EQ(back.cpus, spec.cpus);
  EXPECT_EQ(back.output_size, spec.output_size);
  EXPECT_EQ(back.tag, spec.tag);
}

// ---------- core::Job ----------

TEST(JobSerde, RoundTripFullRecord) {
  core::Job job;
  job.id = 42;
  job.desc.universe = core::Universe::kVanilla;
  job.desc.owner = "miron";
  job.desc.executable = "worker";
  job.desc.output = "out.dat";
  job.desc.runtime_seconds = 999.25;
  job.desc.cpus = 4;
  job.desc.walltime_limit = 3600.0;
  job.desc.output_size = 123456;
  job.desc.grid_site = "pbs.anl.gov";
  job.desc.ad.insert_expr("Requirements", "other.Memory > 64");
  job.desc.max_attempts = 3;
  job.desc.notify_email = true;
  job.desc.tag = "unit-7";
  job.status = core::JobStatus::kHeld;
  job.hold_reason = "credential expired or expiring";
  job.attempts = 2;
  job.gram_seq = 17;
  job.gram_contact = "pbs.anl.gov:9";
  job.gram_site = "pbs.anl.gov";
  job.remote_state = "ACTIVE";
  job.checkpointed_work = 123.0;
  job.submit_time = 10.0;
  job.first_execute_time = 20.0;
  job.completion_time = -1;

  const core::Job back = core::Job::deserialize(job.serialize());
  EXPECT_EQ(back.id, job.id);
  EXPECT_EQ(back.desc.universe, job.desc.universe);
  EXPECT_EQ(back.desc.owner, job.desc.owner);
  EXPECT_DOUBLE_EQ(back.desc.runtime_seconds, job.desc.runtime_seconds);
  EXPECT_EQ(back.desc.cpus, job.desc.cpus);
  EXPECT_EQ(back.desc.grid_site, job.desc.grid_site);
  EXPECT_EQ(back.desc.max_attempts, job.desc.max_attempts);
  EXPECT_TRUE(back.desc.notify_email);
  EXPECT_EQ(back.desc.tag, job.desc.tag);
  EXPECT_EQ(back.status, core::JobStatus::kHeld);
  EXPECT_EQ(back.hold_reason, job.hold_reason);
  EXPECT_EQ(back.attempts, 2);
  EXPECT_EQ(back.gram_seq, 17u);
  EXPECT_EQ(back.gram_contact, "pbs.anl.gov:9");
  EXPECT_EQ(back.remote_state, "ACTIVE");
  EXPECT_DOUBLE_EQ(back.checkpointed_work, 123.0);
  EXPECT_DOUBLE_EQ(back.first_execute_time, 20.0);
  EXPECT_DOUBLE_EQ(back.completion_time, -1.0);
  // The requirements ad survives (re-parsed).
  EXPECT_TRUE(back.desc.ad.contains("Requirements"));
}

TEST(JobSerde, StateStringsRoundTrip) {
  for (const auto status :
       {core::JobStatus::kIdle, core::JobStatus::kRunning,
        core::JobStatus::kHeld, core::JobStatus::kCompleted,
        core::JobStatus::kRemoved}) {
    EXPECT_EQ(core::status_from_string(core::to_string(status)), status);
  }
  for (const auto universe :
       {core::Universe::kGrid, core::Universe::kVanilla}) {
    EXPECT_EQ(core::universe_from_string(core::to_string(universe)),
              universe);
  }
  for (const auto state :
       {gram::GramJobState::kUnsubmitted, gram::GramJobState::kStageIn,
        gram::GramJobState::kPending, gram::GramJobState::kActive,
        gram::GramJobState::kDone, gram::GramJobState::kFailed}) {
    EXPECT_EQ(gram::gram_state_from_string(gram::to_string(state)), state);
  }
}

// ---------- whole-world determinism ----------

namespace {

/// Run a small campaign with failures and return a trace fingerprint.
std::string run_fingerprint(std::uint64_t seed) {
  cw::GridTestbed testbed(seed);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  spec.background_load = true;
  testbed.add_site(spec);
  spec.name = "lsf.ncsa.edu";
  testbed.add_site(spec);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  for (int i = 0; i < 10; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 1000.0 + 100.0 * i;
    agent.submit(job);
  }
  testbed.world().sim().schedule_at(1500.0, [&] {
    testbed.site(0).frontend->crash_for(600.0);
  });
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 2 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 200.0);
  }
  std::string trace;
  for (const auto& event : agent.log().events()) {
    trace += condorg::util::format(
        "%.3f/%llu/%s/%s;", event.time,
        static_cast<unsigned long long>(event.job_id),
        core::to_string(event.kind), event.detail.c_str());
  }
  trace += condorg::util::format("|dispatched=%llu",
                                 static_cast<unsigned long long>(
                                     testbed.world().sim().dispatched()));
  return trace;
}

}  // namespace

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  EXPECT_EQ(run_fingerprint(101), run_fingerprint(101));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_fingerprint(101), run_fingerprint(202));
}
