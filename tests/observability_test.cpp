// Tests for the observability layer: the metrics registry (canonical keys,
// deterministic snapshots, JSON round-trip) and the per-job tracer (span
// bookkeeping, root-span states, epoch stamping across crashes, and the
// byte-identical-JSONL contract for same-seed runs).
#include <gtest/gtest.h>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/critical_path.h"
#include "condorg/sim/profiler.h"
#include "condorg/sim/tracer.h"
#include "condorg/sim/world.h"
#include "condorg/util/json.h"
#include "condorg/util/metrics.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cs = condorg::sim;
namespace cu = condorg::util;
namespace cw = condorg::workloads;

namespace {

// ---------- metrics registry ----------

TEST(MetricKey, CanonicalizesLabels) {
  EXPECT_EQ(cu::metric_key("x", {}), "x");
  EXPECT_EQ(cu::metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  EXPECT_EQ(cu::metric_key("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  cu::MetricsRegistry registry;
  registry.counter("hits", {{"site", "anl"}, {"user", "jfrey"}}).inc();
  registry.counter("hits", {{"user", "jfrey"}, {"site", "anl"}}).inc(2);
  EXPECT_EQ(registry.counter_value("hits{site=anl,user=jfrey}"), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, FindWithoutCreate) {
  cu::MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  EXPECT_EQ(registry.counter_value("absent"), 0u);
  EXPECT_EQ(registry.size(), 0u);  // lookups must not create series
}

TEST(MetricsRegistry, SnapshotInsertionOrderIndependent) {
  cu::MetricsRegistry a;
  a.counter("z").inc(5);
  a.counter("a", {{"k", "v"}}).inc(1);
  a.gauge("depth").set(0.0, 3.0);
  a.histogram("lat").observe(1.5);

  cu::MetricsRegistry b;
  b.histogram("lat").observe(1.5);
  b.gauge("depth").set(0.0, 3.0);
  b.counter("a", {{"k", "v"}}).inc(1);
  b.counter("z").inc(5);

  EXPECT_EQ(a.to_json(10.0), b.to_json(10.0));
}

TEST(MetricsRegistry, SnapshotJsonRoundTrip) {
  cu::MetricsRegistry registry;
  registry.counter("gram.submits", {{"client", "user"}}).inc(42);
  registry.gauge("queue").set(0.0, 2.0);
  registry.gauge("queue").set(10.0, 4.0);
  registry.histogram("recovery").observe(30.0);
  registry.histogram("recovery").observe(90.0);

  const std::string json = registry.to_json(20.0);
  auto parsed = cu::JsonValue::parse(json);
  ASSERT_TRUE(parsed.has_value());
  // Parse -> dump must reproduce the exact bytes (sorted-key objects).
  EXPECT_EQ(parsed->dump(), json);
  EXPECT_DOUBLE_EQ((*parsed)["end_time"].as_number(), 20.0);
  EXPECT_EQ(
      (*parsed)["counters"]["gram.submits{client=user}"].as_uint(), 42u);
  auto& gauge = (*parsed)["gauges"]["queue"];
  EXPECT_DOUBLE_EQ(gauge["value"].as_number(), 4.0);
  EXPECT_DOUBLE_EQ(gauge["peak"].as_number(), 4.0);
  EXPECT_EQ((*parsed)["histograms"]["recovery"]["count"].as_uint(), 2u);
}

// ---------- tracer unit behaviour ----------

TEST(Tracer, DisabledIsNoOp) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin_span("s", 1, "h", 1), 0u);
  tracer.event("e", 1, "h", 1);
  EXPECT_EQ(tracer.begin_job(1, "h", 1), 0u);
  tracer.end_job(1, "h", "done");
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.job_root_state("h", 1), cs::Tracer::RootState::kNone);
}

TEST(Tracer, SpanLifecycleAndOrdering) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);

  const cs::SpanId root = tracer.begin_span("job", 7, "submit", 1);
  const cs::SpanId child =
      tracer.begin_span("gram.submit", 7, "submit", 1, root);
  EXPECT_EQ(tracer.open_span_count(), 2u);
  tracer.end_span(child, "ok");
  tracer.end_span(root, "completed");
  EXPECT_EQ(tracer.open_span_count(), 0u);

  // Double-close and unknown ids are ignored, not corrupting the stream.
  const std::size_t frozen = tracer.records().size();
  tracer.end_span(child, "ok");
  tracer.end_span(12345, "ok");
  EXPECT_EQ(tracer.records().size(), frozen);

  ASSERT_EQ(tracer.records().size(), 4u);
  const auto& records = tracer.records();
  EXPECT_EQ(records[0].kind, cs::TraceRecord::Kind::kSpanBegin);
  EXPECT_EQ(records[1].parent, root);
  EXPECT_EQ(records[2].kind, cs::TraceRecord::Kind::kSpanEnd);
  EXPECT_EQ(records[2].name, "gram.submit");  // end inherits begin's name
  EXPECT_EQ(records[3].status, "completed");
}

TEST(Tracer, RootStateMachine) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);

  using RootState = cs::Tracer::RootState;
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kNone);
  tracer.end_job(9, "h", "done");  // end before begin: no root materializes
  EXPECT_EQ(tracer.job_root_state("h", 9), RootState::kNone);

  tracer.begin_job(1, "h", 1);
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kOpen);
  tracer.end_job(1, "h", "completed");
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kClosed);

  // Same job id on another submit host is an independent root.
  tracer.begin_job(1, "other", 1);
  EXPECT_EQ(tracer.job_root_state("other", 1), RootState::kOpen);

  tracer.begin_job(2, "h", 1);
  tracer.begin_job(2, "h", 1);  // duplicate submit
  EXPECT_EQ(tracer.job_root_state("h", 2), RootState::kDuplicate);

  const auto roots = tracer.root_states();
  EXPECT_EQ(roots.size(), 3u);
}

TEST(Tracer, PairedEventLatencies) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);
  sim.schedule_at(10.0, [&] { tracer.event("recovery.begin", 1, "h", 1); });
  sim.schedule_at(12.0, [&] { tracer.event("recovery.begin", 2, "h", 1); });
  sim.schedule_at(40.0, [&] { tracer.event("recovery.end", 1, "h", 1); });
  // job 2 never recovers: its begin must be dropped, not mispaired.
  sim.run();
  const auto latencies =
      tracer.paired_event_latencies("recovery.begin", "recovery.end");
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 30.0);
}

TEST(Tracer, SpansSurviveCrashesAndRecordEpochs) {
  cs::World world(42);
  cs::Host& host = world.add_host("site");
  cs::Tracer& tracer = world.sim().tracer();
  tracer.set_enabled(true);

  const cs::SpanId span = tracer.begin_span("jm", 3, "site", host.epoch());
  world.sim().schedule_at(100.0, [&] { host.crash_for(50.0); });
  world.sim().schedule_at(200.0, [&] {
    tracer.event("jm.restart", 3, "site", host.epoch());
    tracer.end_span(span, "ok");
  });
  world.sim().run();

  ASSERT_EQ(tracer.records().size(), 3u);
  const auto& records = tracer.records();
  EXPECT_EQ(records[0].epoch, 1u);
  EXPECT_EQ(records[1].epoch, 2u);  // event after the crash: epoch bumped
  EXPECT_EQ(records[1].name, "jm.restart");
  // The tracer outlives the crash: the pre-crash span closes cleanly and
  // keeps its begin-time epoch, so the timeline shows the epoch crossing.
  EXPECT_EQ(records[2].epoch, 1u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Tracer, JsonLineShapeAndDigest) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  const std::uint64_t fnv_basis = 14695981039346656037ull;
  EXPECT_EQ(tracer.digest(), fnv_basis);
  tracer.set_enabled(true);
  tracer.event("credential.refresh", 0, "submit", 1, "from myproxy");
  ASSERT_EQ(tracer.records().size(), 1u);
  const std::string line = tracer.records()[0].to_json();
  // Every line is itself a JSON object; job=0 fields are elided.
  auto parsed = cu::JsonValue::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(line.find("\"job\""), std::string::npos);
  EXPECT_EQ((*parsed)["kind"].as_string(), "event");
  EXPECT_EQ((*parsed)["detail"].as_string(), "from myproxy");
  EXPECT_NE(tracer.digest(), fnv_basis);
}

// ---------- end-to-end determinism ----------

std::pair<std::string, std::uint64_t> traced_campaign(std::uint64_t seed) {
  cw::GridTestbed testbed(seed);
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");

  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  for (int i = 0; i < 6; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 600.0 + 60.0 * i;
    job.notify_email = false;
    agent.submit(job);
  }
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  EXPECT_TRUE(agent.schedd().all_terminal());
  const cs::Tracer& tracer = testbed.world().sim().tracer();
  EXPECT_EQ(tracer.open_span_count(), 0u);
  return {tracer.to_jsonl(), tracer.digest()};
}

TEST(Tracer, SameSeedRunsExportByteIdenticalJsonl) {
  const auto [jsonl_a, digest_a] = traced_campaign(1234);
  const auto [jsonl_b, digest_b] = traced_campaign(1234);
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_FALSE(jsonl_a.empty());

  // A different seed perturbs timing, so the bytes (and digest) move.
  const auto [jsonl_c, digest_c] = traced_campaign(99);
  EXPECT_NE(jsonl_a, jsonl_c);
  EXPECT_NE(digest_a, digest_c);
}

// ---------- metric key escaping ----------

TEST(MetricKey, EscapesAndParsesStructuralCharacters) {
  const cu::MetricLabels labels = {
      {"path", "a,b=c}d{e"}, {"plain", "v"}, {"back", "x\\y"}};
  const std::string key = cu::metric_key("fam", labels);
  const cu::ParsedMetricKey parsed = cu::parse_metric_key(key);
  EXPECT_EQ(parsed.name, "fam");
  ASSERT_EQ(parsed.labels.size(), 3u);
  EXPECT_EQ(parsed.labels[0].first, "back");
  EXPECT_EQ(parsed.labels[0].second, "x\\y");
  EXPECT_EQ(parsed.labels[1].first, "path");
  EXPECT_EQ(parsed.labels[1].second, "a,b=c}d{e");
  EXPECT_EQ(parsed.labels[2].first, "plain");
  EXPECT_EQ(parsed.labels[2].second, "v");
  // Round trip: re-serializing the parsed form rebuilds the exact key.
  EXPECT_EQ(cu::metric_key(parsed.name, parsed.labels), key);

  const cu::ParsedMetricKey bare = cu::parse_metric_key("hits");
  EXPECT_EQ(bare.name, "hits");
  EXPECT_TRUE(bare.labels.empty());

  // Unescaped legacy keys still parse.
  const cu::ParsedMetricKey legacy = cu::parse_metric_key("x{a=1,b=2}");
  EXPECT_EQ(legacy.name, "x");
  ASSERT_EQ(legacy.labels.size(), 2u);
  EXPECT_EQ(legacy.labels[1].second, "2");
}

// ---------- causal edges ----------

TEST(Tracer, CausalEdgesFollowScheduling) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);
  sim.schedule_at(1.0, [&] {
    tracer.event("a", 1, "h", 1);
    // Scheduled after the push: the cursor now points at "a", so the
    // deferred event's record must name "a" as its cause.
    sim.schedule_at(5.0, [&] { tracer.event("b", 1, "h", 1); });
  });
  sim.schedule_at(2.0, [&] { tracer.event("c", 2, "h", 1); });
  sim.run();

  ASSERT_EQ(tracer.records().size(), 3u);
  const auto& records = tracer.records();
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[0].cause, 0u);  // scheduled outside any chain
  EXPECT_EQ(records[1].name, "c");
  EXPECT_EQ(records[1].cause, 0u);  // independent root cause
  EXPECT_EQ(records[2].name, "b");
  EXPECT_EQ(records[2].cause, records[0].id);
  // Ids are dense and 1-based in push order.
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_EQ(records[1].id, 2u);
  EXPECT_EQ(records[2].id, 3u);
}

TEST(TraceRecord, JsonRoundTripPreservesEveryField) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);
  sim.schedule_at(1.5, [&] {
    const cs::SpanId span =
        tracer.begin_span("jm.stage_in", 4, "site", 2, 0, "exe \"q\" \\ x");
    tracer.event("gk.auth", 4, "site", 2, "gram.submit");
    sim.schedule_at(2.5,
                    [&tracer, span] { tracer.end_span(span, "error",
                                                      "no route"); });
  });
  sim.run();

  ASSERT_EQ(tracer.records().size(), 3u);
  for (const cs::TraceRecord& record : tracer.records()) {
    const std::string line = record.to_json();
    const auto parsed = cs::TraceRecord::from_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    // Byte-for-byte: the parsed record re-serializes to the same line, so
    // offline tools see exactly the ids and edges the tracer emitted.
    EXPECT_EQ(parsed->to_json(), line);
    EXPECT_EQ(parsed->id, record.id);
    EXPECT_EQ(parsed->cause, record.cause);
  }
  EXPECT_FALSE(cs::TraceRecord::from_json("not json").has_value());
  EXPECT_FALSE(cs::TraceRecord::from_json("[1,2]").has_value());
  EXPECT_FALSE(
      cs::TraceRecord::from_json(R"({"t":1,"kind":"bogus"})").has_value());
}

// ---------- critical path ----------

cs::TraceRecord synthetic_record(double t, cs::TraceRecord::Kind kind,
                                 const std::string& name, std::uint64_t job,
                                 cs::RecordId id, cs::RecordId cause,
                                 cs::SpanId span = 0,
                                 const std::string& detail = "") {
  cs::TraceRecord record;
  record.t = t;
  record.kind = kind;
  record.name = name;
  record.job = job;
  record.id = id;
  record.cause = cause;
  record.span = span;
  record.host = "h";
  record.epoch = 1;
  record.detail = detail;
  return record;
}

TEST(CriticalPath, TilesTheWindowAcrossPhases) {
  using Kind = cs::TraceRecord::Kind;
  std::vector<cs::TraceRecord> records;
  records.push_back(synthetic_record(0, Kind::kSpanBegin, "job", 7, 1, 0, 1));
  records.push_back(
      synthetic_record(2, Kind::kSpanBegin, "gram.submit", 7, 2, 1, 2));
  records.push_back(synthetic_record(3, Kind::kEvent, "gk.auth", 7, 3, 2));
  records.push_back(synthetic_record(4, Kind::kEvent, "jm.created", 7, 4, 3));
  records.push_back(
      synthetic_record(6, Kind::kSpanEnd, "gram.submit", 7, 5, 4, 2));
  records.push_back(
      synthetic_record(9, Kind::kEvent, "userlog.EXECUTE", 7, 6, 5));
  records.push_back(synthetic_record(20, Kind::kSpanEnd, "job", 7, 7, 6, 1));

  const cs::CriticalPath analysis(records);
  EXPECT_EQ(analysis.jobs_seen(), 1u);
  ASSERT_EQ(analysis.to_active().size(), 1u);
  ASSERT_EQ(analysis.to_terminal().size(), 1u);
  EXPECT_TRUE(analysis.self_check().empty());

  const auto& active = analysis.to_active()[0];
  EXPECT_DOUBLE_EQ(active.window, 9.0);
  const auto phase = [](cs::Phase p) { return static_cast<std::size_t>(p); };
  EXPECT_DOUBLE_EQ(active.phases[phase(cs::Phase::kScheddQueue)], 2.0);
  EXPECT_DOUBLE_EQ(active.phases[phase(cs::Phase::kGramSubmitRtt)], 6.0);
  EXPECT_DOUBLE_EQ(active.phases[phase(cs::Phase::kGatekeeperAuth)], 1.0);
  EXPECT_DOUBLE_EQ(active.phases[phase(cs::Phase::kUnattributed)], 0.0);
  EXPECT_DOUBLE_EQ(analysis.mean_time_to_active(), 9.0);
  EXPECT_DOUBLE_EQ(analysis.attributed_share(), 1.0);

  const auto& terminal = analysis.to_terminal()[0];
  EXPECT_DOUBLE_EQ(terminal.window, 20.0);
  EXPECT_DOUBLE_EQ(terminal.phases[phase(cs::Phase::kExecution)], 11.0);

  const std::string folded = analysis.to_folded();
  EXPECT_NE(folded.find("time-to-active;gram-submit-rtt 6000"),
            std::string::npos);
  EXPECT_NE(folded.find("to-terminal;execution 11000"), std::string::npos);
  // Deterministic artifacts: identical input, identical bytes.
  EXPECT_EQ(analysis.to_json(), cs::CriticalPath(records).to_json());
}

TEST(CriticalPath, OffChainCauseFallsBackToOwnRecords) {
  using Kind = cs::TraceRecord::Kind;
  std::vector<cs::TraceRecord> records;
  records.push_back(synthetic_record(0, Kind::kSpanBegin, "job", 1, 1, 0, 1));
  // Another job's record interleaves and becomes the (off-chain) cause of
  // job 1's milestone — a batched-tick shape.
  records.push_back(synthetic_record(3, Kind::kSpanBegin, "job", 2, 2, 0, 2));
  records.push_back(
      synthetic_record(5, Kind::kEvent, "userlog.EXECUTE", 1, 3, 2));
  const cs::CriticalPath analysis(records);
  ASSERT_EQ(analysis.to_active().size(), 1u);
  const auto& active = analysis.to_active()[0];
  EXPECT_DOUBLE_EQ(active.window, 5.0);
  // The walk must refuse the job-2 cause and fall back to job 1's root, so
  // the whole interval lands in one named phase — never double-counted.
  EXPECT_TRUE(analysis.self_check().empty());
  EXPECT_DOUBLE_EQ(analysis.attributed_share(), 1.0);
}

TEST(CriticalPath, EndToEndAttributesNearlyEverything) {
  cw::GridTestbed testbed(7);
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  for (int i = 0; i < 6; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 600.0;
    job.notify_email = false;
    agent.submit(job);
  }
  while (!agent.schedd().all_terminal() && testbed.world().now() < 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  ASSERT_TRUE(agent.schedd().all_terminal());

  const cs::CriticalPath analysis(
      testbed.world().sim().tracer().records());
  EXPECT_EQ(analysis.jobs_seen(), 6u);
  EXPECT_EQ(analysis.to_active().size(), 6u);
  EXPECT_EQ(analysis.to_terminal().size(), 6u);
  EXPECT_TRUE(analysis.self_check().empty());
  EXPECT_GT(analysis.mean_time_to_active(), 0.0);
  // The acceptance bar: ≥95% of time-to-ACTIVE lands in a named phase.
  EXPECT_GE(analysis.attributed_share(), 0.95);
}

// Satellite: a job that crosses a GridManager restart (submit machine
// reboot, failure type F3) must still form one connected causal DAG, with
// the recovery.end record causally reachable from recovery.begin.
TEST(CriticalPath, GridManagerRestartYieldsConnectedDagWithRecoveryEdge) {
  cw::GridTestbed testbed(11);
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  core::JobDescription job;
  job.universe = core::Universe::kGrid;
  job.runtime_seconds = 3000.0;
  job.notify_email = false;
  const std::uint64_t id = agent.submit(job);
  testbed.world().sim().run_until(1500.0);
  ASSERT_EQ(agent.query(id)->status, core::JobStatus::kRunning);
  // The outage must outlive the job's remote runtime (done ~t=3100): the
  // remote side finishes while no GridManager exists, so the completion
  // callback genuinely waits on recovery and the critical path must bill
  // that wait to the recovery phase. A shorter outage is causally invisible
  // — execution covers it — which is exactly what the taxonomy should say.
  agent.host().crash();
  testbed.world().sim().schedule_at(4500.0, [&] { agent.host().restart(); });
  while (!agent.schedd().all_terminal() && testbed.world().now() < 80000.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  ASSERT_TRUE(agent.schedd().all_terminal());

  const cs::Tracer& tracer = testbed.world().sim().tracer();
  std::map<cs::RecordId, const cs::TraceRecord*> by_id;
  const cs::TraceRecord* recovery_begin = nullptr;
  const cs::TraceRecord* recovery_end = nullptr;
  for (const cs::TraceRecord& record : tracer.records()) {
    by_id[record.id] = &record;
    if (record.job != id) continue;
    if (record.name == "recovery.begin" && recovery_begin == nullptr) {
      recovery_begin = &record;
    }
    if (record.name == "recovery.end") recovery_end = &record;
  }
  ASSERT_NE(recovery_begin, nullptr);
  ASSERT_NE(recovery_end, nullptr);

  // The recovery edge: walking causes back from recovery.end reaches
  // recovery.begin — the probe/reattach chain is causally closed even
  // though the GridManager process died in between.
  bool reached_begin = false;
  const cs::TraceRecord* cursor = recovery_end;
  while (cursor != nullptr && cursor->cause != 0) {
    const auto it = by_id.find(cursor->cause);
    if (it == by_id.end()) break;
    cursor = it->second;
    if (cursor == recovery_begin) {
      reached_begin = true;
      break;
    }
  }
  EXPECT_TRUE(reached_begin);

  // One connected DAG: every record of the job either is a root cause or
  // links (via cause or span parent) to another known record.
  for (const cs::TraceRecord& record : tracer.records()) {
    if (record.job != id) continue;
    if (record.cause != 0) {
      EXPECT_TRUE(by_id.count(record.cause)) << record.to_json();
    }
  }

  // JSONL round-trip preserves the edge ids byte-for-byte.
  for (const cs::TraceRecord& record : tracer.records()) {
    const auto parsed = cs::TraceRecord::from_json(record.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->to_json(), record.to_json());
  }

  // The analysis stays sound across the restart. Note the outage itself is
  // billed to the stage-out phase here, not recovery: the JobManager's PUT
  // retry loop (begun before the crash, completed after the reboot) is what
  // causally delivered completion — the GridManager's reattach is a side
  // branch. That is the causal model being honest, not a gap.
  const cs::CriticalPath analysis(tracer.records());
  ASSERT_EQ(analysis.to_terminal().size(), 1u);
  EXPECT_GT(analysis.to_terminal()[0].phases[static_cast<std::size_t>(
                cs::Phase::kStageOut)],
            1000.0);
  EXPECT_TRUE(analysis.self_check().empty());
}

// The counterpart where recovery IS the critical path: kill the JobManager
// process (failure type F1) while the job runs. Completion can only reach
// the client after the GridManager detects the silent JobManager and
// restarts it, so the detection-plus-reattach window must be billed to the
// recovery phase.
TEST(CriticalPath, JobManagerKillBillsRecoveryOnCriticalPath) {
  cw::GridTestbed testbed(13);
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  core::JobDescription job;
  job.universe = core::Universe::kGrid;
  job.runtime_seconds = 3000.0;
  job.notify_email = false;
  const std::uint64_t id = agent.submit(job);
  testbed.world().sim().run_until(1500.0);
  ASSERT_EQ(agent.query(id)->status, core::JobStatus::kRunning);
  const std::string contact = agent.query(id)->gram_contact;
  ASSERT_TRUE(testbed.site(0).gatekeeper->kill_jobmanager(contact));
  while (!agent.schedd().all_terminal() && testbed.world().now() < 80000.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  ASSERT_TRUE(agent.schedd().all_terminal());
  ASSERT_EQ(agent.query(id)->status, core::JobStatus::kCompleted);

  const cs::CriticalPath analysis(
      testbed.world().sim().tracer().records());
  ASSERT_EQ(analysis.to_terminal().size(), 1u);
  EXPECT_GT(analysis.to_terminal()[0].phases[static_cast<std::size_t>(
                cs::Phase::kRecovery)],
            0.0);
  EXPECT_TRUE(analysis.self_check().empty());
}

// ---------- kernel profiler ----------

TEST(Profiler, DaemonFamilyFoldsPerContactServices) {
  EXPECT_EQ(cs::Profiler::daemon_family("gram.jm.pbs.anl.gov:17"), "gram.jm");
  EXPECT_EQ(cs::Profiler::daemon_family("gram.gatekeeper"),
            "gram.gatekeeper");
  EXPECT_EQ(cs::Profiler::daemon_family("schedd"), "schedd");
}

TEST(Profiler, AggregatesMessagesAndFoldsSelfLoopsOut) {
  cs::Profiler profiler;
  profiler.set_enabled(true);
  cs::Message m1;
  m1.from = {"a", "schedd"};
  m1.to = {"b", "gram.gatekeeper"};
  m1.type = "gram.submit";
  m1.size_bytes = 100;
  cs::Message m2 = m1;
  m2.size_bytes = 50;
  cs::Message local;
  local.from = {"a", "schedd"};
  local.to = {"a", "gass.server"};
  local.type = "file.get";
  local.size_bytes = 7;
  profiler.record_message(m1, 10);
  profiler.record_message(m2, 20);
  profiler.record_message(local, 30);
  profiler.record_timer("a", 5);

  const auto cross = profiler.cross_host_types();
  ASSERT_EQ(cross.size(), 1u);  // the same-host file.get is not in the cut
  EXPECT_EQ(cross.at("gram.submit").count, 2u);
  EXPECT_EQ(cross.at("gram.submit").bytes, 150u);

  const std::string stable = profiler.to_json(false).dump();
  EXPECT_EQ(stable.find("wall_ns"), std::string::npos);
  EXPECT_NE(profiler.to_json(true).dump().find("wall_ns"),
            std::string::npos);
  // Deterministic fields are independent of measured handler cost.
  cs::Profiler again;
  again.set_enabled(true);
  again.record_message(m1, 999);
  again.record_message(m2, 1);
  again.record_message(local, 123456);
  again.record_timer("a", 77);
  EXPECT_EQ(again.to_json(false).dump(), stable);
}

TEST(Profiler, MeasuresACampaignDeterministically) {
  const auto profile_run = [] {
    cw::GridTestbed testbed(5);
    testbed.world().sim().profiler().set_enabled(true);
    cw::SiteSpec spec;
    spec.name = "pbs.anl.gov";
    spec.cpus = 4;
    testbed.add_site(spec);
    testbed.add_submit_host("submit.wisc.edu");
    core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
    agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
    agent.start();
    for (int i = 0; i < 3; ++i) {
      core::JobDescription job;
      job.universe = core::Universe::kGrid;
      job.runtime_seconds = 600.0;
      job.notify_email = false;
      agent.submit(job);
    }
    while (!agent.schedd().all_terminal() &&
           testbed.world().now() < 86400.0) {
      testbed.world().sim().run_until(testbed.world().now() + 300.0);
    }
    EXPECT_TRUE(agent.schedd().all_terminal());
    return testbed.world().sim().profiler().to_json(false).dump();
  };
  const std::string a = profile_run();
  EXPECT_EQ(a, profile_run());
  // The grid protocols must show up in the cross-host traffic.
  EXPECT_NE(a.find("gram.submit"), std::string::npos);
  EXPECT_NE(a.find("file.get"), std::string::npos);
  EXPECT_NE(a.find("\"traffic_matrix\""), std::string::npos);
}

}  // namespace
