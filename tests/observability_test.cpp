// Tests for the observability layer: the metrics registry (canonical keys,
// deterministic snapshots, JSON round-trip) and the per-job tracer (span
// bookkeeping, root-span states, epoch stamping across crashes, and the
// byte-identical-JSONL contract for same-seed runs).
#include <gtest/gtest.h>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/tracer.h"
#include "condorg/sim/world.h"
#include "condorg/util/json.h"
#include "condorg/util/metrics.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cs = condorg::sim;
namespace cu = condorg::util;
namespace cw = condorg::workloads;

namespace {

// ---------- metrics registry ----------

TEST(MetricKey, CanonicalizesLabels) {
  EXPECT_EQ(cu::metric_key("x", {}), "x");
  EXPECT_EQ(cu::metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  EXPECT_EQ(cu::metric_key("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  cu::MetricsRegistry registry;
  registry.counter("hits", {{"site", "anl"}, {"user", "jfrey"}}).inc();
  registry.counter("hits", {{"user", "jfrey"}, {"site", "anl"}}).inc(2);
  EXPECT_EQ(registry.counter_value("hits{site=anl,user=jfrey}"), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, FindWithoutCreate) {
  cu::MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  EXPECT_EQ(registry.counter_value("absent"), 0u);
  EXPECT_EQ(registry.size(), 0u);  // lookups must not create series
}

TEST(MetricsRegistry, SnapshotInsertionOrderIndependent) {
  cu::MetricsRegistry a;
  a.counter("z").inc(5);
  a.counter("a", {{"k", "v"}}).inc(1);
  a.gauge("depth").set(0.0, 3.0);
  a.histogram("lat").observe(1.5);

  cu::MetricsRegistry b;
  b.histogram("lat").observe(1.5);
  b.gauge("depth").set(0.0, 3.0);
  b.counter("a", {{"k", "v"}}).inc(1);
  b.counter("z").inc(5);

  EXPECT_EQ(a.to_json(10.0), b.to_json(10.0));
}

TEST(MetricsRegistry, SnapshotJsonRoundTrip) {
  cu::MetricsRegistry registry;
  registry.counter("gram.submits", {{"client", "user"}}).inc(42);
  registry.gauge("queue").set(0.0, 2.0);
  registry.gauge("queue").set(10.0, 4.0);
  registry.histogram("recovery").observe(30.0);
  registry.histogram("recovery").observe(90.0);

  const std::string json = registry.to_json(20.0);
  auto parsed = cu::JsonValue::parse(json);
  ASSERT_TRUE(parsed.has_value());
  // Parse -> dump must reproduce the exact bytes (sorted-key objects).
  EXPECT_EQ(parsed->dump(), json);
  EXPECT_DOUBLE_EQ((*parsed)["end_time"].as_number(), 20.0);
  EXPECT_EQ(
      (*parsed)["counters"]["gram.submits{client=user}"].as_uint(), 42u);
  auto& gauge = (*parsed)["gauges"]["queue"];
  EXPECT_DOUBLE_EQ(gauge["value"].as_number(), 4.0);
  EXPECT_DOUBLE_EQ(gauge["peak"].as_number(), 4.0);
  EXPECT_EQ((*parsed)["histograms"]["recovery"]["count"].as_uint(), 2u);
}

// ---------- tracer unit behaviour ----------

TEST(Tracer, DisabledIsNoOp) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin_span("s", 1, "h", 1), 0u);
  tracer.event("e", 1, "h", 1);
  EXPECT_EQ(tracer.begin_job(1, "h", 1), 0u);
  tracer.end_job(1, "h", "done");
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.job_root_state("h", 1), cs::Tracer::RootState::kNone);
}

TEST(Tracer, SpanLifecycleAndOrdering) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);

  const cs::SpanId root = tracer.begin_span("job", 7, "submit", 1);
  const cs::SpanId child =
      tracer.begin_span("gram.submit", 7, "submit", 1, root);
  EXPECT_EQ(tracer.open_span_count(), 2u);
  tracer.end_span(child, "ok");
  tracer.end_span(root, "completed");
  EXPECT_EQ(tracer.open_span_count(), 0u);

  // Double-close and unknown ids are ignored, not corrupting the stream.
  const std::size_t frozen = tracer.records().size();
  tracer.end_span(child, "ok");
  tracer.end_span(12345, "ok");
  EXPECT_EQ(tracer.records().size(), frozen);

  ASSERT_EQ(tracer.records().size(), 4u);
  const auto& records = tracer.records();
  EXPECT_EQ(records[0].kind, cs::TraceRecord::Kind::kSpanBegin);
  EXPECT_EQ(records[1].parent, root);
  EXPECT_EQ(records[2].kind, cs::TraceRecord::Kind::kSpanEnd);
  EXPECT_EQ(records[2].name, "gram.submit");  // end inherits begin's name
  EXPECT_EQ(records[3].status, "completed");
}

TEST(Tracer, RootStateMachine) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);

  using RootState = cs::Tracer::RootState;
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kNone);
  tracer.end_job(9, "h", "done");  // end before begin: no root materializes
  EXPECT_EQ(tracer.job_root_state("h", 9), RootState::kNone);

  tracer.begin_job(1, "h", 1);
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kOpen);
  tracer.end_job(1, "h", "completed");
  EXPECT_EQ(tracer.job_root_state("h", 1), RootState::kClosed);

  // Same job id on another submit host is an independent root.
  tracer.begin_job(1, "other", 1);
  EXPECT_EQ(tracer.job_root_state("other", 1), RootState::kOpen);

  tracer.begin_job(2, "h", 1);
  tracer.begin_job(2, "h", 1);  // duplicate submit
  EXPECT_EQ(tracer.job_root_state("h", 2), RootState::kDuplicate);

  const auto roots = tracer.root_states();
  EXPECT_EQ(roots.size(), 3u);
}

TEST(Tracer, PairedEventLatencies) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  tracer.set_enabled(true);
  sim.schedule_at(10.0, [&] { tracer.event("recovery.begin", 1, "h", 1); });
  sim.schedule_at(12.0, [&] { tracer.event("recovery.begin", 2, "h", 1); });
  sim.schedule_at(40.0, [&] { tracer.event("recovery.end", 1, "h", 1); });
  // job 2 never recovers: its begin must be dropped, not mispaired.
  sim.run();
  const auto latencies =
      tracer.paired_event_latencies("recovery.begin", "recovery.end");
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 30.0);
}

TEST(Tracer, SpansSurviveCrashesAndRecordEpochs) {
  cs::World world(42);
  cs::Host& host = world.add_host("site");
  cs::Tracer& tracer = world.sim().tracer();
  tracer.set_enabled(true);

  const cs::SpanId span = tracer.begin_span("jm", 3, "site", host.epoch());
  world.sim().schedule_at(100.0, [&] { host.crash_for(50.0); });
  world.sim().schedule_at(200.0, [&] {
    tracer.event("jm.restart", 3, "site", host.epoch());
    tracer.end_span(span, "ok");
  });
  world.sim().run();

  ASSERT_EQ(tracer.records().size(), 3u);
  const auto& records = tracer.records();
  EXPECT_EQ(records[0].epoch, 1u);
  EXPECT_EQ(records[1].epoch, 2u);  // event after the crash: epoch bumped
  EXPECT_EQ(records[1].name, "jm.restart");
  // The tracer outlives the crash: the pre-crash span closes cleanly and
  // keeps its begin-time epoch, so the timeline shows the epoch crossing.
  EXPECT_EQ(records[2].epoch, 1u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(Tracer, JsonLineShapeAndDigest) {
  cs::Simulation sim;
  cs::Tracer& tracer = sim.tracer();
  const std::uint64_t fnv_basis = 14695981039346656037ull;
  EXPECT_EQ(tracer.digest(), fnv_basis);
  tracer.set_enabled(true);
  tracer.event("credential.refresh", 0, "submit", 1, "from myproxy");
  ASSERT_EQ(tracer.records().size(), 1u);
  const std::string line = tracer.records()[0].to_json();
  // Every line is itself a JSON object; job=0 fields are elided.
  auto parsed = cu::JsonValue::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(line.find("\"job\""), std::string::npos);
  EXPECT_EQ((*parsed)["kind"].as_string(), "event");
  EXPECT_EQ((*parsed)["detail"].as_string(), "from myproxy");
  EXPECT_NE(tracer.digest(), fnv_basis);
}

// ---------- end-to-end determinism ----------

std::pair<std::string, std::uint64_t> traced_campaign(std::uint64_t seed) {
  cw::GridTestbed testbed(seed);
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 8;
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");

  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  for (int i = 0; i < 6; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 600.0 + 60.0 * i;
    job.notify_email = false;
    agent.submit(job);
  }
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  EXPECT_TRUE(agent.schedd().all_terminal());
  const cs::Tracer& tracer = testbed.world().sim().tracer();
  EXPECT_EQ(tracer.open_span_count(), 0u);
  return {tracer.to_jsonl(), tracer.digest()};
}

TEST(Tracer, SameSeedRunsExportByteIdenticalJsonl) {
  const auto [jsonl_a, digest_a] = traced_campaign(1234);
  const auto [jsonl_b, digest_b] = traced_campaign(1234);
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_FALSE(jsonl_a.empty());

  // A different seed perturbs timing, so the bytes (and digest) move.
  const auto [jsonl_c, digest_c] = traced_campaign(99);
  EXPECT_NE(jsonl_a, jsonl_c);
  EXPECT_NE(digest_a, digest_c);
}

}  // namespace
