// Equivalence pinning for the optimized matchmaking hot paths (PR: indexed
// collector queries, cached ClassAd evaluation, prefiltered matching).
//
// The optimized match_jobs_to_slots carries a Requirements prefilter that
// must be *exact*: it may only reject slots that full bilateral evaluation
// would reject. These tests run randomized-but-seeded ad populations —
// deliberately covering analyzable conjuncts, unscoped references, absent
// attributes, non-literal slot attributes, undefined/error literals, and
// OR/ternary shapes the analyzer must refuse to touch — through both the
// optimized matcher and the retained reference implementation, and require
// byte-identical results. symmetric_match / eval_rank (cached attribute
// resolution) are pinned against lookup-based evaluation the same way.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "condorg/classad/parser.h"
#include "condorg/condor/negotiator.h"
#include "condorg/util/rng.h"

namespace ca = condorg::classad;
namespace cc = condorg::condor;
namespace cu = condorg::util;

namespace {

const char* const kArchs[] = {"X86_64", "x86_64", "INTEL", "PPC", "SUN4u"};

// Requirement templates: a mix the prefilter can analyze fully, partially,
// or not at all. %M is replaced with a random memory bound.
const char* const kJobRequirements[] = {
    "other.Arch == \"x86_64\"",
    "other.Arch == \"X86_64\" && other.Memory >= %M",
    "other.Memory >= %M && other.Arch != \"PPC\"",
    "target.Memory >= %M && CpusWanted <= 4",     // unscoped second conjunct
    "other.Disk =?= undefined || other.Memory > %M",  // OR: not analyzable
    "other.Memory >= 100 + 28",                   // folds to a literal bound
    "other.Missing == 1",                         // absent on every slot
    "other.Memory >= %M && other.Mips > 0 && other.Arch == \"INTEL\"",
    "(other.Memory >= %M) == true",               // nested, not a plain ref
    "my.ImageSize <= other.Memory",               // literal on MY side only
};

const char* const kJobRanks[] = {
    "other.Mips",
    "other.Mips / other.Memory",
    "other.Memory * 2 - 1",
    "",  // absent
};

ca::ClassAd random_job_ad(cu::Rng& rng) {
  const std::int64_t image = 64 << rng.below(4);
  const std::int64_t memory = 128 << rng.below(4);
  std::string req = kJobRequirements[rng.below(std::size(kJobRequirements))];
  const auto pos = req.find("%M");
  if (pos != std::string::npos) {
    req.replace(pos, 2, std::to_string(memory));
  }
  std::string text = "[ImageSize = " + std::to_string(image) +
                     "; CpusWanted = " + std::to_string(1 + rng.below(8)) +
                     "; Requirements = " + req;
  const std::string rank = kJobRanks[rng.below(std::size(kJobRanks))];
  if (!rank.empty()) text += "; Rank = " + rank;
  text += "]";
  return ca::parse_ad(text);
}

ca::ClassAd random_slot_ad(cu::Rng& rng, std::size_t index) {
  std::string text = "[Name = \"slot" + std::to_string(index) + "\"";
  // Arch: mostly present, sometimes missing entirely.
  if (rng.below(10) != 0) {
    text += std::string("; Arch = \"") + kArchs[rng.below(std::size(kArchs))] +
            "\"";
  }
  // Memory: literal, non-literal (opaque to the prefilter), undefined, or
  // absent.
  switch (rng.below(8)) {
    case 0: text += "; TotalMemory = 2048; Memory = TotalMemory / 2"; break;
    case 1: text += "; Memory = undefined"; break;
    case 2: break;  // absent
    default:
      text += "; Memory = " + std::to_string(128 << rng.below(5));
      break;
  }
  text += "; Mips = " + std::to_string(rng.range(0, 4000));
  if (rng.below(4) == 0) text += "; Disk = undefined";
  if (rng.below(2) == 0) text += "; Requirements = other.ImageSize <= Memory";
  text += "; State = \"Unclaimed\"]";
  return ca::parse_ad(text);
}

std::vector<cc::IdleJob> random_jobs(cu::Rng& rng, std::size_t n) {
  std::vector<cc::IdleJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back({"job" + std::to_string(i), random_job_ad(rng)});
  }
  return jobs;
}

std::vector<cc::Collector::AdPtr> random_slots(cu::Rng& rng, std::size_t n) {
  std::vector<cc::Collector::AdPtr> slots;
  for (std::size_t i = 0; i < n; ++i) {
    slots.push_back(
        std::make_shared<const ca::ClassAd>(random_slot_ad(rng, i)));
  }
  return slots;
}

void expect_identical(const std::vector<cc::Match>& got,
                      const std::vector<cc::Match>& want,
                      std::uint64_t seed) {
  ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].job_id, want[i].job_id) << "seed " << seed << " #" << i;
    EXPECT_EQ(got[i].slot_ad.unparse(), want[i].slot_ad.unparse())
        << "seed " << seed << " #" << i;
  }
}

/// Lookup-based evaluation, the way symmetric_match worked before the
/// cached Requirements/Rank resolution.
bool lookup_symmetric_match(const ca::ClassAd& left, const ca::ClassAd& right) {
  const auto half = [](const ca::ClassAd& my, const ca::ClassAd& target) {
    if (!my.contains("Requirements")) return true;
    const ca::Value v = my.eval("Requirements", &target);
    return v.is_bool() && v.as_bool();
  };
  return half(left, right) && half(right, left);
}

double lookup_eval_rank(const ca::ClassAd& ad, const ca::ClassAd& target) {
  const ca::Value v = ad.eval("Rank", &target);
  double d = 0.0;
  if (v.to_number(d)) return d;
  return 0.0;
}

}  // namespace

TEST(MatcherEquivalence, OptimizedMatchesReferenceOnRandomPopulations) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cu::Rng rng(seed);
    const auto jobs = random_jobs(rng, 30 + rng.below(30));
    const auto slots = random_slots(rng, 40 + rng.below(40));
    expect_identical(cc::match_jobs_to_slots(jobs, slots),
                     cc::match_jobs_to_slots_reference(jobs, slots), seed);
  }
}

TEST(MatcherEquivalence, PlainAdOverloadMatchesReference) {
  cu::Rng rng(77);
  const auto jobs = random_jobs(rng, 25);
  std::vector<ca::ClassAd> plain;
  std::vector<cc::Collector::AdPtr> shared;
  for (std::size_t i = 0; i < 50; ++i) {
    plain.push_back(random_slot_ad(rng, i));
    shared.push_back(std::make_shared<const ca::ClassAd>(plain.back()));
  }
  expect_identical(cc::match_jobs_to_slots(jobs, plain),
                   cc::match_jobs_to_slots_reference(jobs, shared), 77);
}

TEST(MatcherEquivalence, EmptyEdgeCases) {
  cu::Rng rng(5);
  const auto jobs = random_jobs(rng, 10);
  const auto slots = random_slots(rng, 10);
  const std::vector<cc::IdleJob> no_jobs;
  const std::vector<cc::Collector::AdPtr> no_slots;
  EXPECT_TRUE(cc::match_jobs_to_slots(no_jobs, slots).empty());
  EXPECT_TRUE(cc::match_jobs_to_slots(jobs, no_slots).empty());
  EXPECT_TRUE(cc::match_jobs_to_slots_reference(no_jobs, slots).empty());
  EXPECT_TRUE(cc::match_jobs_to_slots_reference(jobs, no_slots).empty());
}

TEST(MatcherEquivalence, SymmetricMatchAgreesWithLookupEvaluation) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    cu::Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      const ca::ClassAd job = random_job_ad(rng);
      const ca::ClassAd slot =
          random_slot_ad(rng, static_cast<std::size_t>(i));
      EXPECT_EQ(ca::symmetric_match(job, slot),
                lookup_symmetric_match(job, slot))
          << "seed " << seed << " pair " << i;
      EXPECT_DOUBLE_EQ(ca::eval_rank(job, slot), lookup_eval_rank(job, slot))
          << "seed " << seed << " pair " << i;
    }
  }
}

TEST(MatcherEquivalence, CachedRequirementsTrackMutation) {
  // The cached Requirements/Rank pointers must follow insert/erase/update,
  // including case-insensitive respellings.
  ca::ClassAd job = ca::parse_ad("[Requirements = other.Memory >= 256]");
  const ca::ClassAd small = ca::parse_ad("[Memory = 128]");
  const ca::ClassAd big = ca::parse_ad("[Memory = 512]");
  EXPECT_FALSE(ca::symmetric_match(job, small));
  EXPECT_TRUE(ca::symmetric_match(job, big));

  job.insert_expr("REQUIREMENTS", "other.Memory >= 64");  // respelled update
  EXPECT_TRUE(ca::symmetric_match(job, small));

  job.erase("requirements");
  EXPECT_TRUE(ca::symmetric_match(job, small));  // absent matches anything

  ca::ClassAd overlay;
  overlay.insert_expr("Requirements", "other.Memory >= 1024");
  job.update(overlay);
  EXPECT_FALSE(ca::symmetric_match(job, big));

  job.insert_expr("rank", "other.Memory");
  EXPECT_DOUBLE_EQ(ca::eval_rank(job, big), 512.0);
  job.erase("Rank");
  EXPECT_DOUBLE_EQ(ca::eval_rank(job, big), 0.0);
}
