#include <gtest/gtest.h>

#include <string>

#include "condorg/classad/classad.h"
#include "condorg/util/rng.h"
#include "condorg/classad/parser.h"

namespace ca = condorg::classad;

namespace {

ca::Value ev(const std::string& text) {
  return ca::parse_expr(text)->evaluate();
}

std::string unparse_round_trip(const std::string& text) {
  return ca::parse_expr(text)->unparse();
}

}  // namespace

// ---------- values ----------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(ca::Value::undefined().is_undefined());
  EXPECT_TRUE(ca::Value::error().is_error());
  EXPECT_TRUE(ca::Value::boolean(true).as_bool());
  EXPECT_EQ(ca::Value::integer(-3).as_int(), -3);
  EXPECT_DOUBLE_EQ(ca::Value::real(2.5).as_real(), 2.5);
  EXPECT_EQ(ca::Value::string("x").as_string(), "x");
  const auto list = ca::Value::list({ca::Value::integer(1)});
  ASSERT_TRUE(list.is_list());
  EXPECT_EQ(list.as_list().size(), 1u);
}

TEST(Value, ToNumberCoercions) {
  double d = 0;
  EXPECT_TRUE(ca::Value::integer(4).to_number(d));
  EXPECT_DOUBLE_EQ(d, 4.0);
  EXPECT_TRUE(ca::Value::boolean(true).to_number(d));
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_FALSE(ca::Value::string("4").to_number(d));
  EXPECT_FALSE(ca::Value::undefined().to_number(d));
}

TEST(Value, SameAsIsStructural) {
  EXPECT_TRUE(ca::Value::undefined().same_as(ca::Value::undefined()));
  EXPECT_FALSE(ca::Value::undefined().same_as(ca::Value::error()));
  EXPECT_FALSE(ca::Value::integer(1).same_as(ca::Value::real(1.0)));
  EXPECT_TRUE(ca::Value::string("A").same_as(ca::Value::string("A")));
  EXPECT_FALSE(ca::Value::string("A").same_as(ca::Value::string("a")));
}

TEST(Value, UnparseLiterals) {
  EXPECT_EQ(ca::Value::integer(7).unparse(), "7");
  EXPECT_EQ(ca::Value::real(2.0).unparse(), "2.0");
  EXPECT_EQ(ca::Value::boolean(false).unparse(), "false");
  EXPECT_EQ(ca::Value::string("a\"b").unparse(), "\"a\\\"b\"");
  EXPECT_EQ(ca::Value::undefined().unparse(), "undefined");
}

// ---------- lexer / parser ----------

TEST(Parser, Arithmetic) {
  EXPECT_EQ(ev("1 + 2 * 3").as_int(), 7);
  EXPECT_EQ(ev("(1 + 2) * 3").as_int(), 9);
  EXPECT_EQ(ev("10 % 3").as_int(), 1);
  EXPECT_EQ(ev("7 / 2").as_int(), 3);
  EXPECT_DOUBLE_EQ(ev("7.0 / 2").as_real(), 3.5);
  EXPECT_DOUBLE_EQ(ev("1e3 + 0.5").as_real(), 1000.5);
  EXPECT_EQ(ev("-4").as_int(), -4);
  EXPECT_EQ(ev("- -4").as_int(), 4);
}

TEST(Parser, DivisionByZeroIsError) {
  EXPECT_TRUE(ev("1 / 0").is_error());
  EXPECT_TRUE(ev("1 % 0").is_error());
  EXPECT_TRUE(ev("1.0 / 0.0").is_error());
}

TEST(Parser, Comparisons) {
  EXPECT_TRUE(ev("2 < 3").as_bool());
  EXPECT_TRUE(ev("3 <= 3").as_bool());
  EXPECT_FALSE(ev("3 > 3").as_bool());
  EXPECT_TRUE(ev("2.5 >= 2").as_bool());
  EXPECT_TRUE(ev("2 == 2.0").as_bool());
  EXPECT_TRUE(ev("2 != 3").as_bool());
}

TEST(Parser, StringComparisonIsCaseInsensitive) {
  EXPECT_TRUE(ev("\"LINUX\" == \"linux\"").as_bool());
  EXPECT_FALSE(ev("\"LINUX\" != \"linux\"").as_bool());
  EXPECT_TRUE(ev("\"abc\" < \"abd\"").as_bool());
  // strcmp is the case-sensitive escape hatch.
  EXPECT_EQ(ev("strcmp(\"LINUX\", \"linux\")").as_int(), -1);
  EXPECT_EQ(ev("stricmp(\"LINUX\", \"linux\")").as_int(), 0);
}

TEST(Parser, MixedTypeComparisonIsError) {
  EXPECT_TRUE(ev("\"abc\" < 3").is_error());
  EXPECT_TRUE(ev("true == \"true\"").is_error());
}

TEST(Parser, TernaryAndPrecedence) {
  EXPECT_EQ(ev("true ? 1 : 2").as_int(), 1);
  EXPECT_EQ(ev("false ? 1 : 2").as_int(), 2);
  EXPECT_EQ(ev("1 < 2 ? 10 + 1 : 20").as_int(), 11);
  EXPECT_TRUE(ev("undefined ? 1 : 2").is_undefined());
  EXPECT_TRUE(ev("3 ? 1 : 2").is_error());
}

TEST(Parser, BooleanKeywordsAnyCase) {
  EXPECT_TRUE(ev("TRUE").as_bool());
  EXPECT_FALSE(ev("False").as_bool());
  EXPECT_TRUE(ev("UNDEFINED").is_undefined());
  EXPECT_TRUE(ev("Error").is_error());
}

TEST(Parser, Lists) {
  const auto v = ev("{1, 2.5, \"x\"}");
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3u);
  EXPECT_EQ(v.as_list()[0].as_int(), 1);
  EXPECT_TRUE(ev("member(2, {1, 2, 3})").as_bool());
  EXPECT_FALSE(ev("member(9, {1, 2, 3})").as_bool());
  EXPECT_EQ(ev("size({1, 2, 3})").as_int(), 3);
}

TEST(Parser, Comments) {
  EXPECT_EQ(ev("1 + // comment\n 2").as_int(), 3);
  EXPECT_EQ(ev("1 + # comment\n 2").as_int(), 3);
}

TEST(Parser, Errors) {
  EXPECT_THROW(ca::parse_expr("1 +"), ca::ParseError);
  EXPECT_THROW(ca::parse_expr("(1"), ca::ParseError);
  EXPECT_THROW(ca::parse_expr("1 2"), ca::ParseError);
  EXPECT_THROW(ca::parse_expr("\"unterminated"), ca::ParseError);
  EXPECT_THROW(ca::parse_expr("@"), ca::ParseError);
  EXPECT_THROW(ca::parse_expr(""), ca::ParseError);
}

TEST(Parser, UnparseRoundTrip) {
  // unparse() output must re-parse to an expression with the same value.
  for (const char* text :
       {"1 + 2 * 3", "(a < 4) && (b >= \"x\")", "my.Memory + target.Disk",
        "foo(1, \"two\", {3})", "x =?= undefined ? 0 : x",
        "!a || b != 2.5e2"}) {
    const std::string first = unparse_round_trip(text);
    const std::string second = ca::parse_expr(first)->unparse();
    EXPECT_EQ(first, second) << text;
  }
}

// ---------- three-valued logic (the matchmaking safety core) ----------

struct LogicCase {
  const char* expr;
  const char* expected;  // "true", "false", "undefined", "error"
};

class ThreeValuedLogic : public ::testing::TestWithParam<LogicCase> {};

TEST_P(ThreeValuedLogic, Evaluates) {
  const auto& param = GetParam();
  const ca::Value v = ev(param.expr);
  const std::string expected = param.expected;
  if (expected == "true") {
    ASSERT_TRUE(v.is_bool()) << param.expr << " -> " << v.unparse();
    EXPECT_TRUE(v.as_bool()) << param.expr;
  } else if (expected == "false") {
    ASSERT_TRUE(v.is_bool()) << param.expr << " -> " << v.unparse();
    EXPECT_FALSE(v.as_bool()) << param.expr;
  } else if (expected == "undefined") {
    EXPECT_TRUE(v.is_undefined()) << param.expr << " -> " << v.unparse();
  } else {
    EXPECT_TRUE(v.is_error()) << param.expr << " -> " << v.unparse();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Absorption, ThreeValuedLogic,
    ::testing::Values(
        // FALSE absorbs everything in &&.
        LogicCase{"false && undefined", "false"},
        LogicCase{"undefined && false", "false"},
        LogicCase{"false && error", "false"},
        LogicCase{"false && (1/0 == 1)", "false"},
        // TRUE absorbs everything in ||.
        LogicCase{"true || undefined", "true"},
        LogicCase{"undefined || true", "true"},
        LogicCase{"true || error", "true"},
        // UNDEFINED propagates when not absorbed.
        LogicCase{"true && undefined", "undefined"},
        LogicCase{"undefined && true", "undefined"},
        LogicCase{"false || undefined", "undefined"},
        LogicCase{"undefined || undefined", "undefined"},
        // ERROR dominates UNDEFINED when not absorbed.
        LogicCase{"true && error", "error"},
        LogicCase{"error || false", "error"},
        LogicCase{"undefined && error", "error"},
        // NOT is strict.
        LogicCase{"!undefined", "undefined"},
        LogicCase{"!error", "error"},
        LogicCase{"!true", "false"}));

INSTANTIATE_TEST_SUITE_P(
    UndefinedPropagation, ThreeValuedLogic,
    ::testing::Values(
        LogicCase{"undefined + 1", "undefined"},
        LogicCase{"undefined < 3", "undefined"},
        LogicCase{"undefined == undefined", "undefined"},
        LogicCase{"NoSuchAttr == 5", "undefined"},
        LogicCase{"error + 1", "error"},
        // Meta comparison never yields undefined.
        LogicCase{"undefined =?= undefined", "true"},
        LogicCase{"undefined =?= 3", "false"},
        LogicCase{"undefined =!= undefined", "false"},
        LogicCase{"3 =?= 3", "true"},
        LogicCase{"3 =?= 3.0", "false"},   // structural: int != real
        LogicCase{"\"A\" =?= \"a\"", "false"},  // structural: case matters
        LogicCase{"\"A\" == \"a\"", "true"},
        LogicCase{"error =?= error", "true"}));

// ---------- ads & attribute resolution ----------

TEST(ClassAd, InsertEvalAndTypes) {
  ca::ClassAd ad;
  ad.insert_int("Cpus", 4);
  ad.insert_real("LoadAvg", 0.25);
  ad.insert_bool("IsLinux", true);
  ad.insert_string("Arch", "X86_64");
  ad.insert_expr("FreeCpus", "Cpus - 1");
  EXPECT_EQ(ad.eval_int("Cpus"), 4);
  EXPECT_DOUBLE_EQ(*ad.eval_real("LoadAvg"), 0.25);
  EXPECT_EQ(ad.eval_bool("IsLinux"), true);
  EXPECT_EQ(ad.eval_string("Arch"), "X86_64");
  EXPECT_EQ(ad.eval_int("FreeCpus"), 3);
  EXPECT_EQ(ad.eval_int("Missing"), std::nullopt);
  EXPECT_EQ(ad.size(), 5u);
}

TEST(ClassAd, NamesAreCaseInsensitive) {
  ca::ClassAd ad;
  ad.insert_int("Memory", 512);
  EXPECT_TRUE(ad.contains("MEMORY"));
  EXPECT_EQ(ad.eval_int("memory"), 512);
  ad.insert_int("MEMORY", 1024);  // overwrites, keeps canonical name
  EXPECT_EQ(ad.eval_int("Memory"), 1024);
  EXPECT_EQ(ad.size(), 1u);
  EXPECT_EQ(ad.names()[0], "Memory");
}

TEST(ClassAd, ChainedAttributeReferences) {
  ca::ClassAd ad = ca::parse_ad("[a = b + 1; b = c * 2; c = 10]");
  EXPECT_EQ(ad.eval_int("a"), 21);
}

TEST(ClassAd, CyclicReferencesYieldError) {
  ca::ClassAd ad = ca::parse_ad("[a = b; b = a]");
  EXPECT_TRUE(ad.eval("a").is_error());
  ca::ClassAd self = ca::parse_ad("[x = x + 1]");
  EXPECT_TRUE(self.eval("x").is_error());
}

TEST(ClassAd, ParseBracketedAndSubmitStyle) {
  const ca::ClassAd a = ca::parse_ad("[Cpus = 4; Arch = \"LINUX\"]");
  EXPECT_EQ(a.eval_int("Cpus"), 4);
  const ca::ClassAd b = ca::parse_ad("Cpus = 4\nArch = \"LINUX\"\n");
  EXPECT_EQ(b.eval_string("Arch"), "LINUX");
  EXPECT_THROW(ca::parse_ad("[Cpus 4]"), ca::ParseError);
}

TEST(ClassAd, UnparseReparse) {
  ca::ClassAd ad = ca::parse_ad(
      "[Requirements = other.Memory > 100 && Arch == \"X86_64\"; Rank = "
      "Kflops; Arch = \"X86_64\"]");
  const ca::ClassAd again = ca::parse_ad(ad.unparse());
  EXPECT_EQ(again.size(), ad.size());
  EXPECT_EQ(again.unparse(), ad.unparse());
}

TEST(ClassAd, UpdateMerges) {
  ca::ClassAd base = ca::parse_ad("[a = 1; b = 2]");
  base.update(ca::parse_ad("[b = 20; c = 30]"));
  EXPECT_EQ(base.eval_int("a"), 1);
  EXPECT_EQ(base.eval_int("b"), 20);
  EXPECT_EQ(base.eval_int("c"), 30);
}

// ---------- MY / TARGET scoping ----------

TEST(Scoping, MyAndTargetResolve) {
  const ca::ClassAd job = ca::parse_ad("[Memory = 64; Wants = 128]");
  const ca::ClassAd machine = ca::parse_ad("[Memory = 256]");
  const auto expr = ca::parse_expr("MY.Wants <= TARGET.Memory");
  EXPECT_TRUE(expr->evaluate(&job, &machine).as_bool());
  const auto expr2 = ca::parse_expr("other.Memory > MY.Memory");
  EXPECT_TRUE(expr2->evaluate(&job, &machine).as_bool());
}

TEST(Scoping, UnqualifiedPrefersMyThenTarget) {
  const ca::ClassAd job = ca::parse_ad("[Memory = 64]");
  const ca::ClassAd machine = ca::parse_ad("[Memory = 256; Disk = 1000]");
  // Memory resolves in the job ad (my); Disk falls through to target.
  EXPECT_EQ(ca::parse_expr("Memory")->evaluate(&job, &machine).as_int(), 64);
  EXPECT_EQ(ca::parse_expr("Disk")->evaluate(&job, &machine).as_int(), 1000);
  EXPECT_TRUE(ca::parse_expr("Nowhere")
                  ->evaluate(&job, &machine)
                  .is_undefined());
}

TEST(Scoping, TargetAttributeEvaluatesInItsOwnScope) {
  // target.FreeCpus references target's own Cpus attribute.
  const ca::ClassAd job = ca::parse_ad("[Cpus = 1]");
  const ca::ClassAd machine = ca::parse_ad("[Cpus = 8; FreeCpus = Cpus - 2]");
  EXPECT_EQ(
      ca::parse_expr("TARGET.FreeCpus")->evaluate(&job, &machine).as_int(), 6);
}

TEST(Scoping, MissingTargetIsUndefined) {
  const ca::ClassAd job = ca::parse_ad("[Memory = 64]");
  EXPECT_TRUE(
      ca::parse_expr("TARGET.Memory")->evaluate(&job, nullptr).is_undefined());
}

// ---------- matchmaking ----------

TEST(Match, SymmetricRequirements) {
  const ca::ClassAd job = ca::parse_ad(
      "[Type = \"Job\"; ImageSize = 50; Requirements = other.Memory >= "
      "ImageSize && other.Arch == \"X86_64\"]");
  const ca::ClassAd machine = ca::parse_ad(
      "[Type = \"Machine\"; Memory = 256; Arch = \"X86_64\"; Requirements = "
      "other.ImageSize < Memory]");
  EXPECT_TRUE(ca::symmetric_match(job, machine));
  EXPECT_TRUE(ca::symmetric_match(machine, job));

  const ca::ClassAd small = ca::parse_ad(
      "[Type = \"Machine\"; Memory = 32; Arch = \"X86_64\"; Requirements = "
      "true]");
  EXPECT_FALSE(ca::symmetric_match(job, small));
}

TEST(Match, UndefinedRequirementsDoNotMatch) {
  // Machine requires an attribute the job doesn't define: Requirements
  // evaluates to UNDEFINED, which must NOT count as a match.
  const ca::ClassAd job = ca::parse_ad("[X = 1]");
  const ca::ClassAd machine =
      ca::parse_ad("[Requirements = other.SecurityClearance == \"top\"]");
  EXPECT_FALSE(ca::symmetric_match(job, machine));
}

TEST(Match, MissingRequirementsMatchesAnything) {
  const ca::ClassAd a = ca::parse_ad("[x = 1]");
  const ca::ClassAd b = ca::parse_ad("[y = 2]");
  EXPECT_TRUE(ca::symmetric_match(a, b));
}

TEST(Match, RankOrdersCandidates) {
  const ca::ClassAd job =
      ca::parse_ad("[Rank = other.Kflops; Requirements = true]");
  const ca::ClassAd slow = ca::parse_ad("[Kflops = 1000]");
  const ca::ClassAd fast = ca::parse_ad("[Kflops = 9000]");
  EXPECT_GT(ca::eval_rank(job, fast), ca::eval_rank(job, slow));
  const ca::ClassAd no_rank = ca::parse_ad("[x = 1]");
  EXPECT_DOUBLE_EQ(ca::eval_rank(no_rank, fast), 0.0);
  const ca::ClassAd bad_rank = ca::parse_ad("[Rank = other.Nowhere]");
  EXPECT_DOUBLE_EQ(ca::eval_rank(bad_rank, slow), 0.0);
}

// ---------- builtin functions ----------

TEST(Builtins, Strings) {
  EXPECT_EQ(ev("toUpper(\"abc\")").as_string(), "ABC");
  EXPECT_EQ(ev("toLower(\"ABC\")").as_string(), "abc");
  EXPECT_EQ(ev("size(\"hello\")").as_int(), 5);
  EXPECT_EQ(ev("substr(\"hello\", 1, 3)").as_string(), "ell");
  EXPECT_EQ(ev("substr(\"hello\", -2)").as_string(), "lo");
  EXPECT_EQ(ev("substr(\"hello\", 99)").as_string(), "");
  EXPECT_EQ(ev("strcat(\"a\", 1, \"-\", 2.5)").as_string(), "a1-2.5");
}

TEST(Builtins, StringLists) {
  EXPECT_TRUE(ev("stringListMember(\"b\", \"a, b, c\")").as_bool());
  EXPECT_FALSE(ev("stringListMember(\"B\", \"a, b, c\")").as_bool());
  EXPECT_TRUE(ev("stringListIMember(\"B\", \"a, b, c\")").as_bool());
  EXPECT_EQ(ev("stringListSize(\"a, b, c\")").as_int(), 3);
  EXPECT_EQ(ev("stringListSize(\"a:b\", \":\")").as_int(), 2);
}

TEST(Builtins, Numeric) {
  EXPECT_EQ(ev("floor(2.9)").as_int(), 2);
  EXPECT_EQ(ev("ceiling(2.1)").as_int(), 3);
  EXPECT_EQ(ev("round(2.5)").as_int(), 3);
  EXPECT_EQ(ev("abs(-5)").as_int(), 5);
  EXPECT_DOUBLE_EQ(ev("pow(2, 10)").as_real(), 1024.0);
  EXPECT_EQ(ev("min(3, 1, 2)").as_int(), 1);
  EXPECT_EQ(ev("max(3, 1, 2)").as_int(), 3);
  EXPECT_DOUBLE_EQ(ev("max(3, 1.5)").as_real(), 3.0);
}

TEST(Builtins, Conversions) {
  EXPECT_EQ(ev("int(2.9)").as_int(), 2);
  EXPECT_EQ(ev("int(\"42\")").as_int(), 42);
  EXPECT_TRUE(ev("int(\"nope\")").is_error());
  EXPECT_DOUBLE_EQ(ev("real(2)").as_real(), 2.0);
  EXPECT_EQ(ev("string(42)").as_string(), "42");
  EXPECT_EQ(ev("string(true)").as_string(), "true");
}

TEST(Builtins, Introspection) {
  EXPECT_TRUE(ev("isUndefined(undefined)").as_bool());
  EXPECT_FALSE(ev("isUndefined(1)").as_bool());
  EXPECT_TRUE(ev("isError(1/0)").as_bool());
  EXPECT_TRUE(ev("isString(\"x\")").as_bool());
  EXPECT_TRUE(ev("isInteger(1)").as_bool());
  EXPECT_TRUE(ev("isReal(1.0)").as_bool());
  EXPECT_TRUE(ev("isBoolean(true)").as_bool());
}

TEST(Builtins, IfThenElse) {
  EXPECT_EQ(ev("ifThenElse(true, 1, 2)").as_int(), 1);
  EXPECT_EQ(ev("ifThenElse(false, 1, 2)").as_int(), 2);
  EXPECT_TRUE(ev("ifThenElse(undefined, 1, 2)").is_undefined());
}

TEST(Builtins, Regexp) {
  EXPECT_TRUE(ev("regexp(\"^x86\", \"x86_64\")").as_bool());
  EXPECT_FALSE(ev("regexp(\"^X86\", \"x86_64\")").as_bool());
  EXPECT_TRUE(ev("regexp(\"^X86\", \"x86_64\", \"i\")").as_bool());
  EXPECT_TRUE(ev("regexp(\"[\", \"x\")").is_error());
}

TEST(Builtins, UnknownFunctionIsError) {
  EXPECT_TRUE(ev("noSuchFunction(1)").is_error());
}

TEST(Builtins, UndefinedArgumentsPropagate) {
  EXPECT_TRUE(ev("toUpper(undefined)").is_undefined());
  EXPECT_TRUE(ev("floor(undefined)").is_undefined());
  EXPECT_TRUE(ev("floor(error)").is_error());
}

TEST(Builtins, RegistryNonEmpty) {
  EXPECT_GE(ca::builtin_names().size(), 25u);
}

// ---------- realistic grid ads (paper-flavoured integration) ----------

TEST(Integration, GramResourceBrokering) {
  // A job ad of the kind the Condor-G broker would construct from MDS data.
  const ca::ClassAd job = ca::parse_ad(R"(
    [
      JobUniverse = 9;  // grid
      Owner = "jfrey";
      ImageSize = 128;
      WantsArch = "X86_64";
      Requirements = other.FreeCpus > 0 &&
                     other.Memory >= MY.ImageSize &&
                     stringListMember(MY.WantsArch, other.ArchList);
      Rank = other.FreeCpus * 10 - other.QueueLength;
    ]
  )");
  const ca::ClassAd site_a = ca::parse_ad(R"(
    [ Name = "pbs.anl.gov"; FreeCpus = 12; Memory = 512;
      ArchList = "X86_64, IA64"; QueueLength = 4; ]
  )");
  const ca::ClassAd site_b = ca::parse_ad(R"(
    [ Name = "lsf.ncsa.edu"; FreeCpus = 2; Memory = 2048;
      ArchList = "POWER3"; QueueLength = 0; ]
  )");
  const ca::ClassAd site_c = ca::parse_ad(R"(
    [ Name = "condor.wisc.edu"; FreeCpus = 250; Memory = 256;
      ArchList = "X86_64"; QueueLength = 90; ]
  )");
  EXPECT_TRUE(ca::symmetric_match(job, site_a));
  EXPECT_FALSE(ca::symmetric_match(job, site_b));  // wrong arch
  EXPECT_TRUE(ca::symmetric_match(job, site_c));
  // Rank must prefer the big idle pool.
  EXPECT_GT(ca::eval_rank(job, site_c), ca::eval_rank(job, site_a));
}

// ---------- randomized round-trip / evaluation-stability fuzz ----------

namespace {

/// Generate a random well-formed ClassAd expression of bounded depth.
std::string random_expr(condorg::util::Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.below(6)) {
      case 0: return std::to_string(rng.range(-100, 100));
      case 1: return ca::Value::real(rng.uniform(-10, 10)).unparse();
      case 2: return rng.chance(0.5) ? "true" : "false";
      case 3: return "undefined";
      case 4: return "\"s" + std::to_string(rng.below(10)) + "\"";
      default: return "Attr" + std::to_string(rng.below(4));
    }
  }
  static const char* kBinOps[] = {"+", "-", "*", "/", "<", "<=", ">",
                                  ">=", "==", "!=", "=?=", "=!=", "&&",
                                  "||"};
  switch (rng.below(4)) {
    case 0:
      return "(" + random_expr(rng, depth - 1) + " " +
             kBinOps[rng.below(14)] + " " + random_expr(rng, depth - 1) +
             ")";
    case 1:
      return "(-" + random_expr(rng, depth - 1) + ")";
    case 2:
      return "(" + random_expr(rng, depth - 1) + " ? " +
             random_expr(rng, depth - 1) + " : " +
             random_expr(rng, depth - 1) + ")";
    default:
      return "ifThenElse(isUndefined(" + random_expr(rng, depth - 1) +
             "), " + random_expr(rng, depth - 1) + ", " +
             random_expr(rng, depth - 1) + ")";
  }
}

}  // namespace

class ClassAdFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ClassAdFuzz, UnparseReparseIsStableAndValuePreserving) {
  condorg::util::Rng rng(90000 + GetParam());
  const ca::ClassAd env = ca::parse_ad(
      "[Attr0 = 3; Attr1 = \"s1\"; Attr2 = true]");  // Attr3 stays undefined
  for (int trial = 0; trial < 60; ++trial) {
    const std::string text = random_expr(rng, 4);
    const ca::ExprPtr first = ca::parse_expr(text);
    const std::string printed = first->unparse();
    const ca::ExprPtr second = ca::parse_expr(printed);
    // Fixpoint: printing the reparsed tree yields the same text.
    EXPECT_EQ(second->unparse(), printed) << text;
    // Value equivalence under an environment (structural: =?= semantics).
    const ca::Value v1 = first->evaluate(&env, nullptr);
    const ca::Value v2 = second->evaluate(&env, nullptr);
    EXPECT_TRUE(v1.same_as(v2)) << text << " -> " << v1.unparse() << " vs "
                                << v2.unparse();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassAdFuzz, ::testing::Range(0, 8));
