// Determinism acceptance for the island-parallel kernel: the same scenario
// must produce byte-identical artifacts — trace digest, tracer JSONL, user
// log, DetSan report — for every CONDORG_PARALLEL worker count, and the
// strict (tracer-armed) executor must commit exactly the stream the
// windowed executor commits. These are the equalities DESIGN.md §15
// promises; bench_k1_island_scale re-checks them at bench scale.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/det.h"
#include "condorg/sim/explorer.h"
#include "condorg/sim/world.h"
#include "condorg/workloads/explore_scenarios.h"
#include "condorg/workloads/grid_builder.h"

namespace {

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace det = condorg::det;
namespace sim = condorg::sim;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

struct RunArtifacts {
  std::uint64_t digest = 0;
  std::uint64_t dispatched = 0;
  int completed = 0;
  std::string user_log;
  std::string trace_jsonl;
  std::size_t detsan_violations = 0;
};

std::string format_user_log(const core::CondorGAgent& agent) {
  std::string out;
  for (const auto& event : agent.log().events()) {
    out += std::to_string(event.time) + " " + std::to_string(event.job_id) +
           " " + core::to_string(event.kind) + " " + event.detail + "\n";
  }
  return out;
}

/// The quickstart example in miniature: two sites, one agent, a batch of
/// grid-universe jobs, run to completion.
RunArtifacts run_quickstart(unsigned threads, bool trace) {
  sim::World::ScopedParallelOverride force(static_cast<int>(threads));
  det::take_violations();  // clean slate per run (process-global storage)
  det::set_enabled(true);

  cw::GridTestbed testbed(/*seed=*/2001);
  sim::Simulation& s = testbed.world().sim();
  if (trace) s.tracer().set_enabled(true);

  cw::SiteSpec pbs;
  pbs.name = "pbs.anl.gov";
  pbs.kind = cw::SiteKind::kPbs;
  pbs.cpus = 4;
  testbed.add_site(pbs);
  cw::SiteSpec lsf;
  lsf.name = "lsf.ncsa.edu";
  lsf.kind = cw::SiteKind::kLsf;
  lsf.cpus = 2;
  testbed.add_site(lsf);

  testbed.add_submit_host("desktop.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "desktop.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "render_frame";
    job.runtime_seconds = 600 + 60 * i;
    job.output_size = 1 << 20;
    ids.push_back(agent.submit(job));
  }
  while (!agent.schedd().all_terminal() && testbed.world().now() < 24 * 3600.0) {
    s.run_until(testbed.world().now() + 300.0);
  }

  RunArtifacts a;
  a.digest = s.trace_digest();
  a.dispatched = s.dispatched();
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted) ++a.completed;
  }
  a.user_log = format_user_log(agent);
  if (trace) a.trace_jsonl = s.tracer().to_jsonl();
  a.detsan_violations = det::take_violations().size();
  det::set_enabled(false);
  return a;
}

/// The fault_drill example in miniature: a front-end crash, a partition
/// window, and a submit-host crash while jobs are in flight.
RunArtifacts run_fault_drill(unsigned threads) {
  sim::World::ScopedParallelOverride force(static_cast<int>(threads));
  det::take_violations();
  det::set_enabled(true);

  cw::GridTestbed testbed(/*seed=*/4242);
  sim::Simulation& s = testbed.world().sim();

  cw::SiteSpec a_spec;
  a_spec.name = "pbs.anl.gov";
  a_spec.kind = cw::SiteKind::kPbs;
  a_spec.cpus = 2;
  testbed.add_site(a_spec);
  cw::SiteSpec b_spec;
  b_spec.name = "lsf.ncsa.edu";
  b_spec.kind = cw::SiteKind::kLsf;
  b_spec.cpus = 2;
  testbed.add_site(b_spec);

  testbed.add_submit_host("submit.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "drill";
    job.runtime_seconds = 900 + 90 * i;
    ids.push_back(agent.submit(job));
  }

  s.run_until(1800.0);
  testbed.site(1).frontend->crash_for(1200.0);
  s.run_until(4000.0);
  testbed.world().net().set_partitioned("submit.wisc.edu", "pbs.anl.gov",
                                        true);
  s.schedule_at(4600.0, [&testbed] {
    testbed.world().net().set_partitioned("submit.wisc.edu", "pbs.anl.gov",
                                          false);
  });
  s.run_until(6000.0);
  agent.host().crash_for(600.0);
  while (!agent.schedd().all_terminal() && testbed.world().now() < 24 * 3600.0) {
    s.run_until(testbed.world().now() + 600.0);
  }

  RunArtifacts out;
  out.digest = s.trace_digest();
  out.dispatched = s.dispatched();
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted)
      ++out.completed;
  }
  out.user_log = format_user_log(agent);
  out.detsan_violations = det::take_violations().size();
  det::set_enabled(false);
  return out;
}

TEST(ParallelDigest, QuickstartByteIdenticalAcrossThreadCounts) {
  const RunArtifacts base = run_quickstart(kThreadCounts[0], /*trace=*/false);
  EXPECT_GT(base.completed, 0);
  EXPECT_EQ(base.detsan_violations, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const RunArtifacts a = run_quickstart(kThreadCounts[i], /*trace=*/false);
    EXPECT_EQ(a.digest, base.digest) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.dispatched, base.dispatched) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.completed, base.completed) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.user_log, base.user_log) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.detsan_violations, 0u) << "N=" << kThreadCounts[i];
  }
}

TEST(ParallelDigest, TracerJsonlByteIdenticalAcrossThreadCounts) {
  const RunArtifacts base = run_quickstart(1, /*trace=*/true);
  ASSERT_FALSE(base.trace_jsonl.empty());
  const RunArtifacts wide = run_quickstart(8, /*trace=*/true);
  EXPECT_EQ(wide.trace_jsonl, base.trace_jsonl);
  EXPECT_EQ(wide.digest, base.digest);
}

// The tracer arms the strict (single-threaded, global key order) executor;
// without it the windowed executor runs. Equal digests prove the two
// executors commit the same event stream — the core §15 claim.
TEST(ParallelDigest, StrictExecutorMatchesWindowedExecutor) {
  const RunArtifacts windows = run_quickstart(4, /*trace=*/false);
  const RunArtifacts strict = run_quickstart(4, /*trace=*/true);
  EXPECT_EQ(strict.digest, windows.digest);
  EXPECT_EQ(strict.dispatched, windows.dispatched);
  EXPECT_EQ(strict.user_log, windows.user_log);
}

TEST(ParallelDigest, FaultDrillByteIdenticalAcrossThreadCounts) {
  const RunArtifacts base = run_fault_drill(kThreadCounts[0]);
  EXPECT_EQ(base.detsan_violations, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const RunArtifacts a = run_fault_drill(kThreadCounts[i]);
    EXPECT_EQ(a.digest, base.digest) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.dispatched, base.dispatched) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.user_log, base.user_log) << "N=" << kThreadCounts[i];
    EXPECT_EQ(a.detsan_violations, 0u) << "N=" << kThreadCounts[i];
  }
}

struct ExploreArtifacts {
  std::size_t runs = 0;
  std::size_t distinct = 0;
  bool violation_found = false;
  std::string counterexample;
  std::vector<std::string> violations;
  std::uint64_t replay_digest = 0;
};

/// Explore the mutated quickstart scenario (broken gatekeeper dedup) under
/// an ambient CONDORG_PARALLEL override, then replay the counterexample.
/// The scenario itself pins legacy mode (exploration is controller-driven),
/// so nothing here may vary with `threads`.
ExploreArtifacts explore_mutated_quickstart(unsigned threads) {
  sim::World::ScopedParallelOverride ambient(static_cast<int>(threads));
  ::setenv("CONDORG_MUTATE_DEDUP", "1", 1);
  sim::Explorer::Config config;
  config.oracle.max_choice_points = 12;
  config.max_schedules = 400;
  sim::Explorer explorer("quickstart",
                         cw::make_explore_scenario("quickstart"), config);
  const sim::Explorer::Result result = explorer.explore();
  ExploreArtifacts out;
  out.runs = result.runs;
  out.distinct = result.distinct_schedules;
  out.violation_found = result.violation_found;
  out.violations = result.violations;
  if (result.violation_found) {
    out.counterexample = result.counterexample.serialize();
    out.replay_digest = explorer.replay(result.counterexample).trace_digest;
  }
  ::unsetenv("CONDORG_MUTATE_DEDUP");
  return out;
}

TEST(ParallelDigest, ExplorerCounterexampleStableUnderParallelEnv) {
  const ExploreArtifacts base = explore_mutated_quickstart(1);
  ASSERT_TRUE(base.violation_found);
  const ExploreArtifacts wide = explore_mutated_quickstart(8);
  EXPECT_EQ(wide.runs, base.runs);
  EXPECT_EQ(wide.distinct, base.distinct);
  EXPECT_EQ(wide.counterexample, base.counterexample);
  EXPECT_EQ(wide.violations, base.violations);
  EXPECT_EQ(wide.replay_digest, base.replay_digest);
}

}  // namespace
