#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "condorg/sim/explorer.h"
#include "condorg/sim/host.h"
#include "condorg/sim/schedule_controller.h"
#include "condorg/sim/simulation.h"
#include "condorg/workloads/explore_scenarios.h"

namespace cs = condorg::sim;
namespace cw = condorg::workloads;

namespace {

/// Scoped environment variable for the mutation self-tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// Controller that always picks the last live candidate in a bucket —
/// the exact reverse of the kernel's FIFO default.
class PickLast : public cs::ScheduleController {
 public:
  std::size_t pick_event(cs::Time, std::size_t count) override {
    return count - 1;
  }
  bool inject_crash(const std::string&, const char*, double*) override {
    return false;
  }
};

/// Controller that crashes a specific host at a specific named point.
class CrashAt : public cs::ScheduleController {
 public:
  explicit CrashAt(std::string point) : point_(std::move(point)) {}

  std::size_t pick_event(cs::Time, std::size_t) override { return 0; }
  bool inject_crash(const std::string&, const char* point,
                    double* downtime) override {
    if (point_ != point) return false;
    *downtime = 5.0;
    ++fired_;
    return true;
  }

  int fired() const { return fired_; }

 private:
  std::string point_;
  int fired_ = 0;
};

}  // namespace

// ---------- ScheduleController kernel hook ----------

TEST(ScheduleController, PickLastReversesSameTimeOrder) {
  cs::Simulation sim;
  PickLast controller;
  sim.set_controller(&controller);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(ScheduleController, DefaultPickMatchesFifoDigest) {
  auto build = [](cs::Simulation& sim, cs::ScheduleController* controller) {
    sim.set_controller(controller);
    for (int i = 0; i < 8; ++i) {
      sim.schedule_at(1.0 + 0.5 * (i % 3), [] {});
    }
    sim.run();
    return sim.trace_digest();
  };
  // A controller that always answers 0 reproduces FIFO byte-for-byte.
  class PickFirst : public cs::ScheduleController {
   public:
    std::size_t pick_event(cs::Time, std::size_t) override { return 0; }
    bool inject_crash(const std::string&, const char*, double*) override {
      return false;
    }
  };
  cs::Simulation plain;
  cs::Simulation controlled;
  PickFirst first;
  EXPECT_EQ(build(plain, nullptr), build(controlled, &first));
}

TEST(ScheduleController, CancelledEventsAreNotCandidates) {
  cs::Simulation sim;
  PickLast controller;
  sim.set_controller(&controller);
  std::vector<int> order;
  std::vector<cs::EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sim.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  }
  sim.cancel(ids[3]);  // "last" must now mean the last *live* event
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(CrashPoint, NoControllerIsNoOp) {
  cs::Simulation sim;
  cs::Host host(sim, "h");
  EXPECT_FALSE(host.crash_point("any.point"));
  EXPECT_TRUE(host.alive());
}

TEST(CrashPoint, ControllerCrashIsScheduledNotInline) {
  cs::Simulation sim;
  CrashAt controller("daemon.step");
  sim.set_controller(&controller);
  cs::Host host(sim, "h");
  bool crashed_inline = false;
  sim.schedule_at(1.0, [&] {
    EXPECT_FALSE(host.crash_point("daemon.other_step"));
    EXPECT_TRUE(host.crash_point("daemon.step"));
    // The crash is a separate event: the host is still up right here.
    crashed_inline = !host.alive();
  });
  const cs::Epoch before = host.epoch();
  sim.run_until(2.0);
  EXPECT_FALSE(crashed_inline);
  EXPECT_FALSE(host.alive());
  EXPECT_EQ(controller.fired(), 1);
  sim.run_until(10.0);  // downtime was 5s
  EXPECT_TRUE(host.alive());
  EXPECT_GT(host.epoch(), before);
}

TEST(CrashPoint, DeadHostDoesNotReCrash) {
  cs::Simulation sim;
  CrashAt controller("daemon.step");
  sim.set_controller(&controller);
  cs::Host host(sim, "h");
  host.crash();
  EXPECT_FALSE(host.crash_point("daemon.step"));
  EXPECT_EQ(controller.fired(), 0);
}

// ---------- ScheduleTrace ----------

TEST(ScheduleTrace, SerializeParseRoundTrip) {
  cs::ScheduleTrace trace;
  trace.scenario = "quickstart";
  trace.seed = 42;
  trace.choices.push_back({cs::ExploreChoice::Kind::kEvent, 2, 3,
                           0x1234abcd5678ef90ull});
  trace.choices.push_back({cs::ExploreChoice::Kind::kCrash, 1, 2, 0});
  trace.choices.push_back({cs::ExploreChoice::Kind::kEvent, 0, 5,
                           ~0ull});

  const std::string text = trace.serialize();
  cs::ScheduleTrace parsed;
  ASSERT_TRUE(cs::ScheduleTrace::parse(text, &parsed));
  EXPECT_EQ(parsed.scenario, trace.scenario);
  EXPECT_EQ(parsed.seed, trace.seed);
  EXPECT_EQ(parsed.choices, trace.choices);
  // And the round trip is a fixed point of serialization.
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(ScheduleTrace, ParseRejectsGarbage) {
  cs::ScheduleTrace out;
  EXPECT_FALSE(cs::ScheduleTrace::parse("", &out));
  EXPECT_FALSE(cs::ScheduleTrace::parse("not a trace\n", &out));
  EXPECT_FALSE(cs::ScheduleTrace::parse(
      "condorg-explore-trace v1\nscenario q\nseed 1\nchoice bogus 0 1 0\n"
      "end\n",
      &out));
  // Truncated: no "end" terminator.
  EXPECT_FALSE(cs::ScheduleTrace::parse(
      "condorg-explore-trace v1\nscenario q\nseed 1\n", &out));
}

// ---------- ScheduleOracle ----------

TEST(ScheduleOracle, ForcedPrefixThenDefaults) {
  cs::ScheduleOracle::Config config;
  config.max_branch = 4;
  std::vector<cs::ExploreChoice> forced;
  forced.push_back({cs::ExploreChoice::Kind::kEvent, 2, 3, 0});
  cs::ScheduleOracle oracle(config, forced);
  EXPECT_EQ(oracle.pick_event(1.0, 3), 2u);  // forced
  EXPECT_EQ(oracle.pick_event(1.0, 3), 0u);  // past the prefix: default
  ASSERT_EQ(oracle.record().size(), 2u);
  EXPECT_EQ(oracle.record()[0].chosen, 2u);
  EXPECT_EQ(oracle.record()[1].chosen, 0u);
  EXPECT_EQ(oracle.record()[1].alternatives, 3u);
}

TEST(ScheduleOracle, CrashBudgetIsEnforced) {
  cs::ScheduleOracle::Config config;
  config.crash_budget = 1;
  std::vector<cs::ExploreChoice> forced;
  forced.push_back({cs::ExploreChoice::Kind::kCrash, 1, 2, 0});
  forced.push_back({cs::ExploreChoice::Kind::kCrash, 1, 2, 0});
  cs::ScheduleOracle oracle(config, forced);
  double downtime = 0.0;
  EXPECT_TRUE(oracle.inject_crash("h", "p", &downtime));
  EXPECT_GT(downtime, 0.0);
  // Budget spent: further requests refuse even with a forced "crash".
  EXPECT_FALSE(oracle.inject_crash("h", "p", &downtime));
  EXPECT_EQ(oracle.crashes_injected(), 1u);
}

TEST(ScheduleOracle, UnknownCrashPointIsRecorded) {
  // kEnumeratedCrashPoints is the explorer's fault-coverage ground truth:
  // binary_search needs it sorted, and any point offered from code that is
  // missing from it must surface (once) through unknown_points().
  EXPECT_TRUE(std::is_sorted(cs::enumerated_crash_points().begin(),
                             cs::enumerated_crash_points().end()));
  cs::ScheduleOracle::Config config;
  cs::ScheduleOracle oracle(config, {});
  double downtime = 0.0;
  oracle.inject_crash("h", "jobmanager.commit_recv", &downtime);
  oracle.inject_crash("h", "not.in.table", &downtime);
  oracle.inject_crash("h", "not.in.table", &downtime);
  ASSERT_EQ(oracle.unknown_points().size(), 1u);
  EXPECT_EQ(oracle.unknown_points()[0], "not.in.table");
}

TEST(ScheduleOracle, ChoicePointBudgetStopsRecording) {
  cs::ScheduleOracle::Config config;
  config.max_choice_points = 2;
  cs::ScheduleOracle oracle(config, {});
  oracle.pick_event(1.0, 3);
  oracle.pick_event(2.0, 3);
  oracle.pick_event(3.0, 3);  // over budget: unrecorded default
  EXPECT_EQ(oracle.record().size(), 2u);
}

// ---------- Explorer end to end ----------

namespace {

cs::Explorer::Config small_quickstart_config() {
  cs::Explorer::Config config;
  config.oracle.max_choice_points = 10;
  config.oracle.max_branch = 2;
  config.oracle.crash_budget = 1;
  config.max_schedules = 400;
  return config;
}

}  // namespace

TEST(Explorer, QuickstartSmallBudgetIsCleanAndExhausts) {
  cs::Explorer explorer("quickstart", cw::make_explore_scenario("quickstart"),
                        small_quickstart_config());
  const cs::Explorer::Result result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << (result.violations.empty()
                                               ? ""
                                               : result.violations.front());
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.distinct_schedules, 10u);
  EXPECT_LE(result.runs, 400u);
}

TEST(Explorer, ReplayOfDefaultScheduleIsDeterministic) {
  cs::ScheduleTrace empty;
  empty.scenario = "quickstart";
  cs::Explorer explorer("quickstart", cw::make_explore_scenario("quickstart"),
                        small_quickstart_config());
  const cs::RunOutcome a = explorer.replay(empty);
  const cs::RunOutcome b = explorer.replay(empty);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_TRUE(a.violations.empty());
}

TEST(Explorer, MutatedDedupYieldsReplayableCounterexample) {
  ScopedEnv mutate("CONDORG_MUTATE_DEDUP", "1");
  cs::Explorer::Config config;  // full default budgets, as the CLI uses
  cs::Explorer explorer("quickstart", cw::make_explore_scenario("quickstart"),
                        config);
  const cs::Explorer::Result result = explorer.explore();
  ASSERT_TRUE(result.violation_found)
      << "explorer failed to catch the broken dedup";
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("two job records"),
            std::string::npos);

  // Satellite: the counterexample file round-trips through serialize/parse
  // and replay() reproduces the identical failing audit, byte for byte.
  const std::string text = result.counterexample.serialize();
  cs::ScheduleTrace parsed;
  ASSERT_TRUE(cs::ScheduleTrace::parse(text, &parsed));
  const cs::RunOutcome replayed = explorer.replay(parsed);
  EXPECT_EQ(replayed.violations, result.violations);

  // Replay twice: the counterexample is stable, not a heisenbug.
  const cs::RunOutcome again = explorer.replay(parsed);
  EXPECT_EQ(again.violations, replayed.violations);
  EXPECT_EQ(again.trace_digest, replayed.trace_digest);
}

TEST(Explorer, CrossHostMutationYieldsReplayableDetsanCounterexample) {
  ScopedEnv mutate("CONDORG_MUTATE_CROSS_HOST", "1");
  cs::Explorer explorer("quickstart", cw::make_explore_scenario("quickstart"),
                        small_quickstart_config());
  const cs::Explorer::Result result = explorer.explore();
  ASSERT_TRUE(result.violation_found)
      << "DetSan failed to catch the seeded cross-host access";
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("detsan"), std::string::npos);
  EXPECT_NE(result.violations.front().find("schedd.status_counts"),
            std::string::npos);

  // The ownership violation replays byte-for-byte through the serialized
  // counterexample, like any protocol-invariant violation.
  const std::string text = result.counterexample.serialize();
  cs::ScheduleTrace parsed;
  ASSERT_TRUE(cs::ScheduleTrace::parse(text, &parsed));
  const cs::RunOutcome replayed = explorer.replay(parsed);
  EXPECT_EQ(replayed.violations, result.violations);
}

TEST(Explorer, HealthyDedupSurvivesTheCounterexampleSchedule) {
  // Find a counterexample under the mutation...
  cs::ScheduleTrace counterexample;
  {
    ScopedEnv mutate("CONDORG_MUTATE_DEDUP", "1");
    cs::Explorer::Config config;
    cs::Explorer explorer("quickstart",
                          cw::make_explore_scenario("quickstart"), config);
    const cs::Explorer::Result result = explorer.explore();
    ASSERT_TRUE(result.violation_found);
    counterexample = result.counterexample;
  }
  // ...then replay the very same hostile schedule against the real
  // gatekeeper: the dedup guard must hold.
  cs::Explorer explorer("quickstart", cw::make_explore_scenario("quickstart"),
                        small_quickstart_config());
  const cs::RunOutcome outcome = explorer.replay(counterexample);
  EXPECT_TRUE(outcome.violations.empty())
      << outcome.violations.front();
}
