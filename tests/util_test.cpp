#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "condorg/util/rng.h"
#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"

namespace cu = condorg::util;

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  cu::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  cu::Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  for (const auto v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, RangeInclusive) {
  cu::Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  cu::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximate) {
  cu::Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMomentsApproximate) {
  cu::Rng rng(23);
  cu::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, HeavyTailedMeanApproximate) {
  cu::Rng rng(29);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.heavy_tailed(100.0, 2.5);
  EXPECT_NEAR(sum / n / 100.0, 1.0, 0.1);
}

TEST(Rng, SplitIsStableAndIndependent) {
  cu::Rng parent(99);
  cu::Rng a1 = parent.split("gram");
  // Drawing from the parent must not change what split() yields.
  for (int i = 0; i < 10; ++i) parent();
  cu::Rng a2 = parent.split("gram");
  EXPECT_EQ(a1(), a2());

  cu::Rng b = parent.split("gass");
  cu::Rng a3 = parent.split("gram");
  a3();  // consume the value a1/a2 compared
  EXPECT_NE(a3(), b());
}

TEST(Fnv1a, KnownAndDistinct) {
  constexpr auto h1 = cu::fnv1a("condor-g");
  constexpr auto h2 = cu::fnv1a("condor-h");
  static_assert(h1 != h2);
  EXPECT_NE(cu::fnv1a("a"), cu::fnv1a("b"));
  EXPECT_EQ(cu::fnv1a(""), 0xcbf29ce484222325ull);
}

TEST(Fnv1a, MixOrderSensitive) {
  EXPECT_NE(cu::fnv1a_mix(1, 2), cu::fnv1a_mix(2, 1));
}

// ---------- strings ----------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = cu::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingle) {
  const auto parts = cu::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(cu::join(parts, "::"), "x::y::z");
  EXPECT_EQ(cu::join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(cu::trim("  hi \t\n"), "hi");
  EXPECT_EQ(cu::trim(""), "");
  EXPECT_EQ(cu::trim("   "), "");
  EXPECT_EQ(cu::trim("x"), "x");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(cu::iequals("Requirements", "requirements"));
  EXPECT_TRUE(cu::iequals("", ""));
  EXPECT_FALSE(cu::iequals("abc", "abd"));
  EXPECT_FALSE(cu::iequals("abc", "ab"));
}

TEST(Strings, Affixes) {
  EXPECT_TRUE(cu::starts_with("gram.submit", "gram."));
  EXPECT_FALSE(cu::starts_with("gram", "gram."));
  EXPECT_TRUE(cu::ends_with("job.log", ".log"));
  EXPECT_FALSE(cu::ends_with("log", "job.log"));
}

TEST(Strings, Format) {
  EXPECT_EQ(cu::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(cu::format("%.2f", 1.005), "1.00");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(cu::format_duration(0), "00:00:00");
  EXPECT_EQ(cu::format_duration(3661), "01:01:01");
  EXPECT_EQ(cu::format_duration(90061), "1d 01:01:01");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(cu::format_bytes(512), "512.0 B");
  EXPECT_EQ(cu::format_bytes(2048), "2.0 KB");
  EXPECT_EQ(cu::format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

// ---------- stats ----------

TEST(Summary, Basic) {
  cu::Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, MergeMatchesCombined) {
  cu::Rng rng(31);
  cu::Summary a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0, 1);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, Percentiles) {
  cu::Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Samples, EmptySafe) {
  cu::Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(TimeWeightedGauge, AverageAndPeak) {
  cu::TimeWeightedGauge g(0.0);
  g.set(0.0, 2.0);   // 2 over [0,10)
  g.set(10.0, 6.0);  // 6 over [10,20)
  EXPECT_DOUBLE_EQ(g.peak(), 6.0);
  EXPECT_DOUBLE_EQ(g.average(20.0), (2.0 * 10 + 6.0 * 10) / 20.0);
  EXPECT_DOUBLE_EQ(g.integral(20.0), 80.0);
}

TEST(TimeWeightedGauge, AddDelta) {
  cu::TimeWeightedGauge g(0.0);
  g.add(0.0, 3.0);
  g.add(5.0, -1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.integral(10.0), 3.0 * 5 + 2.0 * 5);
}

TEST(TimeWeightedGauge, ZeroLengthWindowIsCurrentValue) {
  // average() at (or before) the construction time must not divide by zero;
  // it degenerates to the current value.
  cu::TimeWeightedGauge g(100.0);
  g.set(100.0, 4.0);
  EXPECT_DOUBLE_EQ(g.average(100.0), 4.0);
  EXPECT_DOUBLE_EQ(g.average(50.0), 4.0);  // window clamped, not negative
  EXPECT_DOUBLE_EQ(g.integral(100.0), 0.0);
}

TEST(TimeWeightedGauge, OutOfOrderUpdatesNeverShrinkIntegral) {
  cu::TimeWeightedGauge g(0.0);
  g.set(10.0, 5.0);
  const double before = g.integral(10.0);
  g.set(4.0, 1.0);  // stale sample: rewrites value, leaves area alone
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_GE(g.integral(10.0), before);
  // The integral keeps growing from the *latest* sample time only.
  EXPECT_DOUBLE_EQ(g.integral(20.0), before + 1.0 * 10.0);
}

TEST(TimeWeightedGauge, AverageBeforeLastSampleClampsWindow) {
  cu::TimeWeightedGauge g(0.0);
  g.set(0.0, 2.0);
  g.set(10.0, 0.0);
  // end_time inside the recorded window: clamp to last sample, so the
  // average is area / observed-span, not area / (too-short span).
  EXPECT_DOUBLE_EQ(g.average(5.0), 20.0 / 10.0);
  EXPECT_DOUBLE_EQ(g.average(10.0), 2.0);
}

TEST(Histogram, BucketsAndOverflow) {
  cu::Histogram h(0.0, 10.0, 5);
  h.add(-1);       // underflow
  h.add(0.0);      // bucket 0
  h.add(1.99);     // bucket 0
  h.add(5.0);      // bucket 2
  h.add(10.0);     // overflow (hi is exclusive)
  h.add(100.0);    // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

// ---------- table ----------

TEST(Table, RendersAligned) {
  cu::Table t({"metric", "paper", "measured"});
  t.add_row({"cpu-hours", "95000", "94211.5"});
  t.add_separator();
  t.add_row({"avg cpus", "653", "640"});
  const std::string out = t.render("E1");
  EXPECT_NE(out.find("cpu-hours"), std::string::npos);
  EXPECT_NE(out.find("=== E1 ==="), std::string::npos);
  // All non-title lines must have equal width.
  const auto lines = cu::split(out, '\n');
  std::size_t width = 0;
  for (const auto& line : lines) {
    if (line.empty() || line[0] == '=' || line[0] == '\0') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, PadsShortRows) {
  cu::Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("only"), std::string::npos);
}
