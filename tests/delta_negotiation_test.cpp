// Sharded Collector views + incremental (delta) negotiation.
//
// The Collector half pins the delta-subscription contract: every content
// change appends to the bounded log under a monotone sequence, identical
// re-publishes are checksum no-ops, truncation and restarts force a resync.
// The PoolNegotiator half pins delta-negotiation *soundness*: with the
// anti-entropy sweep running every cycle, the delta-restricted matcher must
// stay byte-equivalent to the retained full-requery reference across
// randomized churn — zero recorded divergences.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "condorg/classad/parser.h"
#include "condorg/condor/collector.h"
#include "condorg/condor/pool_negotiator.h"
#include "condorg/sim/world.h"

namespace ca = condorg::classad;
namespace cc = condorg::condor;
namespace cs = condorg::sim;

namespace {

struct CentralFixture : public ::testing::Test {
  CentralFixture()
      : central(world.add_host("cm.grid")),
        feeder(world.add_host("feeder.grid")),
        collector(central, world.net()) {}

  void send(const std::string& type, cs::Payload body) {
    cs::Message message;
    message.from = {feeder.name(), "test"};
    message.to = collector.address();
    message.type = type;
    message.body = std::move(body);
    world.net().send(std::move(message));
  }

  void advertise(const std::string& name, const std::string& ad_text,
                 double ttl = 900.0) {
    cs::Payload body;
    body.set("name", name);
    body.set("ad", ad_text);
    body.set_double("ttl", ttl);
    send("collector.advertise", std::move(body));
  }

  void invalidate(const std::string& name) {
    cs::Payload body;
    body.set("name", name);
    send("collector.invalidate", std::move(body));
  }

  void settle() { world.sim().run_until(world.now() + 1.0); }

  static std::string machine_ad(const std::string& name, int memory,
                                const std::string& state = "Unclaimed") {
    return "[Name = \"" + name + "\"; MyAddress = \"node.grid/startd\"; " +
           "State = \"" + state + "\"; Memory = " + std::to_string(memory) +
           "]";
  }

  static std::string job_ad(const std::string& name, const std::string& user,
                            int image = 64) {
    return "[Name = \"" + name + "\"; JobUniverse = \"Vanilla\"; " +
           "JobStatus = \"Idle\"; User = \"" + user + "\"; " +
           "MyAddress = \"" + user + ".grid/pool_runner\"; " +
           "ImageSize = " + std::to_string(image) + "; " +
           "Requirements = other.State == \"Unclaimed\"]";
  }

  cs::World world{11};
  cs::Host& central;
  cs::Host& feeder;
  cc::Collector collector;
};

TEST_F(CentralFixture, ShardedViewsTrackAdKinds) {
  advertise("m1", machine_ad("m1", 512));
  advertise("m2", machine_ad("m2", 256, "Claimed"));
  advertise("ada#job1", job_ad("ada#job1", "ada"));
  settle();

  EXPECT_EQ(collector.live_count(), 3u);
  const std::vector<std::string> shards = collector.shard_names();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], "job/Vanilla/Idle");
  EXPECT_EQ(shards[1], "machine/Claimed");
  EXPECT_EQ(shards[2], "machine/Unclaimed");
  EXPECT_EQ(collector.shard_size("job/Vanilla/Idle"), 1u);
  EXPECT_EQ(collector.shard_size("machine/Unclaimed"), 1u);
  EXPECT_EQ(collector.query_shard("machine/Unclaimed").size(), 1u);

  // A state change moves the ad between shards.
  advertise("m1", machine_ad("m1", 512, "Claimed"));
  settle();
  EXPECT_EQ(collector.shard_size("machine/Unclaimed"), 0u);
  EXPECT_EQ(collector.shard_size("machine/Claimed"), 2u);
}

TEST_F(CentralFixture, DeltaLogReplaysChangesAndTombstones) {
  // Settle between sends: WAN jitter may reorder messages in flight, and
  // this test pins the exact log order.
  advertise("m1", machine_ad("m1", 512));
  settle();
  advertise("m2", machine_ad("m2", 256));
  settle();
  invalidate("m1");
  settle();

  EXPECT_EQ(collector.change_seq(), 3u);
  std::vector<cc::Collector::Delta> deltas;
  ASSERT_TRUE(collector.query_delta(0, deltas));
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0].name, "m1");
  EXPECT_EQ(deltas[0].seq, 1u);
  ASSERT_NE(deltas[0].ad, nullptr);
  EXPECT_NE(deltas[0].checksum, 0u);
  EXPECT_EQ(deltas[2].name, "m1");
  EXPECT_EQ(deltas[2].ad, nullptr);  // tombstone
  EXPECT_EQ(deltas[2].checksum, 0u);

  // Caught-up subscriber: true, nothing to replay.
  deltas.clear();
  EXPECT_TRUE(collector.query_delta(collector.change_seq(), deltas));
  EXPECT_TRUE(deltas.empty());

  // Partial replay from the middle.
  deltas.clear();
  ASSERT_TRUE(collector.query_delta(1, deltas));
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].name, "m2");
}

TEST_F(CentralFixture, IdenticalRepublishIsANoopButRefreshesTtl) {
  advertise("m1", machine_ad("m1", 512), /*ttl=*/100.0);
  settle();
  const std::uint64_t seq = collector.change_seq();

  world.sim().run_until(50.0);
  advertise("m1", machine_ad("m1", 512), /*ttl=*/100.0);
  settle();

  EXPECT_EQ(collector.change_seq(), seq) << "no-op must not bump the seq";
  EXPECT_EQ(collector.noop_updates(), 1u);

  // Alive past the original deadline (lease was refreshed)...
  world.sim().run_until(120.0);
  EXPECT_EQ(collector.live_count(), 1u);
  // ...gone after the refreshed one, with a tombstone delta.
  world.sim().run_until(200.0);
  EXPECT_EQ(collector.live_count(), 0u);
  std::vector<cc::Collector::Delta> deltas;
  ASSERT_TRUE(collector.query_delta(seq, deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].ad, nullptr);
}

TEST_F(CentralFixture, TruncatedLogForcesResync) {
  // Blast enough content-distinct changes through one name to overflow the
  // bounded log; a subscriber still at the beginning can no longer be
  // served and must fall back to a full read.
  for (int i = 0; i < 9000; ++i) {
    advertise("m1", machine_ad("m1", i + 1));
  }
  settle();
  EXPECT_EQ(collector.change_seq(), 9000u);

  std::vector<cc::Collector::Delta> deltas;
  EXPECT_FALSE(collector.query_delta(0, deltas));
  EXPECT_TRUE(deltas.empty());
  // The recent tail is still servable.
  EXPECT_TRUE(collector.query_delta(collector.change_seq() - 1, deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].seq, 9000u);
}

TEST_F(CentralFixture, RestartResetsTheSequence) {
  advertise("m1", machine_ad("m1", 512));
  advertise("m2", machine_ad("m2", 256));
  settle();
  const std::uint64_t old_seq = collector.change_seq();
  ASSERT_EQ(old_seq, 2u);

  central.crash_for(10.0);
  world.sim().run_until(world.now() + 20.0);

  // Ads and log died with the host; the sequence restarted from zero, so a
  // subscriber holding a pre-crash sequence learns it must resync.
  EXPECT_EQ(collector.change_seq(), 0u);
  EXPECT_EQ(collector.live_count(), 0u);
  std::vector<cc::Collector::Delta> deltas;
  EXPECT_FALSE(collector.query_delta(old_seq, deltas));
  EXPECT_TRUE(collector.query_delta(0, deltas));
}

struct NegotiatorFixture : public CentralFixture {
  NegotiatorFixture() : negotiator(central, world.net(), collector, opts()) {}

  static cc::PoolNegotiatorOptions opts() {
    cc::PoolNegotiatorOptions options;
    options.full_sweep_every = 1;  // audit every single cycle
    options.hold_timeout = 30.0;
    return options;
  }

  cc::PoolNegotiator negotiator;
};

TEST_F(NegotiatorFixture, MatchesJobToSlotAndHoldsBothSides) {
  advertise("m1", machine_ad("m1", 512));
  advertise("ada#job1", job_ad("ada#job1", "ada"));
  settle();

  EXPECT_EQ(negotiator.negotiate_once(), 1u);
  EXPECT_EQ(negotiator.mirror_size(), 2u);
  EXPECT_EQ(negotiator.matches_made(), 1u);
  EXPECT_EQ(negotiator.matched_by_user().at("ada"), 1u);
  EXPECT_EQ(negotiator.divergences(), 0u);

  // Both sides are on hold: an immediate re-negotiation matches nothing.
  EXPECT_EQ(negotiator.negotiate_once(), 0u);
  EXPECT_EQ(negotiator.divergences(), 0u);
}

TEST_F(CentralFixture, QuiescentCyclesAreSkipped) {
  cc::PoolNegotiatorOptions options;
  options.full_sweep_every = 0;  // no sweeps: pure delta path
  cc::PoolNegotiator quiet(central, world.net(), collector, options);

  advertise("m1", machine_ad("m1", 512));
  settle();
  EXPECT_EQ(quiet.negotiate_once(), 0u);
  EXPECT_EQ(quiet.skipped_cycles(), 0u);  // the advertise was a change

  // Nothing moved since: the cycle is a constant-time skip.
  EXPECT_EQ(quiet.negotiate_once(), 0u);
  EXPECT_EQ(quiet.negotiate_once(), 0u);
  EXPECT_EQ(quiet.skipped_cycles(), 2u);
}

TEST_F(NegotiatorFixture, LapsedHoldReentersNegotiation) {
  advertise("m1", machine_ad("m1", 512));
  advertise("ada#job1", job_ad("ada#job1", "ada"));
  settle();
  EXPECT_EQ(negotiator.negotiate_once(), 1u);

  // No claim ever lands (there is no runner in this world); once the hold
  // lapses both sides re-enter as changed and match again.
  world.sim().run_until(world.now() + 60.0);
  EXPECT_EQ(negotiator.negotiate_once(), 1u);
  EXPECT_EQ(negotiator.matches_made(), 2u);
  EXPECT_EQ(negotiator.divergences(), 0u);
}

TEST_F(NegotiatorFixture, FairShareRotatesUsersAcrossRounds) {
  advertise("m1", machine_ad("m1", 512));
  advertise("ada#job1", job_ad("ada#job1", "ada"));
  advertise("bob#job1", job_ad("bob#job1", "bob"));
  settle();

  // One slot, two users: equal usage, so the name tie-break gives ada the
  // first round and the charge hands bob the second.
  EXPECT_EQ(negotiator.negotiate_once(), 1u);
  EXPECT_EQ(negotiator.matched_by_user().at("ada"), 1u);

  world.sim().run_until(world.now() + 60.0);  // lapse the holds
  EXPECT_EQ(negotiator.negotiate_once(), 1u);
  EXPECT_EQ(negotiator.matched_by_user().at("bob"), 1u);
  EXPECT_EQ(negotiator.divergences(), 0u);
  std::vector<std::string> audit;
  negotiator.audit(audit);
  EXPECT_TRUE(audit.empty());
}

TEST_F(NegotiatorFixture, TruncationTriggersFullResync) {
  advertise("m1", machine_ad("m1", 512));
  settle();
  EXPECT_EQ(negotiator.negotiate_once(), 0u);
  EXPECT_EQ(negotiator.full_resyncs(), 0u);  // the log serves from zero

  for (int i = 0; i < 9000; ++i) {
    advertise("hot", machine_ad("hot", i + 1));
  }
  settle();
  EXPECT_EQ(negotiator.negotiate_once(), 0u);
  EXPECT_EQ(negotiator.full_resyncs(), 1u);
  EXPECT_EQ(negotiator.mirror_size(), 2u);
  EXPECT_EQ(negotiator.divergences(), 0u);
}

// The soundness gate: randomized churn (ads appearing, mutating, dying;
// jobs and machines mixed; holds lapsing mid-stream) with the anti-entropy
// sweep auditing *every* cycle. Any divergence between the delta-restricted
// matcher and the full-scan reference — or between the mirror and a full
// collector read — fails the test.
TEST_F(NegotiatorFixture, RandomizedChurnNeverDiverges) {
  std::mt19937 rng(2001);
  const char* users[] = {"ada", "bob", "eve"};
  for (int round = 0; round < 40; ++round) {
    const int churn = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < churn; ++i) {
      const int entity = static_cast<int>(rng() % 6);
      if (entity < 3) {  // machine m0..m2
        const std::string name = "m" + std::to_string(entity);
        if (rng() % 4 == 0) {
          invalidate(name);
        } else {
          advertise(name, machine_ad(name, 128 << (rng() % 4),
                                     rng() % 3 ? "Unclaimed" : "Claimed"));
        }
      } else {  // job ad for one of three users
        const std::string user = users[entity - 3];
        const std::string name = user + "#job1";
        if (rng() % 5 == 0) {
          invalidate(name);
        } else {
          advertise(name,
                    job_ad(name, user, 32 << (rng() % 3)));
        }
      }
    }
    settle();
    negotiator.negotiate_once();
    ASSERT_EQ(negotiator.divergences(), 0u) << "round " << round;
    // Let some holds lapse between rounds.
    world.sim().run_until(world.now() + (rng() % 2 ? 40.0 : 5.0));
  }
  EXPECT_GT(negotiator.matches_made(), 0u);
  EXPECT_EQ(negotiator.sweeps(), 40u);
  std::vector<std::string> audit;
  negotiator.audit(audit);
  EXPECT_TRUE(audit.empty());
}

}  // namespace
