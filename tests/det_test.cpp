// DetSan unit tests: HostLocal ownership checks, handoff, ScopedHost
// stamping/nesting, kernel stamp points (post/crash/restart), and the
// interplay with sim::Lifetime-fenced callbacks. These pin the sanitizer
// semantics the explorer's cross-host mutation test relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "condorg/sim/det.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/world.h"

namespace cs = condorg::sim;
namespace cd = condorg::det;

namespace {

// Every test runs with DetSan armed and a drained violation buffer, and
// restores the process-wide flag afterwards (it defaults on under
// -DCONDORG_DETSAN=ON builds, off otherwise).
class DetSanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = cd::enabled();
    (void)cd::take_violations();
    cd::set_enabled(true);
  }
  void TearDown() override {
    (void)cd::take_violations();
    cd::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(DetSanTest, OwnerAndNullContextAccessAreAllowed) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cd::HostLocal<int> counter(a, "test.counter", 7);

  // Driver code (no event context) may touch anything.
  EXPECT_EQ(cd::current_host(), nullptr);
  EXPECT_EQ(*counter, 7);
  counter = 8;

  // The owner's own events may too.
  a.post(1.0, [&] {
    EXPECT_EQ(cd::current_host(), &a);
    ++*counter;
  });
  world.sim().run();
  EXPECT_EQ(*counter, 9);
  EXPECT_EQ(cd::violation_count(), 0u);
}

TEST_F(DetSanTest, CrossHostEventAccessIsRecorded) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<int> counter(a, "test.counter", 0);

  b.post(2.0, [&] { (void)*counter; });
  world.sim().run();

  ASSERT_EQ(cd::violation_count(), 1u);
  const std::vector<cd::Violation> violations = cd::take_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].owner, "a.grid");
  EXPECT_EQ(violations[0].accessor, "b.grid");
  EXPECT_EQ(violations[0].label, "test.counter");
  EXPECT_DOUBLE_EQ(violations[0].when, 2.0);
  EXPECT_EQ(violations[0].format(),
            "t=2.000 detsan: host 'b.grid' accessed 'test.counter' "
            "owned by host 'a.grid'");
  // take_violations drained both the buffer and the count.
  EXPECT_EQ(cd::violation_count(), 0u);
}

TEST_F(DetSanTest, DisarmedAccessesAreNotRecorded) {
  cd::set_enabled(false);
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<int> counter(a, "test.counter", 0);

  b.post(1.0, [&] { ++*counter; });
  world.sim().run();
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(cd::violation_count(), 0u);
}

TEST_F(DetSanTest, HandoffMigratesOwnership) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<std::string> token(a, "test.token", "x");

  // Null context may hand off; afterwards b owns the state and a is the
  // trespasser.
  token.handoff(b);
  EXPECT_EQ(token.owner(), &b);

  b.post(1.0, [&] { *token += "b"; });
  a.post(2.0, [&] { *token += "a"; });
  world.sim().run();

  const std::vector<cd::Violation> violations = cd::take_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].accessor, "a.grid");
  EXPECT_EQ(violations[0].owner, "b.grid");
}

TEST_F(DetSanTest, ScopedHostNestsAndGrantsNullPrivilege) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<int> counter(a, "test.counter", 0);

  b.post(1.0, [&] {
    EXPECT_EQ(cd::current_host(), &b);
    {
      // Privileged section, as used by the explorer's state probe.
      cd::ScopedHost privileged(nullptr);
      EXPECT_EQ(cd::current_host(), nullptr);
      ++*counter;  // allowed: null context
      {
        cd::ScopedHost inner(&a);
        EXPECT_EQ(cd::current_host(), &a);
        ++*counter;  // allowed: owner context
      }
      EXPECT_EQ(cd::current_host(), nullptr);
    }
    EXPECT_EQ(cd::current_host(), &b);
    ++*counter;  // violation: back in b's context
  });
  world.sim().run();

  EXPECT_EQ(*counter, 3);
  EXPECT_EQ(cd::violation_count(), 1u);
}

TEST_F(DetSanTest, CrashAndBootCallbacksRunInHostContext) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  const cs::Host* seen_at_crash = nullptr;
  const cs::Host* seen_at_boot = nullptr;
  a.add_crash_listener([&] { seen_at_crash = cd::current_host(); });
  a.add_boot([&] { seen_at_boot = cd::current_host(); });

  a.crash_for(10.0);
  world.sim().run();
  EXPECT_EQ(seen_at_crash, &a);
  EXPECT_EQ(seen_at_boot, &a);
  EXPECT_EQ(cd::violation_count(), 0u);
}

TEST_F(DetSanTest, LifetimeFenceSuppressesTheAccessEntirely) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<int> counter(a, "test.counter", 0);

  // A daemon wrapping its timers in a Lifetime: once the Lifetime dies,
  // the fenced callback never runs, so no access and no violation — the
  // sanitizer observes real accesses only.
  auto lifetime = std::make_unique<cs::Lifetime>();
  b.post(1.0, lifetime->wrap([&] { ++*counter; }));
  b.post(2.0, lifetime->wrap([&] { ++*counter; }));
  world.sim().run_until(1.5);
  EXPECT_EQ(cd::violation_count(), 1u);  // first access did happen
  lifetime.reset();
  world.sim().run();
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(cd::violation_count(), 1u);  // second never ran
}

TEST_F(DetSanTest, StorageCapsAtBoundButCountKeepsGoing) {
  cs::World world;
  cs::Host& a = world.add_host("a.grid");
  cs::Host& b = world.add_host("b.grid");
  cd::HostLocal<int> counter(a, "test.counter", 0);

  b.post(1.0, [&] {
    for (int i = 0; i < 300; ++i) (void)*counter;
  });
  world.sim().run();

  EXPECT_EQ(cd::violation_count(), 300u);
  const std::vector<cd::Violation> violations = cd::take_violations();
  EXPECT_EQ(violations.size(), 256u);  // kMaxRecorded
  EXPECT_EQ(cd::violation_count(), 0u);
}

}  // namespace
