#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "condorg/sim/failure.h"
#include "condorg/sim/invariant_auditor.h"
#include "condorg/sim/rpc.h"
#include "condorg/sim/world.h"

namespace cs = condorg::sim;

// ---------- Simulation kernel ----------

TEST(Simulation, RunsEventsInTimeOrder) {
  cs::Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SameTimeEventsAreFifo) {
  cs::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInAccumulates) {
  cs::Simulation sim;
  double fired_at = -1;
  sim.schedule_in(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, CancelPreventsDispatch) {
  cs::Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilAdvancesClockAndReportsPending) {
  cs::Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_FALSE(sim.run_until(20.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StopAbortsRun) {
  cs::Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  cs::Simulation sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, NullCallbackThrows) {
  cs::Simulation sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(Simulation, CancelFromEarlierEventPreventsDispatch) {
  cs::Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(id)); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelMiddleOfSameTimeBatchKeepsFifo) {
  cs::Simulation sim;
  std::vector<char> order;
  sim.schedule_at(1.0, [&] { order.push_back('a'); });
  const auto b = sim.schedule_at(1.0, [&] { order.push_back('b'); });
  sim.schedule_at(1.0, [&] { order.push_back('c'); });
  EXPECT_TRUE(sim.cancel(b));
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'c'}));
}

TEST(Simulation, CancelUnknownIdIsFalse) {
  cs::Simulation sim;
  EXPECT_FALSE(sim.cancel(123456));
}

// ---------- Generation-tagged event ids (slab kernel) ----------

TEST(Simulation, CancelAfterFireIsFalse) {
  cs::Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  // The id's slab slot is retired at dispatch; a late cancel must not
  // report success (or touch whatever reuses the slot).
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, CancelThenRescheduleReusesSlotSafely) {
  cs::Simulation sim;
  bool first_fired = false;
  bool second_fired = false;
  const auto first = sim.schedule_at(1.0, [&] { first_fired = true; });
  EXPECT_TRUE(sim.cancel(first));
  // The freed slab slot is recycled for the next event; the stale id must
  // address the old generation, not the new occupant.
  const auto second = sim.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(first));  // stale: same slot, older generation
  sim.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
  EXPECT_FALSE(sim.cancel(second));  // already dispatched
}

TEST(Simulation, StaleIdAfterDispatchCannotCancelSlotReuser) {
  cs::Simulation sim;
  const auto first = sim.schedule_at(1.0, [] {});
  sim.run();  // retires `first`, freeing its slot
  bool fired = false;
  const auto second = sim.schedule_at(2.0, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(first));  // must not hit `second`
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_NE(first, second);
}

TEST(Simulation, ManyCancelRescheduleCyclesStayConsistent) {
  cs::Simulation sim;
  int fired = 0;
  // Churn the free list: every odd event is cancelled, every even one kept.
  std::vector<cs::EventId> kept;
  for (int i = 0; i < 200; ++i) {
    const auto id =
        sim.schedule_at(static_cast<double>(i % 7), [&] { ++fired; });
    if (i % 2 == 1) {
      EXPECT_TRUE(sim.cancel(id));
    } else {
      kept.push_back(id);
    }
  }
  EXPECT_EQ(sim.pending(), kept.size());
  sim.run();
  EXPECT_EQ(fired, 100);
  for (const auto id : kept) EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

// ---------- Trace digest (determinism self-check) ----------

TEST(Simulation, TraceDigestIsReproducible) {
  const auto run_one = [] {
    cs::Simulation sim;
    for (int i = 0; i < 5; ++i) {
      sim.schedule_at(1.0 + i, [] {});
    }
    sim.run();
    return sim.trace_digest();
  };
  EXPECT_EQ(run_one(), run_one());
}

TEST(Simulation, TraceDigestDistinguishesSchedules) {
  cs::Simulation a;
  a.schedule_at(1.0, [] {});
  a.schedule_at(2.0, [] {});
  a.run();
  cs::Simulation b;
  b.schedule_at(2.0, [] {});
  b.schedule_at(1.0, [] {});  // same dispatch times, different event ids
  b.run();
  EXPECT_NE(a.trace_digest(), b.trace_digest());
}

TEST(Simulation, CancelledEventsLeaveNoDigestMark) {
  cs::Simulation a;
  a.schedule_at(1.0, [] {});
  a.run();
  cs::Simulation b;
  b.schedule_at(1.0, [] {});
  const auto ghost = b.schedule_at(2.0, [] {});
  b.cancel(ghost);
  b.run();
  EXPECT_EQ(a.trace_digest(), b.trace_digest());
}

// ---------- InvariantAuditor engine ----------

TEST(InvariantAuditor, RecordsViolationsWithTimeAndCheckName) {
  cs::InvariantAuditor auditor;
  int calls = 0;
  auditor.add_check("counts", [&calls](std::vector<std::string>& out) {
    if (++calls >= 2) out.push_back("boom");
  });
  EXPECT_EQ(auditor.run(1.0), 0u);
  EXPECT_TRUE(auditor.ok());
  EXPECT_EQ(auditor.run(2.0), 1u);
  EXPECT_FALSE(auditor.ok());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].check, "counts");
  EXPECT_DOUBLE_EQ(auditor.violations()[0].when, 2.0);
  EXPECT_EQ(auditor.audits_run(), 2u);
  EXPECT_NE(auditor.report().find("boom"), std::string::npos);
}

TEST(InvariantAuditor, NullCheckRejected) {
  cs::InvariantAuditor auditor;
  EXPECT_THROW(auditor.add_check("x", nullptr), std::invalid_argument);
}

TEST(InvariantAuditor, FailFastThrowsOnFirstViolation) {
  cs::InvariantAuditor auditor;
  auditor.add_check("always", [](std::vector<std::string>& out) {
    out.push_back("broken");
  });
  auditor.set_fail_fast(true);
  EXPECT_THROW(auditor.run(5.0), std::logic_error);
}

TEST(Simulation, AttachedAuditorRunsEveryPeriodEvents) {
  cs::Simulation sim;
  cs::InvariantAuditor auditor;
  auditor.add_check("noop", [](std::vector<std::string>&) {});
  sim.attach_auditor(&auditor, 2);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0 + i, [] {});
  }
  sim.run();
  EXPECT_EQ(auditor.audits_run(), 5u);
  sim.attach_auditor(nullptr);
  EXPECT_EQ(sim.auditor(), nullptr);
}

// ---------- Host ----------

TEST(Host, PostRunsWhenAlive) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int fired = 0;
  h.post(1.0, [&] { ++fired; });
  world.sim().run();
  EXPECT_EQ(fired, 1);
}

TEST(Host, CrashFencesPendingCallbacks) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int fired = 0;
  h.post(10.0, [&] { ++fired; });
  world.sim().schedule_at(5.0, [&] { h.crash(); });
  world.sim().schedule_at(6.0, [&] { h.restart(); });
  world.sim().run();
  // The callback belonged to epoch 1; the host is in epoch 2 at t=10.
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.epoch(), 2u);
}

TEST(Host, PostAnyEpochSurvivesRestart) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int fired = 0;
  h.post_any_epoch(10.0, [&] { ++fired; });
  world.sim().schedule_at(5.0, [&] { h.crash_for(1.0); });
  world.sim().run();
  EXPECT_EQ(fired, 1);
}

TEST(Host, PostAnyEpochSkipsDeadHost) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int fired = 0;
  h.post_any_epoch(10.0, [&] { ++fired; });
  world.sim().schedule_at(5.0, [&] { h.crash(); });  // never restarted
  world.sim().run();
  EXPECT_EQ(fired, 0);
}

TEST(Host, DiskSurvivesCrash) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  h.disk().put("queue/job1", "state=idle");
  h.crash();
  h.restart();
  ASSERT_TRUE(h.disk().get("queue/job1").has_value());
  EXPECT_EQ(*h.disk().get("queue/job1"), "state=idle");
}

TEST(Host, BootFunctionsRunOnRestartOnly) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int boots = 0;
  h.add_boot([&] { ++boots; });
  EXPECT_EQ(boots, 0);
  h.crash();
  h.restart();
  EXPECT_EQ(boots, 1);
  h.crash();
  h.restart();
  EXPECT_EQ(boots, 2);
}

TEST(Host, CrashListenersFireAndCanBeRemoved) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  int fired = 0;
  const int id = h.add_crash_listener([&] { ++fired; });
  h.crash();
  h.restart();
  h.remove_crash_listener(id);
  h.crash();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(h.crash_count(), 2u);
}

TEST(Host, ServicesClearedByCrash) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  h.register_service("gatekeeper", [](const cs::Message&) {});
  EXPECT_NE(h.find_service("gatekeeper"), nullptr);
  h.crash();
  h.restart();
  EXPECT_EQ(h.find_service("gatekeeper"), nullptr);
}

TEST(Host, DoubleCrashAndRestartAreNoOps) {
  cs::World world;
  cs::Host& h = world.add_host("submit");
  h.crash();
  const auto epoch = h.epoch();
  h.crash();
  EXPECT_EQ(h.epoch(), epoch);
  h.restart();
  h.restart();
  EXPECT_TRUE(h.alive());
}

// ---------- StableStorage ----------

TEST(StableStorage, KeyValueAndPrefix) {
  cs::StableStorage disk;
  disk.put("job/3", "c");
  disk.put("job/1", "a");
  disk.put("job/2", "b");
  disk.put("cred/x", "y");
  const auto keys = disk.keys_with_prefix("job/");
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "job/1");
  EXPECT_EQ(keys[2], "job/3");
  EXPECT_TRUE(disk.erase("job/2"));
  EXPECT_FALSE(disk.erase("job/2"));
  EXPECT_FALSE(disk.contains("job/2"));
  EXPECT_EQ(disk.get("nope"), std::nullopt);
}

TEST(StableStorage, Journals) {
  cs::StableStorage disk;
  disk.append("log", "a");
  disk.append("log", "b");
  ASSERT_EQ(disk.journal("log").size(), 2u);
  EXPECT_EQ(disk.journal("log")[1], "b");
  EXPECT_TRUE(disk.journal("other").empty());
  disk.truncate_journal("log");
  EXPECT_TRUE(disk.journal("log").empty());
  EXPECT_GT(disk.bytes_written(), 0u);
}

// ---------- World ----------

TEST(World, HostLookup) {
  cs::World world;
  world.add_host("a");
  world.add_host("b");
  EXPECT_EQ(world.host_count(), 2u);
  EXPECT_NE(world.find_host("a"), nullptr);
  EXPECT_EQ(world.find_host("c"), nullptr);
  EXPECT_THROW(world.host("c"), std::invalid_argument);
  EXPECT_THROW(world.add_host("a"), std::invalid_argument);
}

// ---------- Network ----------

namespace {

/// Collects messages delivered to a service.
struct Inbox {
  std::vector<cs::Message> messages;
  void attach(cs::Host& host, const std::string& service) {
    host.register_service(
        service, [this](const cs::Message& m) { messages.push_back(m); });
  }
};

cs::Message make_message(const std::string& from, const std::string& to,
                         const std::string& type) {
  cs::Message m;
  m.from = cs::Address::parse(from);
  m.to = cs::Address::parse(to);
  m.type = type;
  return m;
}

}  // namespace

TEST(Network, DeliversAfterLatency) {
  cs::World world;
  cs::Host& a = world.add_host("a");
  (void)a;
  cs::Host& b = world.add_host("b");
  Inbox inbox;
  inbox.attach(b, "svc");
  cs::LinkConfig link;
  link.latency = 2.0;
  link.jitter = 0.0;
  world.net().set_default_link(link);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().run();
  ASSERT_EQ(inbox.messages.size(), 1u);
  EXPECT_DOUBLE_EQ(world.now(), 2.0);
  EXPECT_EQ(inbox.messages[0].type, "ping");
  EXPECT_EQ(world.net().delivered(), 1u);
}

TEST(Network, DropsOnLossyLink) {
  cs::World world(7);
  world.add_host("a");
  cs::Host& b = world.add_host("b");
  Inbox inbox;
  inbox.attach(b, "svc");
  cs::LinkConfig link;
  link.loss_probability = 1.0;
  world.net().set_link("a", "b", link);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().run();
  EXPECT_TRUE(inbox.messages.empty());
  EXPECT_EQ(world.net().lost(), 1u);
}

TEST(Network, PartitionBlocksBothDirections) {
  cs::World world;
  cs::Host& a = world.add_host("a");
  cs::Host& b = world.add_host("b");
  Inbox in_a, in_b;
  in_a.attach(a, "svc");
  in_b.attach(b, "svc");
  world.net().set_partitioned("a", "b", true);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.net().send(make_message("b/x", "a/svc", "ping"));
  world.sim().run();
  EXPECT_TRUE(in_a.messages.empty());
  EXPECT_TRUE(in_b.messages.empty());
  EXPECT_EQ(world.net().blocked_by_partition(), 2u);

  world.net().set_partitioned("a", "b", false);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().run();
  EXPECT_EQ(in_b.messages.size(), 1u);
}

TEST(Network, IsolationBlocksHost) {
  cs::World world;
  world.add_host("a");
  cs::Host& b = world.add_host("b");
  Inbox inbox;
  inbox.attach(b, "svc");
  world.net().set_isolated("b", true);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().run();
  EXPECT_TRUE(inbox.messages.empty());
  world.net().set_isolated("b", false);
  EXPECT_FALSE(world.net().partitioned("a", "b"));
}

TEST(Network, InFlightMessageLostToMidFlightPartition) {
  cs::World world;
  world.add_host("a");
  cs::Host& b = world.add_host("b");
  Inbox inbox;
  inbox.attach(b, "svc");
  cs::LinkConfig link;
  link.latency = 10.0;
  link.jitter = 0.0;
  world.net().set_default_link(link);
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().schedule_at(5.0,
                          [&] { world.net().set_partitioned("a", "b", true); });
  world.sim().run();
  EXPECT_TRUE(inbox.messages.empty());
}

TEST(Network, DeadDestinationDropsMessage) {
  cs::World world;
  world.add_host("a");
  cs::Host& b = world.add_host("b");
  Inbox inbox;
  inbox.attach(b, "svc");
  b.crash();
  world.net().send(make_message("a/x", "b/svc", "ping"));
  world.sim().run();
  EXPECT_TRUE(inbox.messages.empty());
  EXPECT_EQ(world.net().dead_destination(), 1u);
}

TEST(Network, MissingServiceDropsMessage) {
  cs::World world;
  world.add_host("a");
  world.add_host("b");
  world.net().send(make_message("a/x", "b/nosuch", "ping"));
  world.sim().run();
  EXPECT_EQ(world.net().dead_destination(), 1u);
}

TEST(Network, LocalDeliveryBypassesLossAndPartition) {
  cs::World world;
  cs::Host& a = world.add_host("a");
  Inbox inbox;
  inbox.attach(a, "svc");
  cs::LinkConfig link;
  link.loss_probability = 1.0;
  world.net().set_default_link(link);
  world.net().send(make_message("a/x", "a/svc", "ping"));
  world.sim().run();
  EXPECT_EQ(inbox.messages.size(), 1u);
}

TEST(Network, TransferSecondsScalesWithSize) {
  cs::World world;
  cs::LinkConfig link;
  link.latency = 1.0;
  link.bandwidth_bps = 8.0e6;  // 1 MB/s
  world.net().set_link("a", "b", link);
  EXPECT_NEAR(world.net().transfer_seconds("a", "b", 1000000), 2.0, 1e-9);
  EXPECT_LT(world.net().transfer_seconds("a", "a", 1u << 30), 0.01);
}

// ---------- Payload / Address ----------

TEST(Payload, TypedAccessors) {
  cs::Payload p;
  p.set("s", "hello");
  p.set_int("i", -42);
  p.set_uint("u", 42);
  p.set_double("d", 2.5);
  p.set_bool("b", true);
  EXPECT_EQ(p.get("s"), "hello");
  EXPECT_EQ(p.get_int("i"), -42);
  EXPECT_EQ(p.get_uint("u"), 42u);
  EXPECT_DOUBLE_EQ(p.get_double("d"), 2.5);
  EXPECT_TRUE(p.get_bool("b"));
  EXPECT_EQ(p.get("missing", "fb"), "fb");
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_FALSE(p.get_bool("missing"));
  p.set("junk", "not-a-number");
  EXPECT_EQ(p.get_int("junk", 3), 3);
  EXPECT_FALSE(p.debug_string().empty());
}

TEST(Address, ParseAndRoundTrip) {
  const auto addr = cs::Address::parse("host1/gram.gatekeeper");
  EXPECT_EQ(addr.host, "host1");
  EXPECT_EQ(addr.service, "gram.gatekeeper");
  EXPECT_EQ(addr.str(), "host1/gram.gatekeeper");
  const auto bare = cs::Address::parse("host1");
  EXPECT_EQ(bare.host, "host1");
  EXPECT_EQ(bare.service, "");
}

// ---------- RPC ----------

namespace {

/// Echo server: replies to "echo" requests with the same payload + "pong"=1.
struct EchoServer {
  cs::Host& host;
  cs::Network& net;
  explicit EchoServer(cs::Host& h, cs::Network& n) : host(h), net(n) {
    host.register_service("echo", [this](const cs::Message& m) {
      cs::Payload reply;
      reply.set("data", m.body.get("data"));
      reply.set_bool("pong", true);
      cs::rpc_reply(net, m, cs::Address{host.name(), "echo"},
                    std::move(reply));
    });
  }
};

}  // namespace

TEST(Rpc, CallAndReply) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  cs::Host& server_host = world.add_host("server");
  EchoServer server(server_host, world.net());
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");

  bool got = false;
  rpc.call(cs::Address{"server", "echo"}, "echo",
           [] {
             cs::Payload p;
             p.set("data", "x");
             return p;
           }(),
           30.0, [&](bool ok, const cs::Payload& reply) {
             got = true;
             EXPECT_TRUE(ok);
             EXPECT_EQ(reply.get("data"), "x");
             EXPECT_TRUE(reply.get_bool("pong"));
           });
  world.sim().run();
  EXPECT_TRUE(got);
  EXPECT_EQ(rpc.pending(), 0u);
}

TEST(Rpc, TimeoutOnDeadServer) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  world.add_host("server").crash();
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");
  bool got = false;
  rpc.call(cs::Address{"server", "echo"}, "echo", {}, 30.0,
           [&](bool ok, const cs::Payload&) {
             got = true;
             EXPECT_FALSE(ok);
           });
  world.sim().run();
  EXPECT_TRUE(got);
  EXPECT_GE(world.now(), 30.0);
}

TEST(Rpc, TimeoutOnPartition) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  cs::Host& server_host = world.add_host("server");
  EchoServer server(server_host, world.net());
  world.net().set_partitioned("client", "server", true);
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");
  bool ok_result = true;
  rpc.call(cs::Address{"server", "echo"}, "echo", {}, 10.0,
           [&](bool ok, const cs::Payload&) { ok_result = ok; });
  world.sim().run();
  EXPECT_FALSE(ok_result);
}

TEST(Rpc, ClientCrashDropsPendingCallbacks) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  cs::Host& server_host = world.add_host("server");
  EchoServer server(server_host, world.net());
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");
  int called = 0;
  rpc.call(cs::Address{"server", "echo"}, "echo", {}, 30.0,
           [&](bool, const cs::Payload&) { ++called; });
  world.sim().schedule_at(0.001, [&] { client_host.crash(); });
  world.sim().run();
  EXPECT_EQ(called, 0);
  EXPECT_EQ(rpc.pending(), 0u);
}

TEST(Rpc, LateReplyAfterTimeoutIsIgnored) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  cs::Host& server_host = world.add_host("server");
  EchoServer server(server_host, world.net());
  cs::LinkConfig slow;
  slow.latency = 50.0;  // round trip = 100s > timeout
  slow.jitter = 0.0;
  world.net().set_default_link(slow);
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");
  int calls = 0;
  bool ok_result = true;
  rpc.call(cs::Address{"server", "echo"}, "echo", {}, 10.0,
           [&](bool ok, const cs::Payload&) {
             ++calls;
             ok_result = ok;
           });
  world.sim().run();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(ok_result);
}

TEST(Rpc, DuplicateReplyDeliversCallbackOnce) {
  cs::World world;
  cs::Host& client_host = world.add_host("client");
  cs::Host& server_host = world.add_host("server");
  // A server that acks every request twice (a retransmit-happy peer).
  server_host.register_service("echo", [&](const cs::Message& m) {
    for (int i = 0; i < 2; ++i) {
      cs::Payload reply;
      reply.set_bool("pong", true);
      cs::rpc_reply(world.net(), m, cs::Address{"server", "echo"},
                    std::move(reply));
    }
  });
  cs::RpcClient rpc(client_host, world.net(), "cli.rpc");
  int calls = 0;
  rpc.call(cs::Address{"server", "echo"}, "echo", {}, 30.0,
           [&](bool ok, const cs::Payload&) {
             ++calls;
             EXPECT_TRUE(ok);
           });
  world.sim().run();
  // The first reply settles the call and erases the pending entry; the
  // duplicate must be dropped, not double-fire the callback.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(rpc.pending(), 0u);
}

TEST(Rpc, ServiceNameCollisionThrows) {
  cs::World world;
  cs::Host& host = world.add_host("node");
  host.register_service("svc", [](const cs::Message&) {});
  EXPECT_THROW(host.register_service("svc", [](const cs::Message&) {}),
               std::logic_error);
  // Unregistering frees the name; so does a crash (services are volatile).
  host.unregister_service("svc");
  host.register_service("svc", [](const cs::Message&) {});
  host.crash();
  host.restart();
  host.register_service("svc", [](const cs::Message&) {});
}

// ---------- FailureInjector ----------

TEST(FailureInjector, OneShotCrashAndRecovery) {
  cs::World world;
  cs::Host& h = world.add_host("site");
  cs::FailureInjector chaos(world);
  chaos.crash_at("site", 10.0, 5.0);
  world.sim().schedule_at(12.0, [&] { EXPECT_FALSE(h.alive()); });
  world.sim().schedule_at(16.0, [&] { EXPECT_TRUE(h.alive()); });
  world.sim().run();
  EXPECT_EQ(chaos.crashes_injected(), 1u);
  ASSERT_EQ(chaos.incidents().size(), 1u);
  EXPECT_EQ(chaos.incidents()[0].target, "site");
}

TEST(FailureInjector, OneShotPartitionHeals) {
  cs::World world;
  world.add_host("a");
  world.add_host("b");
  cs::FailureInjector chaos(world);
  chaos.partition_at("a", "b", 5.0, 10.0);
  world.sim().schedule_at(6.0,
                          [&] { EXPECT_TRUE(world.net().partitioned("a", "b")); });
  world.sim().schedule_at(16.0, [&] {
    EXPECT_FALSE(world.net().partitioned("a", "b"));
  });
  world.sim().run();
  EXPECT_EQ(chaos.partitions_injected(), 1u);
}

TEST(FailureInjector, RecurringCrashesRespectWindow) {
  cs::World world(123);
  world.add_host("site");
  cs::FailureInjector chaos(world);
  cs::CrashPlan plan;
  plan.host = "site";
  plan.mtbf_seconds = 100.0;
  plan.mean_downtime_seconds = 1.0;
  plan.start = 0.0;
  plan.end = 5000.0;
  chaos.add_crash_plan(plan);
  world.sim().run_until(20000.0);
  chaos.disarm();
  world.sim().run();
  EXPECT_GT(chaos.crashes_injected(), 10u);
  for (const auto& incident : chaos.incidents()) {
    EXPECT_LE(incident.at, 5000.0 + 1e-6);
  }
  EXPECT_TRUE(world.host("site").alive());
}
