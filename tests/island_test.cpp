// Kernel-level tests for the island partition: planner grouping, per-queue
// tombstone accounting under cancel-heavy load, context policing, and
// queue routing. These poke the Simulation surface directly — the
// end-to-end digest equalities live in parallel_digest_test.cpp.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "condorg/sim/host.h"
#include "condorg/sim/island.h"
#include "condorg/sim/network.h"
#include "condorg/sim/world.h"

namespace {

namespace sim = condorg::sim;

/// A two-host island-mode world; the guard keeps the mode independent of
/// the ambient CONDORG_PARALLEL.
struct IslandFixture {
  sim::World::ScopedParallelOverride force{2};
  sim::World world{/*seed=*/7};
  sim::Host& a = world.add_host("a.example");
  sim::Host& b = world.add_host("b.example");
};

TEST(IslandPlanner, SeparateHostsFormSeparateIslands) {
  sim::World::ScopedParallelOverride force(2);
  sim::World world(7);
  sim::Host& a = world.add_host("a.example");
  sim::Host& b = world.add_host("b.example");
  const sim::IslandPlan plan = sim::IslandPlanner::build(
      world.net(), {a.queue(), b.queue()}, {"a.example", "b.example"});
  ASSERT_GT(plan.island_of_queue.size(), b.queue());
  EXPECT_EQ(plan.island_of_queue[0], 0u);  // control island
  EXPECT_NE(plan.island_of_queue[a.queue()], plan.island_of_queue[b.queue()]);
  EXPECT_EQ(plan.island_count, 3u);
  EXPECT_DOUBLE_EQ(plan.lookahead, world.net().default_link().latency);
}

TEST(IslandPlanner, ZeroLatencyLinkMergesItsEndpoints) {
  sim::World::ScopedParallelOverride force(2);
  sim::World world(7);
  sim::Host& a = world.add_host("a.example");
  sim::Host& b = world.add_host("b.example");
  sim::Host& c = world.add_host("c.example");
  sim::LinkConfig lan;
  lan.latency = 0.0;
  lan.jitter = 0.0;
  world.net().set_link("a.example", "b.example", lan);
  const sim::IslandPlan plan = sim::IslandPlanner::build(
      world.net(), {a.queue(), b.queue(), c.queue()},
      {"a.example", "b.example", "c.example"});
  EXPECT_EQ(plan.island_of_queue[a.queue()], plan.island_of_queue[b.queue()]);
  EXPECT_NE(plan.island_of_queue[a.queue()], plan.island_of_queue[c.queue()]);
  EXPECT_GT(plan.lookahead, 0.0);
}

TEST(IslandPlanner, ZeroLatencyDefaultCollapsesToOneIsland) {
  sim::World::ScopedParallelOverride force(2);
  sim::World world(7);
  sim::Host& a = world.add_host("a.example");
  sim::Host& b = world.add_host("b.example");
  sim::LinkConfig instant;
  instant.latency = 0.0;
  world.net().set_default_link(instant);
  const sim::IslandPlan plan = sim::IslandPlanner::build(
      world.net(), {a.queue(), b.queue()}, {"a.example", "b.example"});
  EXPECT_EQ(plan.island_of_queue[a.queue()], plan.island_of_queue[b.queue()]);
  EXPECT_DOUBLE_EQ(plan.lookahead, 0.0);  // engine serializes
}

TEST(IslandKernel, HostsGetDistinctQueuesAndEventsRouteToThem) {
  IslandFixture f;
  ASSERT_TRUE(f.world.sim().island_mode());
  EXPECT_NE(f.a.queue(), 0u);
  EXPECT_NE(f.b.queue(), 0u);
  EXPECT_NE(f.a.queue(), f.b.queue());

  std::uint32_t seen_a = 99, seen_b = 99, seen_control = 99;
  f.a.post(1.0, [&] { seen_a = f.world.sim().context_queue(); });
  f.b.post(1.0, [&] { seen_b = f.world.sim().context_queue(); });
  f.world.sim().schedule_at(1.0,
                            [&] { seen_control = f.world.sim().context_queue(); });
  f.world.sim().run_until(2.0);
  EXPECT_EQ(seen_a, f.a.queue());
  EXPECT_EQ(seen_b, f.b.queue());
  EXPECT_EQ(seen_control, 0u);
}

// Cancel-heavy regression: tombstones must be tracked per island queue —
// cancelled events on one host's calendar must neither count against nor
// linger in another island's queue, and draining a queue retires its own
// tombstones exactly.
TEST(IslandKernel, TombstonesStayPerQueueUnderCancelHeavyLoad) {
  IslandFixture f;
  sim::Simulation& s = f.world.sim();

  std::vector<sim::EventId> cancellable;
  int fired_a = 0, fired_b = 0;
  for (int i = 0; i < 200; ++i) {
    cancellable.push_back(
        f.a.post(1.0 + 0.01 * i, [&fired_a] { ++fired_a; }));
    f.b.post(1.0 + 0.01 * i, [&fired_b] { ++fired_b; });
  }
  // Cancel every other event on a's calendar from harness (control) context.
  int cancelled = 0;
  for (std::size_t i = 0; i < cancellable.size(); i += 2) {
    if (s.cancel(cancellable[i])) ++cancelled;
  }
  EXPECT_EQ(cancelled, 100);
  EXPECT_EQ(s.queue_tombstones(f.a.queue()), 100u);
  EXPECT_EQ(s.queue_tombstones(f.b.queue()), 0u);
  EXPECT_EQ(s.queue_pending(f.b.queue()), 200u);

  s.run_until(10.0);
  EXPECT_EQ(fired_a, 100);
  EXPECT_EQ(fired_b, 200);
  // The bounded run drains every calendar: no tombstone may leak across
  // (or linger inside) island queues.
  EXPECT_EQ(s.queue_tombstones(f.a.queue()), 0u);
  EXPECT_EQ(s.queue_tombstones(f.b.queue()), 0u);
  EXPECT_EQ(s.queue_pending(f.a.queue()), 0u);
  EXPECT_EQ(s.queue_pending(f.b.queue()), 0u);
}

// Cancelling another island's event from inside a host event is a
// determinism hazard (the result would depend on window interleaving); the
// kernel rejects it. Control context and the owning queue stay allowed.
TEST(IslandKernel, CrossIslandCancelFromHostContextThrows) {
  IslandFixture f;
  sim::Simulation& s = f.world.sim();

  const sim::EventId victim = f.b.post(5.0, [] {});
  bool own_cancel_ok = false;
  bool cross_cancel_threw = false;  // asserted on the main thread below
  f.a.post(1.0, [&] {
    try {
      static_cast<void>(s.cancel(victim));
    } catch (const std::logic_error&) {
      cross_cancel_threw = true;
    }
  });
  const sim::EventId own = f.a.post(5.0, [] {});
  f.a.post(2.0, [&] { own_cancel_ok = s.cancel(own); });
  s.run_until(3.0);
  EXPECT_TRUE(cross_cancel_threw);
  EXPECT_TRUE(own_cancel_ok);
  EXPECT_TRUE(s.cancel(victim));  // control context may cancel anywhere
}

TEST(IslandKernel, LegacyWorldKeepsSingleQueue) {
  sim::World::ScopedParallelOverride force(0);
  sim::World world(7);
  sim::Host& a = world.add_host("a.example");
  sim::Host& b = world.add_host("b.example");
  EXPECT_FALSE(world.sim().island_mode());
  EXPECT_EQ(a.queue(), 0u);
  EXPECT_EQ(b.queue(), 0u);
  int fired = 0;
  a.post(1.0, [&] { ++fired; });
  b.post(1.0, [&] { ++fired; });
  world.sim().run_until(2.0);
  EXPECT_EQ(fired, 2);
}

TEST(IslandKernel, IslandStatsCountPerIslandEvents) {
  IslandFixture f;
  sim::Simulation& s = f.world.sim();
  for (int i = 0; i < 50; ++i) {
    f.a.post(0.5 + 0.1 * i, [] {});
  }
  f.b.post(1.0, [] {});
  s.run_until(10.0);
  const std::vector<sim::Simulation::IslandStat> stats = s.island_stats();
  ASSERT_GE(stats.size(), 2u);
  std::uint64_t total = 0;
  for (const sim::Simulation::IslandStat& st : stats) total += st.events;
  EXPECT_EQ(total, s.dispatched());
}

}  // namespace
