#include <gtest/gtest.h>

#include "condorg/gass/client.h"
#include "condorg/gass/file_service.h"
#include "condorg/gass/staging_cache.h"
#include "condorg/sim/world.h"

namespace cg = condorg::gass;
namespace cs = condorg::sim;
namespace gsi = condorg::gsi;

// ---------- FileStore ----------

TEST(FileStore, PutGetEraseList) {
  cg::FileStore store;
  store.put("job/stdin", "input data");
  store.put("job/exe", "binary", 1 << 20);
  EXPECT_TRUE(store.contains("job/stdin"));
  EXPECT_EQ(store.get("job/stdin")->content, "input data");
  EXPECT_EQ(store.get("job/stdin")->size(), 10u);
  EXPECT_EQ(store.get("job/exe")->size(), 1u << 20);  // declared size wins
  EXPECT_EQ(store.list("job/").size(), 2u);
  EXPECT_EQ(store.list("nope/").size(), 0u);
  EXPECT_TRUE(store.erase("job/exe"));
  EXPECT_FALSE(store.erase("job/exe"));
  EXPECT_EQ(store.file_count(), 1u);
}

TEST(FileStore, AppendAccumulates) {
  cg::FileStore store;
  store.append("out.log", "chunk1:", 100);
  store.append("out.log", "chunk2", 50);
  EXPECT_EQ(store.get("out.log")->content, "chunk1:chunk2");
  EXPECT_EQ(store.get("out.log")->size(), 150u);
}

TEST(FileStore, ChecksumDetectsContentChange) {
  cg::FileStore store;
  store.put("a", "hello");
  store.put("b", "hellp");
  EXPECT_NE(store.get("a")->checksum(), store.get("b")->checksum());
}

TEST(FileStore, ChecksumMemoizedUntilContentChanges) {
  cg::FileStore store;
  store.put("f", "hello");
  const std::uint64_t first = store.get("f")->checksum();
  EXPECT_EQ(store.get("f")->checksum(), first);  // served from the memo
  store.append("f", " world", 0);                // append invalidates
  EXPECT_NE(store.get("f")->checksum(), first);
  store.put("f", "hello");                       // re-put restores
  EXPECT_EQ(store.get("f")->checksum(), first);
}

TEST(FileStore, PutIfAbsentKeepsFirstContent) {
  cg::FileStore store;
  EXPECT_TRUE(store.put_if_absent("exe/cas/1", "v1", 100));
  EXPECT_FALSE(store.put_if_absent("exe/cas/1", "v2", 200));
  EXPECT_EQ(store.get("exe/cas/1")->content, "v1");
  EXPECT_EQ(store.get("exe/cas/1")->size(), 100u);
}

TEST(FileStore, FindAndStatFastPaths) {
  cg::FileStore store;
  store.put("f", "payload", 4096);
  const cg::FileData* file = store.find("f");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->content, "payload");
  EXPECT_EQ(store.find("missing"), nullptr);

  const auto stat = store.stat("f");
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->size, 4096u);
  EXPECT_EQ(stat->checksum, file->checksum());
  EXPECT_FALSE(store.stat("missing").has_value());
}

// ---------- FileService over the network ----------

namespace {

struct GassFixture : public ::testing::Test {
  GassFixture()
      : submit(world.add_host("submit.wisc.edu")),
        site(world.add_host("gatekeeper.anl.gov")),
        repo(world.add_host("mss.ncsa.edu")),
        gass(submit, world.net(), "gass"),
        gridftp(repo, world.net(), "gridftp"),
        client(site, world.net(), "test.client") {}

  cs::World world;
  cs::Host& submit;
  cs::Host& site;
  cs::Host& repo;
  cg::FileService gass;
  cg::FileService gridftp;
  cg::FileClient client;
};

}  // namespace

TEST_F(GassFixture, StageInGet) {
  gass.store().put("jobs/1/executable", "#!worker", 4 << 20);
  std::optional<cg::FileInfo> got;
  client.get(gass.address(), "jobs/1/executable",
             [&](std::optional<cg::FileInfo> info) { got = std::move(info); });
  world.sim().run();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->content, "#!worker");
  EXPECT_EQ(got->size, 4u << 20);
  EXPECT_EQ(gass.gets_served(), 1u);
  EXPECT_GT(world.now(), 0.0);
}

TEST_F(GassFixture, TransferTimeScalesWithFileSize) {
  cs::LinkConfig link;
  link.latency = 0.1;
  link.jitter = 0.0;
  link.bandwidth_bps = 8.0e6;  // 1 MB/s
  world.net().set_default_link(link);
  gass.store().put("small", "x", 1000);
  gass.store().put("big", "y", 10'000'000);

  double small_done = 0, big_done = 0;
  client.get(gass.address(), "small",
             [&](std::optional<cg::FileInfo>) { small_done = world.now(); });
  world.sim().run();
  client.get(gass.address(), "big",
             [&](std::optional<cg::FileInfo>) { big_done = world.now(); });
  world.sim().run();
  // 10 MB at 1 MB/s ~ 10 s; 1 KB ~ instantaneous.
  EXPECT_LT(small_done, 1.0);
  EXPECT_GT(big_done - small_done, 9.0);
}

TEST_F(GassFixture, MissingFileFails) {
  bool called = false;
  client.get(gass.address(), "nope", [&](std::optional<cg::FileInfo> info) {
    called = true;
    EXPECT_FALSE(info.has_value());
  });
  world.sim().run();
  EXPECT_TRUE(called);
}

TEST_F(GassFixture, PutAndStat) {
  bool ok = false;
  client.put(gridftp.address(), "events/run1.dat", "evtdata", 500 << 20,
             [&](bool result) { ok = result; });
  world.sim().run();
  EXPECT_TRUE(ok);
  ASSERT_TRUE(gridftp.store().contains("events/run1.dat"));
  EXPECT_EQ(gridftp.store().get("events/run1.dat")->size(), 500u << 20);

  std::optional<cg::FileInfo> stat;
  client.stat(gridftp.address(), "events/run1.dat",
              [&](std::optional<cg::FileInfo> info) { stat = std::move(info); });
  world.sim().run();
  ASSERT_TRUE(stat);
  EXPECT_EQ(stat->size, 500u << 20);
}

TEST_F(GassFixture, AppendStreamsOutputChunks) {
  // G-Cat style: partial-chunk appends build the remote file. Chunks are
  // sent sequentially (each after the previous ack) — concurrent appends
  // could be reordered by network jitter, which is why G-Cat serializes.
  int acks = 0;
  std::function<void(int)> send_chunk = [&](int i) {
    if (i == 5) return;
    client.append(gridftp.address(), "gaussian.out",
                  "chunk" + std::to_string(i) + ";", 1 << 20, [&, i](bool ok) {
                    acks += ok ? 1 : 0;
                    send_chunk(i + 1);
                  });
  };
  send_chunk(0);
  world.sim().run();
  EXPECT_EQ(acks, 5);
  EXPECT_EQ(gridftp.store().get("gaussian.out")->content,
            "chunk0;chunk1;chunk2;chunk3;chunk4;");
  EXPECT_EQ(gridftp.store().get("gaussian.out")->size(), 5u << 20);
  EXPECT_EQ(gridftp.appends_served(), 5u);
}

TEST_F(GassFixture, ThirdPartyPull) {
  // Repository pulls a file straight from the GASS server (GridFTP-style),
  // initiated by the site.
  gass.store().put("glidein/condor_startd", "STARTD", 12 << 20);
  bool ok = false;
  client.pull(gridftp.address(), "cache/condor_startd", gass.address(),
              "glidein/condor_startd", [&](bool result) { ok = result; });
  world.sim().run();
  EXPECT_TRUE(ok);
  ASSERT_TRUE(gridftp.store().contains("cache/condor_startd"));
  EXPECT_EQ(gridftp.store().get("cache/condor_startd")->content, "STARTD");
  EXPECT_EQ(gridftp.store().get("cache/condor_startd")->size(), 12u << 20);
}

TEST_F(GassFixture, PullFromDeadSourceFails) {
  submit.crash();
  bool called = false;
  client.pull(gridftp.address(), "cache/x", gass.address(), "nope",
              [&](bool ok) {
                called = true;
                EXPECT_FALSE(ok);
              });
  world.sim().run();
  EXPECT_TRUE(called);
}

TEST_F(GassFixture, PartitionTimesOutRequest) {
  gass.store().put("f", "data");
  world.net().set_partitioned("submit.wisc.edu", "gatekeeper.anl.gov", true);
  bool called = false;
  client.get(gass.address(), "f", [&](std::optional<cg::FileInfo> info) {
    called = true;
    EXPECT_FALSE(info.has_value());
  });
  world.sim().run();
  EXPECT_TRUE(called);
}

TEST_F(GassFixture, ScratchStoreWipedByCrash) {
  gridftp.set_survives_crash(false);
  gridftp.store().put("scratch/tmp", "data");
  repo.crash();
  repo.restart();
  EXPECT_FALSE(gridftp.store().contains("scratch/tmp"));
}

TEST_F(GassFixture, DurableStoreSurvivesCrash) {
  gridftp.store().put("tape/archive", "data");
  repo.crash();
  repo.restart();
  EXPECT_TRUE(gridftp.store().contains("tape/archive"));
  // And the service still answers after the reboot.
  std::optional<cg::FileInfo> got;
  client.get(gridftp.address(), "tape/archive",
             [&](std::optional<cg::FileInfo> info) { got = std::move(info); });
  world.sim().run();
  EXPECT_TRUE(got.has_value());
}

// ---------- per-site staging cache ----------

namespace {

struct StagingCacheFixture : public ::testing::Test {
  StagingCacheFixture()
      : submit(world.add_host("submit.wisc.edu")),
        site_a(world.add_host("site-a.grid.org")),
        site_b(world.add_host("site-b.grid.org")),
        gass(submit, world.net(), "gass"),
        cache_a(site_a, world.net(), "stagecache.a"),
        cache_b(site_b, world.net(), "stagecache.b") {}

  std::uint64_t put_exe(const std::string& path, const std::string& content) {
    gass.store().put(path, content, content.size());
    return gass.store().get(path)->checksum();
  }

  cs::World world;
  cs::Host& submit;
  cs::Host& site_a;
  cs::Host& site_b;
  cg::FileService gass;
  cg::StagingCache cache_a;
  cg::StagingCache cache_b;
};

}  // namespace

TEST_F(StagingCacheFixture, CoalescesConcurrentFetchesIntoOneTransfer) {
  const std::uint64_t checksum = put_exe("exe/cas/1", "worker-v1");
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    cache_a.fetch(gass.address(), "exe/cas/1", checksum,
                  [&](std::optional<cg::FileInfo> info) {
                    ASSERT_TRUE(info.has_value());
                    EXPECT_EQ(info->content, "worker-v1");
                    ++delivered;
                  });
  }
  world.sim().run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(gass.gets_served(), 1u);  // one wire transfer for five jobs
  EXPECT_EQ(cache_a.misses(), 1u);
  EXPECT_EQ(cache_a.hits(), 4u);
}

TEST_F(StagingCacheFixture, CachedEntryServesRepeatsSynchronously) {
  const std::uint64_t checksum = put_exe("exe/cas/1", "worker-v1");
  cache_a.fetch(gass.address(), "exe/cas/1", checksum,
                [](std::optional<cg::FileInfo>) {});
  world.sim().run();
  ASSERT_EQ(gass.gets_served(), 1u);

  bool synchronous = false;
  cache_a.fetch(gass.address(), "exe/cas/1", checksum,
                [&](std::optional<cg::FileInfo> info) {
                  ASSERT_TRUE(info.has_value());
                  synchronous = true;
                });
  EXPECT_TRUE(synchronous);  // hit: no events needed
  world.sim().run();
  EXPECT_EQ(gass.gets_served(), 1u);
  EXPECT_EQ(cache_a.entry_count(), 1u);
}

TEST_F(StagingCacheFixture, ChecksumMismatchInvalidatesAndRestages) {
  const std::uint64_t old_sum = put_exe("exe/a.out", "build-1");
  cache_a.fetch(gass.address(), "exe/a.out", old_sum,
                [](std::optional<cg::FileInfo>) {});
  world.sim().run();
  ASSERT_EQ(gass.gets_served(), 1u);

  // The user rebuilds the executable under the same name: the declared
  // checksum changes, the cached copy must NOT be served.
  const std::uint64_t new_sum = put_exe("exe/a.out", "build-2");
  ASSERT_NE(new_sum, old_sum);
  std::optional<cg::FileInfo> got;
  cache_a.fetch(gass.address(), "exe/a.out", new_sum,
                [&](std::optional<cg::FileInfo> info) { got = std::move(info); });
  world.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->content, "build-2");
  EXPECT_EQ(gass.gets_served(), 2u);  // re-staged exactly once
}

TEST_F(StagingCacheFixture, FailureNotifiesEveryWaiterAndAllowsRetry) {
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    cache_a.fetch(gass.address(), "exe/missing", 7,
                  [&](std::optional<cg::FileInfo> info) {
                    EXPECT_FALSE(info.has_value());
                    ++failures;
                  });
  }
  world.sim().run();
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(cache_a.entry_count(), 0u);  // failed entry is not cached

  // Once the file exists a retry succeeds.
  const std::uint64_t checksum = put_exe("exe/missing", "late");
  std::optional<cg::FileInfo> got;
  cache_a.fetch(gass.address(), "exe/missing", checksum,
                [&](std::optional<cg::FileInfo> info) { got = std::move(info); });
  world.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->content, "late");
}

TEST_F(StagingCacheFixture, SitesCacheIndependently) {
  const std::uint64_t checksum = put_exe("exe/cas/1", "worker-v1");
  for (cg::StagingCache* cache : {&cache_a, &cache_b}) {
    cache->fetch(gass.address(), "exe/cas/1", checksum,
                 [](std::optional<cg::FileInfo>) {});
  }
  world.sim().run();
  // One transfer per site — a site cache never serves another site.
  EXPECT_EQ(gass.gets_served(), 2u);
  EXPECT_EQ(cache_a.misses(), 1u);
  EXPECT_EQ(cache_b.misses(), 1u);
}

// ---------- authenticated service ----------

namespace {

struct AuthGassFixture : public ::testing::Test {
  AuthGassFixture()
      : pki(condorg::util::Rng(3)),
        ca(pki, "/CN=CA"),
        user(ca.issue(pki, "/O=UW/CN=todd", 0.0, 86400.0)),
        stranger(ca.issue(pki, "/O=Elsewhere/CN=eve", 0.0, 86400.0)),
        server_host(world.add_host("server")),
        client_host(world.add_host("client")) {
    gsi::AuthConfig auth;
    auth.pki = &pki;
    auth.anchors[ca.name()] = ca.public_key();
    auth.gridmap.add("/O=UW/CN=todd", "todd");
    auth.require_auth = true;
    service = std::make_unique<cg::FileService>(server_host, world.net(),
                                                "gass", std::move(auth));
    service->store().put("data", "payload");
    client = std::make_unique<cg::FileClient>(client_host, world.net(),
                                              "client.rpc");
  }
  gsi::Pki pki;
  gsi::CertificateAuthority ca;
  gsi::Credential user;
  gsi::Credential stranger;
  cs::World world;
  cs::Host& server_host;
  cs::Host& client_host;
  std::unique_ptr<cg::FileService> service;
  std::unique_ptr<cg::FileClient> client;
};

}  // namespace

TEST_F(AuthGassFixture, AuthorizedProxySucceeds) {
  client->set_credential(user.delegate(pki, 0.0, 3600.0));
  std::optional<cg::FileInfo> got;
  client->get(service->address(), "data",
              [&](std::optional<cg::FileInfo> info) { got = std::move(info); });
  world.sim().run();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->content, "payload");
  EXPECT_EQ(service->auth_failures(), 0u);
}

TEST_F(AuthGassFixture, MissingCredentialRejected) {
  bool called = false;
  client->get(service->address(), "data",
              [&](std::optional<cg::FileInfo> info) {
                called = true;
                EXPECT_FALSE(info.has_value());
              });
  world.sim().run();
  EXPECT_TRUE(called);
  EXPECT_EQ(service->auth_failures(), 1u);
}

TEST_F(AuthGassFixture, UnmappedIdentityRejected) {
  client->set_credential(stranger.delegate(pki, 0.0, 3600.0));
  bool called = false;
  client->get(service->address(), "data",
              [&](std::optional<cg::FileInfo> info) {
                called = true;
                EXPECT_FALSE(info.has_value());
              });
  world.sim().run();
  EXPECT_TRUE(called);
  EXPECT_EQ(service->auth_failures(), 1u);
}

TEST_F(AuthGassFixture, ExpiredProxyRejected) {
  client->set_credential(user.delegate(pki, 0.0, 1.0));  // 1-second proxy
  world.sim().run_until(100.0);
  bool called = false;
  client->get(service->address(), "data",
              [&](std::optional<cg::FileInfo> info) {
                called = true;
                EXPECT_FALSE(info.has_value());
              });
  world.sim().run();
  EXPECT_TRUE(called);
  EXPECT_EQ(service->auth_failures(), 1u);
}
