// Invariant auditor over live campaigns: the standard check set must stay
// silent through a healthy run, through the §4.2 failure drills, and through
// a credential expiry cycle — and must fire when state is deliberately
// corrupted. Also pins the kernel's determinism self-check: one seed, one
// event-trace digest.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "condorg/core/agent.h"
#include "condorg/core/audit.h"
#include "condorg/core/broker.h"
#include "condorg/gsi/credential.h"
#include "condorg/sim/tracer.h"
#include "condorg/util/rng.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cs = condorg::sim;
namespace gsi = condorg::gsi;

namespace {

/// Two-site grid + one agent with a StandardAuditor attached to everything,
/// auditing every 32 dispatched events.
struct AuditedCampaign {
  explicit AuditedCampaign(std::uint64_t seed) : testbed(seed) {
    cw::SiteSpec pbs;
    pbs.name = "pbs.anl.gov";
    pbs.kind = cw::SiteKind::kPbs;
    pbs.cpus = 8;
    testbed.add_site(pbs);
    cw::SiteSpec lsf;
    lsf.name = "lsf.ncsa.edu";
    lsf.kind = cw::SiteKind::kLsf;
    lsf.cpus = 8;
    testbed.add_site(lsf);
    testbed.add_submit_host("submit.wisc.edu");
    agent = std::make_unique<core::CondorGAgent>(testbed.world(),
                                                 "submit.wisc.edu");
    agent->set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
    agent->start();
    auditor = std::make_unique<core::StandardAuditor>(testbed.world().sim(),
                                                      /*period=*/32);
    auditor->attach_agent(*agent);
    for (const auto& site : testbed.sites()) {
      auditor->attach_gatekeeper(*site->gatekeeper);
    }
  }

  core::JobDescription grid_job(double runtime = 300.0) {
    core::JobDescription desc;
    desc.universe = core::Universe::kGrid;
    desc.runtime_seconds = runtime;
    desc.output_size = 2048;
    return desc;
  }

  void run_to_completion(double deadline) {
    while (!agent->schedd().all_terminal() &&
           testbed.world().now() < deadline) {
      if (!testbed.world().sim().run_until(testbed.world().now() + 50.0)) {
        break;
      }
    }
  }

  cw::GridTestbed testbed;
  std::unique_ptr<core::CondorGAgent> agent;
  std::unique_ptr<core::StandardAuditor> auditor;
};

}  // namespace

TEST(StandardAuditor, SilentOnHealthyCampaign) {
  AuditedCampaign rig(42);
  for (int i = 0; i < 12; ++i) rig.agent->submit(rig.grid_job(600.0 + 30 * i));
  rig.run_to_completion(86400.0);
  EXPECT_TRUE(rig.agent->schedd().all_terminal());
  EXPECT_GT(rig.auditor->auditor().audits_run(), 0u);
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
}

TEST(StandardAuditor, SilentThroughFaultDrill) {
  AuditedCampaign rig(7);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(rig.agent->submit(rig.grid_job(2 * 3600.0)));
  }
  auto& world = rig.testbed.world();
  world.sim().run_until(1800.0);

  // F1: kill every JobManager process at site 0.
  for (const auto& [id, job] : rig.agent->schedd().jobs()) {
    if (job.gram_site == "pbs.anl.gov" && !job.gram_contact.empty()) {
      rig.testbed.site(0).gatekeeper->kill_jobmanager(job.gram_contact);
    }
  }
  world.sim().run_until(3600.0);
  // F2: crash the other site's front-end.
  rig.testbed.site(1).frontend->crash_for(1200.0);
  world.sim().run_until(6000.0);
  // F4: partition the submit machine from site 0.
  world.net().set_partitioned("submit.wisc.edu", "pbs.anl.gov", true);
  world.sim().schedule_at(world.now() + 900.0, [&world] {
    world.net().set_partitioned("submit.wisc.edu", "pbs.anl.gov", false);
  });
  world.sim().run_until(8000.0);
  // F3: crash the submit machine itself.
  rig.agent->host().crash_for(600.0);

  rig.run_to_completion(4 * 86400.0);
  EXPECT_TRUE(rig.agent->schedd().all_terminal());
  for (const auto id : ids) {
    EXPECT_EQ(rig.agent->query(id)->status, core::JobStatus::kCompleted);
  }
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
}

TEST(StandardAuditor, SilentThroughCredentialExpiry) {
  AuditedCampaign rig(99);
  gsi::Pki pki((condorg::util::Rng(9)));
  gsi::CertificateAuthority ca(pki, "/CN=CA");
  const gsi::Credential user =
      ca.issue(pki, "/O=UW/CN=jfrey", 0.0, 30 * 86400.0);
  rig.agent->credentials().set_credential(user.delegate(pki, 0.0, 3600.0));
  for (int i = 0; i < 6; ++i) {
    rig.agent->submit(rig.grid_job(3 * 3600.0));
  }
  // Proxy (1h) dies long before the jobs (3h): the manager must hold every
  // grid job, and held jobs satisfy the expired-proxy invariant.
  auto& world = rig.testbed.world();
  world.sim().run_until(4 * 3600.0);
  EXPECT_GE(rig.agent->credentials().holds_issued(), 1u);
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
  // The user reappears with a fresh proxy; the campaign finishes audited.
  rig.agent->credentials().set_credential(
      user.delegate(pki, world.now(), 86400.0));
  rig.run_to_completion(3 * 86400.0);
  EXPECT_TRUE(rig.agent->schedd().all_terminal());
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
}

TEST(StandardAuditor, FiresOnCorruptedHoldReason) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  core::Schedd schedd(host);
  core::StandardAuditor auditor(world.sim(), /*period=*/1);
  auditor.attach_schedd(schedd);
  const auto id = schedd.submit(core::JobDescription{});
  schedd.hold(id, "some reason");
  // Corrupt the queue: a held job must always carry its reason.
  schedd.with_job(id, [](core::Job& job) { job.hold_reason.clear(); });
  world.sim().schedule_at(1.0, [] {});
  world.sim().run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("held with no reason"), std::string::npos);
}

TEST(StandardAuditor, FiresOnNonMonotonicSequenceNumber) {
  AuditedCampaign rig(5);
  const auto id = rig.agent->submit(rig.grid_job(3600.0));
  auto& world = rig.testbed.world();
  while (rig.agent->query(id)->gram_seq == 0 && world.now() < 3600.0) {
    world.sim().run_until(world.now() + 50.0);
  }
  ASSERT_NE(rig.agent->query(id)->gram_seq, 0u);
  // Corrupt the queue: a sequence number the client allocator never issued.
  rig.agent->schedd().with_job(
      id, [](core::Job& job) { job.gram_seq = 999999; });
  world.sim().run_until(world.now() + 300.0);
  EXPECT_FALSE(rig.auditor->ok());
  EXPECT_NE(rig.auditor->report().find("allocator"), std::string::npos);
}

TEST(StandardAuditor, TraceRootsSilentOnTracedCampaign) {
  AuditedCampaign rig(41);
  rig.testbed.world().sim().tracer().set_enabled(true);
  for (int i = 0; i < 8; ++i) rig.agent->submit(rig.grid_job(600.0 + 45 * i));
  rig.run_to_completion(86400.0);
  EXPECT_TRUE(rig.agent->schedd().all_terminal());
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
  // Every root the campaign opened is closed exactly once.
  for (const auto& [host, job_id, state] :
       rig.testbed.world().sim().tracer().root_states()) {
    EXPECT_EQ(state, cs::Tracer::RootState::kClosed)
        << "job " << job_id << " on " << host;
  }
}

TEST(StandardAuditor, FiresOnOrphanRootSpan) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  world.sim().tracer().set_enabled(true);
  core::Schedd schedd(host);
  core::StandardAuditor auditor(world.sim(), /*period=*/1);
  auditor.attach_schedd(schedd);
  schedd.submit(core::JobDescription{});
  // A root span for a job the Schedd has never heard of.
  world.sim().tracer().begin_job(999, "submit", host.epoch());
  world.sim().schedule_at(1.0, [] {});
  world.sim().run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("orphan root span"), std::string::npos);
}

TEST(StandardAuditor, FiresOnDuplicatedRootSpan) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  world.sim().tracer().set_enabled(true);
  core::Schedd schedd(host);
  core::StandardAuditor auditor(world.sim(), /*period=*/1);
  auditor.attach_schedd(schedd);
  const auto id = schedd.submit(core::JobDescription{});
  // Corrupt the trace: a second begin for an id that already has a root.
  world.sim().tracer().begin_job(id, "submit", host.epoch());
  world.sim().schedule_at(1.0, [] {});
  world.sim().run();
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("duplicated root span"), std::string::npos);
}

// ---------- determinism self-check ----------

namespace {

std::uint64_t campaign_digest(std::uint64_t seed) {
  AuditedCampaign rig(seed);
  for (int i = 0; i < 8; ++i) rig.agent->submit(rig.grid_job(900.0 + 60 * i));
  rig.run_to_completion(86400.0);
  EXPECT_TRUE(rig.agent->schedd().all_terminal());
  EXPECT_TRUE(rig.auditor->ok()) << rig.auditor->report();
  return rig.testbed.world().sim().trace_digest();
}

}  // namespace

TEST(Determinism, SameSeedSameTraceDigest) {
  const std::uint64_t first = campaign_digest(2001);
  const std::uint64_t second = campaign_digest(2001);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, campaign_digest(2002));
}
