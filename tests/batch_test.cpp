#include <gtest/gtest.h>

#include "condorg/batch/background_load.h"
#include "condorg/batch/fair_share_scheduler.h"
#include "condorg/batch/fifo_scheduler.h"
#include "condorg/sim/world.h"

namespace cb = condorg::batch;
namespace cs = condorg::sim;

namespace {

cb::JobRequest job(const std::string& owner, double runtime, int cpus = 1,
                   double walltime = 1e18) {
  cb::JobRequest r;
  r.owner = owner;
  r.runtime_seconds = runtime;
  r.cpus = cpus;
  r.walltime_limit_seconds = walltime;
  return r;
}

}  // namespace

// ---------- base mechanics (via FifoScheduler, no backfill) ----------

TEST(LocalScheduler, RunsJobToCompletion) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 4, /*backfill=*/false);
  const auto id = pbs.submit(job("alice", 100.0));
  EXPECT_EQ(pbs.status(id)->state, cb::JobState::kRunning);
  EXPECT_EQ(pbs.busy_cpus(), 1);
  sim.run();
  EXPECT_EQ(pbs.status(id)->state, cb::JobState::kCompleted);
  EXPECT_DOUBLE_EQ(pbs.status(id)->end_time, 100.0);
  EXPECT_EQ(pbs.busy_cpus(), 0);
  EXPECT_DOUBLE_EQ(pbs.cpu_seconds_delivered(), 100.0);
}

TEST(LocalScheduler, QueuesWhenFull) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 2, false);
  pbs.submit(job("a", 100.0, 2));
  const auto waiting = pbs.submit(job("b", 50.0, 1));
  EXPECT_EQ(pbs.status(waiting)->state, cb::JobState::kQueued);
  EXPECT_EQ(pbs.queue_length(), 1u);
  sim.run();
  EXPECT_EQ(pbs.status(waiting)->state, cb::JobState::kCompleted);
  // b waited for a: started at t=100.
  EXPECT_DOUBLE_EQ(pbs.status(waiting)->start_time, 100.0);
  EXPECT_DOUBLE_EQ(pbs.status(waiting)->queue_wait(), 100.0);
}

TEST(LocalScheduler, WalltimeLimitKillsJob) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 1, false);
  const auto id = pbs.submit(job("a", 1000.0, 1, /*walltime=*/300.0));
  sim.run();
  EXPECT_EQ(pbs.status(id)->state, cb::JobState::kWalltimeExceeded);
  EXPECT_DOUBLE_EQ(pbs.status(id)->end_time, 300.0);
  // Killed jobs deliver no useful CPU-seconds.
  EXPECT_DOUBLE_EQ(pbs.cpu_seconds_delivered(), 0.0);
}

TEST(LocalScheduler, CancelQueuedAndRunning) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 1, false);
  const auto running = pbs.submit(job("a", 100.0));
  const auto queued = pbs.submit(job("b", 100.0));
  EXPECT_TRUE(pbs.cancel(queued));
  EXPECT_EQ(pbs.status(queued)->state, cb::JobState::kCancelled);
  EXPECT_TRUE(pbs.cancel(running));
  EXPECT_EQ(pbs.status(running)->state, cb::JobState::kCancelled);
  EXPECT_EQ(pbs.busy_cpus(), 0);
  EXPECT_FALSE(pbs.cancel(running));         // already terminal
  EXPECT_FALSE(pbs.cancel(99999));           // unknown
  sim.run();
  // The cancelled running job must not "complete" later.
  EXPECT_EQ(pbs.status(running)->state, cb::JobState::kCancelled);
}

TEST(LocalScheduler, CompletionHandlersFire) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 1, false);
  std::vector<cb::JobState> states;
  pbs.add_completion_handler(
      [&](const cb::JobRecord& r) { states.push_back(r.state); });
  pbs.submit(job("a", 10.0));
  const auto cancelled = pbs.submit(job("b", 10.0));
  pbs.cancel(cancelled);
  sim.run();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], cb::JobState::kCancelled);
  EXPECT_EQ(states[1], cb::JobState::kCompleted);
  EXPECT_EQ(pbs.history().size(), 2u);
}

TEST(LocalScheduler, UnknownIdStatus) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 1, false);
  EXPECT_FALSE(pbs.status(42).has_value());
}

// ---------- FIFO + backfill ----------

TEST(FifoScheduler, NoBackfillBlocksBehindWideJob) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 4, /*backfill=*/false);
  pbs.submit(job("a", 100.0, 3));        // running, 1 cpu free
  pbs.submit(job("b", 10.0, 4));         // head of queue, needs 4
  const auto narrow = pbs.submit(job("c", 10.0, 1));  // would fit, but FIFO
  EXPECT_EQ(pbs.status(narrow)->state, cb::JobState::kQueued);
  sim.run_until(50.0);
  EXPECT_EQ(pbs.status(narrow)->state, cb::JobState::kQueued);
}

TEST(FifoScheduler, BackfillStartsNarrowJob) {
  cs::Simulation sim;
  cb::FifoScheduler pbs(sim, "pbs", 4, /*backfill=*/true);
  pbs.submit(job("a", 100.0, 3));
  pbs.submit(job("b", 10.0, 4));
  const auto narrow = pbs.submit(job("c", 10.0, 1));
  EXPECT_EQ(pbs.status(narrow)->state, cb::JobState::kRunning);
  sim.run();
  EXPECT_EQ(pbs.status(narrow)->state, cb::JobState::kCompleted);
}

// ---------- fair share ----------

TEST(FairShareScheduler, AlternatesBetweenOwners) {
  cs::Simulation sim;
  cb::FairShareScheduler lsf(sim, "lsf", 1);
  // alice floods the queue first; bob submits one job after.
  std::vector<std::uint64_t> alice_ids;
  for (int i = 0; i < 3; ++i) alice_ids.push_back(lsf.submit(job("alice", 100.0)));
  const auto bob = lsf.submit(job("bob", 100.0));
  sim.run();
  // bob must not wait behind all three alice jobs: after alice's first job
  // finishes she has 100 cpu-seconds of usage, bob has 0, so bob goes next.
  EXPECT_DOUBLE_EQ(lsf.status(bob)->start_time, 100.0);
  EXPECT_GT(lsf.status(alice_ids[2])->start_time,
            lsf.status(bob)->start_time);
}

TEST(FairShareScheduler, SkipsTooWideJobs) {
  cs::Simulation sim;
  cb::FairShareScheduler lsf(sim, "lsf", 2);
  lsf.submit(job("a", 50.0, 2));
  const auto wide = lsf.submit(job("b", 10.0, 4));  // never fits
  const auto fits = lsf.submit(job("c", 10.0, 1));
  sim.run_until(200.0);
  EXPECT_EQ(lsf.status(wide)->state, cb::JobState::kQueued);
  EXPECT_EQ(lsf.status(fits)->state, cb::JobState::kCompleted);
}

// ---------- background load ----------

TEST(BackgroundLoad, GeneratesFluctuatingLoad) {
  cs::Simulation sim(77);
  cb::FifoScheduler pbs(sim, "pbs", 16);
  cb::BackgroundLoadOptions options;
  options.mean_interarrival_seconds = 60.0;
  options.mean_runtime_seconds = 600.0;
  cb::BackgroundLoad load(sim, pbs, options, sim.make_rng("bg"));
  load.start();
  sim.run_until(4 * 3600.0);
  load.stop();
  EXPECT_GT(load.jobs_submitted(), 100u);
  // The site actually did work.
  EXPECT_GT(pbs.cpu_seconds_delivered(), 0.0);
  sim.run();  // drain
  EXPECT_EQ(pbs.busy_cpus(), 0);
}

TEST(BackgroundLoad, StopHaltsArrivals) {
  cs::Simulation sim(78);
  cb::FifoScheduler pbs(sim, "pbs", 4);
  cb::BackgroundLoad load(sim, pbs, {}, sim.make_rng("bg"));
  load.start();
  sim.run_until(3600.0);
  const auto count = load.jobs_submitted();
  load.stop();
  sim.run_until(2 * 3600.0);
  EXPECT_EQ(load.jobs_submitted(), count);
}
