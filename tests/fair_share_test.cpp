#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "condorg/batch/fair_share_scheduler.h"

namespace cb = condorg::batch;

namespace {

TEST(FairShareTable, UsageDecaysWithHalfLife) {
  cb::FairShareTable::Options options;
  options.half_life = 100.0;
  cb::FairShareTable table(options);
  table.charge("ada", 8.0, /*now=*/0.0);

  EXPECT_DOUBLE_EQ(table.effective_usage("ada", 0.0), 8.0);
  EXPECT_NEAR(table.effective_usage("ada", 100.0), 4.0, 1e-9);
  EXPECT_NEAR(table.effective_usage("ada", 200.0), 2.0, 1e-9);
  EXPECT_NEAR(table.effective_usage("ada", 300.0), 1.0, 1e-9);
  // Unknown users carry no usage.
  EXPECT_DOUBLE_EQ(table.effective_usage("ghost", 500.0), 0.0);
}

TEST(FairShareTable, ChargesAccumulateAcrossDecay) {
  cb::FairShareTable::Options options;
  options.half_life = 100.0;
  cb::FairShareTable table(options);
  table.charge("ada", 4.0, 0.0);
  table.charge("ada", 4.0, 100.0);  // the first charge has halved by now
  EXPECT_NEAR(table.effective_usage("ada", 100.0), 6.0, 1e-9);
}

TEST(FairShareTable, OrderIsAscendingEffectiveUsage) {
  cb::FairShareTable table;
  table.note_user("heavy");
  table.note_user("light");
  table.note_user("idle");
  table.charge("heavy", 10.0, 0.0);
  table.charge("light", 1.0, 0.0);

  const std::vector<std::string> order = table.priority_order(0.0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "idle");
  EXPECT_EQ(order[1], "light");
  EXPECT_EQ(order[2], "heavy");
}

TEST(FairShareTable, StarvationPromotesPastUsageOrder) {
  cb::FairShareTable::Options options;
  options.starvation_threshold = 3;
  cb::FairShareTable table(options);
  table.note_user("rich");
  table.note_user("starving");
  // `starving` has *more* usage, so it would normally sort behind `rich`...
  table.charge("starving", 5.0, 0.0);

  for (int i = 0; i < 2; ++i) table.note_starved("starving");
  EXPECT_EQ(table.priority_order(0.0).front(), "rich");

  // ...until it crosses the starvation threshold.
  table.note_starved("starving");
  EXPECT_EQ(table.starvation("starving"), 3);
  EXPECT_EQ(table.priority_order(0.0).front(), "starving");

  // A served cycle resets the count and the usage order reasserts itself.
  table.note_served("starving");
  EXPECT_EQ(table.starvation("starving"), 0);
  EXPECT_EQ(table.priority_order(0.0).front(), "rich");
}

TEST(FairShareTable, MoreStarvedUserWinsAmongPromoted) {
  cb::FairShareTable::Options options;
  options.starvation_threshold = 2;
  cb::FairShareTable table(options);
  table.note_user("a");
  table.note_user("b");
  for (int i = 0; i < 2; ++i) table.note_starved("b");
  for (int i = 0; i < 4; ++i) table.note_starved("a");
  const auto order = table.priority_order(0.0);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
}

// Permutation oracle: against randomized charge/starve histories, the
// order must (a) be a permutation of the noted users and (b) equal a
// from-scratch std::sort by the documented key — starving users first
// (count desc), then ascending effective usage, names breaking ties.
TEST(FairShareTable, RandomizedOrderMatchesSortOracle) {
  std::mt19937 rng(2001);
  for (int trial = 0; trial < 50; ++trial) {
    cb::FairShareTable::Options options;
    options.half_life = 50.0 + 100.0 * (trial % 3);
    options.starvation_threshold = 2 + trial % 4;
    cb::FairShareTable table(options);

    std::vector<std::string> users;
    const int n = 2 + static_cast<int>(rng() % 7);
    for (int i = 0; i < n; ++i) {
      users.push_back("user-" + std::to_string(i));
      table.note_user(users.back());
    }
    double now = 0.0;
    for (int step = 0; step < 40; ++step) {
      now += static_cast<double>(rng() % 100);
      const std::string& user = users[rng() % users.size()];
      switch (rng() % 3) {
        case 0:
          table.charge(user, 1.0 + static_cast<double>(rng() % 8), now);
          break;
        case 1:
          table.note_starved(user);
          break;
        default:
          table.note_served(user);
          break;
      }
    }

    const std::vector<std::string> order = table.priority_order(now);
    ASSERT_EQ(order.size(), users.size());
    std::vector<std::string> sorted_order = order;
    std::sort(sorted_order.begin(), sorted_order.end());
    std::vector<std::string> sorted_users = users;
    std::sort(sorted_users.begin(), sorted_users.end());
    EXPECT_EQ(sorted_order, sorted_users) << "not a permutation";

    std::vector<std::string> oracle = users;
    const int threshold = options.starvation_threshold;
    std::sort(oracle.begin(), oracle.end(),
              [&](const std::string& a, const std::string& b) {
                const bool sa = table.starvation(a) >= threshold;
                const bool sb = table.starvation(b) >= threshold;
                if (sa != sb) return sa;
                if (sa && sb && table.starvation(a) != table.starvation(b)) {
                  return table.starvation(a) > table.starvation(b);
                }
                const double ua = table.effective_usage(a, now);
                const double ub = table.effective_usage(b, now);
                if (ua != ub) return ua < ub;
                return a < b;
              });
    EXPECT_EQ(order, oracle) << "trial " << trial;
  }
}

}  // namespace
