// Portal front-end: batched admission, backpressure, exactly-once.
//
// The portal persists every admission before acknowledging and the runner
// persists a delivery marker before acknowledging, so a lost ack on either
// hop is retried and absorbed — no schedule of crashes may ever admit a
// user's batch into their Schedd twice (explore.portal_storm model-checks
// the same property across systematic crash injection).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "condorg/condor/collector.h"
#include "condorg/core/pool_runner.h"
#include "condorg/core/portal.h"
#include "condorg/core/portal_client.h"
#include "condorg/core/schedd.h"
#include "condorg/sim/world.h"

namespace cc = condorg::condor;
namespace co = condorg::core;
namespace cs = condorg::sim;

namespace {

struct PortalFixture : public ::testing::Test {
  struct User {
    std::unique_ptr<co::Schedd> schedd;
    std::unique_ptr<co::PoolRunner> runner;
    std::unique_ptr<co::PortalClient> client;
  };

  PortalFixture()
      : central(world.add_host("portal.grid")),
        feeder(world.add_host("feeder.grid")),
        collector(central, world.net()) {}

  void make_portal(co::PortalOptions options = {}) {
    portal = std::make_unique<co::Portal>(central, world.net(), options);
    portal->start();
  }

  User& add_user(const std::string& name, std::uint64_t total_jobs,
                 std::uint64_t batch_size = 2) {
    auto user = std::make_unique<User>();
    cs::Host& host = world.add_host(name + ".grid");
    user->schedd = std::make_unique<co::Schedd>(host);

    co::PoolRunnerOptions ropt;
    ropt.collector = collector.address();
    ropt.advertise_period = 30.0;
    user->runner =
        std::make_unique<co::PoolRunner>(*user->schedd, world.net(), ropt);
    user->runner->start();

    co::PortalClientOptions copt;
    copt.portal = portal->address();
    copt.deliver_to = user->runner->address();
    copt.user = name;
    copt.total_jobs = total_jobs;
    copt.batch_size = batch_size;
    copt.retry_backoff = 3.0;
    user->client =
        std::make_unique<co::PortalClient>(host, world.net(), copt);
    user->client->start();

    users.push_back(std::move(user));
    return *users.back();
  }

  /// Raw portal.submit, bypassing the client (for dup/busy paths). The
  /// reply routes to an unregistered service and is dropped.
  void raw_submit(const std::string& user, std::uint64_t seq,
                  std::uint64_t count, const std::string& deliver_to) {
    cs::Message message;
    message.from = {feeder.name(), "test"};
    message.to = portal->address();
    message.type = "portal.submit";
    message.body.set("user", user);
    message.body.set_uint("seq", seq);
    message.body.set_uint("count", count);
    message.body.set("deliver_to", deliver_to);
    message.body.set("rpc.reply_to", feeder.name() + "/test");
    message.body.set_uint("rpc.id", seq);
    world.net().send(std::move(message));
  }

  void run_for(double seconds) {
    world.sim().run_until(world.now() + seconds);
  }

  cs::World world{17};
  cs::Host& central;
  cs::Host& feeder;
  cc::Collector collector;
  std::unique_ptr<co::Portal> portal;
  std::vector<std::unique_ptr<User>> users;
};

TEST_F(PortalFixture, BatchesFlowIntoPerUserSchedds) {
  make_portal();
  User& ada = add_user("ada", 4);
  User& bob = add_user("bob", 3);
  run_for(120.0);

  EXPECT_TRUE(ada.client->drained());
  EXPECT_TRUE(bob.client->drained());
  EXPECT_EQ(ada.schedd->jobs().size(), 4u);
  EXPECT_EQ(bob.schedd->jobs().size(), 3u);
  EXPECT_EQ(portal->jobs_admitted(), 7u);
  EXPECT_EQ(portal->queue_depth(), 0u);  // everything delivered
  EXPECT_EQ(portal->deliveries_acked(), portal->batches_admitted());
  EXPECT_EQ(ada.runner->duplicate_deliveries(), 0u);
  // Each runner published its first idle job as an ad in the central pool.
  EXPECT_EQ(collector.shard_size("job/Vanilla/Idle"), 2u);
}

TEST_F(PortalFixture, DuplicateSubmitIsAbsorbedByTheAdmissionRecord) {
  make_portal();
  raw_submit("ada", 1, 2, "nowhere.grid/pool_runner");
  run_for(2.0);
  EXPECT_EQ(portal->jobs_admitted(), 2u);

  // Client retry after a lost ack: same user, same seq.
  raw_submit("ada", 1, 2, "nowhere.grid/pool_runner");
  run_for(2.0);
  EXPECT_EQ(portal->duplicate_submits(), 1u);
  EXPECT_EQ(portal->jobs_admitted(), 2u) << "dup must not re-admit";
  EXPECT_EQ(portal->queue_depth(), 1u);
}

TEST_F(PortalFixture, FullQueueRejectsBusy) {
  co::PortalOptions options;
  options.max_queue_depth = 2;
  make_portal(options);

  // Deliveries to a host that does not exist keep the queue full.
  raw_submit("ada", 1, 1, "nowhere.grid/pool_runner");
  raw_submit("ada", 2, 1, "nowhere.grid/pool_runner");
  run_for(2.0);
  EXPECT_EQ(portal->queue_depth(), 2u);

  raw_submit("ada", 3, 1, "nowhere.grid/pool_runner");
  run_for(2.0);
  EXPECT_EQ(portal->busy_rejections(), 1u);
  EXPECT_EQ(portal->queue_depth(), 2u);
  EXPECT_EQ(portal->batches_admitted(), 2u);
}

TEST_F(PortalFixture, RunnerAtCapacityRejectsDeliveryUntilSpaceFrees) {
  make_portal();
  User& ada = add_user("ada", 6, /*batch_size=*/6);
  // max_active defaults to 8 >= 6, so one oversized batch fits; shrink it.
  // Rebuild the runner with a tight cap instead.
  co::PoolRunnerOptions ropt;
  ropt.collector = collector.address();
  ropt.max_active = 4;
  ada.runner = nullptr;  // unregister first (one service name per host)
  ada.runner = std::make_unique<co::PoolRunner>(*ada.schedd, world.net(),
                                                ropt);
  ada.runner->start();

  run_for(120.0);
  // The 6-job batch can never fit under max_active=4: it stays queued at
  // the portal and the runner keeps rejecting it busy.
  EXPECT_EQ(ada.schedd->jobs().size(), 0u);
  EXPECT_EQ(portal->queue_depth(), 1u);
  EXPECT_GT(ada.runner->busy_rejections(), 0u);
}

TEST_F(PortalFixture, PortalCrashNeverDuplicatesAdmission) {
  make_portal();
  User& ada = add_user("ada", 4, /*batch_size=*/1);
  User& bob = add_user("bob", 4, /*batch_size=*/1);

  // Crash the portal host twice mid-stream; the persisted admission +
  // pending records survive, the clients retry lost acks, the runner
  // markers absorb redeliveries.
  world.sim().schedule_at(3.0, [this] { central.crash_for(5.0); });
  world.sim().schedule_at(20.0, [this] { central.crash_for(5.0); });
  run_for(300.0);

  EXPECT_TRUE(ada.client->drained());
  EXPECT_TRUE(bob.client->drained());
  EXPECT_EQ(ada.schedd->jobs().size(), 4u) << "exactly once, no dups";
  EXPECT_EQ(bob.schedd->jobs().size(), 4u);
  EXPECT_EQ(portal->queue_depth(), 0u);
}

TEST_F(PortalFixture, SubmitHostCrashResumesWithoutDoubleSubmitting) {
  make_portal();
  User& ada = add_user("ada", 4, /*batch_size=*/1);

  world.sim().schedule_at(4.0, [this] {
    world.host("ada.grid").crash_for(6.0);
  });
  run_for(300.0);

  // The client's persisted progress and the runner's delivery markers mean
  // the rebooted submit host picks up where it left off.
  EXPECT_TRUE(ada.client->drained());
  EXPECT_EQ(ada.schedd->jobs().size(), 4u);
}

}  // namespace
