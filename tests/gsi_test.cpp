#include <gtest/gtest.h>

#include "condorg/gsi/credential.h"
#include "condorg/gsi/gridmap.h"
#include "condorg/gsi/myproxy.h"
#include "condorg/gsi/pki.h"
#include "condorg/sim/world.h"

namespace gsi = condorg::gsi;
namespace cs = condorg::sim;

namespace {

struct GsiFixture : public ::testing::Test {
  GsiFixture()
      : pki(condorg::util::Rng(7)),
        ca(pki, "/C=US/O=Globus/CN=Globus CA"),
        user(ca.issue(pki, "/O=UW/CN=jfrey", 0.0, 365 * 86400.0)) {
    anchors[ca.name()] = ca.public_key();
  }
  gsi::Pki pki;
  gsi::CertificateAuthority ca;
  gsi::Credential user;
  gsi::TrustAnchors anchors;
};

}  // namespace

// ---------- PKI ----------

TEST(Pki, SignVerifyRoundTrip) {
  gsi::Pki pki((condorg::util::Rng(1)));
  const auto keys = pki.generate_keypair();
  const auto sig = gsi::Pki::sign("hello", keys.private_key);
  EXPECT_TRUE(pki.verify("hello", sig, keys.public_key));
  EXPECT_FALSE(pki.verify("hellp", sig, keys.public_key));
  EXPECT_FALSE(pki.verify("hello", sig + 1, keys.public_key));
}

TEST(Pki, WrongKeyFailsVerification) {
  gsi::Pki pki((condorg::util::Rng(1)));
  const auto a = pki.generate_keypair();
  const auto b = pki.generate_keypair();
  const auto sig = gsi::Pki::sign("msg", a.private_key);
  EXPECT_FALSE(pki.verify("msg", sig, b.public_key));
  EXPECT_FALSE(pki.verify("msg", sig, 0xdeadbeef));  // unregistered key
}

// ---------- certificates & chains ----------

TEST_F(GsiFixture, EecVerifies) {
  const auto identity = gsi::verify_credential(pki, user, anchors, 100.0);
  ASSERT_TRUE(identity.has_value());
  EXPECT_EQ(*identity, "/O=UW/CN=jfrey");
  EXPECT_EQ(user.delegation_depth(), 0);
}

TEST_F(GsiFixture, UntrustedCaRejected) {
  gsi::CertificateAuthority rogue(pki, "/CN=Rogue CA");
  const auto cred = rogue.issue(pki, "/O=UW/CN=jfrey", 0.0, 86400.0);
  EXPECT_FALSE(gsi::verify_credential(pki, cred, anchors, 10.0).has_value());
}

TEST_F(GsiFixture, ProxyChainVerifiesAndPreservesIdentity) {
  const auto proxy = user.delegate(pki, 0.0, 43200.0);
  EXPECT_EQ(proxy.delegation_depth(), 1);
  EXPECT_EQ(proxy.identity(), "/O=UW/CN=jfrey");
  EXPECT_EQ(proxy.leaf().subject, "/O=UW/CN=jfrey/CN=proxy");
  const auto identity = gsi::verify_credential(pki, proxy, anchors, 1000.0);
  ASSERT_TRUE(identity);
  EXPECT_EQ(*identity, "/O=UW/CN=jfrey");

  // Second-level delegation (submit machine -> remote GRAM server).
  const auto proxy2 = proxy.delegate(pki, 100.0, 3600.0);
  EXPECT_EQ(proxy2.delegation_depth(), 2);
  EXPECT_TRUE(gsi::verify_credential(pki, proxy2, anchors, 500.0));
}

TEST_F(GsiFixture, ExpiredProxyRejectedButParentStillValid) {
  const auto proxy = user.delegate(pki, 0.0, 100.0);
  EXPECT_TRUE(gsi::verify_credential(pki, proxy, anchors, 50.0));
  EXPECT_FALSE(gsi::verify_credential(pki, proxy, anchors, 101.0));
  EXPECT_TRUE(gsi::verify_credential(pki, user, anchors, 101.0));
  EXPECT_FALSE(proxy.valid_at(101.0));
  EXPECT_DOUBLE_EQ(proxy.expires_at(), 100.0);
}

TEST_F(GsiFixture, ProxyLifetimeClampedToParent) {
  const auto short_user = ca.issue(pki, "/O=UW/CN=x", 0.0, 1000.0);
  const auto proxy = short_user.delegate(pki, 900.0, 3600.0);
  EXPECT_DOUBLE_EQ(proxy.leaf().not_after, 1000.0);
}

TEST_F(GsiFixture, TamperedChainRejected) {
  auto proxy = user.delegate(pki, 0.0, 43200.0);
  // Forge: replace the proxy subject (e.g. to impersonate another user).
  auto chain = proxy.chain();
  chain[1].subject = "/O=UW/CN=mallory/CN=proxy";
  EXPECT_FALSE(gsi::verify_chain(pki, chain, anchors, 10.0).has_value());

  // Forge: proxy pretending to be an EEC at the chain head.
  auto chain2 = proxy.chain();
  chain2.erase(chain2.begin());
  EXPECT_FALSE(gsi::verify_chain(pki, chain2, anchors, 10.0).has_value());

  // Forge: extend validity without re-signing.
  auto chain3 = proxy.chain();
  chain3[1].not_after += 1e6;
  EXPECT_FALSE(gsi::verify_chain(pki, chain3, anchors, 10.0).has_value());
}

TEST_F(GsiFixture, SignatureWithProxyKey) {
  const auto proxy = user.delegate(pki, 0.0, 43200.0);
  const auto sig = proxy.sign("submit job 42");
  EXPECT_TRUE(pki.verify("submit job 42", sig, proxy.leaf().public_key));
  EXPECT_FALSE(pki.verify("submit job 43", sig, proxy.leaf().public_key));
  // The proxy's signature does NOT verify against the EEC key — separate
  // keypair, which is the whole point of proxy credentials.
  EXPECT_FALSE(pki.verify("submit job 42", sig, user.leaf().public_key));
}

TEST_F(GsiFixture, SerializeDeserializeRoundTrip) {
  const auto proxy = user.delegate(pki, 0.0, 43200.0).delegate(pki, 1.0, 3600.0);
  const auto restored = gsi::Credential::deserialize(proxy.serialize());
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->delegation_depth(), 2);
  EXPECT_EQ(restored->identity(), proxy.identity());
  EXPECT_TRUE(gsi::verify_credential(pki, *restored, anchors, 100.0));
  // Restored credential can still sign.
  const auto sig = restored->sign("x");
  EXPECT_TRUE(pki.verify("x", sig, proxy.leaf().public_key));
}

TEST(CredentialSerialization, MalformedInputsRejected) {
  EXPECT_FALSE(gsi::Credential::deserialize("").has_value());
  EXPECT_FALSE(gsi::Credential::deserialize("garbage").has_value());
  EXPECT_FALSE(gsi::Credential::deserialize("123").has_value());
  EXPECT_FALSE(gsi::Certificate::deserialize("a\x1e b").has_value());
}

TEST(EmptyCredential, IsInvalid) {
  const gsi::Credential cred;
  EXPECT_TRUE(cred.empty());
  EXPECT_FALSE(cred.valid_at(0.0));
}

// ---------- gridmap ----------

TEST(Gridmap, MapsAndNormalizesProxies) {
  gsi::Gridmap map;
  map.add("/O=UW/CN=jfrey", "jfrey");
  EXPECT_EQ(map.map("/O=UW/CN=jfrey"), "jfrey");
  EXPECT_EQ(map.map("/O=UW/CN=jfrey/CN=proxy"), "jfrey");
  EXPECT_EQ(map.map("/O=UW/CN=jfrey/CN=proxy/CN=proxy"), "jfrey");
  EXPECT_FALSE(map.map("/O=UW/CN=mallory").has_value());
  EXPECT_TRUE(map.authorized("/O=UW/CN=jfrey/CN=proxy"));
  EXPECT_TRUE(map.remove("/O=UW/CN=jfrey/CN=proxy"));
  EXPECT_FALSE(map.authorized("/O=UW/CN=jfrey"));
}

TEST(Gridmap, AddWithProxySubjectNormalizes) {
  gsi::Gridmap map;
  map.add("/O=UW/CN=u/CN=proxy", "u");
  EXPECT_EQ(map.map("/O=UW/CN=u"), "u");
  EXPECT_EQ(map.size(), 1u);
}

// ---------- MyProxy ----------

namespace {

struct MyProxyFixture : public ::testing::Test {
  MyProxyFixture()
      : pki(condorg::util::Rng(11)),
        ca(pki, "/CN=CA"),
        user(ca.issue(pki, "/O=UW/CN=miron", 0.0, 30 * 86400.0)),
        server_host(world.add_host("myproxy.ncsa.edu")),
        client_host(world.add_host("submit.wisc.edu")),
        server(server_host, world.net(), pki),
        client(client_host, world.net(), "myproxy.client") {
    anchors[ca.name()] = ca.public_key();
  }
  gsi::Pki pki;
  gsi::CertificateAuthority ca;
  gsi::Credential user;
  gsi::TrustAnchors anchors;
  cs::World world;
  cs::Host& server_host;
  cs::Host& client_host;
  gsi::MyProxyServer server;
  gsi::MyProxyClient client;
};

}  // namespace

TEST_F(MyProxyFixture, StoreAndRetrieveShortProxy) {
  // Store a week-long proxy; retrieve a 12-hour one, as in §4.3.
  const auto week_proxy = user.delegate(pki, 0.0, 7 * 86400.0);
  bool stored = false;
  client.store(server.address(), "miron", "s3cret", week_proxy,
               [&](bool ok) { stored = ok; });
  world.sim().run();
  ASSERT_TRUE(stored);
  EXPECT_EQ(server.stored_count(), 1u);

  std::optional<gsi::Credential> got;
  client.get(server.address(), "miron", "s3cret", 12 * 3600.0,
             [&](std::optional<gsi::Credential> c) { got = std::move(c); });
  world.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->identity(), "/O=UW/CN=miron");
  EXPECT_EQ(got->delegation_depth(), 2);  // EEC -> week proxy -> short proxy
  EXPECT_LE(got->expires_at(), world.now() + 12 * 3600.0 + 1.0);
  EXPECT_TRUE(gsi::verify_credential(pki, *got, anchors, world.now() + 100));
  EXPECT_EQ(server.proxies_issued(), 1u);
}

TEST_F(MyProxyFixture, WrongPassphraseRejected) {
  const auto proxy = user.delegate(pki, 0.0, 7 * 86400.0);
  client.store(server.address(), "miron", "s3cret", proxy, [](bool) {});
  world.sim().run();
  bool called = false;
  client.get(server.address(), "miron", "wrong", 3600.0,
             [&](std::optional<gsi::Credential> c) {
               called = true;
               EXPECT_FALSE(c.has_value());
             });
  world.sim().run();
  EXPECT_TRUE(called);
}

TEST_F(MyProxyFixture, UnknownUserRejected) {
  bool called = false;
  client.get(server.address(), "nobody", "x", 3600.0,
             [&](std::optional<gsi::Credential> c) {
               called = true;
               EXPECT_FALSE(c.has_value());
             });
  world.sim().run();
  EXPECT_TRUE(called);
}

TEST_F(MyProxyFixture, RepositorySurvivesServerCrash) {
  const auto proxy = user.delegate(pki, 0.0, 7 * 86400.0);
  client.store(server.address(), "miron", "s3cret", proxy, [](bool) {});
  world.sim().run();

  server_host.crash();
  server_host.restart();  // boot function reinstalls the service handler

  std::optional<gsi::Credential> got;
  client.get(server.address(), "miron", "s3cret", 3600.0,
             [&](std::optional<gsi::Credential> c) { got = std::move(c); });
  world.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->identity(), "/O=UW/CN=miron");
}

TEST_F(MyProxyFixture, ExpiredStoredCredentialRefused) {
  const auto proxy = user.delegate(pki, 0.0, 10.0);  // expires at t=10
  client.store(server.address(), "miron", "s3cret", proxy, [](bool) {});
  world.sim().run();
  world.sim().run_until(1000.0);
  bool called = false;
  client.get(server.address(), "miron", "s3cret", 3600.0,
             [&](std::optional<gsi::Credential> c) {
               called = true;
               EXPECT_FALSE(c.has_value());
             });
  world.sim().run();
  EXPECT_TRUE(called);
}
