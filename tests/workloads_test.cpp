#include <gtest/gtest.h>

#include <numeric>

#include "condorg/workloads/cms_pipeline.h"
#include "condorg/gass/file_service.h"
#include "condorg/workloads/gcat.h"
#include "condorg/workloads/grid_builder.h"
#include "condorg/workloads/hungarian.h"
#include "condorg/workloads/qap.h"
#include "condorg/workloads/qap_master.h"

namespace cw = condorg::workloads;
namespace cs = condorg::sim;

// ---------- Hungarian / LAP ----------

TEST(Hungarian, KnownSmallCases) {
  // Diagonal is optimal.
  cw::CostMatrix identity_best = {{1, 9, 9}, {9, 1, 9}, {9, 9, 1}};
  const auto r1 = cw::solve_assignment(identity_best);
  EXPECT_EQ(r1.cost, 3);
  EXPECT_EQ(r1.assignment, (std::vector<int>{0, 1, 2}));

  // Anti-diagonal is optimal.
  cw::CostMatrix anti = {{9, 9, 1}, {9, 1, 9}, {1, 9, 9}};
  EXPECT_EQ(cw::solve_assignment(anti).cost, 3);

  // 1x1.
  EXPECT_EQ(cw::solve_assignment({{7}}).cost, 7);

  // Classic 4x4 with a known optimum of 13 (verified by brute force below).
  cw::CostMatrix m = {{9, 2, 7, 8}, {6, 4, 3, 7}, {5, 8, 1, 8}, {7, 6, 9, 4}};
  EXPECT_EQ(cw::solve_assignment(m).cost, 13);
}

TEST(Hungarian, NegativeCostsSupported) {
  cw::CostMatrix m = {{-5, 0}, {0, -5}};
  EXPECT_EQ(cw::solve_assignment(m).cost, -10);
}

TEST(Hungarian, RejectsMalformedInput) {
  EXPECT_THROW(cw::solve_assignment({}), std::invalid_argument);
  EXPECT_THROW(cw::solve_assignment({{1, 2}}), std::invalid_argument);
}

namespace {

std::int64_t brute_force_assignment(const cw::CostMatrix& cost) {
  const int n = static_cast<int>(cost.size());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  do {
    std::int64_t total = 0;
    for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace

class HungarianProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianProperty, MatchesBruteForceOnRandomInstances) {
  condorg::util::Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(2, 7));
    cw::CostMatrix cost(n, std::vector<std::int64_t>(n));
    for (auto& row : cost) {
      for (auto& cell : row) cell = rng.range(-20, 50);
    }
    const auto result = cw::solve_assignment(cost);
    EXPECT_EQ(result.cost, brute_force_assignment(cost));
    // Assignment must be a permutation achieving the reported cost.
    std::vector<char> used(n, false);
    std::int64_t check = 0;
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(result.assignment[i], 0);
      ASSERT_LT(result.assignment[i], n);
      EXPECT_FALSE(used[result.assignment[i]]);
      used[result.assignment[i]] = true;
      check += cost[i][result.assignment[i]];
    }
    EXPECT_EQ(check, result.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianProperty, ::testing::Range(0, 5));

// ---------- QAP ----------

TEST(Qap, EvaluateIdentity) {
  condorg::util::Rng rng(5);
  const auto instance = cw::QapInstance::random(5, rng);
  std::vector<int> identity{0, 1, 2, 3, 4};
  std::int64_t manual = 0;
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k < 5; ++k) {
      manual += instance.flow[i][k] * instance.dist[i][k];
    }
  }
  EXPECT_EQ(instance.evaluate(identity), manual);
}

class QapProperty : public ::testing::TestWithParam<int> {};

TEST_P(QapProperty, BranchAndBoundMatchesBruteForce) {
  condorg::util::Rng rng(4242 + GetParam());
  const int n = 6;
  const auto instance = cw::QapInstance::random(n, rng);
  const auto exact = cw::solve_qap_bruteforce(instance);
  const auto bnb = cw::solve_qap(instance);
  EXPECT_EQ(bnb.best_cost, exact.best_cost);
  EXPECT_EQ(instance.evaluate(bnb.best_perm), bnb.best_cost);
  // Pruning must actually prune relative to exhaustive enumeration.
  EXPECT_LT(bnb.nodes, exact.nodes);
  EXPECT_GT(bnb.laps_solved, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QapProperty, ::testing::Range(0, 6));

TEST(Qap, GilmoreLawlerIsALowerBound) {
  condorg::util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = cw::QapInstance::random(6, rng);
    const auto exact = cw::solve_qap_bruteforce(instance);
    EXPECT_LE(cw::gilmore_lawler_bound(instance, {}), exact.best_cost);
    // And for partial prefixes: bound <= best completion of that prefix.
    const auto subtree =
        cw::solve_qap_subtree(instance, {exact.best_perm[0]});
    EXPECT_LE(cw::gilmore_lawler_bound(instance, {exact.best_perm[0]}),
              subtree.best_cost);
  }
}

TEST(Qap, SubtreeDecompositionCoversSearchSpace) {
  // Solving every depth-1 subtree must find the global optimum.
  condorg::util::Rng rng(99);
  const auto instance = cw::QapInstance::random(7, rng);
  const auto exact = cw::solve_qap(instance);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int loc = 0; loc < instance.n; ++loc) {
    const auto sub = cw::solve_qap_subtree(instance, {loc}, best);
    if (!sub.best_perm.empty()) best = std::min(best, sub.best_cost);
  }
  EXPECT_EQ(best, exact.best_cost);
}

TEST(QapMaster, MasterWorkerFindsOptimum) {
  condorg::util::Rng rng(123);
  const auto instance = cw::QapInstance::random(7, rng);
  const auto exact = cw::solve_qap(instance);

  cw::QapMaster master(instance, 2);
  EXPECT_GT(master.total_units(), 0u);
  // Simulate workers pulling units (sequentially here).
  while (auto unit = master.next_unit()) {
    const auto result =
        cw::solve_qap_subtree(instance, unit->prefix, unit->upper_bound);
    master.complete_unit(unit->id, result);
  }
  EXPECT_TRUE(master.done());
  EXPECT_EQ(master.incumbent(), exact.best_cost);
  EXPECT_EQ(instance.evaluate(master.best_perm()), exact.best_cost);
  EXPECT_GT(master.total_laps(), 0u);
}

TEST(QapMaster, FailedUnitsAreReissued) {
  condorg::util::Rng rng(321);
  const auto instance = cw::QapInstance::random(6, rng);
  cw::QapMaster master(instance, 1);
  const auto unit = master.next_unit();
  ASSERT_TRUE(unit.has_value());
  master.fail_unit(unit->id);  // worker evicted
  // The unit comes back.
  bool reissued = false;
  while (auto next = master.next_unit()) {
    if (next->id == unit->id) reissued = true;
    master.complete_unit(
        next->id,
        cw::solve_qap_subtree(instance, next->prefix, next->upper_bound));
  }
  EXPECT_TRUE(reissued);
  EXPECT_TRUE(master.done());
  EXPECT_EQ(master.incumbent(), cw::solve_qap(instance).best_cost);
}

TEST(QapMaster, DuplicateCompletionIgnored) {
  condorg::util::Rng rng(55);
  const auto instance = cw::QapInstance::random(6, rng);
  cw::QapMaster master(instance, 1);
  const auto unit = master.next_unit();
  const auto result =
      cw::solve_qap_subtree(instance, unit->prefix, unit->upper_bound);
  master.complete_unit(unit->id, result);
  const auto completed = master.completed_units();
  master.complete_unit(unit->id, result);  // duplicate (retried message)
  EXPECT_EQ(master.completed_units(), completed);
}

// ---------- CMS events ----------

TEST(Cms, DigestsDeterministicAndDistinct) {
  cw::CmsConfig config;
  EXPECT_EQ(cw::cms_event_digest(config, 3, 14),
            cw::cms_event_digest(config, 3, 14));
  EXPECT_NE(cw::cms_event_digest(config, 3, 14),
            cw::cms_event_digest(config, 3, 15));
  EXPECT_NE(cw::cms_event_digest(config, 3, 14),
            cw::cms_event_digest(config, 4, 14));
  cw::CmsConfig other = config;
  other.run_seed = 999;
  EXPECT_NE(cw::cms_event_digest(config, 3, 14),
            cw::cms_event_digest(other, 3, 14));
}

TEST(Cms, ReconstructionMatchesGroundTruthIffIntact) {
  cw::CmsConfig config;
  config.simulation_jobs = 5;
  config.events_per_job = 20;
  std::vector<std::string> files;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    files.push_back(cw::cms_job_output(config, j));
  }
  EXPECT_EQ(cw::cms_reconstruct_from_files(config.run_seed, files),
            cw::cms_reconstruction_digest(config));

  // Any corruption / loss / reorder breaks the digest.
  auto corrupted = files;
  corrupted[2][0] = 'X';
  EXPECT_NE(cw::cms_reconstruct_from_files(config.run_seed, corrupted),
            cw::cms_reconstruction_digest(config));
  auto missing = files;
  missing.pop_back();
  EXPECT_NE(cw::cms_reconstruct_from_files(config.run_seed, missing),
            cw::cms_reconstruction_digest(config));
  auto reordered = files;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(cw::cms_reconstruct_from_files(config.run_seed, reordered),
            cw::cms_reconstruction_digest(config));
}

TEST(Cms, OutputSizing) {
  cw::CmsConfig config;
  config.events_per_job = 500;
  config.bytes_per_event = 1 << 20;
  EXPECT_EQ(cw::cms_job_output_bytes(config), 500ull << 20);
  EXPECT_EQ(cw::cms_job_output(config, 0).size(), 500u * 17u);
}

// ---------- G-Cat ----------

namespace {

struct GcatFixture : public ::testing::Test {
  GcatFixture()
      : job_host(world.add_host("worker.site.edu")),
        mss_host(world.add_host("mss.ncsa.edu")),
        mss(mss_host, world.net(), "mss") {
    cs::LinkConfig slow;
    slow.latency = 0.2;
    slow.jitter = 0.0;
    slow.bandwidth_bps = 8e6;  // 1 MB/s
    world.net().set_default_link(slow);
  }
  cs::World world;
  cs::Host& job_host;
  cs::Host& mss_host;
  condorg::gass::FileService mss;
};

}  // namespace

TEST_F(GcatFixture, StreamsAllOutputWithoutBlocking) {
  cw::GCatOptions options;
  options.chunk_bytes = 1 << 20;
  options.flush_interval = 30.0;
  cw::GCat gcat(job_host, world.net(), mss.address(), "gaussian.out",
                options);
  // Producer: 256 KB every 10 s for 100 ticks = 25.6 MB.
  int ticks = 0;
  std::function<void()> produce = [&] {
    if (ticks++ >= 100) {
      gcat.finish(nullptr);
      return;
    }
    gcat.on_output("chunk-" + std::to_string(ticks) + ";", 256 << 10);
    job_host.post(10.0, produce);
  };
  job_host.post(0.0, produce);
  world.sim().run_until(5000.0);
  EXPECT_EQ(gcat.bytes_produced(), 100ull * (256 << 10));
  EXPECT_EQ(gcat.bytes_acked(), gcat.bytes_produced());
  ASSERT_TRUE(mss.store().contains("gaussian.out"));
  EXPECT_EQ(mss.store().get("gaussian.out")->size(), gcat.bytes_produced());
  EXPECT_GE(gcat.chunks_sent(), 10u);
}

TEST_F(GcatFixture, RidesOutNetworkOutage) {
  cw::GCatOptions options;
  options.chunk_bytes = 1 << 20;
  options.retry_delay = 20.0;
  cw::GCat gcat(job_host, world.net(), mss.address(), "out", options);

  // Outage from t=100 to t=600.
  world.sim().schedule_at(100.0, [&] {
    world.net().set_partitioned("worker.site.edu", "mss.ncsa.edu", true);
  });
  world.sim().schedule_at(600.0, [&] {
    world.net().set_partitioned("worker.site.edu", "mss.ncsa.edu", false);
  });

  int ticks = 0;
  std::function<void()> produce = [&] {
    if (ticks++ >= 80) {
      gcat.finish(nullptr);
      return;
    }
    gcat.on_output("x", 512 << 10);
    job_host.post(10.0, produce);
  };
  job_host.post(0.0, produce);
  world.sim().run_until(5000.0);
  // Production never stopped (the job was not stalled by the outage) and
  // everything eventually landed.
  EXPECT_EQ(gcat.bytes_produced(), 80ull * (512 << 10));
  EXPECT_EQ(gcat.bytes_acked(), gcat.bytes_produced());
  // The buffer absorbed the outage.
  EXPECT_GT(gcat.peak_buffer_bytes(), 10ull << 20);
}

TEST_F(GcatFixture, DirectWriterStallsProducer) {
  cw::DirectWriter writer(job_host, world.net(), mss.address(), "out");
  // 20 writes of 2 MB over a 1 MB/s link: each blocks ~2s.
  int writes = 0;
  double finished_at = 0;
  std::function<void()> produce = [&] {
    if (writes++ >= 20) {
      finished_at = world.now();
      return;
    }
    writer.write("data", 2 << 20, [&] { job_host.post(1.0, produce); });
  };
  job_host.post(0.0, produce);
  world.sim().run_until(10000.0);
  EXPECT_EQ(writer.bytes_acked(), 20ull * (2 << 20));
  EXPECT_GT(writer.total_stall_seconds(), 20.0);  // ~2s x 20 writes
  EXPECT_GT(finished_at, 40.0);
}

// ---------- grid builder ----------

TEST(GridBuilder, BuildsSitesWithSeparateFailureDomains) {
  cw::GridTestbed testbed(3);
  cw::SiteSpec spec;
  spec.name = "site.a";
  spec.cpus = 32;
  cw::Site& site = testbed.add_site(spec);
  EXPECT_EQ(testbed.total_cpus(), 32);
  EXPECT_NE(site.frontend, site.cluster);
  // Front-end crash must not disturb the scheduler.
  const auto id = site.scheduler->submit({});
  site.frontend->crash();
  testbed.world().sim().run();
  EXPECT_EQ(site.scheduler->status(id)->state,
            condorg::batch::JobState::kCompleted);
}

TEST(GridBuilder, MdsPublishesSiteAds) {
  cw::GridTestbed testbed(5);
  cw::SiteSpec spec;
  spec.name = "site.a";
  spec.cpus = 8;
  testbed.add_site(spec);
  auto& giis = testbed.enable_mds("giis");
  // Site added *after* MDS enablement also publishes.
  spec.name = "site.b";
  testbed.add_site(spec);
  testbed.world().sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 2u);
}

TEST(GridBuilder, BackgroundLoadKeepsSiteBusy) {
  cw::GridTestbed testbed(7);
  cw::SiteSpec spec;
  spec.name = "busy.site";
  spec.cpus = 8;
  spec.background_load = true;
  spec.background.mean_interarrival_seconds = 30.0;
  spec.background.mean_runtime_seconds = 900.0;
  cw::Site& site = testbed.add_site(spec);
  testbed.world().sim().run_until(4 * 3600.0);
  EXPECT_GT(site.background->jobs_submitted(), 50u);
  EXPECT_GT(site.scheduler->cpu_seconds_delivered(), 0.0);
}
