// Coverage for smaller utilities: Lifetime guards, UserLog rendering,
// network delivery taps, and vanilla-universe queue operations.
#include <gtest/gtest.h>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/world.h"
#include "condorg/workloads/grid_builder.h"

namespace cs = condorg::sim;
namespace core = condorg::core;
namespace cw = condorg::workloads;

// ---------- Lifetime ----------

TEST(Lifetime, WrapRunsWhileAlive) {
  cs::Lifetime life;
  int fired = 0;
  auto fn = life.wrap([&] { ++fired; });
  fn();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(life.alive());
}

TEST(Lifetime, RevokeSilencesWrappedCallbacks) {
  cs::Lifetime life;
  int fired = 0;
  auto fn = life.wrap([&] { ++fired; });
  life.revoke();
  fn();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(life.alive());
}

TEST(Lifetime, DestructionSilencesWrappedCallbacks) {
  std::function<void()> fn;
  int fired = 0;
  {
    cs::Lifetime life;
    fn = life.wrap([&] { ++fired; });
  }
  fn();
  EXPECT_EQ(fired, 0);
}

// ---------- UserLog ----------

TEST(UserLog, EventsForAndRender) {
  core::UserLog log;
  log.record(1.0, 7, core::LogEventKind::kSubmit, "grid");
  log.record(2.0, 8, core::LogEventKind::kSubmit, "grid");
  log.record(3.0, 7, core::LogEventKind::kExecute, "site=x");
  log.record(9.0, 7, core::LogEventKind::kTerminated, "");
  const auto events = log.events_for(7);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].kind, core::LogEventKind::kExecute);
  EXPECT_EQ(log.count(core::LogEventKind::kSubmit), 2u);
  const std::string text = log.render();
  EXPECT_NE(text.find("TERMINATED"), std::string::npos);
  EXPECT_NE(text.find("site=x"), std::string::npos);
}

TEST(UserLog, ListenersFirePerEvent) {
  core::UserLog log;
  int calls = 0;
  log.add_listener([&](const core::LogEvent&) { ++calls; });
  log.record(1.0, 1, core::LogEventKind::kSubmit);
  log.record(2.0, 1, core::LogEventKind::kHeld, "x");
  EXPECT_EQ(calls, 2);
}

// ---------- network delivery tap ----------

TEST(NetworkTap, SeesDeliveredMessages) {
  cs::World world;
  world.add_host("a");
  cs::Host& b = world.add_host("b");
  b.register_service("svc", [](const cs::Message&) {});
  std::vector<std::string> types;
  world.net().set_delivery_tap(
      [&](const cs::Message& m) { types.push_back(m.type); });
  cs::Message m;
  m.from = cs::Address{"a", "x"};
  m.to = cs::Address{"b", "svc"};
  m.type = "ping";
  world.net().send(m);
  world.sim().run();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], "ping");
}

// ---------- vanilla-universe queue operations ----------

TEST(VanillaOps, RemoveIdleVanillaJob) {
  cw::GridTestbed testbed(91);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  agent.start();
  core::JobDescription job;
  job.universe = core::Universe::kVanilla;
  const auto id = agent.submit(job);  // no slots: stays idle
  testbed.world().sim().run_until(300.0);
  EXPECT_EQ(agent.query(id)->status, core::JobStatus::kIdle);
  EXPECT_TRUE(agent.remove(id));
  EXPECT_TRUE(agent.schedd().all_terminal());
}

TEST(VanillaOps, HoldPreventsMatching) {
  cw::GridTestbed testbed(92);
  cw::SiteSpec site;
  site.name = "pool";
  site.cpus = 4;
  testbed.add_site(site);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  core::GlideInOptions glidein;
  glidein.tick_interval = 60.0;
  auto& glideins = agent.enable_glideins(glidein);
  glideins.add_site(core::GlideInSite{"pool",
                                      testbed.site(0).gatekeeper_address(),
                                      testbed.site(0).cluster, 4, 1});
  agent.start();
  core::JobDescription job;
  job.universe = core::Universe::kVanilla;
  job.runtime_seconds = 600.0;
  const auto id = agent.submit(job);
  ASSERT_TRUE(agent.hold(id, "user hold"));
  testbed.world().sim().run_until(3 * 3600.0);
  // Held: never matched, never ran.
  EXPECT_EQ(agent.query(id)->status, core::JobStatus::kHeld);
  agent.release(id);
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 10 * 3600.0) {
    testbed.world().sim().run_until(testbed.world().now() + 120.0);
  }
  EXPECT_EQ(agent.query(id)->status, core::JobStatus::kCompleted);
}
