#include <gtest/gtest.h>

#include <memory>

#include "condorg/batch/fifo_scheduler.h"
#include "condorg/gass/file_service.h"
#include "condorg/gram/client.h"
#include "condorg/gram/gatekeeper.h"
#include "condorg/sim/world.h"

namespace gram = condorg::gram;
namespace cb = condorg::batch;
namespace cg = condorg::gass;
namespace cs = condorg::sim;

namespace {

/// A submit machine + one GRAM site, with a GASS server holding the
/// executable and a callback sink collecting status updates.
struct GramFixture : public ::testing::Test {
  GramFixture()
      : submit(world.add_host("submit.wisc.edu")),
        site(world.add_host("gk.anl.gov")),
        cluster(std::make_unique<cb::FifoScheduler>(world.sim(), "pbs.anl",
                                                    16)),
        gatekeeper(
            std::make_unique<gram::Gatekeeper>(site, world.net(), *cluster)),
        gass(submit, world.net(), "gass"),
        client(submit, world.net(), "jfrey") {
    gass.store().put("bin/worker", "WORKER-BINARY", 1 << 20);
    submit.register_service("gram.cb", [this](const cs::Message& m) {
      callbacks.push_back({m.body.get("contact"), m.body.get("state")});
    });
  }

  gram::GramJobSpec spec(double runtime = 300.0) {
    gram::GramJobSpec s;
    s.executable = "bin/worker";
    s.output = "out/job.out";
    s.gass_url = gass.address().str();
    s.runtime_seconds = runtime;
    s.output_size = 4096;
    return s;
  }

  /// Submit and run the world until the callback sink has seen `state`.
  std::string submit_and_await(const std::string& state,
                               double deadline = 4000.0) {
    std::string contact;
    client.submit(gatekeeper->address(), spec(), {"submit.wisc.edu", "gram.cb"},
                  [&](std::optional<std::string> c) { contact = c.value_or(""); });
    await_state(state, deadline);
    return contact;
  }

  bool saw_state(const std::string& state) const {
    for (const auto& [contact, s] : callbacks) {
      if (s == state) return true;
    }
    return false;
  }

  void await_state(const std::string& state, double deadline) {
    while (!saw_state(state) && world.now() < deadline) {
      if (!world.sim().run_until(world.now() + 10.0)) break;
    }
  }

  cs::World world;
  cs::Host& submit;
  cs::Host& site;
  std::unique_ptr<cb::FifoScheduler> cluster;
  std::unique_ptr<gram::Gatekeeper> gatekeeper;
  cg::FileService gass;
  gram::GramClient client;
  std::vector<std::pair<std::string, std::string>> callbacks;
};

}  // namespace

// ---------- happy path ----------

TEST_F(GramFixture, SubmitRunsJobToCompletion) {
  const std::string contact = submit_and_await("DONE");
  EXPECT_FALSE(contact.empty());
  EXPECT_TRUE(saw_state("PENDING"));
  EXPECT_TRUE(saw_state("ACTIVE"));
  EXPECT_TRUE(saw_state("DONE"));
  EXPECT_EQ(gatekeeper->submissions_accepted(), 1u);
  // Output was staged back to the client's GASS server before DONE.
  EXPECT_TRUE(gass.store().contains("out/job.out"));
  EXPECT_EQ(gass.store().get("out/job.out")->size(), 4096u);
  // Exactly one local execution.
  EXPECT_EQ(cluster->history().size(), 1u);
}

TEST_F(GramFixture, StatusPollReflectsProgress) {
  const std::string contact = submit_and_await("ACTIVE");
  ASSERT_FALSE(contact.empty());
  std::optional<gram::GramJobState> state;
  client.status(contact, [&](std::optional<gram::GramJobState> s) { state = s; });
  world.sim().run_until(world.now() + 20.0);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, gram::GramJobState::kActive);
}

TEST_F(GramFixture, CancelTerminatesJob) {
  const std::string contact = submit_and_await("ACTIVE");
  bool cancelled = false;
  client.cancel(contact, [&](bool ok) { cancelled = ok; });
  await_state("FAILED", world.now() + 500.0);
  EXPECT_TRUE(cancelled);
  EXPECT_TRUE(saw_state("FAILED"));
  EXPECT_EQ(cluster->history().back().state, cb::JobState::kCancelled);
}

TEST_F(GramFixture, SitePolicyCapsWalltime) {
  gram::GatekeeperOptions options;
  options.max_walltime = 100.0;  // site caps runtime
  gatekeeper.reset();  // unregister before the replacement registers
  gatekeeper = std::make_unique<gram::Gatekeeper>(site, world.net(), *cluster,
                                                  options);
  std::string contact;
  client.submit(gatekeeper->address(), spec(1000.0),
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  await_state("FAILED", 4000.0);
  EXPECT_TRUE(saw_state("FAILED"));
  EXPECT_EQ(cluster->history().back().state,
            cb::JobState::kWalltimeExceeded);
}

TEST_F(GramFixture, MissingExecutableFailsJob) {
  gass.store().erase("bin/worker");
  gram::GramClientOptions fast;
  fast.retry_delay = 5.0;
  gram::GramClient impatient(submit, world.net(), "jfrey2", fast);
  std::string contact;
  impatient.submit(gatekeeper->address(), spec(),
                   {"submit.wisc.edu", "gram.cb"},
                   [&](std::optional<std::string> c) { contact = c.value_or(""); });
  // Staging retries 30x with 60s delay; fail arrives within ~2000s.
  await_state("FAILED", 30000.0);
  EXPECT_TRUE(saw_state("FAILED"));
  EXPECT_EQ(cluster->history().size(), 0u);  // never reached the scheduler
}

// ---------- two-phase commit / exactly-once ----------

TEST_F(GramFixture, LostResponsesDoNotDuplicateJobs) {
  // 30% message loss between submit machine and site.
  cs::LinkConfig lossy;
  lossy.loss_probability = 0.30;
  world.net().set_link("submit.wisc.edu", "gk.anl.gov", lossy);
  gram::GramClientOptions options;
  options.retry_delay = 10.0;
  gram::GramClient lossy_client(submit, world.net(), "lossy", options);

  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    lossy_client.submit(gatekeeper->address(), spec(100.0),
                        {"submit.wisc.edu", "gram.cb"},
                        [&](std::optional<std::string> c) {
                          if (c) ++completed;
                        });
  }
  world.sim().run();
  EXPECT_EQ(completed, 10);
  // Despite retransmissions, exactly 10 jobs entered the local scheduler.
  EXPECT_EQ(cluster->history().size(), 10u);
  EXPECT_EQ(gatekeeper->submissions_accepted(), 10u);
}

TEST_F(GramFixture, ResendWithSameSeqReturnsSameContact) {
  const std::uint64_t seq = client.allocate_seq();
  std::string first, second;
  client.submit_with_seq(seq, gatekeeper->address(), spec(50.0),
                         {"submit.wisc.edu", "gram.cb"},
                         [&](std::optional<std::string> c) { first = c.value_or(""); });
  world.sim().run_until(50.0);
  // Simulate crash recovery: re-drive the same sequence number.
  client.submit_with_seq(seq, gatekeeper->address(), spec(50.0),
                         {"submit.wisc.edu", "gram.cb"},
                         [&](std::optional<std::string> c) { second = c.value_or(""); });
  world.sim().run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(cluster->history().size(), 1u);
  EXPECT_GE(gatekeeper->duplicate_submissions(), 1u);
  EXPECT_EQ(client.contact_for_seq(seq), first);
}

TEST_F(GramFixture, OnePhaseModeWithoutDedupDuplicatesUnderLoss) {
  // The ablation: pre-revision GRAM. Lossy link + no dedup + no commit.
  gram::GatekeeperOptions gk_options;
  gk_options.dedup_submissions = false;
  gatekeeper.reset();  // unregister before the replacement registers
  gatekeeper = std::make_unique<gram::Gatekeeper>(site, world.net(), *cluster,
                                                  gk_options);
  cs::LinkConfig lossy;
  lossy.loss_probability = 0.5;
  world.net().set_link("submit.wisc.edu", "gk.anl.gov", lossy);

  gram::GramClientOptions options;
  options.two_phase = false;
  options.retry_delay = 5.0;
  gram::GramClient naive(submit, world.net(), "naive", options);
  int acked = 0;
  for (int i = 0; i < 20; ++i) {
    naive.submit(gatekeeper->address(), spec(50.0),
                 {"submit.wisc.edu", "gram.cb"},
                 [&](std::optional<std::string> c) { acked += c ? 1 : 0; });
  }
  world.sim().run();
  // Lost *responses* caused retransmissions that became extra jobs.
  EXPECT_GT(cluster->history().size(), 20u);
}

// ---------- the four failure types (§4.2) ----------

TEST_F(GramFixture, F1JobManagerCrashJobSurvivesAndReattaches) {
  const std::string contact = submit_and_await("ACTIVE");
  ASSERT_FALSE(contact.empty());
  // Kill only the JobManager process; the local job keeps running.
  ASSERT_TRUE(gatekeeper->kill_jobmanager(contact));
  bool jm_alive = true;
  client.ping_jobmanager(contact, [&](bool ok) { jm_alive = ok; });
  world.sim().run_until(world.now() + 60.0);
  EXPECT_FALSE(jm_alive);
  // But the gatekeeper still answers (distinguishes F1 from F2/F4)...
  bool gk_alive = false;
  client.ping_gatekeeper(gatekeeper->address(), [&](bool ok) { gk_alive = ok; });
  world.sim().run_until(world.now() + 60.0);
  EXPECT_TRUE(gk_alive);
  // ...so the client asks for a JobManager restart and the job completes.
  std::optional<gram::GramJobState> state;
  client.restart_jobmanager(contact, [&](auto s) { state = s; });
  await_state("DONE", 4000.0);
  EXPECT_TRUE(state.has_value());
  EXPECT_TRUE(saw_state("DONE"));
  EXPECT_EQ(cluster->history().size(), 1u);  // exactly-once
}

TEST_F(GramFixture, F2SiteFrontEndCrashJobCompletesWhileDown) {
  const std::string contact = submit_and_await("ACTIVE");
  ASSERT_FALSE(contact.empty());
  site.crash();
  // The local cluster is a separate failure domain: the job completes
  // while the front-end is down.
  world.sim().run_until(world.now() + 600.0);
  EXPECT_EQ(cluster->history().size(), 1u);
  EXPECT_EQ(cluster->history()[0].state, cb::JobState::kCompleted);
  // Front-end returns; a restarted JobManager reports DONE (after
  // re-staging output).
  site.restart();
  std::optional<gram::GramJobState> state;
  client.restart_jobmanager(contact, [&](auto s) { state = s; });
  await_state("DONE", world.now() + 2000.0);
  EXPECT_TRUE(saw_state("DONE"));
  EXPECT_TRUE(gass.store().contains("out/job.out"));
}

TEST_F(GramFixture, F4PartitionJobUnaffectedAndReconnects) {
  const std::string contact = submit_and_await("ACTIVE");
  ASSERT_FALSE(contact.empty());
  world.net().set_partitioned("submit.wisc.edu", "gk.anl.gov", true);
  bool jm_alive = true, gk_alive = true;
  client.ping_jobmanager(contact, [&](bool ok) { jm_alive = ok; });
  client.ping_gatekeeper(gatekeeper->address(), [&](bool ok) { gk_alive = ok; });
  world.sim().run_until(world.now() + 60.0);
  // During a partition the client cannot distinguish F2 from F4: both
  // probes fail.
  EXPECT_FALSE(jm_alive);
  EXPECT_FALSE(gk_alive);
  // Job completes during the partition; output staging retries.
  world.sim().run_until(world.now() + 600.0);
  EXPECT_EQ(cluster->history().size(), 1u);
  world.net().set_partitioned("submit.wisc.edu", "gk.anl.gov", false);
  await_state("DONE", world.now() + 4000.0);
  EXPECT_TRUE(saw_state("DONE"));
}

TEST_F(GramFixture, RestartUnknownContactFails) {
  std::optional<gram::GramJobState> state =
      gram::GramJobState::kActive;  // sentinel
  client.restart_jobmanager("gk.anl.gov:999", [&](auto s) { state = s; });
  world.sim().run_until(100.0);
  EXPECT_FALSE(state.has_value());
}

TEST_F(GramFixture, UpdateGassRedirectsOutput) {
  // New GASS endpoint appears (submit machine "restarted" elsewhere);
  // output must land at the new address.
  cg::FileService gass2(submit, world.net(), "gass2");
  gass2.store().put("bin/worker", "WORKER-BINARY", 1 << 20);
  const std::string contact = submit_and_await("ACTIVE");
  bool updated = false;
  client.update_gass(contact, gass2.address(), [&](bool ok) { updated = ok; });
  await_state("DONE", 4000.0);
  EXPECT_TRUE(updated);
  EXPECT_TRUE(gass2.store().contains("out/job.out"));
}

// ---------- GSI-protected gatekeeper ----------

TEST(GramAuth, UnauthorizedSubmitRejected) {
  cs::World world;
  cs::Host& submit = world.add_host("submit");
  cs::Host& site = world.add_host("site");
  cb::FifoScheduler cluster(world.sim(), "pbs", 4);

  condorg::gsi::Pki pki((condorg::util::Rng(5)));
  condorg::gsi::CertificateAuthority ca(pki, "/CN=CA");
  const auto user = ca.issue(pki, "/O=UW/CN=ok", 0.0, 86400.0);
  const auto outsider = ca.issue(pki, "/O=X/CN=eve", 0.0, 86400.0);

  gram::GatekeeperOptions options;
  options.auth.pki = &pki;
  options.auth.anchors[ca.name()] = ca.public_key();
  options.auth.gridmap.add("/O=UW/CN=ok", "okuser");
  options.auth.require_auth = true;
  gram::Gatekeeper gatekeeper(site, world.net(), cluster, options);

  cg::FileService gass(submit, world.net(), "gass");
  gass.store().put("exe", "X");

  gram::GramJobSpec spec;
  spec.executable = "exe";
  spec.gass_url = gass.address().str();
  spec.runtime_seconds = 10;
  spec.output = "";

  gram::GramClientOptions copt;
  copt.max_attempts = 1;
  gram::GramClient good(submit, world.net(), "good", copt);
  good.set_credential(user.delegate(pki, 0.0, 3600.0));
  gram::GramClient bad(submit, world.net(), "bad", copt);
  bad.set_credential(outsider.delegate(pki, 0.0, 3600.0));

  std::optional<std::string> good_contact, bad_contact;
  good.submit(gatekeeper.address(), spec, {"submit", "cb"},
              [&](auto c) { good_contact = c; });
  bad.submit(gatekeeper.address(), spec, {"submit", "cb"},
             [&](auto c) { bad_contact = c; });
  world.sim().run();
  EXPECT_TRUE(good_contact.has_value());
  EXPECT_FALSE(bad_contact.has_value());
  EXPECT_EQ(gatekeeper.auth_failures(), 1u);
  EXPECT_EQ(cluster.history().size(), 1u);
}

// ---------- additional recovery corner cases ----------

TEST_F(GramFixture, DuplicateDoneCallbacksAreIdempotent) {
  const std::string contact = submit_and_await("DONE");
  const auto done_count = [&] {
    std::size_t n = 0;
    for (const auto& [c, s] : callbacks) {
      if (s == "DONE") ++n;
    }
    return n;
  };
  const auto before = done_count();
  // A replacement JobManager for an already-terminal job re-reports DONE.
  std::optional<gram::GramJobState> state;
  client.restart_jobmanager(contact, [&](auto s) { state = s; });
  world.sim().run_until(world.now() + 100.0);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, gram::GramJobState::kDone);
  EXPECT_GE(done_count(), before);      // re-reported...
  EXPECT_EQ(cluster->history().size(), 1u);  // ...but never re-run
}

TEST_F(GramFixture, CancelBeforeCommitFailsJobWithoutExecution) {
  // Submit in one-phase-off mode manually: send gram.submit but never
  // commit; then cancel. The job must never reach the scheduler.
  std::string contact;
  {
    cs::RpcClient raw(submit, world.net(), "raw.rpc");
    cs::Payload payload;
    payload.set("client_id", "raw");
    payload.set_uint("seq", 1);
    payload.set_bool("two_phase", true);
    payload.set("callback", "submit.wisc.edu/gram.cb");
    spec().to_payload(payload);
    raw.call(gatekeeper->address(), "gram.submit", std::move(payload), 30.0,
             [&](bool ok, const cs::Payload& reply) {
               if (ok && reply.get_bool("ok")) contact = reply.get("contact");
             });
    world.sim().run_until(world.now() + 60.0);
  }
  ASSERT_FALSE(contact.empty());
  bool cancelled = false;
  client.cancel(contact, [&](bool ok) { cancelled = ok; });
  await_state("FAILED", world.now() + 500.0);
  EXPECT_TRUE(cancelled);
  EXPECT_TRUE(saw_state("FAILED"));
  EXPECT_TRUE(cluster->history().empty());
}

TEST_F(GramFixture, JobManagerCrashDuringStageInRecovers) {
  // Crash the front-end while the JobManager is fetching the executable;
  // the restarted JobManager redoes staging from its persisted record.
  cs::LinkConfig slow;
  slow.latency = 5.0;  // staging takes a while
  slow.jitter = 0.0;
  world.net().set_default_link(slow);
  std::string contact;
  client.submit(gatekeeper->address(), spec(100.0),
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  world.sim().run_until(130.0);  // submit+commit done; stage-in in flight
  site.crash();
  world.sim().run_until(200.0);
  site.restart();
  // Drive recovery as the GridManager would.
  ASSERT_FALSE(contact.empty());
  client.restart_jobmanager(contact, [](auto) {});
  await_state("DONE", 6000.0);
  EXPECT_TRUE(saw_state("DONE"));
  EXPECT_EQ(cluster->history().size(), 1u);
}

TEST_F(GramFixture, RestartWhileJobStillQueuedReportsPending) {
  // Fill the cluster so our job queues; crash + restart the JM; the
  // reattached JM must report PENDING, not fail the job.
  for (int i = 0; i < 16; ++i) {
    condorg::batch::JobRequest hog;
    hog.owner = "local";
    hog.runtime_seconds = 5000.0;
    cluster->submit(std::move(hog));
  }
  std::string contact;
  client.submit(gatekeeper->address(), spec(50.0),
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  await_state("PENDING", 1000.0);
  ASSERT_FALSE(contact.empty());
  ASSERT_TRUE(gatekeeper->kill_jobmanager(contact));
  std::optional<gram::GramJobState> state;
  client.restart_jobmanager(contact, [&](auto s) { state = s; });
  world.sim().run_until(world.now() + 100.0);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, gram::GramJobState::kPending);
  await_state("DONE", 20000.0);
  EXPECT_TRUE(saw_state("DONE"));
}

// ---------- real-time stdout streaming (§3.2) ----------

TEST_F(GramFixture, StdoutStreamsWhileActive) {
  gram::GramJobSpec streaming = spec(600.0);
  streaming.stream_interval = 60.0;
  std::string contact;
  client.submit(gatekeeper->address(), streaming,
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  await_state("ACTIVE", 2000.0);
  const double active_at = world.now();
  world.sim().run_until(active_at + 300.0);
  // Output is already visible at the client, mid-run.
  const auto partial = gass.store().get("out/job.out.stream");
  ASSERT_TRUE(partial.has_value());
  EXPECT_NE(partial->content.find("chunk 1 of"), std::string::npos);
  EXPECT_GE(partial->content.find("chunk 4 of"), 0u);
  await_state("DONE", 4000.0);
  EXPECT_TRUE(saw_state("DONE"));
}

TEST_F(GramFixture, StreamedOutputResentToNewGassServer) {
  gram::GramJobSpec streaming = spec(1200.0);
  streaming.stream_interval = 60.0;
  std::string contact;
  client.submit(gatekeeper->address(), streaming,
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  await_state("ACTIVE", 2000.0);
  world.sim().run_until(world.now() + 400.0);  // several chunks streamed
  const auto old_copy = gass.store().get("out/job.out.stream");
  ASSERT_TRUE(old_copy.has_value());
  const std::size_t streamed_so_far = old_copy->content.size();
  ASSERT_GT(streamed_so_far, 0u);

  // The client "restarts" with a fresh, empty GASS server: update + resend.
  cg::FileService gass2(submit, world.net(), "gass2");
  ASSERT_FALSE(contact.empty());
  bool updated = false;
  client.update_gass(contact, gass2.address(), [&](bool ok) { updated = ok; });
  world.sim().run_until(world.now() + 120.0);
  ASSERT_TRUE(updated);
  const auto resent = gass2.store().get("out/job.out.stream");
  ASSERT_TRUE(resent.has_value());
  // Everything streamed before the move was resent (no gaps)...
  EXPECT_GE(resent->content.size(), streamed_so_far);
  EXPECT_NE(resent->content.find("chunk 1 of"), std::string::npos);
  // ...and streaming continues to the new server.
  const std::size_t at_switch = resent->content.size();
  world.sim().run_until(world.now() + 300.0);
  EXPECT_GT(gass2.store().get("out/job.out.stream")->content.size(),
            at_switch);
}

TEST_F(GramFixture, StreamSurvivesJobManagerRestartWithoutDuplicates) {
  gram::GramJobSpec streaming = spec(900.0);
  streaming.stream_interval = 60.0;
  std::string contact;
  client.submit(gatekeeper->address(), streaming,
                {"submit.wisc.edu", "gram.cb"},
                [&](std::optional<std::string> c) { contact = c.value_or(""); });
  await_state("ACTIVE", 2000.0);
  world.sim().run_until(world.now() + 250.0);
  ASSERT_TRUE(gatekeeper->kill_jobmanager(contact));
  world.sim().run_until(world.now() + 100.0);
  client.restart_jobmanager(contact, [](auto) {});
  await_state("DONE", 6000.0);
  ASSERT_TRUE(saw_state("DONE"));
  // Sequence-numbered appends: every chunk appears exactly once, in order.
  const auto stream = gass.store().get("out/job.out.stream");
  ASSERT_TRUE(stream.has_value());
  std::size_t pos = 0;
  int expected = 1;
  while (true) {
    const std::string needle = "chunk " + std::to_string(expected) + " of";
    const auto found = stream->content.find(needle, pos);
    if (found == std::string::npos) break;
    pos = found + needle.size();
    ++expected;
  }
  EXPECT_GE(expected, 4);  // several chunks
  // No chunk number appears twice.
  for (int c = 1; c < expected; ++c) {
    const std::string needle = "chunk " + std::to_string(c) + " of";
    const auto first = stream->content.find(needle);
    EXPECT_EQ(stream->content.find(needle, first + 1), std::string::npos)
        << "duplicate " << needle;
  }
}
