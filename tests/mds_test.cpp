#include <gtest/gtest.h>

#include "condorg/mds/client.h"
#include "condorg/mds/giis.h"
#include "condorg/mds/provider.h"
#include "condorg/sim/world.h"

namespace mds = condorg::mds;
namespace cs = condorg::sim;
namespace ca = condorg::classad;

namespace {

struct MdsFixture : public ::testing::Test {
  MdsFixture()
      : giis_host(world.add_host("giis.grid.org")),
        site_a(world.add_host("pbs.anl.gov")),
        site_b(world.add_host("lsf.ncsa.edu")),
        broker_host(world.add_host("submit.wisc.edu")),
        giis(giis_host, world.net()),
        client(broker_host, world.net(), "broker.mds") {}

  /// Make a provider advertising `free` CPUs under `name` on `host`.
  std::unique_ptr<mds::InfoProvider> make_provider(cs::Host& host,
                                                   const std::string& name,
                                                   int cpus, int* free) {
    mds::InfoProvider::Options opts;
    opts.period_seconds = 60.0;
    auto provider = std::make_unique<mds::InfoProvider>(
        host, world.net(), name,
        [name, cpus, free] {
          ca::ClassAd ad;
          ad.insert_string("Name", name);
          ad.insert_int("Cpus", cpus);
          ad.insert_int("FreeCpus", *free);
          ad.insert_string("Arch", "X86_64");
          return ad;
        },
        opts);
    provider->add_directory(giis.address());
    return provider;
  }

  cs::World world;
  cs::Host& giis_host;
  cs::Host& site_a;
  cs::Host& site_b;
  cs::Host& broker_host;
  mds::GiisServer giis;
  mds::MdsClient client;
};

}  // namespace

TEST_F(MdsFixture, RegisterAndLookup) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 1u);

  std::optional<ca::ClassAd> ad;
  client.lookup(giis.address(), "pbs.anl.gov",
                [&](std::optional<ca::ClassAd> result) { ad = std::move(result); });
  world.sim().run_until(20.0);
  ASSERT_TRUE(ad);
  EXPECT_EQ(ad->eval_int("FreeCpus"), 10);
  EXPECT_EQ(ad->eval_string("Arch"), "X86_64");
}

TEST_F(MdsFixture, StopUnregistersImmediately) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 1u);

  // stop() sends a courtesy grrp.unregister: the directory entry vanishes
  // well before the registration TTL (60s * 2.5) would age it out, and the
  // periodic re-register loop stays quiet afterwards.
  provider->stop();
  world.sim().run_until(20.0);
  EXPECT_EQ(giis.live_count(), 0u);
  world.sim().run_until(200.0);
  EXPECT_EQ(giis.live_count(), 0u);
}

TEST_F(MdsFixture, QueryWithConstraint) {
  int free_a = 10, free_b = 0;
  auto pa = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  auto pb = make_provider(site_b, "lsf.ncsa.edu", 128, &free_b);
  pa->start();
  pb->start();
  world.sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 2u);

  std::optional<std::vector<mds::ResourceRecord>> records;
  client.query(giis.address(), "FreeCpus > 0",
               [&](auto result) { records = std::move(result); });
  world.sim().run_until(20.0);
  ASSERT_TRUE(records);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].name, "pbs.anl.gov");
}

TEST_F(MdsFixture, EmptyConstraintReturnsAll) {
  int free_a = 1, free_b = 2;
  auto pa = make_provider(site_a, "a", 4, &free_a);
  auto pb = make_provider(site_b, "b", 8, &free_b);
  pa->start();
  pb->start();
  world.sim().run_until(5.0);
  std::optional<std::vector<mds::ResourceRecord>> records;
  client.query(giis.address(), "",
               [&](auto result) { records = std::move(result); });
  world.sim().run_until(10.0);
  ASSERT_TRUE(records);
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(MdsFixture, BadConstraintFails) {
  std::optional<std::vector<mds::ResourceRecord>> records{
      std::vector<mds::ResourceRecord>{}};
  client.query(giis.address(), "FreeCpus >",
               [&](auto result) { records = std::move(result); });
  world.sim().run_until(10.0);
  EXPECT_FALSE(records.has_value());
}

TEST_F(MdsFixture, RefreshedAdReflectsNewState) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  free_a = 3;  // state changes between refreshes
  world.sim().run_until(70.0);  // one refresh period later

  std::optional<ca::ClassAd> ad;
  client.lookup(giis.address(), "pbs.anl.gov",
                [&](std::optional<ca::ClassAd> result) { ad = std::move(result); });
  world.sim().run_until(80.0);
  ASSERT_TRUE(ad);
  EXPECT_EQ(ad->eval_int("FreeCpus"), 3);
}

TEST_F(MdsFixture, CrashedSiteAgesOutOfDirectory) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 1u);

  site_a.crash();  // provider stops re-registering
  // TTL = 60 * 2.5 = 150 s after the last registration (t=60).
  world.sim().run_until(100.0);
  EXPECT_EQ(giis.live_count(), 1u);  // still within TTL
  world.sim().run_until(400.0);
  EXPECT_EQ(giis.live_count(), 0u);  // aged out
}

TEST_F(MdsFixture, RestartedSiteReappears) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  site_a.crash();
  world.sim().run_until(500.0);
  EXPECT_EQ(giis.live_count(), 0u);
  site_a.restart();  // boot function resumes the registration loop
  world.sim().run_until(520.0);
  EXPECT_EQ(giis.live_count(), 1u);
}

TEST_F(MdsFixture, DirectoryCrashDropsSoftState) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(10.0);
  giis_host.crash();
  giis_host.restart();
  EXPECT_EQ(giis.live_count(), 0u);
  // Re-registration rebuilds the directory within one period.
  world.sim().run_until(130.0);
  EXPECT_EQ(giis.live_count(), 1u);
}

TEST_F(MdsFixture, UnregisterRemovesEntry) {
  int free_a = 10;
  auto provider = make_provider(site_a, "pbs.anl.gov", 64, &free_a);
  provider->start();
  world.sim().run_until(5.0);
  cs::RpcClient rpc(broker_host, world.net(), "unregister.rpc");
  cs::Payload payload;
  payload.set("name", "pbs.anl.gov");
  rpc.call(giis.address(), "grrp.unregister", std::move(payload), 30.0,
           [](bool, const cs::Payload&) {});
  world.sim().run_until(10.0);
  EXPECT_EQ(giis.live_count(), 0u);
}

TEST_F(MdsFixture, UnknownOperationRejected) {
  cs::RpcClient rpc(broker_host, world.net(), "bad.rpc");
  bool ok = true;
  rpc.call(giis.address(), "grip.bogus", {}, 30.0,
           [&](bool transport_ok, const cs::Payload& reply) {
             ok = transport_ok && reply.get_bool("ok");
           });
  world.sim().run_until(10.0);
  EXPECT_FALSE(ok);
}
