#include <gtest/gtest.h>

#include <memory>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/gsi/myproxy.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cs = condorg::sim;
namespace gsi = condorg::gsi;

namespace {

/// Two-site grid + one agent, the standard rig for these tests.
struct AgentFixture : public ::testing::Test {
  AgentFixture() : testbed(42) {
    cw::SiteSpec pbs;
    pbs.name = "pbs.anl.gov";
    pbs.kind = cw::SiteKind::kPbs;
    pbs.cpus = 8;
    testbed.add_site(pbs);
    cw::SiteSpec lsf;
    lsf.name = "lsf.ncsa.edu";
    lsf.kind = cw::SiteKind::kLsf;
    lsf.cpus = 8;
    testbed.add_site(lsf);
    testbed.add_submit_host("submit.wisc.edu");
    agent = std::make_unique<core::CondorGAgent>(testbed.world(),
                                                 "submit.wisc.edu");
    agent->set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
    agent->start();
  }

  core::JobDescription grid_job(double runtime = 300.0) {
    core::JobDescription desc;
    desc.universe = core::Universe::kGrid;
    desc.runtime_seconds = runtime;
    desc.output_size = 2048;
    return desc;
  }

  /// Run until all queue entries are terminal or sim time passes deadline.
  void run_to_completion(double deadline) {
    while (!agent->schedd().all_terminal() &&
           testbed.world().now() < deadline) {
      if (!testbed.world().sim().run_until(testbed.world().now() + 50.0)) {
        break;
      }
    }
  }

  std::size_t total_site_executions() const {
    std::size_t n = 0;
    for (const auto& site : testbed.sites()) {
      for (const auto& record : site->scheduler->history()) {
        if (record.state == condorg::batch::JobState::kCompleted) ++n;
      }
    }
    return n;
  }

  cw::GridTestbed testbed;
  std::unique_ptr<core::CondorGAgent> agent;
};

}  // namespace

// ---------- Schedd ----------

TEST(Schedd, SubmitQueryAndLog) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  core::Schedd schedd(host);
  core::JobDescription desc;
  desc.owner = "miron";
  const auto id = schedd.submit(desc);
  ASSERT_TRUE(schedd.query(id).has_value());
  EXPECT_EQ(schedd.query(id)->status, core::JobStatus::kIdle);
  EXPECT_EQ(schedd.query(id)->desc.owner, "miron");
  EXPECT_EQ(schedd.log().count(core::LogEventKind::kSubmit), 1u);
  EXPECT_FALSE(schedd.query(999).has_value());
}

TEST(Schedd, QueueSurvivesCrash) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  core::Schedd schedd(host);
  const auto id = schedd.submit({});
  schedd.mark_grid_submitted(id, 7, "site", "site:1");
  host.crash();
  host.restart();
  const auto job = schedd.query(id);
  ASSERT_TRUE(job);
  EXPECT_EQ(job->gram_seq, 7u);
  EXPECT_EQ(job->gram_contact, "site:1");
  EXPECT_EQ(job->status, core::JobStatus::kRunning);
  // Fresh submissions after recovery get new ids (persisted counter).
  EXPECT_GT(schedd.submit({}), id);
}

TEST(Schedd, HoldReleaseRemoveLifecycle) {
  cs::World world;
  core::Schedd schedd(world.add_host("submit"));
  const auto id = schedd.submit({});
  EXPECT_TRUE(schedd.hold(id, "why"));
  EXPECT_EQ(schedd.query(id)->status, core::JobStatus::kHeld);
  EXPECT_EQ(schedd.query(id)->hold_reason, "why");
  EXPECT_FALSE(schedd.release(999));
  EXPECT_TRUE(schedd.release(id));
  EXPECT_EQ(schedd.query(id)->status, core::JobStatus::kIdle);
  EXPECT_TRUE(schedd.remove(id));
  EXPECT_EQ(schedd.query(id)->status, core::JobStatus::kRemoved);
  EXPECT_FALSE(schedd.remove(id));  // already removed
  EXPECT_TRUE(schedd.all_terminal());
}

TEST(Schedd, CompletionSendsEmail) {
  cs::World world;
  core::Schedd schedd(world.add_host("submit"));
  core::JobDescription desc;
  desc.notify_email = true;
  const auto id = schedd.submit(desc);
  schedd.mark_completed(id);
  ASSERT_EQ(schedd.log().emails().size(), 1u);
  EXPECT_NE(schedd.log().emails()[0].subject.find("completed"),
            std::string::npos);
  // Idempotent: duplicate DONE must not double-notify.
  schedd.mark_completed(id);
  EXPECT_EQ(schedd.log().emails().size(), 1u);
}

// ---------- GridManager end-to-end ----------

TEST_F(AgentFixture, RunsBatchOfGridJobsExactlyOnce) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(agent->submit(grid_job()));
  run_to_completion(40000.0);
  for (const auto id : ids) {
    EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  // Exactly-once: 20 completed site executions, not more.
  EXPECT_EQ(total_site_executions(), 20u);
  // Output staged back for every job.
  for (const auto id : ids) {
    EXPECT_TRUE(agent->gridmanager().gass().store().contains(
        "out/" + std::to_string(id) + ".out"));
  }
  EXPECT_EQ(agent->log().count(core::LogEventKind::kTerminated), 20u);
}

TEST_F(AgentFixture, FixedSiteJobGoesToThatSite) {
  core::JobDescription desc = grid_job(100.0);
  desc.grid_site = "lsf.ncsa.edu";
  const auto id = agent->submit(desc);
  run_to_completion(10000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(agent->query(id)->gram_site, "lsf.ncsa.edu");
  EXPECT_EQ(testbed.site(1).scheduler->history().size(), 1u);
  EXPECT_TRUE(testbed.site(0).scheduler->history().empty());
}

TEST_F(AgentFixture, RemoveCancelsRemoteJob) {
  const auto id = agent->submit(grid_job(100000.0));
  testbed.world().sim().run_until(2000.0);
  ASSERT_EQ(agent->query(id)->status, core::JobStatus::kRunning);
  agent->remove(id);
  testbed.world().sim().run_until(4000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kRemoved);
}

// ---------- failure recovery (the §4.2 matrix, agent level) ----------

TEST_F(AgentFixture, F1JobManagerKillRecoveredByProbing) {
  const auto id = agent->submit(grid_job(3000.0));
  testbed.world().sim().run_until(1500.0);
  ASSERT_EQ(agent->query(id)->status, core::JobStatus::kRunning);
  const std::string contact = agent->query(id)->gram_contact;
  ASSERT_FALSE(contact.empty());
  // Kill the JobManager process only.
  const auto site_index = agent->query(id)->gram_site == "pbs.anl.gov" ? 0 : 1;
  ASSERT_TRUE(testbed.site(site_index).gatekeeper->kill_jobmanager(contact));
  run_to_completion(40000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_GE(agent->gridmanager().jobmanager_restarts(), 1u);
  EXPECT_GE(agent->log().count(core::LogEventKind::kJobManagerLost), 1u);
  EXPECT_EQ(total_site_executions(), 1u);  // never duplicated
}

TEST_F(AgentFixture, F2SiteFrontEndCrashRecovered) {
  core::JobDescription desc = grid_job(3000.0);
  desc.grid_site = "pbs.anl.gov";
  const auto id = agent->submit(desc);
  testbed.world().sim().run_until(1500.0);
  ASSERT_EQ(agent->query(id)->status, core::JobStatus::kRunning);
  testbed.site(0).frontend->crash();
  testbed.world().sim().schedule_at(6000.0,
                                    [&] { testbed.site(0).frontend->restart(); });
  run_to_completion(60000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(total_site_executions(), 1u);
}

TEST_F(AgentFixture, F3SubmitMachineCrashRecovered) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(agent->submit(grid_job(3000.0)));
  testbed.world().sim().run_until(1500.0);
  // Crash the whole submit machine mid-campaign; stable queue survives.
  agent->host().crash();
  testbed.world().sim().schedule_at(2500.0, [&] { agent->host().restart(); });
  run_to_completion(80000.0);
  for (const auto id : ids) {
    EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  // Exactly-once even across the crash: re-driven submissions deduped.
  EXPECT_EQ(total_site_executions(), 8u);
}

TEST_F(AgentFixture, F4PartitionRiddenOut) {
  core::JobDescription desc = grid_job(3000.0);
  desc.grid_site = "pbs.anl.gov";
  const auto id = agent->submit(desc);
  testbed.world().sim().run_until(1500.0);
  ASSERT_EQ(agent->query(id)->status, core::JobStatus::kRunning);
  testbed.world().net().set_partitioned("submit.wisc.edu", "pbs.anl.gov",
                                        true);
  testbed.world().sim().schedule_at(8000.0, [&] {
    testbed.world().net().set_partitioned("submit.wisc.edu", "pbs.anl.gov",
                                          false);
  });
  run_to_completion(60000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(total_site_executions(), 1u);
}

TEST_F(AgentFixture, DeadSiteJobResubmittedElsewhere) {
  // pbs dies permanently before the job is submitted; round-robin sends
  // job 1 there, the submit times out, and the job lands on lsf instead.
  testbed.site(0).frontend->crash();
  const auto id = agent->submit(grid_job(300.0));
  run_to_completion(80000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(agent->query(id)->gram_site, "lsf.ncsa.edu");
  EXPECT_GE(agent->gridmanager().resubmissions(), 0u);
}

TEST_F(AgentFixture, RepeatedRemoteFailureEndsInHold) {
  core::JobDescription desc = grid_job(10000.0);
  desc.grid_site = "pbs.anl.gov";
  desc.walltime_limit = 10000.0;
  desc.max_attempts = 2;
  // Site policy kills anything above 600s: the job can never finish there.
  cw::SiteSpec strict;
  strict.name = "strict.site.gov";
  strict.cpus = 4;
  strict.max_walltime = 600.0;
  testbed.add_site(strict);
  desc.grid_site = "strict.site.gov";
  const auto id = agent->submit(desc);
  run_to_completion(120000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kHeld);
  EXPECT_EQ(agent->query(id)->attempts, 2);
  EXPECT_GE(agent->log().count(core::LogEventKind::kResubmitted), 1u);
}

// ---------- CredentialManager ----------

namespace {

struct CredentialFixture : public AgentFixture {
  CredentialFixture()
      : pki(condorg::util::Rng(9)),
        ca(pki, "/CN=CA"),
        user(ca.issue(pki, "/O=UW/CN=jfrey", 0.0, 30 * 86400.0)) {}
  gsi::Pki pki;
  gsi::CertificateAuthority ca;
  gsi::Credential user;
};

}  // namespace

TEST_F(CredentialFixture, ExpiryHoldsJobsAndEmails) {
  // Short proxy, long job: with no MyProxy the agent must hold + e-mail.
  agent->credentials().set_credential(user.delegate(pki, 0.0, 3600.0));
  const auto id = agent->submit(grid_job(100000.0));
  testbed.world().sim().run_until(2 * 3600.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kHeld);
  EXPECT_EQ(agent->query(id)->hold_reason,
            core::CredentialManager::kHoldReason);
  EXPECT_GE(agent->credentials().holds_issued(), 1u);
  bool email_found = false;
  for (const auto& mail : agent->log().emails()) {
    if (mail.subject.find("credential") != std::string::npos) {
      email_found = true;
    }
  }
  EXPECT_TRUE(email_found);
}

TEST_F(CredentialFixture, AlarmEmailBeforeExpiry) {
  agent->credentials().set_credential(user.delegate(pki, 0.0, 4 * 3600.0));
  agent->submit(grid_job(100000.0));
  testbed.world().sim().run_until(3 * 3600.0);
  EXPECT_GE(agent->credentials().alarms_sent(), 1u);
}

TEST_F(CredentialFixture, ManualRefreshReleasesHeldJobs) {
  agent->credentials().set_credential(user.delegate(pki, 0.0, 3600.0));
  const auto id = agent->submit(grid_job(10000.0));
  testbed.world().sim().run_until(2 * 3600.0);
  ASSERT_EQ(agent->query(id)->status, core::JobStatus::kHeld);
  // grid-proxy-init again:
  agent->credentials().set_credential(
      user.delegate(pki, testbed.world().now(), 12 * 3600.0));
  run_to_completion(testbed.world().now() + 20000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_GE(agent->log().count(core::LogEventKind::kReleased), 1u);
}

TEST_F(CredentialFixture, MyProxyAutoRefreshKeepsJobsRunning) {
  // Store a week-long credential in MyProxy; the agent refreshes short
  // proxies from it automatically, so a long campaign never holds.
  gsi::MyProxyServer myproxy(testbed.world().add_host("myproxy.ncsa.edu"),
                             testbed.world().net(), pki);
  {
    gsi::MyProxyClient boot(agent->host(), testbed.world().net(),
                            "test.myproxy.boot");
    boot.store(myproxy.address(), "jfrey", "pw",
               user.delegate(pki, 0.0, 7 * 86400.0), [](bool) {});
    testbed.world().sim().run_until(10.0);
  }

  core::AgentOptions options;
  options.user = "jfrey2";
  options.credentials.use_myproxy = true;
  options.credentials.myproxy_server = myproxy.address();
  options.credentials.myproxy_user = "jfrey";
  options.credentials.myproxy_passphrase = "pw";
  options.credentials.scan_interval = 300.0;
  options.credentials.refresh_threshold = 1800.0;
  options.credentials.refresh_lifetime = 3600.0;
  testbed.add_submit_host("submit2.wisc.edu");
  core::CondorGAgent agent2(testbed.world(), "submit2.wisc.edu", options);
  agent2.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent2.start();
  agent2.credentials().set_credential(
      user.delegate(pki, testbed.world().now(), 3600.0));

  // 20 hours of work: far beyond any single proxy's lifetime.
  const auto id = agent2.submit([&] {
    core::JobDescription d;
    d.universe = core::Universe::kGrid;
    d.runtime_seconds = 20 * 3600.0;
    return d;
  }());
  while (!agent2.schedd().all_terminal() &&
         testbed.world().now() < 40 * 3600.0) {
    if (!testbed.world().sim().run_until(testbed.world().now() + 600.0)) {
      break;
    }
  }
  EXPECT_EQ(agent2.query(id)->status, core::JobStatus::kCompleted);
  EXPECT_GE(agent2.credentials().refreshes(), 10u);
  EXPECT_EQ(agent2.credentials().holds_issued(), 0u);
  EXPECT_GE(myproxy.proxies_issued(), 10u);
}

// ---------- brokers ----------

TEST(Broker, StaticChooserRoundRobins) {
  auto chooser = core::make_static_chooser(
      {{"a", "gk"}, {"b", "gk"}, {"c", "gk"}});
  std::vector<std::string> picks;
  core::Job job;
  for (int i = 0; i < 6; ++i) {
    chooser(job, [&](std::optional<cs::Address> addr) {
      picks.push_back(addr->host);
    });
  }
  EXPECT_EQ(picks, (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));
}

TEST(Broker, EmptyStaticChooserRefuses) {
  auto chooser = core::make_static_chooser({});
  bool got = true;
  chooser(core::Job{}, [&](std::optional<cs::Address> addr) {
    got = addr.has_value();
  });
  EXPECT_FALSE(got);
}

TEST(Broker, RandomChooserCoversAllSites) {
  auto chooser = core::make_random_chooser(
      {{"a", "gk"}, {"b", "gk"}, {"c", "gk"}}, condorg::util::Rng(3));
  std::set<std::string> seen;
  for (int i = 0; i < 60; ++i) {
    chooser(core::Job{}, [&](std::optional<cs::Address> addr) {
      seen.insert(addr->host);
    });
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Broker, MdsBrokerRanksAndFilters) {
  cw::GridTestbed testbed(11);
  cw::SiteSpec small;
  small.name = "small.site";
  small.cpus = 2;
  testbed.add_site(small);
  cw::SiteSpec big;
  big.name = "big.site";
  big.cpus = 64;
  testbed.add_site(big);
  testbed.enable_mds("giis.grid.org");
  cs::Host& submit = testbed.add_submit_host("submit");
  testbed.world().sim().run_until(10.0);  // ads registered

  core::MdsBroker broker(submit, testbed.world().net(),
                         {"giis.grid.org", condorg::mds::GiisServer::kService});
  core::Job job;
  job.desc.ad.insert_expr("Requirements", "other.FreeCpus >= 1");
  job.desc.ad.insert_expr("Rank", "other.FreeCpus");
  std::optional<cs::Address> choice;
  broker.chooser()(job, [&](std::optional<cs::Address> addr) { choice = addr; });
  testbed.world().sim().run_until(20.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->host, "big.site");

  // A job nothing satisfies is refused.
  core::Job picky;
  picky.desc.ad.insert_expr("Requirements", "other.FreeCpus > 1000");
  bool refused = false;
  broker.chooser()(picky, [&](std::optional<cs::Address> addr) {
    refused = !addr.has_value();
  });
  testbed.world().sim().run_until(30.0);
  EXPECT_TRUE(refused);
  EXPECT_GE(broker.queries_sent(), 1u);
}

// ---------- GlideIn + vanilla universe ----------

TEST(GlideIn, VanillaJobsRunOnGlidedInSlots) {
  cw::GridTestbed testbed(13);
  cw::SiteSpec site;
  site.name = "pool.wisc.edu";
  site.cpus = 16;
  testbed.add_site(site);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  core::GlideInOptions glidein_options;
  glidein_options.walltime = 6 * 3600.0;
  glidein_options.idle_timeout = 1200.0;
  glidein_options.tick_interval = 60.0;
  auto& glideins = agent.enable_glideins(glidein_options);
  glideins.add_site(core::GlideInSite{"pool.wisc.edu",
                                      testbed.site(0).gatekeeper_address(),
                                      testbed.site(0).cluster, 8, 1});
  agent.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    core::JobDescription desc;
    desc.universe = core::Universe::kVanilla;
    desc.runtime_seconds = 1800.0;
    ids.push_back(agent.submit(desc));
  }
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 12 * 3600.0) {
    if (!testbed.world().sim().run_until(testbed.world().now() + 120.0)) {
      break;
    }
  }
  for (const auto id : ids) {
    EXPECT_EQ(agent.query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  EXPECT_GE(glideins.glideins_started(), 1u);
  EXPECT_LE(glideins.glideins_submitted(), 8u);  // bounded by site cap

  // After the queue drains, idle daemons shut themselves down and the
  // site's batch slots are released.
  testbed.world().sim().run_until(testbed.world().now() + 4 * 3600.0);
  EXPECT_EQ(glideins.live_glideins(), 0u);
  EXPECT_GE(glideins.glideins_exited(), glideins.glideins_started());
}

TEST(GlideIn, BinaryRepositoryFetchPrecedesStartd) {
  cw::GridTestbed testbed(17);
  cw::SiteSpec site;
  site.name = "site.a";
  site.cpus = 4;
  testbed.add_site(site);
  testbed.add_submit_host("submit");
  // Central repository with the condor binaries.
  condorg::gass::FileService repo(testbed.world().add_host("repo.wisc.edu"),
                                  testbed.world().net(), "gridftp");
  repo.store().put("condor/startd-bundle", "BINARIES", 20 << 20);

  core::CondorGAgent agent(testbed.world(), "submit");
  core::GlideInOptions options;
  options.binary_repository = repo.address();
  options.tick_interval = 60.0;
  auto& glideins = agent.enable_glideins(options);
  glideins.add_site(core::GlideInSite{"site.a",
                                      testbed.site(0).gatekeeper_address(),
                                      testbed.site(0).cluster, 4, 1});
  agent.start();

  core::JobDescription desc;
  desc.universe = core::Universe::kVanilla;
  desc.runtime_seconds = 600.0;
  const auto id = agent.submit(desc);
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 4 * 3600.0) {
    if (!testbed.world().sim().run_until(testbed.world().now() + 60.0)) break;
  }
  EXPECT_EQ(agent.query(id)->status, core::JobStatus::kCompleted);
  EXPECT_GE(repo.gets_served(), 1u);  // binaries really were fetched
}

// ---------- DAGMan ----------

namespace {

core::JobDescription quick_grid_job(double runtime = 120.0) {
  core::JobDescription desc;
  desc.universe = core::Universe::kGrid;
  desc.runtime_seconds = runtime;
  return desc;
}

}  // namespace

TEST_F(AgentFixture, DagRunsInDependencyOrder) {
  core::Dag dag;
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c", "d"}) {
    core::DagNode node;
    node.name = name;
    node.job = quick_grid_job();
    node.post = [&order, name] { order.emplace_back(name); };
    dag.add_node(std::move(node));
  }
  // diamond: a -> {b, c} -> d
  dag.add_edge("a", "b");
  dag.add_edge("a", "c");
  dag.add_edge("b", "d");
  dag.add_edge("c", "d");
  auto dagman = agent->make_dagman(std::move(dag));
  bool success = false;
  dagman->on_finished([&](bool ok) { success = ok; });
  dagman->start();
  run_to_completion(40000.0);
  ASSERT_TRUE(dagman->complete());
  EXPECT_TRUE(success);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
  EXPECT_EQ(dagman->nodes_done(), 4u);
}

TEST_F(AgentFixture, DagThrottleLimitsInFlightJobs) {
  core::Dag dag;
  for (int i = 0; i < 10; ++i) {
    core::DagNode node;
    node.name = "n" + std::to_string(i);
    node.job = quick_grid_job(600.0);
    dag.add_node(std::move(node));
  }
  core::DagManOptions options;
  options.max_jobs_in_flight = 3;
  auto dagman = agent->make_dagman(std::move(dag), options);
  dagman->start();
  // At no instant may more than 3 node jobs be non-terminal.
  std::size_t max_active = 0;
  while (!dagman->complete() && testbed.world().now() < 80000.0) {
    testbed.world().sim().run_until(testbed.world().now() + 60.0);
    max_active = std::max(max_active, agent->schedd().active_count());
  }
  EXPECT_TRUE(dagman->complete());
  EXPECT_LE(max_active, 3u);
}

TEST(Dag, CycleDetected) {
  cs::World world;
  core::Schedd schedd(world.add_host("submit"));
  core::Dag dag;
  for (const char* name : {"x", "y"}) {
    core::DagNode node;
    node.name = name;
    dag.add_node(std::move(node));
  }
  dag.add_edge("x", "y");
  dag.add_edge("y", "x");
  core::DagMan dagman(schedd, std::move(dag));
  EXPECT_THROW(dagman.start(), std::invalid_argument);
}

TEST(Dag, BadEdgesAndDuplicatesRejected) {
  core::Dag dag;
  core::DagNode node;
  node.name = "a";
  dag.add_node(node);
  EXPECT_THROW(dag.add_node(node), std::invalid_argument);
  EXPECT_THROW(dag.add_edge("a", "nope"), std::invalid_argument);
}

// ---------- queued-job migration (§4.4 enhancement) ----------

TEST(Migration, PendingTooLongMovesToFreeSite) {
  // Site A is fully occupied by an endless local job; site B is idle. With
  // max_pending_seconds set, a job parked in A's queue is cancelled there
  // and re-brokered to B.
  cw::GridTestbed testbed(55);
  cw::SiteSpec a;
  a.name = "busy.site";
  a.cpus = 2;
  testbed.add_site(a);
  cw::SiteSpec b;
  b.name = "idle.site";
  b.cpus = 2;
  testbed.add_site(b);
  // Occupy site A completely for a very long time.
  condorg::batch::JobRequest hog;
  hog.owner = "local";
  hog.cpus = 2;
  hog.runtime_seconds = 1e7;
  testbed.site(0).scheduler->submit(hog);

  core::AgentOptions options;
  options.gridmanager.max_pending_seconds = 1800.0;
  options.gridmanager.probe_interval = 300.0;
  core::CondorGAgent agent(testbed.world(), "submit", [&] {
    testbed.add_submit_host("submit");
    return options;
  }());
  // Force the first choice to the busy site, then round-robin.
  agent.set_site_chooser(core::make_static_chooser(
      {testbed.site(0).gatekeeper_address(),
       testbed.site(1).gatekeeper_address()}));
  agent.start();

  core::JobDescription job;
  job.universe = core::Universe::kGrid;
  job.runtime_seconds = 600.0;
  const auto id = agent.submit(job);

  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  EXPECT_EQ(agent.query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(agent.query(id)->gram_site, "idle.site");
  EXPECT_GE(agent.gridmanager().queued_migrations(), 1u);
  // The abandoned copy at the busy site was cancelled, never run.
  for (const auto& record : testbed.site(0).scheduler->history()) {
    if (record.request.owner == "gram") {
      EXPECT_NE(record.state, condorg::batch::JobState::kCompleted);
    }
  }
}

TEST(Migration, DisabledByDefault) {
  cw::GridTestbed testbed(56);
  cw::SiteSpec a;
  a.name = "busy.site";
  a.cpus = 1;
  testbed.add_site(a);
  condorg::batch::JobRequest hog;
  hog.owner = "local";
  hog.runtime_seconds = 7200.0;
  testbed.site(0).scheduler->submit(hog);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  agent.set_site_chooser(
      core::make_static_chooser({testbed.site(0).gatekeeper_address()}));
  agent.start();
  core::JobDescription job;
  job.universe = core::Universe::kGrid;
  job.runtime_seconds = 600.0;
  const auto id = agent.submit(job);
  testbed.world().sim().run_until(3600.0);
  // Still queued at the busy site: no migration machinery fired.
  EXPECT_EQ(agent.gridmanager().queued_migrations(), 0u);
  EXPECT_EQ(agent.query(id)->remote_state, "PENDING");
}

// ---------- preemptible glide-in slots ----------

TEST(GlideIn, PreemptibleSlotsEvictAndJobsStillFinish) {
  cw::GridTestbed testbed(61);
  cw::SiteSpec site;
  site.name = "pool.site.edu";
  site.cpus = 16;
  testbed.add_site(site);
  testbed.add_submit_host("submit");
  core::CondorGAgent agent(testbed.world(), "submit");
  core::GlideInOptions options;
  options.walltime = 24 * 3600.0;
  options.idle_timeout = 1800.0;
  options.tick_interval = 120.0;
  options.checkpoint_interval = 300.0;
  // Aggressive reclaim: slots available ~1h, reclaimed ~30min.
  options.mean_slot_available_seconds = 3600.0;
  options.mean_slot_reclaimed_seconds = 1800.0;
  auto& glideins = agent.enable_glideins(options);
  glideins.add_site(core::GlideInSite{"pool.site.edu",
                                      testbed.site(0).gatekeeper_address(),
                                      testbed.site(0).cluster, 8, 1});
  agent.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kVanilla;
    job.runtime_seconds = 2 * 3600.0;  // longer than mean availability
    ids.push_back(agent.submit(job));
  }
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 4 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }
  for (const auto id : ids) {
    EXPECT_EQ(agent.query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  // Preemption definitely happened, and checkpoints carried work across it.
  EXPECT_GE(agent.log().count(core::LogEventKind::kEvicted), 1u);
}

// ---------- Schedd secondary indexes ----------

namespace {

/// Brute-force (universe, status) id sets from a full queue scan, the
/// oracle the secondary indexes must always agree with.
void expect_index_matches_scan(const core::Schedd& schedd) {
  for (const core::Universe universe :
       {core::Universe::kGrid, core::Universe::kVanilla}) {
    for (const core::JobStatus status :
         {core::JobStatus::kIdle, core::JobStatus::kRunning,
          core::JobStatus::kCompleted, core::JobStatus::kHeld,
          core::JobStatus::kRemoved}) {
      std::vector<std::uint64_t> brute;
      for (const auto& [id, job] : schedd.jobs()) {
        if (job.desc.universe == universe && job.status == status) {
          brute.push_back(id);
        }
      }
      EXPECT_EQ(schedd.count(universe, status), brute.size());
      if (status == core::JobStatus::kIdle) {
        EXPECT_EQ(schedd.idle_jobs(universe), brute);
      }
    }
  }
  for (const core::JobStatus status :
       {core::JobStatus::kIdle, core::JobStatus::kRunning,
        core::JobStatus::kCompleted, core::JobStatus::kHeld,
        core::JobStatus::kRemoved}) {
    std::vector<std::uint64_t> brute;
    for (const auto& [id, job] : schedd.jobs()) {
      if (job.status == status) brute.push_back(id);
    }
    EXPECT_EQ(schedd.jobs_with_status(status), brute);
    EXPECT_EQ(schedd.count(status), brute.size());
  }
}

}  // namespace

TEST(ScheddIndex, RandomizedTransitionsMatchBruteForceScan) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  core::Schedd schedd(host);
  condorg::util::Rng rng(77);
  const core::JobStatus kStatuses[] = {
      core::JobStatus::kIdle, core::JobStatus::kRunning,
      core::JobStatus::kCompleted, core::JobStatus::kHeld,
      core::JobStatus::kRemoved};

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 120; ++i) {
    core::JobDescription desc;
    desc.universe = rng.below(2) == 0 ? core::Universe::kGrid
                                      : core::Universe::kVanilla;
    ids.push_back(schedd.submit(desc));
  }
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t id = ids[rng.below(ids.size())];
    const core::JobStatus next = kStatuses[rng.below(5)];
    schedd.with_job(id, [next](core::Job& job) {
      job.status = next;
      if (next == core::JobStatus::kHeld) job.hold_reason = "test";
    });
    if (step % 250 == 0) expect_index_matches_scan(schedd);
  }
  expect_index_matches_scan(schedd);
  std::vector<std::string> problems;
  schedd.audit(problems);
  for (const std::string& problem : problems) {
    EXPECT_TRUE(problem.find("index") == std::string::npos &&
                problem.find("count cache") == std::string::npos)
        << problem;
  }
  // The index-size gauge tracks the queue size.
  EXPECT_EQ(host.metrics()
                .gauge("schedd_index_size", {{"host", "submit"}})
                .value(),
            static_cast<double>(ids.size()));
}

TEST(ScheddIndex, ReloadAfterCrashRebuildsIndexes) {
  cs::World world;
  cs::Host& host = world.add_host("submit");
  core::Schedd schedd(host);
  core::JobDescription vanilla;
  vanilla.universe = core::Universe::kVanilla;
  const auto a = schedd.submit(vanilla);
  core::JobDescription grid;
  grid.universe = core::Universe::kGrid;
  const auto b = schedd.submit(grid);
  const auto c = schedd.submit(grid);
  schedd.mark_grid_submitted(b, 1, "site", "site:1");
  schedd.mark_completed(b);
  schedd.hold(c, "why");
  host.crash();
  host.restart();
  expect_index_matches_scan(schedd);
  EXPECT_EQ(schedd.idle_jobs(core::Universe::kGrid).size(), 0u);
  EXPECT_EQ(schedd.count(core::Universe::kGrid, core::JobStatus::kCompleted),
            1u);
  EXPECT_EQ(schedd.count(core::Universe::kGrid, core::JobStatus::kHeld), 1u);
  (void)a;
}

// ---------- pipelined submission ----------

namespace {

/// One 8-cpu site + an agent with a tight per-site pipeline cap.
struct PipelineFixture : public ::testing::Test {
  static constexpr std::size_t kCap = 4;

  PipelineFixture() : testbed(42) {
    cw::SiteSpec pbs;
    pbs.name = "pbs.anl.gov";
    pbs.kind = cw::SiteKind::kPbs;
    pbs.cpus = 8;
    testbed.add_site(pbs);
    cw::SiteSpec lsf;
    lsf.name = "lsf.ncsa.edu";
    lsf.kind = cw::SiteKind::kLsf;
    lsf.cpus = 8;
    testbed.add_site(lsf);
    testbed.add_submit_host("submit.wisc.edu");
    core::AgentOptions options;
    options.gridmanager.max_pending_per_site = kCap;
    agent = std::make_unique<core::CondorGAgent>(testbed.world(),
                                                 "submit.wisc.edu", options);
    agent->set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
    agent->start();
  }

  core::JobDescription grid_job(double runtime = 300.0) {
    core::JobDescription desc;
    desc.universe = core::Universe::kGrid;
    desc.runtime_seconds = runtime;
    desc.output_size = 2048;
    return desc;
  }

  void run_to_completion(double deadline) {
    while (!agent->schedd().all_terminal() &&
           testbed.world().now() < deadline) {
      if (!testbed.world().sim().run_until(testbed.world().now() + 50.0)) {
        break;
      }
    }
  }

  std::size_t total_site_executions() const {
    std::size_t n = 0;
    for (const auto& site : testbed.sites()) {
      for (const auto& record : site->scheduler->history()) {
        if (record.state == condorg::batch::JobState::kCompleted) ++n;
      }
    }
    return n;
  }

  cw::GridTestbed testbed;
  std::unique_ptr<core::CondorGAgent> agent;
};

}  // namespace

TEST_F(PipelineFixture, StormRespectsPerSiteDepthCapAndCompletes) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 40; ++i) ids.push_back(agent->submit(grid_job()));
  run_to_completion(120000.0);
  for (const auto id : ids) {
    EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  EXPECT_EQ(total_site_executions(), 40u);
  // The depth gauge never exceeded the configured cap at either site.
  for (const char* site : {"pbs.anl.gov", "lsf.ncsa.edu"}) {
    EXPECT_LE(agent->host()
                  .metrics()
                  .gauge("submit_pipeline_depth",
                         {{"user", "user"}, {"site", site}})
                  .peak(),
              static_cast<double>(kCap))
        << site;
    EXPECT_EQ(agent->gridmanager().pipeline_depth(site), 0u) << site;
  }
  // The PENDING-at-site watch drained along with the queue (no leak).
  EXPECT_EQ(agent->gridmanager().pending_watch_size(), 0u);
}

TEST_F(PipelineFixture, SharedExecutableStagesOncePerSite) {
  // 24 jobs, one executable: the per-site cache must coalesce staging to
  // one wire transfer per site.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 24; ++i) {
    core::JobDescription desc = grid_job();
    desc.executable = "sweep.bin";
    ids.push_back(agent->submit(desc));
  }
  run_to_completion(120000.0);
  for (const auto id : ids) {
    ASSERT_EQ(agent->query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  EXPECT_EQ(agent->gridmanager().gass().gets_served(), 2u);  // one per site

  // A different executable is a different artifact: staged afresh.
  core::JobDescription changed = grid_job();
  changed.executable = "sweep-v2.bin";
  changed.grid_site = "pbs.anl.gov";
  const auto id = agent->submit(changed);
  run_to_completion(240000.0);
  EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted);
  EXPECT_EQ(agent->gridmanager().gass().gets_served(), 3u);
  // Cache metrics surfaced per site.
  std::uint64_t hits = 0;
  for (const char* site : {"pbs.anl.gov", "lsf.ncsa.edu"}) {
    hits += testbed.world()
                .sim()
                .metrics()
                .counter_value("staging_cache_hits{site=" +
                               std::string(site) + "}");
  }
  EXPECT_EQ(hits, 22u);  // 25 stage-ins, 3 wire transfers
}

TEST_F(PipelineFixture, SubmitMachineCrashMidStormStaysExactlyOnce) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(agent->submit(grid_job(600.0)));
  // Crash while the first pipeline of submits is still in flight, before
  // most acks landed; the persisted seqs must re-drive without duplicates.
  testbed.world().sim().schedule_at(60.5, [&] { agent->host().crash(); });
  testbed.world().sim().schedule_at(100.0, [&] { agent->host().restart(); });
  run_to_completion(240000.0);
  for (const auto id : ids) {
    EXPECT_EQ(agent->query(id)->status, core::JobStatus::kCompleted)
        << "job " << id;
  }
  EXPECT_EQ(total_site_executions(), 12u);
  EXPECT_EQ(agent->gridmanager().pending_watch_size(), 0u);
}
