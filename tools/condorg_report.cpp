// condorg_report: offline reader for the observability layer's artifacts.
//
// Consumes the trace JSONL written by sim::Tracer (CONDORG_TRACE=...) and
// the metrics JSON written by util::MetricsRegistry (CONDORG_METRICS=...)
// and renders human-readable reports:
//
//   condorg_report --trace run.jsonl                 # trace overview
//   condorg_report --trace run.jsonl --job 7         # one job's timeline
//   condorg_report --trace run.jsonl --recovery      # recovery percentiles
//   condorg_report --trace run.jsonl --critical-path # per-phase latency JSON
//   condorg_report --trace run.jsonl --flame         # folded flamegraph
//   condorg_report --metrics run.json                # metric tables
//   condorg_report --profile prof.json --traffic-matrix  # kernel profiler
//   condorg_report --trace run.jsonl --self-check    # structural validation
//
// --self-check exits non-zero when the trace is structurally unsound (parse
// failures, span ends without begins, double-closed spans, time running
// backwards) and is wired into scripts/check.sh so a broken exporter fails
// the repo's checks, not just a human eyeball. --critical-path applies the
// same discipline to the causal analysis: it prints sim::CriticalPath's
// deterministic JSON on stdout and fails when any job's phase attributions
// do not tile its window.
//
// This tool parses files and prints; it links the simulator's offline
// analysis classes (TraceRecord::from_json, sim::CriticalPath) but never
// runs a simulation, so it works on artifacts from any run, any machine.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "condorg/sim/critical_path.h"
#include "condorg/sim/tracer.h"
#include "condorg/util/json.h"
#include "condorg/util/metrics.h"
#include "condorg/util/stats.h"
#include "condorg/util/table.h"

namespace {

using condorg::util::JsonValue;
using condorg::util::Samples;
using condorg::util::Table;

struct Record {
  double t = 0;
  std::string kind;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t job = 0;
  std::string name;
  std::string host;
  std::uint64_t epoch = 0;
  std::string status;
  std::string detail;
  std::uint64_t id = 0;
  std::uint64_t cause = 0;
};

struct Trace {
  std::vector<Record> records;
  std::vector<std::string> problems;  // filled by structural validation
};

std::string field(const JsonValue& object, const char* key) {
  const JsonValue* value = object.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

/// Parse one JSONL file; structural problems are collected, not fatal, so
/// a report over a slightly damaged trace still shows what it can.
Trace load_trace(const std::string& path) {
  Trace trace;
  const std::optional<std::string> text = condorg::util::read_text_file(path);
  if (!text) {
    trace.problems.push_back("cannot open trace file: " + path);
    return trace;
  }
  std::size_t line_number = 0;
  std::size_t start = 0;
  std::set<std::uint64_t> open;    // spans begun, not yet ended
  std::set<std::uint64_t> closed;  // spans ended
  double last_time = 0;
  while (start < text->size()) {
    std::size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    const std::string_view line(text->data() + start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    const std::optional<JsonValue> parsed = JsonValue::parse(line);
    if (!parsed || !parsed->is_object()) {
      trace.problems.push_back("line " + std::to_string(line_number) +
                               ": not a JSON object");
      continue;
    }
    Record record;
    record.t = parsed->number_at("t");
    record.kind = field(*parsed, "kind");
    record.span = static_cast<std::uint64_t>(parsed->number_at("span"));
    record.parent = static_cast<std::uint64_t>(parsed->number_at("parent"));
    record.job = static_cast<std::uint64_t>(parsed->number_at("job"));
    record.name = field(*parsed, "name");
    record.host = field(*parsed, "host");
    record.epoch = static_cast<std::uint64_t>(parsed->number_at("epoch"));
    record.status = field(*parsed, "status");
    record.detail = field(*parsed, "detail");
    record.id = static_cast<std::uint64_t>(parsed->number_at("id"));
    record.cause = static_cast<std::uint64_t>(parsed->number_at("cause"));

    if (record.t < last_time) {
      trace.problems.push_back("line " + std::to_string(line_number) +
                               ": time runs backwards");
    }
    last_time = record.t;
    if (record.kind == "span_begin") {
      if (!open.insert(record.span).second) {
        trace.problems.push_back("line " + std::to_string(line_number) +
                                 ": span " + std::to_string(record.span) +
                                 " begun twice");
      }
    } else if (record.kind == "span_end") {
      if (open.erase(record.span) == 0) {
        trace.problems.push_back(
            "line " + std::to_string(line_number) + ": span " +
            std::to_string(record.span) +
            (closed.count(record.span) ? " ended twice" : " ended, never begun"));
      } else {
        closed.insert(record.span);
      }
    } else if (record.kind != "event") {
      trace.problems.push_back("line " + std::to_string(line_number) +
                               ": unknown kind \"" + record.kind + "\"");
    }
    trace.records.push_back(std::move(record));
  }
  return trace;
}

std::string format_number(double value) {
  return JsonValue::number_to_string(value);
}

void print_overview(const Trace& trace) {
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t events = 0;
  std::set<std::uint64_t> jobs;
  std::set<std::string> hosts;
  std::map<std::string, std::size_t> by_name;
  for (const Record& record : trace.records) {
    if (record.kind == "span_begin") ++begins;
    if (record.kind == "span_end") ++ends;
    if (record.kind == "event") ++events;
    if (record.job != 0) jobs.insert(record.job);
    if (!record.host.empty()) hosts.insert(record.host);
    ++by_name[record.name];
  }
  std::printf("trace: %zu records (%zu span begins, %zu span ends, "
              "%zu events), %zu jobs, %zu hosts\n",
              trace.records.size(), begins, ends, events, jobs.size(),
              hosts.size());
  Table table({"name", "records"});
  for (const auto& [name, count] : by_name) {
    table.add_row({name, std::to_string(count)});
  }
  std::fputs(table.render("records by name").c_str(), stdout);
}

/// Sort rank so same-timestamp records render in causal reading order:
/// spans open before the events inside them and close after.
int kind_rank(const std::string& kind) {
  if (kind == "span_begin") return 0;
  if (kind == "event") return 1;
  return 2;  // span_end (and anything unknown sinks to the bottom)
}

void print_job_timeline(const Trace& trace, std::uint64_t job) {
  // Stable-sort by (t, span id, record kind): a tracer interleaving records
  // of several spans at one timestamp (a batched GridManager tick) still
  // renders each span's records contiguously, and the stability keeps file
  // order as the final tie-break so same-key records never flip between
  // runs.
  std::vector<const Record*> rows_sorted;
  for (const Record& record : trace.records) {
    if (record.job == job) rows_sorted.push_back(&record);
  }
  std::stable_sort(rows_sorted.begin(), rows_sorted.end(),
                   [](const Record* a, const Record* b) {
                     if (a->t != b->t) return a->t < b->t;
                     if (a->span != b->span) return a->span < b->span;
                     return kind_rank(a->kind) < kind_rank(b->kind);
                   });
  Table table(
      {"t", "kind", "name", "host", "epoch", "id", "cause", "status / detail"});
  std::size_t rows = 0;
  for (const Record* record : rows_sorted) {
    std::string tail = record->status;
    if (!record->detail.empty()) {
      if (!tail.empty()) tail += " — ";
      tail += record->detail;
    }
    table.add_row({format_number(record->t), record->kind, record->name,
                   record->host, std::to_string(record->epoch),
                   record->id != 0 ? std::to_string(record->id) : "",
                   record->cause != 0 ? std::to_string(record->cause) : "",
                   tail});
    ++rows;
  }
  if (rows == 0) {
    std::printf("no records for job %llu\n",
                static_cast<unsigned long long>(job));
    return;
  }
  std::fputs(
      table.render("timeline for job " + std::to_string(job)).c_str(),
      stdout);
}

/// Recovery latency: pair each job's "recovery.begin" with its next
/// "recovery.end" (same matching rule as Tracer::paired_event_latencies).
void print_recovery(const Trace& trace) {
  std::map<std::uint64_t, double> begun;
  Samples latencies;
  std::size_t unmatched = 0;
  for (const Record& record : trace.records) {
    if (record.kind != "event") continue;
    if (record.name == "recovery.begin") {
      begun.emplace(record.job, record.t);
    } else if (record.name == "recovery.end") {
      const auto it = begun.find(record.job);
      if (it == begun.end()) {
        ++unmatched;
        continue;
      }
      latencies.add(record.t - it->second);
      begun.erase(it);
    }
  }
  if (latencies.empty()) {
    std::printf("no completed recovery windows in this trace "
                "(%zu still open, %zu unmatched ends)\n",
                begun.size(), unmatched);
    return;
  }
  Table table({"windows", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"});
  table.add_row({std::to_string(latencies.count()),
                 format_number(latencies.percentile(50)),
                 format_number(latencies.percentile(90)),
                 format_number(latencies.percentile(99)),
                 format_number(latencies.max())});
  std::fputs(table.render("recovery latency").c_str(), stdout);
  if (!begun.empty() || unmatched != 0) {
    std::printf("note: %zu windows still open, %zu unmatched ends\n",
                begun.size(), unmatched);
  }
}

int print_metrics(const std::string& path) {
  const std::optional<std::string> text = condorg::util::read_text_file(path);
  if (!text) {
    std::fprintf(stderr, "cannot open metrics file: %s\n", path.c_str());
    return 1;
  }
  const std::optional<JsonValue> parsed = JsonValue::parse(*text);
  if (!parsed || !parsed->is_object()) {
    std::fprintf(stderr, "metrics file is not a JSON object: %s\n",
                 path.c_str());
    return 1;
  }
  if (const JsonValue* counters = parsed->find("counters");
      counters != nullptr && counters->is_object() && counters->size() > 0) {
    Table table({"counter", "value"});
    for (const auto& [key, value] : counters->members()) {
      table.add_row({key, format_number(value.as_number())});
    }
    std::fputs(table.render("counters").c_str(), stdout);
  }
  if (const JsonValue* gauges = parsed->find("gauges");
      gauges != nullptr && gauges->is_object() && gauges->size() > 0) {
    Table table({"gauge", "value", "peak", "average"});
    for (const auto& [key, value] : gauges->members()) {
      table.add_row({key, format_number(value.number_at("value")),
                     format_number(value.number_at("peak")),
                     format_number(value.number_at("average"))});
    }
    std::fputs(table.render("gauges (time-weighted)").c_str(), stdout);
  }
  if (const JsonValue* histograms = parsed->find("histograms");
      histograms != nullptr && histograms->is_object() &&
      histograms->size() > 0) {
    Table table({"histogram", "count", "mean", "p50", "p99", "max"});
    for (const auto& [key, value] : histograms->members()) {
      table.add_row({key, format_number(value.number_at("count")),
                     format_number(value.number_at("mean")),
                     format_number(value.number_at("p50")),
                     format_number(value.number_at("p99")),
                     format_number(value.number_at("max"))});
    }
    std::fputs(table.render("histograms").c_str(), stdout);
  }
  return 0;
}

/// Family name of a serialized metric key (`name{k=v,...}` -> `name`).
/// Goes through util::parse_metric_key so escaped structural characters in
/// label values (`\,`, `\=`, `\}`) cannot truncate the name.
std::string metric_family(const std::string& key) {
  return condorg::util::parse_metric_key(key).name;
}

/// Label block of a serialized metric key, values unescaped for display
/// (`name{k=a\,b}` -> `k=a,b`).
std::string metric_labels(const std::string& key) {
  const condorg::util::ParsedMetricKey parsed =
      condorg::util::parse_metric_key(key);
  std::string out;
  for (const auto& [label, value] : parsed.labels) {
    if (!out.empty()) out += ", ";
    out += label;
    out.push_back('=');
    out += value;
  }
  return out;
}

/// Submission-pipeline health at a glance: per-site staging-cache hit
/// rates, pipeline-depth peaks against the configured cap, and the Schedd
/// index footprint. Reads the same metrics JSON as the full tables.
int print_pipeline_overview(const std::string& path) {
  const std::optional<std::string> text = condorg::util::read_text_file(path);
  if (!text) {
    std::fprintf(stderr, "cannot open metrics file: %s\n", path.c_str());
    return 1;
  }
  const std::optional<JsonValue> parsed = JsonValue::parse(*text);
  if (!parsed || !parsed->is_object()) {
    std::fprintf(stderr, "metrics file is not a JSON object: %s\n",
                 path.c_str());
    return 1;
  }

  std::map<std::string, double> hits;
  std::map<std::string, double> misses;
  if (const JsonValue* counters = parsed->find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [key, value] : counters->members()) {
      const std::string family = metric_family(key);
      if (family == "staging_cache_hits") {
        hits[metric_labels(key)] = value.as_number();
      } else if (family == "staging_cache_misses") {
        misses[metric_labels(key)] = value.as_number();
      }
    }
  }
  std::map<std::string, std::string> sites;
  for (const auto& [labels, n] : hits) sites.emplace(labels, "");
  for (const auto& [labels, n] : misses) sites.emplace(labels, "");
  if (!sites.empty()) {
    Table table({"site", "hits", "misses", "hit rate"});
    for (const auto& [labels, unused] : sites) {
      const double h = hits.count(labels) ? hits.at(labels) : 0.0;
      const double m = misses.count(labels) ? misses.at(labels) : 0.0;
      const double total = h + m;
      table.add_row({labels, format_number(h), format_number(m),
                     total > 0.0 ? format_number(100.0 * h / total) + "%"
                                 : "-"});
    }
    std::fputs(table.render("staging cache").c_str(), stdout);
  } else {
    std::printf("no staging-cache activity in this run\n");
  }

  bool any_depth = false;
  bool any_index = false;
  Table depth({"pipeline", "now", "peak", "average"});
  Table index({"index", "size", "peak"});
  if (const JsonValue* gauges = parsed->find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [key, value] : gauges->members()) {
      const std::string family = metric_family(key);
      if (family == "submit_pipeline_depth") {
        any_depth = true;
        depth.add_row({metric_labels(key),
                       format_number(value.number_at("value")),
                       format_number(value.number_at("peak")),
                       format_number(value.number_at("average"))});
      } else if (family == "schedd_index_size") {
        any_index = true;
        index.add_row({metric_labels(key),
                       format_number(value.number_at("value")),
                       format_number(value.number_at("peak"))});
      }
    }
  }
  if (any_depth) {
    std::fputs(depth.render("submit pipeline depth").c_str(), stdout);
  }
  if (any_index) {
    std::fputs(index.render("schedd secondary indexes").c_str(), stdout);
  }
  return 0;
}

/// Re-parse the trace through the simulator's own record parser; the
/// critical-path walker wants real TraceRecords (typed kinds, cause edges),
/// not the report tool's loose Record rows.
std::vector<condorg::sim::TraceRecord> load_sim_records(
    const std::string& path, std::size_t& parse_failures) {
  std::vector<condorg::sim::TraceRecord> records;
  parse_failures = 0;
  const std::optional<std::string> text = condorg::util::read_text_file(path);
  if (!text) return records;
  std::size_t start = 0;
  while (start < text->size()) {
    std::size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    const std::string_view line(text->data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (auto record = condorg::sim::TraceRecord::from_json(line)) {
      records.push_back(std::move(*record));
    } else {
      ++parse_failures;
    }
  }
  return records;
}

/// --critical-path / --flame: stdout carries exactly the deterministic
/// artifact (JSON or folded stacks) so check.sh can byte-compare same-seed
/// runs; diagnostics go to stderr and any tiling violation fails the run.
int print_critical_path(const std::string& path, bool flame) {
  std::size_t parse_failures = 0;
  const std::vector<condorg::sim::TraceRecord> records =
      load_sim_records(path, parse_failures);
  if (records.empty()) {
    std::fprintf(stderr, "no parseable trace records in %s\n", path.c_str());
    return 1;
  }
  const condorg::sim::CriticalPath analysis(records);
  if (flame) {
    std::fputs(analysis.to_folded().c_str(), stdout);
  } else {
    std::printf("%s\n", analysis.to_json().c_str());
  }
  int rc = 0;
  if (parse_failures != 0) {
    std::fprintf(stderr, "critical-path: %zu unparseable lines in %s\n",
                 parse_failures, path.c_str());
    rc = 1;
  }
  for (const std::string& problem : analysis.self_check()) {
    std::fprintf(stderr, "critical-path: %s\n", problem.c_str());
    rc = 1;
  }
  return rc;
}

/// Per-island execution summary of a parallel (CONDORG_PARALLEL) run:
/// events dispatched, inbox (cross-island) messages integrated, window
/// epochs, and — when the profile was exported with wall columns — the
/// nanoseconds each worker spent busy vs blocked at the window barrier.
/// Island 0 is the control island (timers, harness events).
void print_island_summary(const JsonValue& profile) {
  const JsonValue* islands = profile.find("islands");
  if (islands == nullptr || !islands->is_array() ||
      islands->items().empty()) {
    return;  // legacy-kernel profile: nothing to summarize
  }
  const bool has_wall =
      islands->items().front().find("blocked_ns") != nullptr;
  std::vector<std::string> columns = {"island", "events", "inbox messages",
                                      "epochs"};
  if (has_wall) {
    columns.push_back("busy ms");
    columns.push_back("blocked ms");
  }
  Table table(columns);
  std::size_t index = 0;
  for (const JsonValue& row : islands->items()) {
    std::vector<std::string> cells = {
        index == 0 ? "0 (control)" : std::to_string(index),
        format_number(row.number_at("events")),
        format_number(row.number_at("inbox_messages")),
        format_number(row.number_at("epochs"))};
    if (has_wall) {
      cells.push_back(format_number(row.number_at("busy_ns") / 1e6));
      cells.push_back(format_number(row.number_at("blocked_ns") / 1e6));
    }
    table.add_row(std::move(cells));
    ++index;
  }
  std::fputs(table.render("island execution (parallel kernel)").c_str(),
             stdout);
}

/// --traffic-matrix: render the kernel profiler's cross-host view (written
/// by Profiler::to_json) as from/to/type rows plus a per-type rollup.
int print_traffic_matrix(const std::string& path) {
  const std::optional<std::string> text = condorg::util::read_text_file(path);
  if (!text) {
    std::fprintf(stderr, "cannot open profile file: %s\n", path.c_str());
    return 1;
  }
  const std::optional<JsonValue> parsed = JsonValue::parse(*text);
  if (!parsed || !parsed->is_object()) {
    std::fprintf(stderr, "profile file is not a JSON object: %s\n",
                 path.c_str());
    return 1;
  }
  const JsonValue* matrix = parsed->find("traffic_matrix");
  if (matrix == nullptr || !matrix->is_object()) {
    std::fprintf(stderr, "profile has no traffic_matrix: %s\n", path.c_str());
    return 1;
  }
  Table table({"from", "to", "type", "messages", "bytes"});
  std::map<std::string, std::pair<double, double>> by_type;  // cross-host only
  std::size_t rows = 0;
  for (const auto& [from, dests] : matrix->members()) {
    if (!dests.is_object()) continue;
    for (const auto& [to, types] : dests.members()) {
      if (!types.is_object()) continue;
      for (const auto& [type, cell] : types.members()) {
        const double count = cell.number_at("count");
        const double bytes = cell.number_at("bytes");
        table.add_row({from, to, type, format_number(count),
                       format_number(bytes)});
        ++rows;
        if (from != to) {
          by_type[type].first += count;
          by_type[type].second += bytes;
        }
      }
    }
  }
  if (rows == 0) {
    std::printf("traffic matrix is empty (profiler disarmed?)\n");
    return 0;
  }
  std::fputs(table.render("traffic matrix").c_str(), stdout);
  Table rollup({"type", "cross-host messages", "bytes"});
  for (const auto& [type, totals] : by_type) {
    rollup.add_row({type, format_number(totals.first),
                    format_number(totals.second)});
  }
  std::fputs(rollup.render("cross-host types (island cut)").c_str(), stdout);
  print_island_summary(*parsed);
  return 0;
}

int usage() {
  std::fputs(
      "usage: condorg_report [--trace FILE] [--metrics FILE] "
      "[--profile FILE]\n"
      "                      [--job N] [--recovery] [--overview] "
      "[--self-check]\n"
      "                      [--critical-path] [--flame] [--traffic-matrix]\n"
      "  --trace FILE      trace JSONL written via CONDORG_TRACE\n"
      "  --metrics FILE    metrics JSON written via CONDORG_METRICS\n"
      "  --profile FILE    kernel-profiler JSON (sim::Profiler::to_json)\n"
      "  --job N           print one job's timeline (needs --trace)\n"
      "  --recovery        recovery-latency percentiles (needs --trace)\n"
      "  --overview        submission-pipeline summary (needs --metrics)\n"
      "  --critical-path   per-phase latency attribution JSON (needs "
      "--trace)\n"
      "  --flame           folded stacks for flamegraph tools (needs "
      "--trace)\n"
      "  --traffic-matrix  cross-host traffic tables (needs --profile)\n"
      "  --self-check      validate trace structure; non-zero exit on "
      "damage\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  std::optional<std::uint64_t> job;
  bool recovery = false;
  bool overview = false;
  bool self_check = false;
  bool critical_path = false;
  bool flame = false;
  bool traffic_matrix = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--job" && i + 1 < argc) {
      job = std::stoull(argv[++i]);
    } else if (arg == "--recovery") {
      recovery = true;
    } else if (arg == "--overview") {
      overview = true;
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--critical-path") {
      critical_path = true;
    } else if (arg == "--flame") {
      flame = true;
    } else if (arg == "--traffic-matrix") {
      traffic_matrix = true;
    } else {
      return usage();
    }
  }
  if (trace_path.empty() && metrics_path.empty() && profile_path.empty()) {
    return usage();
  }
  if ((critical_path || flame) && trace_path.empty()) return usage();
  if (traffic_matrix && profile_path.empty()) return usage();

  int rc = 0;
  if (critical_path || flame) {
    return print_critical_path(trace_path, flame);
  }
  if (!trace_path.empty()) {
    const Trace trace = load_trace(trace_path);
    if (self_check) {
      for (const std::string& problem : trace.problems) {
        std::fprintf(stderr, "self-check: %s\n", problem.c_str());
      }
      if (!trace.problems.empty()) {
        std::fprintf(stderr, "self-check FAILED: %zu problems in %s\n",
                     trace.problems.size(), trace_path.c_str());
        return 1;
      }
      std::printf("self-check ok: %zu records in %s\n", trace.records.size(),
                  trace_path.c_str());
    } else if (job) {
      print_job_timeline(trace, *job);
    } else if (recovery) {
      print_recovery(trace);
    } else {
      print_overview(trace);
    }
    if (!self_check && !trace.problems.empty()) {
      std::fprintf(stderr, "warning: %zu structural problems (run with "
                           "--self-check for details)\n",
                   trace.problems.size());
    }
  }
  if (!metrics_path.empty()) {
    rc = overview ? print_pipeline_overview(metrics_path)
                  : print_metrics(metrics_path);
  }
  if (!profile_path.empty() && rc == 0) {
    rc = print_traffic_matrix(profile_path);
  }
  return rc;
}
