// Fixture: a user-partition daemon with one correctly-wrapped field and
// one seeded violation (an unannotated container member).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace condorg::core {

class FixtureSchedd {
 public:
  CONDORG_HOST_LOCAL("user");

  explicit FixtureSchedd(sim::Host& host);

 private:
  det::HostLocal<std::map<std::uint64_t, int>> jobs_;
  // SEEDED VIOLATION (unannotated-daemon-field): container state in an
  // annotated daemon without HostLocal or a det-local() audit.
  std::map<std::uint64_t, int> pending_;
  // Audited raw member: the det-local(watchers_) marker suppresses the rule.
  std::vector<int> watchers_;
};

}  // namespace condorg::core
