// Fixture: user-partition implementation with three seeded violations —
// a mutable global, a cross-partition reference, and a direct call on a
// site-partition daemon object.
#include "condorg/core/fixture_schedd.h"

#include "condorg/gram/fixture_gatekeeper.h"

namespace condorg::core {

// SEEDED VIOLATION (mutable-global): file-scope mutable state an island
// worker could race on.
static int g_retry_count = 0;

void FixtureSchedd::poke(gram::FixtureGatekeeper& gatekeeper) {
  ++g_retry_count;
  // SEEDED VIOLATION (cross-partition-ref + cross-partition-call): a
  // user-partition daemon holding and directly invoking a site-partition
  // object instead of sending a message.
  gram::FixtureGatekeeper& gk = gatekeeper;
  gk.submit_direct(g_retry_count);
}

}  // namespace condorg::core
