// Fixture: a fully-clean site-partition daemon — the self-test requires
// that this file contributes ZERO violations (no false positives).
#pragma once

#include <map>
#include <string>

namespace condorg::gass {

class FixtureCleanCache {
 public:
  CONDORG_HOST_LOCAL("site");

  std::size_t entry_count() const { return entries_->size(); }

 private:
  det::HostLocal<std::map<std::string, int>> entries_;
  // det-local(listeners_): observer list, mutated only from owner events.
  std::map<int, int> listeners_;
};

}  // namespace condorg::gass
