// Fixture: clean implementation file — messaging through the declared
// boundary (sim::Rpc / sim::Address) must NOT trip the cross-partition
// rules even though it names another partition's endpoint.
#include "condorg/gass/fixture_clean.h"

namespace condorg::gass {

void refresh(FixtureCleanCache& cache, sim::RpcClient& rpc) {
  // Legal island cut: a message to the user-partition GASS server.
  rpc.call(sim::Address{"submit.example.org", "file.get"}, "file.get");
  (void)cache;
}

}  // namespace condorg::gass
