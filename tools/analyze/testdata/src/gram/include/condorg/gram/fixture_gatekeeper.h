// Fixture: a site-partition daemon, referenced illegally from the
// user-partition fixture_schedd.cpp.
#pragma once

#include <map>
#include <string>

namespace condorg::gram {

class FixtureGatekeeper {
 public:
  CONDORG_HOST_LOCAL("site");

  void submit_direct(int job);

 private:
  det::HostLocal<std::map<std::string, int>> jobmanagers_;
};

}  // namespace condorg::gram
