// Fixture mirror of the real Explorer's enumerated crash-point table. The
// "fixture.stale" entry has no code site — seeded crash-point-coverage
// violation (stale table entry). Never compiled.
namespace condorg::sim {

constexpr const char* kEnumeratedCrashPoints[] = {
    "fixture.persist_ok",
    "fixture.stale",
};

}  // namespace condorg::sim
