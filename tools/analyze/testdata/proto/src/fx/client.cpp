// Fixture client: declared sender for every fx request type. Scanned by
// condorg_proto.py --self-test only; never compiled.
#include "condorg/fx/client.h"

namespace condorg::fx {

void FxClient::send_all() {
  sim::Payload payload;
  payload.set("record", "r1");
  rpc_->call(server_, "fx.ok", payload, kTimeout,
             [](bool, const sim::Payload&) {});
  rpc_->call(server_, "fx.noreply", payload, kTimeout,
             [](bool, const sim::Payload&) {});
  rpc_->call(server_, "fx.missing_handler", payload, kTimeout,
             [](bool, const sim::Payload&) {});
  rpc_->call(server_, "fx.durable_nocp", payload, kTimeout,
             [](bool, const sim::Payload&) {});
}

}  // namespace condorg::fx
