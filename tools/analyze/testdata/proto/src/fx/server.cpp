// Fixture server seeding one violation per proto rule (plus the spec-side
// seeds in protocols.json). Scanned by --self-test only; never compiled.
//
//   reply-on-all-paths    the "deny" guard in the fx.noreply arm drops the
//                         request without replying
//   ghost-message         the fx.ghost arm has no spec entry
//   crash-point-coverage  crash_point("fixture.orphan") is claimed by no
//                         spec entry and enumerated in no Explorer table
//   timer-re-arm          FxServer::tick never re-arms itself
//   spec-coverage         fx.missing_handler has no arm here (seeded by
//                         omission — the spec names this file as receiver)
#include "condorg/fx/server.h"

namespace condorg::fx {

void FxServer::on_message(const sim::Message& message) {
  sim::Payload reply;
  if (message.type == "fx.noreply") {
    if (message.body.get("deny") == "1") return;
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "fx.durable_nocp") {
    host_.disk().put("fx_record", message.body.get("record"));
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "fx.ghost") {
    if (host_.crash_point("fixture.orphan")) return;
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
}

void FxServer::tick() {
  refresh_registry();
}

}  // namespace condorg::fx
