// Fixture clean daemon: handles fx.ok by the book (crash point inside the
// durable window, reply on every path, unknown-operation tail) and its
// periodic tick re-arms. Must contribute ZERO diagnostics — this is the
// self-test's noise floor. Never compiled.
#include "condorg/fx/clean_server.h"

namespace condorg::fx {

void FxCleanServer::on_message(const sim::Message& message) {
  sim::Payload reply;
  if (message.type == "fx.ok") {
    if (host_.crash_point("fixture.persist_ok")) return;
    host_.disk().put("fx_record", message.body.get("record"));
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  reply.set_bool("ok", false);
  reply.set("error", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

void FxCleanServer::tick() {
  publish();
  host_.post(interval_, [this] { tick(); });
}

}  // namespace condorg::fx
