#!/usr/bin/env python3
"""Partition-safety analyzer: prove the kernel is island-parallel-ready.

ROADMAP item 2 wants to shard the calendar-queue kernel into
conservatively-synchronized islands (one per host group). That is only
legal if daemon state is host-local and every cross-host interaction goes
through a message boundary (sim::Network / sim::Rpc) that an island
scheduler can turn into a cross-island event. This tool is the static half
of that proof (the dynamic half is DetSan, src/sim/include/condorg/sim/det.h):

  1. Inventory mutable global/static state in src/ — anything a second
     island worker could race on (rule: mutable-global).
  2. Build the state-ownership map from CONDORG_HOST_LOCAL() class
     annotations and det::HostLocal<> field wrappers.
  3. Flag container/optional state members of annotated daemon classes
     that are neither HostLocal-wrapped nor audited with a
     `det-local(<field>)` comment (rule: unannotated-daemon-field).
  4. Flag references to / calls on a daemon class annotated to a
     *different* partition (rules: cross-partition-ref,
     cross-partition-call) unless the line is a declared message boundary
     (sim::Network, sim::Rpc, sim::Address endpoint naming).
  5. Re-run the determinism lint's rule engine over src/ so wall-clock,
     ambient-RNG, and unordered-iteration-into-trace escapes fail this
     gate too (one rule engine: tools/lint/condorg_lint.py is imported,
     not reimplemented).
  6. Emit partition_report.json: the island-cut graph of legal cross-host
     edges (protocol -> from/to partition, with the message types and
     client/server call sites discovered in the tree as evidence). The
     report fails the run if any of GRAM/GASS/MDS/GSI has no discovered
     message boundary — a partition claim with no evidence is a bug.

Engines: when python bindings for libclang and a compile_commands.json are
available, an AST pass adds precise cross-TU call checking; the regex
engine always runs and is the binding gate (the CI container has no
libclang, so the fallback is the default path, not a degraded one).

Suppressions use the lint's format (one allowlist grammar everywhere):
  inline:      // lint-allow(<rule>): <why>
  file-level:  tools/analyze/allowlist.txt   <relpath>:<rule>  # why
Partition rules additionally accept `det-local(<field>)` comments on
daemon members that are deliberately raw (see rule 3). A file-level entry
for a partition rule that no longer suppresses anything is itself an error
(rule: stale-suppression) — tidy.sh's burn-down policy, shared with the
lint and the proto analyzer.

Exit status: 0 = clean, 1 = violations or missing coverage, 2 = usage.
"""

import argparse
import importlib.util
import json
import os
import re
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_LINT_PATH = os.path.join(_HERE, os.pardir, "lint", "condorg_lint.py")


def _load_lint():
    spec = importlib.util.spec_from_file_location("condorg_lint", _LINT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = _load_lint()

# ---------------------------------------------------------------------------
# The island-cut model: every legal cross-host interaction in the paper's
# deployment, keyed by the message-type prefix each protocol module uses.
# The scan below must find real client call sites and server dispatch sites
# for every entry — the table is the claim, the tree is the evidence.
# ---------------------------------------------------------------------------
PROTOCOLS = {
    "GRAM": {"prefixes": ("gram", "jm"), "from": "user", "to": "site"},
    "GASS": {"prefixes": ("file",), "from": "site", "to": "user"},
    "MDS": {"prefixes": ("grip", "grrp"), "from": "user", "to": "central"},
    "GSI": {"prefixes": ("myproxy",), "from": "user", "to": "central"},
    "CONDOR": {"prefixes": ("startd", "shadow", "collector"),
               "from": "user", "to": "user"},
}
REQUIRED_PROTOCOLS = ("GRAM", "GASS", "MDS", "GSI")

# The rules this analyzer owns (stale-suppression detection judges only
# these: tools/analyze/allowlist.txt is shared with condorg_proto.py).
PARTITION_RULES = frozenset({
    "mutable-global", "cross-partition-ref", "cross-partition-call",
    "unannotated-daemon-field",
})

ANNOTATION = re.compile(r'CONDORG_HOST_LOCAL\("(\w+)"\)')
CLASS_DECL = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
                        r"(?::[^;{]*)?\{")
HOST_LOCAL_FIELD = re.compile(
    r"(?:mutable\s+)?(?:det::)?HostLocal<(.+)>\s*([A-Za-z_]\w*)\s*;")
# Mutable file-scope / function-local static state. `static const...` and
# static member *functions* don't count; neither do static_cast/_assert
# (no word boundary between "static" and "_").
STATIC_DECL = re.compile(r"^\s*(?:inline\s+)?(?:static|thread_local)\s+"
                         r"(?!const\b|constexpr\b|inline\s+const)")
# g_-convention globals: a *declaration* needs a type prefix (or extern);
# bare `g_x = ...` assignments are uses of an already-reported declaration.
GLOBAL_NAME = re.compile(r"^\s*(?:extern\s+)?\w[\w:<>,*&\s]*[\s*&]g_\w+"
                         r"\s*[;={]")
# Container-ish member state that must be HostLocal in an annotated daemon.
STATE_FIELD = re.compile(
    r"^\s*(?:mutable\s+)?(?:std::)?"
    r"(?:map|set|vector|deque|list|optional|unordered_map|unordered_set|"
    r"multimap|multiset|priority_queue|queue)\s*<.*>\s*"
    r"([A-Za-z_]\w*)\s*(?:;|\{\})")
DET_LOCAL = re.compile(r"det-local\(([A-Za-z_]\w*)\)")
FWD_DECL = re.compile(r"^\s*class\s+[A-Za-z_]\w*\s*;")
MESSAGE_LITERAL = re.compile(r'"([a-z_]+)\.([a-z_.]+)"')
CLIENT_SITE = re.compile(r"(?:\.|->)(?:call|notify)\s*\(|rpc_notify\s*\(")
SERVER_SITE = re.compile(r"message\.type\s*==|\.type\s*==")
# A line that is a declared message boundary: endpoint naming or kernel
# messaging API. Calls THROUGH these are the legal island cut.
BOUNDARY = re.compile(r"sim::Address|sim::Network|sim::Rpc|rpc_reply|"
                      r"\.notify\s*\(|\.call\s*\(|register_service")


class Analysis:
    def __init__(self, root):
        self.root = root
        self.partitions = {}        # class name -> partition
        self.class_file = {}        # class name -> relpath of header
        self.file_partition = {}    # relpath -> partition (home partition)
        self.host_local_fields = []  # dicts: class/field/type/file/line
        self.violations = []        # lint.Violation
        self.mutable_globals = []   # dicts for the report
        self.edges = {}             # protocol -> edge dict
        self.used_allows = set()    # (relpath, rule) file-level suppressions


def iter_src_files(root):
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith(lint.SRC_EXTENSIONS):
                yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def collect_ownership(analysis):
    """Pass 1: class -> partition map and HostLocal field inventory, from
    the CONDORG_HOST_LOCAL annotations and det::HostLocal declarations in
    headers. A .cpp inherits the partition of the single annotated class
    declared in its paired header (gram/gatekeeper.cpp -> site, ...)."""
    for path in iter_src_files(analysis.root):
        rel = os.path.relpath(path, analysis.root)
        lines = read_lines(path)
        current_class = []
        for idx, raw in enumerate(lines):
            if lint.COMMENT_LINE.match(raw):
                continue
            line = lint.strip_noise(raw)
            m = CLASS_DECL.search(line)
            if m and not FWD_DECL.match(line):
                current_class.append(m.group(1))
            # the raw line: strip_noise blanks the partition literal
            m = ANNOTATION.search(raw)
            if m and current_class:
                analysis.partitions[current_class[-1]] = m.group(1)
                analysis.class_file[current_class[-1]] = rel
            m = HOST_LOCAL_FIELD.search(line)
            if m and current_class:
                analysis.host_local_fields.append({
                    "class": current_class[-1],
                    "field": m.group(2),
                    "type": m.group(1).strip(),
                    "file": rel,
                    "line": idx + 1,
                })
    # Home partitions: the annotated header, and its module .cpp twin.
    for cls, partition in analysis.partitions.items():
        header = analysis.class_file[cls]
        analysis.file_partition[header] = partition
        m = re.match(r"src/(\w+)/include/condorg/\w+/([\w.]+)\.h$",
                     header.replace(os.sep, "/"))
        if m:
            twin = os.path.join("src", m.group(1), m.group(2) + ".cpp")
            if os.path.isfile(os.path.join(analysis.root, twin)):
                analysis.file_partition[twin] = partition


def scan_file(analysis, path, allows):
    """Pass 2: partition rules over one file."""
    rel = os.path.relpath(path, analysis.root)
    lines = read_lines(path)
    file_allows = allows.get(rel, set())
    home = analysis.file_partition.get(rel)

    def report(idx, rule, message):
        if rule in file_allows:
            analysis.used_allows.add((rel, rule))
            return
        if rule in lint.inline_allows(lines, idx):
            return
        analysis.violations.append(lint.Violation(rel, idx + 1, rule,
                                                  message))

    # det-local(<field>) audits apply file-wide (header declares, cpp uses).
    det_local = set()
    for raw in lines:
        det_local.update(DET_LOCAL.findall(raw))

    # Variables declared with a cross-partition daemon type, for the call
    # rule: `gram::Gatekeeper& gk = ...; gk.submit(...);`
    foreign_vars = {}

    in_annotated_class = home is not None and rel.endswith(".h")

    for idx, raw in enumerate(lines):
        if lint.COMMENT_LINE.match(raw):
            continue
        line = lint.strip_noise(raw)
        if not line.strip():
            continue

        # --- rule: mutable-global -------------------------------------
        is_static = STATIC_DECL.search(line)
        is_global_name = GLOBAL_NAME.match(line)
        if is_static or is_global_name:
            declares_variable = (";" in line or "=" in line) and (
                "(" not in line or
                ("=" in line and line.index("=") < line.index("(")))
            if declares_variable and "using" not in line.split()[:1]:
                allowed = ("mutable-global" in file_allows or
                           "mutable-global" in lint.inline_allows(lines, idx))
                analysis.mutable_globals.append({
                    "file": rel, "line": idx + 1,
                    "decl": line.strip().rstrip(";"),
                    "allowed": allowed,
                })
                report(idx, "mutable-global",
                       "mutable static/global state is shared across "
                       "islands; move it into a host-owned object or "
                       "lint-allow with the synchronization story")

        # --- rules: cross-partition-ref / cross-partition-call --------
        if home is not None:
            for cls, partition in analysis.partitions.items():
                if partition == home:
                    continue
                if not re.search(rf"\b{cls}\b", line):
                    continue
                if FWD_DECL.match(line) or line.lstrip().startswith("#"):
                    continue
                if BOUNDARY.search(line):
                    continue  # endpoint naming / messaging API: the cut
                report(idx, "cross-partition-ref",
                       f"'{cls}' is {partition}-partition state but this "
                       f"file is {home}-partition; talk through "
                       "sim::Network / sim::Rpc instead")
                m = re.search(rf"\b{cls}\b[&*\s]+([A-Za-z_]\w*)\s*[;=,()]",
                              line)
                if m:
                    foreign_vars[m.group(1)] = (cls, partition)
            for var, (cls, partition) in foreign_vars.items():
                if re.search(rf"\b{var}\s*(?:\.|->)\s*\w+\s*\(", line) \
                        and not BOUNDARY.search(line):
                    report(idx, "cross-partition-call",
                           f"direct call on {partition}-partition "
                           f"'{cls} {var}' from {home}-partition code; "
                           "only message boundaries may cross the cut")

        # --- rule: unannotated-daemon-field ---------------------------
        if in_annotated_class:
            m = STATE_FIELD.match(line)
            if m and "HostLocal" not in line:
                field = m.group(1)
                if field not in det_local:
                    report(idx, "unannotated-daemon-field",
                           f"container state '{field}' in a "
                           "CONDORG_HOST_LOCAL class must be "
                           "det::HostLocal<> or carry an audited "
                           f"det-local({field}) comment")


def scan_edges(analysis):
    """Pass 3: harvest the island-cut evidence — message-type literals at
    client call sites and server dispatch sites, grouped by protocol."""
    for name, spec in PROTOCOLS.items():
        analysis.edges[name] = {
            "from": spec["from"], "to": spec["to"],
            "messages": set(), "clients": set(), "servers": set(),
            "client_partitions": set(),
        }
    prefix_to_protocol = {}
    for name, spec in PROTOCOLS.items():
        for prefix in spec["prefixes"]:
            prefix_to_protocol[prefix] = name
    for path in iter_src_files(analysis.root):
        rel = os.path.relpath(path, analysis.root)
        for raw in read_lines(path):
            if lint.COMMENT_LINE.match(raw):
                continue
            for m in MESSAGE_LITERAL.finditer(raw):
                protocol = prefix_to_protocol.get(m.group(1))
                if protocol is None:
                    continue
                edge = analysis.edges[protocol]
                message = f"{m.group(1)}.{m.group(2)}"
                bare = lint.strip_noise(raw)
                # strip_noise drops the literal itself; classify on the
                # raw line's call shape.
                if CLIENT_SITE.search(raw):
                    edge["messages"].add(message)
                    edge["clients"].add(rel)
                    home = analysis.file_partition.get(rel)
                    if home:
                        edge["client_partitions"].add(home)
                elif SERVER_SITE.search(bare) or "register_service" in bare:
                    edge["messages"].add(message)
                    edge["servers"].add(rel)


def build_report(analysis, diagnostics):
    edges = []
    for name in sorted(analysis.edges):
        edge = analysis.edges[name]
        edges.append({
            "protocol": name,
            "from": edge["from"],
            "to": edge["to"],
            "observed_client_partitions": sorted(edge["client_partitions"]),
            "messages": sorted(edge["messages"]),
            "client_files": sorted(edge["clients"]),
            "server_files": sorted(edge["servers"]),
        })
    partitions = {}
    for cls, partition in sorted(analysis.partitions.items()):
        partitions.setdefault(partition, []).append(cls)
    return {
        "engine": "regex",
        "partitions": partitions,
        "host_local_fields": sorted(
            analysis.host_local_fields,
            key=lambda f: (f["file"], f["line"])),
        "mutable_globals": sorted(
            analysis.mutable_globals,
            key=lambda g: (g["file"], g["line"])),
        "cross_host_edges": edges,
        "diagnostics": diagnostics,
    }


def check_coverage(analysis):
    """The required protocols must each have discovered messages AND both
    a client and a server site: an island cut with no evidence fails."""
    problems = []
    for name in REQUIRED_PROTOCOLS:
        edge = analysis.edges[name]
        if not edge["messages"]:
            problems.append(f"{name}: no message types discovered")
        if not edge["clients"]:
            problems.append(f"{name}: no client call sites discovered")
        if not edge["servers"]:
            problems.append(f"{name}: no server dispatch sites discovered")
    return problems


def run_lint_rules(analysis, root):
    """Pass 4: the determinism lint's own engine over src/, same rules and
    allowlist as the lint.determinism gate — subsumed here so one command
    gives the full static story."""
    allows = lint.load_allowlist(os.path.join(root, "tools", "lint",
                                              "allowlist.txt"))
    header_cache = {}
    for path in iter_src_files(root):
        rel = os.path.relpath(path, root)
        analysis.violations.extend(
            lint.lint_file(path, rel, allows.get(rel, set()), root,
                           header_cache))


def try_libclang_pass(analysis, root, build_dir):
    """Optional precision pass: with python-clang + compile_commands.json,
    verify cross-TU member calls against the partition map. Absent either
    (the CI container has neither), the regex engine stands alone."""
    try:
        import clang.cindex as cindex  # noqa: F401
    except ImportError:
        return "regex"
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return "regex"
    try:
        index = cindex.Index.create()
        with open(db_path, encoding="utf-8") as fh:
            commands = json.load(fh)
        for entry in commands:
            if "/src/" not in entry["file"].replace(os.sep, "/"):
                continue
            args = [a for a in entry["command"].split()[1:]
                    if a != entry["file"] and a not in ("-c", "-o")]
            tu = index.parse(entry["file"], args=args)
            _walk_calls(analysis, root, tu.cursor, cindex)
        return "libclang"
    except Exception as error:  # pragma: no cover - depends on local clang
        print(f"condorg_partition: libclang pass skipped ({error})",
              file=sys.stderr)
        return "regex"


def _walk_calls(analysis, root, cursor, cindex):  # pragma: no cover
    """AST walk: a CALL_EXPR whose callee's semantic parent class is
    annotated to a different partition than the caller's class."""
    from clang.cindex import CursorKind

    def class_partition(cur):
        while cur is not None and cur.kind != CursorKind.TRANSLATION_UNIT:
            if cur.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL):
                return analysis.partitions.get(cur.spelling)
            cur = cur.semantic_parent
        return None

    def visit(cur, enclosing):
        if cur.kind in (CursorKind.CXX_METHOD, CursorKind.CONSTRUCTOR,
                        CursorKind.DESTRUCTOR):
            enclosing = class_partition(cur)
        if cur.kind == CursorKind.CALL_EXPR and enclosing is not None:
            ref = cur.referenced
            if ref is not None:
                callee = class_partition(ref)
                if callee is not None and callee != enclosing:
                    loc = cur.location
                    rel = os.path.relpath(loc.file.name, root) \
                        if loc.file else "<unknown>"
                    analysis.violations.append(lint.Violation(
                        rel, loc.line, "cross-partition-call",
                        f"AST: {enclosing}-partition code calls "
                        f"{callee}-partition method "
                        f"'{ref.spelling}'"))
        for child in cur.get_children():
            visit(child, enclosing)

    visit(cursor, None)


def self_test(root):
    """Analyze the bundled fixture tree: every seeded violation must be
    caught with the right rule id, and the clean fixture must stay clean."""
    fixture_root = os.path.join(_HERE, "testdata")
    analysis = Analysis(fixture_root)
    # The fixture ships its own src/ tree mirroring the real layout.
    collect_ownership(analysis)
    for path in iter_src_files(fixture_root):
        scan_file(analysis, path, {})
    want = {
        "cross-partition-ref", "cross-partition-call",
        "mutable-global", "unannotated-daemon-field",
    }
    got = {v.rule for v in analysis.violations}
    ok = want <= got
    # The clean daemon must contribute no violations.
    clean_hits = [v for v in analysis.violations if "clean" in v.path]
    ok = ok and not clean_hits
    # Ownership map sanity: both fixture daemons were inventoried.
    ok = ok and analysis.partitions.get("FixtureSchedd") == "user"
    ok = ok and analysis.partitions.get("FixtureGatekeeper") == "site"
    ok = ok and any(f["field"] == "jobs_"
                    for f in analysis.host_local_fields)
    if not ok:
        print(f"condorg_partition self-test FAILED: rules hit "
              f"{sorted(got)}, wanted at least {sorted(want)}; "
              f"clean-fixture hits: {[str(v) for v in clean_hits]}")
        for v in sorted(analysis.violations,
                        key=lambda v: (v.path, v.line_no, v.rule)):
            print(f"  {v}")
        return 1
    print("condorg_partition self-test passed "
          f"({len(analysis.violations)} seeded violations caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and tools/)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json "
                             "(for the optional libclang pass)")
    parser.add_argument("--allowlist", default=None,
                        help="override allowlist path (default: "
                             "tools/analyze/allowlist.txt under root)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write partition_report.json here")
    parser.add_argument("--json", action="store_true",
                        help="print diagnostics as a JSON array")
    parser.add_argument("--self-test", action="store_true",
                        help="analyze the bundled fixture tree and check "
                             "every rule fires")
    args = parser.parse_args()

    if args.self_test:
        return self_test(os.path.abspath(args.root))

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"condorg_partition: no src/ under {root}", file=sys.stderr)
        return 2
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "analyze", "allowlist.txt")
    allows = lint.load_allowlist(allowlist_path)

    analysis = Analysis(root)
    collect_ownership(analysis)
    for path in iter_src_files(root):
        scan_file(analysis, path, allows)
    scan_edges(analysis)
    run_lint_rules(analysis, root)
    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(root, args.build_dir)
    engine = try_libclang_pass(analysis, root, build_dir)
    # tidy.sh's burn-down policy: a partition-rule entry in the (shared)
    # allowlist that suppressed nothing must be deleted. Proto-rule entries
    # in the same file are condorg_proto.py's to police.
    analysis.violations.extend(lint.stale_allow_violations(
        allowlist_path, root, analysis.used_allows, PARTITION_RULES))

    analysis.violations.sort(key=lambda v: (v.path, v.line_no, v.rule))
    coverage_problems = check_coverage(analysis)

    report = build_report(analysis, len(analysis.violations))
    report["engine"] = engine
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")

    if args.json:
        print(lint.diagnostics_json(analysis.violations))
    else:
        for v in analysis.violations:
            print(v)

    for problem in coverage_problems:
        print(f"condorg_partition: island-cut coverage: {problem}",
              file=sys.stderr)
    if analysis.violations or coverage_problems:
        if not args.json:
            print(f"\ncondorg_partition: {len(analysis.violations)} "
                  f"violation(s), {len(coverage_problems)} coverage "
                  "problem(s)")
        return 1
    if not args.json:
        print(f"condorg_partition: clean — {len(analysis.partitions)} "
              f"annotated classes, {len(analysis.host_local_fields)} "
              f"HostLocal fields, "
              f"{sum(len(e['messages']) for e in analysis.edges.values())} "
              "cross-host message types")
    return 0


if __name__ == "__main__":
    sys.exit(main())
