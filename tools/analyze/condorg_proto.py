#!/usr/bin/env python3
"""Protocol-conformance analyzer: check the tree against the wire-protocol
spec in src/proto/protocols.json.

Condor-G's reliability story hangs on the GRAM two-phase commit and the
keepalive/lease protocols behaving exactly as specified under loss, crash,
and partition — yet the protocol is encoded as stringly-typed
`message.type == "jm.commit"` if-chains scattered across the daemons, so a
missing handler arm, a request path that forgets to reply, or a timer that
fails to re-arm compiles clean and surfaces only as a timeout the RPC layer
politely retries around. This tool is the third side of the triangle started
by the partition analyzer (static island cut) and the kernel profiler
(dynamic traffic matrix): a machine-readable spec the code is checked
against, with condorg_profile_check closing the loop
(spec == static extraction >= dynamic matrix).

Rules:

  spec-coverage          a spec message with no send site in a declared
                         sender daemon, a send site in a file no declared
                         sender owns, a missing handler arm in a declared
                         receiver daemon, or a call/notify kind that
                         contradicts the spec (request sent one-way, notify
                         sent as an awaited RPC).
  ghost-message          a typed send site or handler arm whose message type
                         has no spec entry at all — undocumented protocol
                         surface that PR-6/PR-7 gates cannot see.
  reply-on-all-paths     a request handler path that returns without
                         replying and without recording a deferred
                         continuation (a nested call/post whose callback
                         replies). Sequential approximation, same spirit as
                         the lint's unbalanced-span rule: a `return` is
                         flagged unless a reply token (sim::rpc_reply or a
                         same-file helper that transitively replies)
                         precedes it in the handler text, the arm falls
                         through to a replying tail, or the return is a
                         `host_.crash_point(...)` guard (a simulated crash
                         owes nobody a reply).
  crash-point-coverage   a spec transition flagged durable with no declared
                         crash points; a declared crash point with no
                         `Host::crash_point("...")` site in src/; a code
                         site no spec entry claims; and any disagreement
                         between the code sites and the Explorer's
                         enumerated table (the model checker must provably
                         cover the spec, and must not advertise points that
                         no longer exist).
  timer-re-arm           a periodic handler named in the spec's timers table
                         that neither re-arms itself (a self-post in its own
                         body) nor is declared lease-bounded with a reason;
                         also a timers entry whose function no longer exists
                         (spec drift).

Engines: the regex extractor is the binding gate (the CI container has no
libclang); when python bindings for libclang plus compile_commands.json are
available, an AST pass re-verifies send sites for extra precision, exactly
like condorg_partition.py.

Suppressions use the lint's grammar (one allowlist everywhere):
  inline:      // lint-allow(<rule>): <why>
  file-level:  tools/analyze/allowlist.txt   <relpath>:<rule>  # why
A file-level entry that no longer suppresses anything is itself an error
(stale-suppression), same burn-down policy as scripts/tidy.sh.

Exit status: 0 = clean, 1 = violations or missing coverage, 2 = usage.
"""

import argparse
import importlib.util
import json
import os
import re
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_LINT_PATH = os.path.join(_HERE, os.pardir, "lint", "condorg_lint.py")


def _load_lint():
    spec = importlib.util.spec_from_file_location("condorg_lint", _LINT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = _load_lint()

PROTO_RULES = frozenset({
    "spec-coverage", "ghost-message", "reply-on-all-paths",
    "crash-point-coverage", "timer-re-arm",
})

SPEC_REL = os.path.join("src", "proto", "protocols.json")
EXPLORER_REL = os.path.join("src", "sim", "explorer.cpp")

MESSAGE_LITERAL = re.compile(r'"([a-z_]+\.[a-z_.]+)"')
SEND_CALL = re.compile(r"(?:\.|->)\s*(call|notify)\s*\(")
ARM = re.compile(r'\b(?:message|m)\s*\.\s*type\s*([=!]=)\s*"([a-z_]+\.'
                 r'[a-z_.]+)"')
CRASH_POINT = re.compile(r'crash_point\s*\(\s*"([\w.]+)"\s*\)')
REPLY_FREE = re.compile(r"\brpc_reply\s*\(")
RETURN_STMT = re.compile(r"\breturn\b")
FUNC_DEF = re.compile(r"\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\(")
ENUM_TABLE_NAME = "kEnumeratedCrashPoints"
# Self-re-arm inside a timer body: a recursive mention of the method, or the
# shared-ptr periodic-lambda idiom `(*self)()`.
REARM_SELF_CALL = re.compile(r"\(\s*\*\s*\w+\s*\)\s*\(")


# ---------------------------------------------------------------------------
# Comment stripping that PRESERVES string literals (the extractor matches
# message-type literals, which lint.strip_noise would blank) plus a parallel
# "mask" view with string contents blanked (for brace/paren structure).
# ---------------------------------------------------------------------------
def split_code_lines(lines):
    code, mask = [], []
    in_block = False
    for raw in lines:
        c, m, in_block = _strip_one(raw, in_block)
        code.append(c)
        mask.append(m)
    return code, mask


def _strip_one(line, in_block):
    code_chars, mask_chars = [], []
    i, n = 0, len(line)
    in_str = False
    while i < n:
        ch = line[i]
        if in_block:
            if line.startswith("*/", i):
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if in_str:
            code_chars.append(ch)
            mask_chars.append(" " if ch != '"' else '"')
            if ch == "\\" and i + 1 < n:
                code_chars.append(line[i + 1])
                mask_chars.append(" ")
                i += 2
                continue
            if ch == '"':
                in_str = False
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if ch == '"':
            in_str = True
        code_chars.append(ch)
        mask_chars.append(ch)
        i += 1
    return "".join(code_chars), "".join(mask_chars), in_block


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def iter_src_files(root):
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith(lint.SRC_EXTENSIONS):
                yield os.path.join(dirpath, name)


# ---------------------------------------------------------------------------
# Function inventory: name -> body extent, from the mask view (top-level
# `Class::method(...) {` definitions, brace-matched).
# ---------------------------------------------------------------------------
class Function:
    def __init__(self, cls, name, start, body_start, end):
        self.cls = cls
        self.name = name
        self.start = start          # 0-based line of the definition
        self.body_start = body_start
        self.end = end              # 0-based line of the closing brace

    @property
    def qualified(self):
        return f"{self.cls}::{self.name}"


def find_functions(mask):
    """Class::method(...) { ... } definitions, brace-matched on the mask
    view. Daemons live inside `namespace condorg::x { ... }` blocks, so
    matches are accepted at any depth; qualified CALLS are rejected because
    a `;` (or an unbalanced close paren) shows up before any body brace."""
    functions = []
    idx = 0
    while idx < len(mask):
        line = mask[idx]
        m = FUNC_DEF.search(line)
        if m:
            # Find the opening brace of the body (a `;` first means this is
            # a declaration or a call statement, not a definition).
            open_idx, open_line = None, None
            probe, pos = idx, m.end()
            paren = 1
            while probe < len(mask) and probe < idx + 20:
                text = mask[probe]
                j = pos
                while j < len(text):
                    ch = text[j]
                    if ch == "(":
                        paren += 1
                    elif ch == ")":
                        paren -= 1
                        if paren < 0:
                            probe = len(mask) + 1  # inside an expr: bail
                            break
                    elif paren == 0 and ch == ";":
                        probe = len(mask) + 1  # declaration: bail
                        break
                    elif paren == 0 and ch == "{":
                        open_idx, open_line = j, probe
                        break
                    j += 1
                if open_idx is not None or probe > len(mask):
                    break
                probe += 1
                pos = 0
            if open_idx is not None:
                body_depth = 0
                end_line = None
                for k in range(open_line, len(mask)):
                    text = mask[k]
                    start_pos = open_idx if k == open_line else 0
                    for ch in text[start_pos:]:
                        if ch == "{":
                            body_depth += 1
                        elif ch == "}":
                            body_depth -= 1
                            if body_depth == 0:
                                end_line = k
                                break
                    if end_line is not None:
                        break
                if end_line is not None:
                    functions.append(Function(m.group(1), m.group(2), idx,
                                              open_line, end_line))
                    idx = end_line + 1
                    continue
        idx += 1
    return functions


def replying_helpers(code, functions):
    """Names of functions whose body (transitively) calls sim::rpc_reply."""
    bodies = {}
    for fn in functions:
        bodies[fn.name] = "\n".join(code[fn.start:fn.end + 1])
    replying = {name for name, body in bodies.items()
                if REPLY_FREE.search(body)}
    changed = True
    while changed:
        changed = False
        for name, body in bodies.items():
            if name in replying:
                continue
            for helper in list(replying):
                if re.search(rf"\b{re.escape(helper)}\s*\(", body):
                    replying.add(name)
                    changed = True
                    break
    return replying


# ---------------------------------------------------------------------------
# The analysis proper.
# ---------------------------------------------------------------------------
class Analysis:
    def __init__(self, root, spec, spec_rel):
        self.root = root
        self.spec = spec
        self.spec_rel = spec_rel
        self.violations = []
        self.used_allows = set()     # (relpath, rule) file-level suppressions
        self.sends = {}              # type -> [{file, line, kind}]
        self.arms = {}               # type -> [{file, line, op}]
        self.crash_sites = {}        # point -> [{file, line}]
        self.enumerated = []         # explorer table entries (ordered)
        self.enumerated_lines = {}   # point -> line in explorer.cpp
        self.timer_status = []       # per-timer report rows
        self.allows = {}
        self.file_lines = {}         # relpath -> raw lines (for inline allows)

    def message(self, mtype):
        for entry in self.spec.get("messages", ()):
            if entry["type"] == mtype:
                return entry
        return None

    def daemon_files(self, names):
        files = []
        for name in names:
            files.extend(self.spec["daemons"].get(name, {}).get("files", ()))
        return [f.replace("/", os.sep) for f in files]

    def report(self, rel, idx, rule, message):
        file_allows = self.allows.get(rel, set())
        if rule in file_allows:
            self.used_allows.add((rel, rule))
            return
        lines = self.file_lines.get(rel)
        if lines is not None and rule in lint.inline_allows(lines, idx):
            return
        self.violations.append(lint.Violation(rel, idx + 1, rule, message))

    def spec_line(self, needle):
        """1-based line of the first spec-file line containing needle —
        anchors spec-level diagnostics somewhere clickable."""
        lines = self.file_lines.get(self.spec_rel, ())
        for idx, line in enumerate(lines):
            if needle in line:
                return idx
        return 0


def load_spec(path):
    with open(path, encoding="utf-8") as fh:
        spec = json.load(fh)
    for key in ("daemons", "messages", "timers"):
        if key not in spec:
            raise ValueError(f"spec is missing the '{key}' table")
    for entry in spec["messages"]:
        for key in ("type", "protocol", "cut", "senders", "receivers",
                    "kind", "reply", "timeout_owner", "durable",
                    "crash_points"):
            if key not in entry:
                raise ValueError(
                    f"spec message '{entry.get('type', '?')}' is missing "
                    f"'{key}'")
        if entry["kind"] not in ("request", "notify"):
            raise ValueError(
                f"spec message '{entry['type']}': kind must be "
                "request|notify")
        if entry["kind"] == "request" and \
                entry["reply"] != entry["type"] + ".reply":
            raise ValueError(
                f"spec message '{entry['type']}': the RPC layer synthesizes "
                "replies as <type>.reply; the spec must agree")
    return spec


def scan_tree(analysis):
    """Extract send sites, handler arms, and crash-point sites from src/."""
    for path in iter_src_files(analysis.root):
        rel = os.path.relpath(path, analysis.root)
        raw = read_lines(path)
        analysis.file_lines[rel] = raw
        code, mask = split_code_lines(raw)
        functions = find_functions(mask)

        # Send helpers: same-file functions that forward a (type, payload)
        # pair into .call/.notify — `notify_shadow("shadow.done", ...)` is a
        # send site even though the literal is far from the rpc call.
        send_helper_kind = {}
        for fn in functions:
            body = "\n".join(code[fn.start:fn.end + 1])
            m = SEND_CALL.search(body)
            if m:
                send_helper_kind[fn.name] = m.group(1)

        for idx, line in enumerate(code):
            m = SEND_CALL.search(line)
            if m:
                lit = MESSAGE_LITERAL.search(line, m.end())
                probe = idx
                while lit is None and probe < min(idx + 2, len(code) - 1):
                    probe += 1
                    lit = MESSAGE_LITERAL.search(code[probe])
                if lit is not None:
                    analysis.sends.setdefault(lit.group(1), []).append(
                        {"file": rel, "line": idx + 1, "kind": m.group(1)})
            for helper, kind in send_helper_kind.items():
                hm = re.search(rf"\b{re.escape(helper)}\s*\(\s*"
                               r'"([a-z_]+\.[a-z_.]+)"', line)
                if hm and not line.lstrip().startswith("void") \
                        and "::" not in line[:hm.start()]:
                    analysis.sends.setdefault(hm.group(1), []).append(
                        {"file": rel, "line": idx + 1, "kind": kind})
            for am in ARM.finditer(line):
                analysis.arms.setdefault(am.group(2), []).append(
                    {"file": rel, "line": idx + 1, "op": am.group(1)})
            for cm in CRASH_POINT.finditer(line):
                analysis.crash_sites.setdefault(cm.group(1), []).append(
                    {"file": rel, "line": idx + 1})

        if rel.replace(os.sep, "/") == EXPLORER_REL.replace(os.sep, "/"):
            _scan_enumerated_table(analysis, rel, code)


def _scan_enumerated_table(analysis, rel, code):
    in_table = False
    for idx, line in enumerate(code):
        if ENUM_TABLE_NAME in line and "[]" in line:
            in_table = True
        if in_table:
            for m in re.finditer(r'"([\w.]+)"', line):
                analysis.enumerated.append(m.group(1))
                analysis.enumerated_lines.setdefault(m.group(1), idx + 1)
            if "};" in line:
                break


def check_spec_coverage(analysis):
    """Rules spec-coverage and ghost-message."""
    spec_types = {e["type"] for e in analysis.spec["messages"]}

    for entry in analysis.spec["messages"]:
        mtype = entry["type"]
        sends = analysis.sends.get(mtype, [])
        sender_files = set(analysis.daemon_files(entry["senders"]))
        if entry["senders"]:
            if not sends:
                analysis.report(
                    analysis.spec_rel, analysis.spec_line(f'"{mtype}"'),
                    "spec-coverage",
                    f"'{mtype}': spec names sender(s) "
                    f"{entry['senders']} but no send site was found in src/")
            for site in sends:
                if site["file"].replace(os.sep, "/") not in {
                        f.replace(os.sep, "/") for f in sender_files}:
                    analysis.report(
                        site["file"], site["line"] - 1, "spec-coverage",
                        f"'{mtype}' sent from a file no declared sender "
                        f"daemon owns (spec senders: {entry['senders']})")
        elif sends:
            for site in sends:
                analysis.report(
                    site["file"], site["line"] - 1, "spec-coverage",
                    f"'{mtype}' is declared external (no in-tree sender) "
                    "but this file sends it — update the spec")

        want_kind = "call" if entry["kind"] == "request" else "notify"
        for site in sends:
            if site["kind"] != want_kind:
                analysis.report(
                    site["file"], site["line"] - 1, "spec-coverage",
                    f"'{mtype}' is a {entry['kind']} in the spec but this "
                    f"site uses .{site['kind']}( — a "
                    + ("request sent one-way can never be replied to"
                       if want_kind == "call"
                       else "notify awaited as an RPC will time out and "
                            "retry forever"))

        arms = analysis.arms.get(mtype, [])
        for receiver in entry["receivers"]:
            rfiles = {f.replace(os.sep, "/")
                      for f in analysis.daemon_files([receiver])}
            if not any(a["file"].replace(os.sep, "/") in rfiles
                       for a in arms):
                analysis.report(
                    analysis.spec_rel, analysis.spec_line(f'"{mtype}"'),
                    "spec-coverage",
                    f"'{mtype}': no handler arm found in declared receiver "
                    f"{receiver} ({sorted(rfiles)}) — the message would be "
                    "silently dropped there")

    for mtype, sites in sorted(analysis.sends.items()):
        if mtype in spec_types or mtype.endswith(".reply"):
            continue
        for site in sites:
            analysis.report(site["file"], site["line"] - 1, "ghost-message",
                            f"send site for '{mtype}' has no spec entry in "
                            f"{SPEC_REL}")
    for mtype, sites in sorted(analysis.arms.items()):
        if mtype in spec_types or mtype.endswith(".reply"):
            continue
        for site in sites:
            analysis.report(site["file"], site["line"] - 1, "ghost-message",
                            f"handler arm for '{mtype}' has no spec entry "
                            f"in {SPEC_REL}")


def check_reply_paths(analysis):
    """Rule reply-on-all-paths, per daemon with a declared dispatch."""
    request_types = {e["type"] for e in analysis.spec["messages"]
                     if e["kind"] == "request"}
    for daemon, info in sorted(analysis.spec["daemons"].items()):
        dispatch = info.get("dispatch")
        if not dispatch:
            continue
        handles_requests = any(
            e["kind"] == "request" and daemon in e["receivers"]
            for e in analysis.spec["messages"])
        if not handles_requests:
            continue
        for rel in analysis.daemon_files([daemon]):
            raw = analysis.file_lines.get(rel)
            if raw is None:
                continue
            code, mask = split_code_lines(raw)
            functions = find_functions(mask)
            replying = replying_helpers(code, functions)
            fn = next((f for f in functions if f.name == dispatch), None)
            if fn is None:
                continue
            _walk_dispatch(analysis, rel, code, mask, fn, replying,
                           request_types)


def _reply_token(replying):
    names = sorted(re.escape(n) for n in replying)
    if names:
        return re.compile(r"\brpc_reply\s*\(|\b(?:" + "|".join(names)
                          + r")\s*\(")
    return REPLY_FREE


def _walk_dispatch(analysis, rel, code, mask, fn, replying, request_types):
    # The dispatcher's own name (on its definition line) and its class's
    # ctor/dtor are not reply evidence — a constructor that installs the
    # handler "calls" it without replying to anything.
    token = _reply_token(replying - {fn.name, fn.cls, "~" + fn.cls})
    # Depth at the start of each body line, relative to the function body.
    depth = 0
    start_depths = {}
    for idx in range(fn.body_start, fn.end + 1):
        start_depths[idx] = depth
        depth += mask[idx].count("{") - mask[idx].count("}")

    # Arm regions: [start, end] line ranges keyed by the arm's types.
    arms = []
    idx = fn.body_start
    while idx <= fn.end:
        line = code[idx]
        matches = [m for m in ARM.finditer(line) if m.group(1) == "=="]
        # `} else if (message.type == ...) {` chains start one deeper and
        # pop back with their leading closer.
        eff_depth = start_depths[idx] - (1 if line.lstrip().startswith("}")
                                         else 0)
        if matches and eff_depth == 1:
            types = [m.group(2) for m in matches]
            if "{" in mask[idx]:
                end = idx
                d = start_depths[idx]
                for k in range(idx, fn.end + 1):
                    d += mask[k].count("{") - mask[k].count("}")
                    if d <= 1:
                        end = k
                        break
            else:
                end = min(idx + 1, fn.end)  # braceless single statement
            arms.append({"start": idx, "end": end, "types": types})
            idx = end if end > idx else idx + 1
            continue
        idx += 1

    in_arm = [False] * (fn.end + 1)
    for arm in arms:
        for k in range(arm["start"], arm["end"] + 1):
            in_arm[k] = True

    # Outside-arm pass: a dispatch function that handles requests must not
    # silently drop a message before/between the arms. The running reply
    # state here also feeds the arm pass — the Shadow idiom acks every
    # request ONCE before dispatching, so an arm after a common-prefix
    # reply starts already satisfied. (Arm-local replies do not leak out.)
    prefix_replied = {}
    replied = False
    for k in range(fn.body_start, fn.end + 1):
        prefix_replied[k] = replied
        if in_arm[k]:
            continue
        line = code[k]
        if token.search(line):
            replied = True
        if RETURN_STMT.search(mask[k]) and not replied \
                and "crash_point" not in line:
            analysis.report(
                rel, k, "reply-on-all-paths",
                f"{fn.qualified} can return before dispatching/replying — "
                "a guard that drops a request silently hangs the caller "
                "(lint-allow with the story if the drop is intentional)")

    # Arm pass: every request arm must reply on its paths.
    for arm in arms:
        if not any(t in request_types for t in arm["types"]):
            continue
        replied = prefix_replied[arm["start"]]
        returned = False
        for k in range(arm["start"], arm["end"] + 1):
            line = code[k]
            if token.search(line):
                replied = True
            if RETURN_STMT.search(mask[k]):
                returned = True
                if not replied and "crash_point" not in line:
                    analysis.report(
                        rel, k, "reply-on-all-paths",
                        f"request handler arm for {arm['types']} returns "
                        "without replying or deferring a continuation — "
                        "the caller hangs until timeout")
        if not replied and not returned:
            # Fall-through arm: the obligation moves to the shared tail
            # (the if/else-if + single rpc_reply idiom).
            tail = "\n".join(code[arm["end"] + 1:fn.end + 1])
            if not token.search(tail):
                analysis.report(
                    rel, arm["start"], "reply-on-all-paths",
                    f"request handler arm for {arm['types']} neither "
                    "replies nor falls through to a replying tail")


def check_crash_points(analysis):
    """Rule crash-point-coverage: spec <-> code sites <-> Explorer table."""
    claimed = {}
    for entry in analysis.spec["messages"]:
        mtype = entry["type"]
        if entry["durable"] and not entry["crash_points"]:
            analysis.report(
                analysis.spec_rel, analysis.spec_line(f'"{mtype}"'),
                "crash-point-coverage",
                f"'{mtype}' is flagged durable but declares no crash "
                "points — the Explorer cannot cover its commit window")
        for point in entry["crash_points"]:
            claimed.setdefault(point, []).append(mtype)
            if point not in analysis.crash_sites:
                analysis.report(
                    analysis.spec_rel, analysis.spec_line(f'"{point}"'),
                    "crash-point-coverage",
                    f"'{mtype}' declares crash point '{point}' but no "
                    "Host::crash_point(\"...\") site exists in src/")

    explorer_rel = EXPLORER_REL
    enumerated = set(analysis.enumerated)
    for point, sites in sorted(analysis.crash_sites.items()):
        for site in sites:
            if point not in claimed:
                analysis.report(
                    site["file"], site["line"] - 1, "crash-point-coverage",
                    f"crash point '{point}' is not claimed by any spec "
                    f"entry's crash_points in {SPEC_REL}")
            if point not in enumerated:
                analysis.report(
                    site["file"], site["line"] - 1, "crash-point-coverage",
                    f"crash point '{point}' is missing from the Explorer's "
                    f"{ENUM_TABLE_NAME} table in {explorer_rel} — the model "
                    "checker cannot schedule it")
    for point in analysis.enumerated:
        if point not in analysis.crash_sites:
            analysis.report(
                explorer_rel, analysis.enumerated_lines.get(point, 1) - 1,
                "crash-point-coverage",
                f"Explorer table lists crash point '{point}' but no code "
                "site fires it — stale table entry")


def check_timers(analysis):
    """Rule timer-re-arm over the spec's timers table."""
    for timer in analysis.spec["timers"]:
        rel = timer["file"].replace("/", os.sep)
        raw = analysis.file_lines.get(rel)
        status = {"name": timer["name"], "function": timer["function"],
                  "file": timer["file"], "re_arms": False,
                  "lease_bounded": bool(timer.get("lease_bounded"))}
        analysis.timer_status.append(status)
        if raw is None:
            analysis.report(analysis.spec_rel,
                            analysis.spec_line(timer["name"]),
                            "timer-re-arm",
                            f"timer '{timer['name']}': file {timer['file']} "
                            "not found")
            continue
        code, mask = split_code_lines(raw)
        functions = find_functions(mask)
        cls, _, method = timer["function"].partition("::")
        fn = next((f for f in functions
                   if f.cls == cls and f.name == method), None)
        if fn is None:
            analysis.report(analysis.spec_rel,
                            analysis.spec_line(timer["name"]),
                            "timer-re-arm",
                            f"timer '{timer['name']}': function "
                            f"{timer['function']} not found in "
                            f"{timer['file']} — spec drift")
            continue
        body = "\n".join(code[fn.body_start:fn.end + 1])
        re_arms = bool(re.search(r"\bpost(?:_coalesced)?\s*\(", body) and
                       (re.search(rf"\b{re.escape(method)}\s*\(", body) or
                        REARM_SELF_CALL.search(body)))
        status["re_arms"] = re_arms
        if not re_arms and not timer.get("lease_bounded"):
            analysis.report(
                rel, fn.start, "timer-re-arm",
                f"periodic handler {timer['function']} (timer "
                f"'{timer['name']}') never re-arms itself and is not "
                "declared lease-bounded — it fires once and the protocol "
                "it drives silently stops")


def try_libclang_pass(analysis, root, build_dir):
    """Optional precision pass: with python-clang + compile_commands.json,
    re-verify send sites from the AST (CALL_EXPRs on call/notify with a
    string-literal type argument). Absent either, the regex engine stands
    alone — same contract as condorg_partition.py."""
    try:
        import clang.cindex as cindex  # noqa: F401
    except ImportError:
        return "regex"
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return "regex"
    try:  # pragma: no cover - depends on local clang
        from clang.cindex import CursorKind
        index = cindex.Index.create()
        with open(db_path, encoding="utf-8") as fh:
            commands = json.load(fh)
        ast_sends = set()

        def visit(cur):
            if cur.kind == CursorKind.CALL_EXPR and \
                    cur.spelling in ("call", "notify"):
                for arg in cur.get_arguments():
                    for tok in arg.get_tokens():
                        m = MESSAGE_LITERAL.match(tok.spelling)
                        if m:
                            ast_sends.add(m.group(1))
            for child in cur.get_children():
                visit(child)

        for entry in commands:
            if "/src/" not in entry["file"].replace(os.sep, "/"):
                continue
            args = [a for a in entry["command"].split()[1:]
                    if a != entry["file"] and a not in ("-c", "-o")]
            visit(index.parse(entry["file"], args=args).cursor)
        for mtype in sorted(ast_sends - set(analysis.sends)):
            analysis.report(analysis.spec_rel, 0, "spec-coverage",
                            f"AST found a send of '{mtype}' the regex "
                            "extractor missed")
        return "libclang"
    except Exception as error:  # pragma: no cover - depends on local clang
        print(f"condorg_proto: libclang pass skipped ({error})",
              file=sys.stderr)
        return "regex"


def check_stale_allows(analysis, allowlist_path):
    """Same burn-down policy as scripts/tidy.sh: a file-level suppression
    that no longer suppresses anything must be deleted. Only proto rules
    are judged here — the same allowlist file also carries partition-rule
    entries, which condorg_partition.py polices."""
    analysis.violations.extend(lint.stale_allow_violations(
        allowlist_path, analysis.root, analysis.used_allows, PROTO_RULES))


def build_report(analysis, engine):
    messages = []
    for entry in analysis.spec["messages"]:
        mtype = entry["type"]
        messages.append({
            "type": mtype,
            "protocol": entry["protocol"],
            "cut": entry["cut"],
            "kind": entry["kind"],
            "senders": entry["senders"],
            "receivers": entry["receivers"],
            "reply": entry["reply"],
            "durable": entry["durable"],
            "transition": entry.get("transition"),
            "crash_points": entry["crash_points"],
            "send_sites": sorted(analysis.sends.get(mtype, []),
                                 key=lambda s: (s["file"], s["line"])),
            "handler_sites": sorted(analysis.arms.get(mtype, []),
                                    key=lambda s: (s["file"], s["line"])),
        })
    return {
        "engine": engine,
        "spec": SPEC_REL.replace(os.sep, "/"),
        "cut_types": sorted(e["type"] for e in analysis.spec["messages"]
                            if e["cut"]),
        "messages": messages,
        "crash_points": {
            "enumerated": list(analysis.enumerated),
            "sites": {point: sorted(sites,
                                    key=lambda s: (s["file"], s["line"]))
                      for point, sites
                      in sorted(analysis.crash_sites.items())},
        },
        "timers": analysis.timer_status,
        "diagnostics": len(analysis.violations),
    }


def run(root, spec_path, allowlist_path, build_dir, report_path,
        as_json, check_stale=True):
    spec_rel = os.path.relpath(spec_path, root)
    try:
        spec = load_spec(spec_path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"condorg_proto: bad spec {spec_path}: {error}",
              file=sys.stderr)
        return 2
    analysis = Analysis(root, spec, spec_rel)
    analysis.allows = lint.load_allowlist(allowlist_path)
    analysis.file_lines[spec_rel] = read_lines(spec_path)

    scan_tree(analysis)
    check_spec_coverage(analysis)
    check_reply_paths(analysis)
    check_crash_points(analysis)
    check_timers(analysis)
    engine = try_libclang_pass(analysis, root, build_dir)
    if check_stale:
        check_stale_allows(analysis, allowlist_path)

    analysis.violations.sort(key=lambda v: (v.path, v.line_no, v.rule))
    report = build_report(analysis, engine)
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")

    if as_json:
        print(lint.diagnostics_json(analysis.violations))
        return 1 if analysis.violations else 0

    for v in analysis.violations:
        print(v)
    if analysis.violations:
        print(f"\ncondorg_proto: {len(analysis.violations)} violation(s) "
              f"against {spec_rel} — fix the code, fix the spec, or "
              "lint-allow with a reason")
        return 1
    n_msgs = len(spec["messages"])
    n_cut = len(report["cut_types"])
    print(f"condorg_proto: clean — {n_msgs} spec messages ({n_cut} on the "
          f"island cut), {len(analysis.crash_sites)} crash-point sites, "
          f"{len(spec['timers'])} timers checked")
    return 0


def self_test():
    """Analyze the bundled fixture tree: each of the five rules must fire
    on its seeded mutation with the right rule id, and the clean daemon
    must contribute zero noise."""
    fixture_root = os.path.join(_HERE, "testdata", "proto")
    spec_path = os.path.join(fixture_root, SPEC_REL)
    spec = load_spec(spec_path)
    analysis = Analysis(fixture_root, spec,
                        os.path.relpath(spec_path, fixture_root))
    analysis.file_lines[analysis.spec_rel] = read_lines(spec_path)
    scan_tree(analysis)
    check_spec_coverage(analysis)
    check_reply_paths(analysis)
    check_crash_points(analysis)
    check_timers(analysis)
    analysis.violations.sort(key=lambda v: (v.path, v.line_no, v.rule))

    want = {"spec-coverage", "ghost-message", "reply-on-all-paths",
            "crash-point-coverage", "timer-re-arm"}
    got = {v.rule for v in analysis.violations}
    ok = want <= got
    clean_hits = [v for v in analysis.violations if "clean" in v.path]
    ok = ok and not clean_hits
    ok = ok and len(analysis.violations) >= 5
    # The fixture's clean request type must have been fully extracted.
    ok = ok and "fx.ok" in analysis.sends and "fx.ok" in analysis.arms
    ok = ok and "fixture.persist_ok" in analysis.crash_sites
    if not ok:
        print(f"condorg_proto self-test FAILED: rules hit {sorted(got)}, "
              f"wanted at least {sorted(want)}; clean-fixture hits: "
              f"{[str(v) for v in clean_hits]}")
        for v in analysis.violations:
            print(f"  {v}")
        return 1
    print("condorg_proto self-test passed "
          f"({len(analysis.violations)} seeded violations caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and tools/)")
    parser.add_argument("--spec", default=None,
                        help=f"protocol spec path (default: {SPEC_REL} "
                             "under root)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json "
                             "(for the optional libclang pass)")
    parser.add_argument("--allowlist", default=None,
                        help="override allowlist path (default: "
                             "tools/analyze/allowlist.txt under root)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write proto_report.json here")
    parser.add_argument("--json", action="store_true",
                        help="print diagnostics as a JSON array (stable "
                             "(file, line, rule) order, machine-readable)")
    parser.add_argument("--self-test", action="store_true",
                        help="analyze the bundled fixture tree and check "
                             "every rule fires")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"condorg_proto: no src/ under {root}", file=sys.stderr)
        return 2
    spec_path = args.spec or os.path.join(root, SPEC_REL)
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "analyze", "allowlist.txt")
    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(root, args.build_dir)
    return run(root, spec_path, allowlist_path, build_dir, args.report,
               args.json)


if __name__ == "__main__":
    sys.exit(main())
