#!/usr/bin/env python3
"""Compare two trees of BENCH_*.json telemetry files.

The bench binaries (see bench/bench_report.h) each write a machine-readable
BENCH_<id>.json next to themselves. This tool diffs a baseline tree (e.g.
bench/baselines/, committed) against a freshly produced tree (e.g.
build/bench/) and flags any benchmark whose real time regressed by more than
--threshold (default 10%).

Reports may also carry a "latency_attribution" object (bench_phase_profile.h):
per-phase p99 time-to-ACTIVE from a traced campaign, plus the attributed
share. Those are gated too: a per-phase p99 that grows past the threshold
(and by more than one simulated second, so near-zero phases don't flap) is a
regression, and so is an attributed_share that *drops* by more than 0.02 —
losing attribution means daemons stopped stamping the records the
critical-path walker needs.

Exit status: 0 when no benchmark regressed past the threshold, 1 otherwise.
Benchmarks present on only one side are reported but are not failures — the
suite grows over time and baselines may lag a PR by design.

Usage:
    tools/bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.10]
    tools/bench_compare.py --self-test
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile


class BaselineError(Exception):
    """A committed baseline file is missing, unreadable, or unparsable."""


def load_tree(root: pathlib.Path, strict: bool = False) -> dict[str, float]:
    """Map 'FILE:benchmark_name' -> real_time_ns for every BENCH_*.json.

    strict=True is for the committed baseline tree: an unreadable or
    unparsable file there means the gate would silently compare against
    nothing, so it raises BaselineError instead of warn-and-skip.
    """
    out: dict[str, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            if strict:
                raise BaselineError(f"unparsable baseline {path}: {err}")
            print(f"warning: skipping unreadable {path}: {err}")
            continue
        loaded = 0
        for bench in doc.get("benchmarks", []):
            name = bench.get("name")
            time_ns = bench.get("real_time_ns")
            if not isinstance(name, str) or not isinstance(time_ns, (int, float)):
                continue
            out[f"{path.name}:{name}"] = float(time_ns)
            loaded += 1
        if strict and loaded == 0:
            raise BaselineError(
                f"baseline {path} contains no usable benchmark entries")
    return out


def load_attribution(root: pathlib.Path) -> dict[str, float]:
    """Map 'FILE:attribution.<field>' -> value for every report that carries
    a latency_attribution object. Parse errors are already handled (or
    raised) by load_tree, so this pass just skips what it cannot read."""
    out: dict[str, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        attribution = doc.get("latency_attribution")
        if not isinstance(attribution, dict):
            continue
        prefix = f"{path.name}:attribution"
        for field in ("attributed_share", "mean_time_to_active_seconds"):
            value = attribution.get(field)
            if isinstance(value, (int, float)):
                out[f"{prefix}.{field}"] = float(value)
        phases = attribution.get("phase_p99_seconds")
        if isinstance(phases, dict):
            for phase, value in sorted(phases.items()):
                if isinstance(value, (int, float)):
                    out[f"{prefix}.p99.{phase}"] = float(value)
    return out


def compare_attribution(baseline: dict[str, float],
                        current: dict[str, float],
                        threshold: float) -> int:
    """Diff latency-attribution fields; return the number of regressions.

    Latency fields regress when they grow past the relative threshold AND
    by more than 1 simulated second (absolute floor: a 0.2s -> 0.3s phase
    is not a finding). attributed_share regresses when it drops by > 0.02
    — the direction is inverted, smaller is worse.
    """
    regressions = 0
    for key in sorted(baseline.keys() | current.keys()):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            print(f"  NEW       {key}  {cur:.4f}")
            continue
        if cur is None:
            print(f"  MISSING   {key}  (baseline {base:.4f})")
            continue
        if key.endswith("attributed_share"):
            regressed = cur < base - 0.02
            tag = "REGRESSED" if regressed else "ok       "
            print(f"  {tag} {key}  {base:.4f} -> {cur:.4f} "
                  f"({cur - base:+.4f})")
        else:
            delta = (cur - base) / base if base > 0 else 0.0
            regressed = cur > base * (1 + threshold) and cur - base > 1.0
            if regressed:
                tag = "REGRESSED"
            elif delta < -threshold and base - cur > 1.0:
                tag = "IMPROVED "
            else:
                tag = "ok       "
            print(f"  {tag} {key}  {base:.3f}s -> {cur:.3f}s "
                  f"({delta:+.1%})")
        regressions += int(regressed)
    return regressions


def check_island_scale(root: pathlib.Path,
                       floor: float = 3.0) -> int:
    """Gate the island-kernel scaling report (BENCH_K1.json) in `root`.

    Unlike the diff gates this checks absolute properties of the current
    tree: every island-mode run must carry the identical trace digest
    (determinism is never hardware-dependent), and when the producing
    machine had >= 8 hardware threads (speedup_floor_enforced) the 8-way
    run must have reached the speedup floor. Returns the failure count; a
    tree without an island_scale section passes vacuously.
    """
    failures = 0
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        scale = doc.get("island_scale")
        if not isinstance(scale, dict):
            continue
        digests = {run.get("digest") for run in scale.get("runs", [])
                   if isinstance(run, dict) and run.get("threads", -1) >= 1}
        identical = scale.get("digests_identical")
        if identical is not True or len(digests) > 1:
            print(f"  FAILED    {path.name}:island_scale digests diverge "
                  f"across thread counts: {sorted(map(str, digests))}")
            failures += 1
        else:
            print(f"  ok        {path.name}:island_scale digest stable "
                  f"across {len(scale.get('runs', []))} runs")
        if scale.get("speedup_floor_enforced"):
            speedup = scale.get("speedup_8way", 0.0)
            wanted = scale.get("speedup_floor", floor)
            if not isinstance(speedup, (int, float)) or speedup < wanted:
                print(f"  FAILED    {path.name}:island_scale 8-way speedup "
                      f"{speedup} below floor {wanted}")
                failures += 1
            else:
                print(f"  ok        {path.name}:island_scale 8-way speedup "
                      f"{speedup:.2f}x (floor {wanted}x)")
        else:
            print(f"  skipped   {path.name}:island_scale speedup floor "
                  f"(hardware_concurrency "
                  f"{scale.get('hardware_concurrency')} < 8)")
    return failures


def check_multiuser(root: pathlib.Path) -> int:
    """Gate the multi-user storm report (BENCH_U1.json) in `root`.

    Absolute properties of the current tree, mirroring the bench binary's
    own exit gates so a skipped bench stage cannot hide a regression: the
    delta negotiator must stay >= speedup_floor times faster per cycle
    than the retained full-requery reference, fairness (Jain's index over
    per-user matched jobs) must hold the floor, the campaign must drain,
    the anti-entropy sweep must record zero divergences, and the
    jitter-free outcome digest must be identical across the legacy and
    island kernels. Returns the failure count; a tree without a multiuser
    section passes vacuously.
    """
    failures = 0
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        storm = doc.get("multiuser")
        if not isinstance(storm, dict):
            continue
        speedup = storm.get("delta_speedup", 0.0)
        floor = storm.get("speedup_floor", 5.0)
        if not isinstance(speedup, (int, float)) or speedup < floor:
            print(f"  FAILED    {path.name}:multiuser delta speedup "
                  f"{speedup} below floor {floor}")
            failures += 1
        else:
            print(f"  ok        {path.name}:multiuser delta speedup "
                  f"{speedup:.2f}x (floor {floor}x)")
        jain = storm.get("jain", 0.0)
        jain_floor = storm.get("jain_floor", 0.9)
        if not isinstance(jain, (int, float)) or jain < jain_floor:
            print(f"  FAILED    {path.name}:multiuser Jain index "
                  f"{jain} below floor {jain_floor}")
            failures += 1
        else:
            print(f"  ok        {path.name}:multiuser Jain index "
                  f"{jain:.4f} (floor {jain_floor})")
        if storm.get("drained") is not True:
            print(f"  FAILED    {path.name}:multiuser campaign did not "
                  f"drain ({storm.get('jobs_completed')} completed)")
            failures += 1
        divergences = storm.get("divergences")
        if divergences != 0:
            print(f"  FAILED    {path.name}:multiuser anti-entropy sweep "
                  f"recorded {divergences} divergence(s)")
            failures += 1
        outcomes = {run.get("outcome_digest")
                    for run in storm.get("digest_runs", [])
                    if isinstance(run, dict)}
        if storm.get("digests_identical") is not True or len(outcomes) > 1:
            print(f"  FAILED    {path.name}:multiuser outcome digests "
                  f"diverge across kernels: {sorted(map(str, outcomes))}")
            failures += 1
        else:
            print(f"  ok        {path.name}:multiuser outcome digest stable "
                  f"across {len(storm.get('digest_runs', []))} kernel runs")
    return failures


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:9.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:9.3f} us"
    return f"{ns:9.1f} ns"


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float) -> int:
    """Print the comparison table; return the number of regressions."""
    regressions = 0
    for key in sorted(baseline.keys() | current.keys()):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            print(f"  NEW       {key}  {fmt_ns(cur)}")
            continue
        if cur is None:
            print(f"  MISSING   {key}  (baseline {fmt_ns(base)})")
            continue
        delta = (cur - base) / base if base > 0 else 0.0
        if delta > threshold:
            regressions += 1
            tag = "REGRESSED"
        elif delta < -threshold:
            tag = "IMPROVED "
        else:
            tag = "ok       "
        print(f"  {tag} {key}  {fmt_ns(base)} -> {fmt_ns(cur)} "
              f"({delta:+.1%})")
    return regressions


def self_test() -> int:
    """Exercise load/compare against synthetic trees; 0 on success."""
    def make_tree(root: pathlib.Path, times: dict[str, float]) -> None:
        doc = {"bench": "T", "benchmarks": [
            {"name": name, "real_time_ns": ns, "cpu_time_ns": ns,
             "iterations": 1} for name, ns in times.items()]}
        (root / "BENCH_T.json").write_text(json.dumps(doc))

    def make_attributed_tree(root: pathlib.Path, share: float,
                             poll_p99: float, rtt_p99: float) -> None:
        doc = {"bench": "A", "benchmarks": [
            {"name": "campaign", "real_time_ns": 100.0,
             "cpu_time_ns": 100.0, "iterations": 1}],
            "latency_attribution": {
                "attributed_share": share,
                "mean_time_to_active_seconds": 500.0,
                "phase_p99_seconds": {"poll-wait": poll_p99,
                                      "gram-submit-rtt": rtt_p99}}}
        (root / "BENCH_A.json").write_text(json.dumps(doc))

    def make_scale_tree(root: pathlib.Path, digests: list[str],
                        enforced: bool, speedup: float) -> None:
        doc = {"bench": "K", "benchmarks": [
            {"name": "BM_IslandScale/N1", "real_time_ns": 100.0,
             "cpu_time_ns": 100.0, "iterations": 1}],
            "island_scale": {
                "hardware_concurrency": 8 if enforced else 1,
                "digests_identical": len(set(digests)) == 1,
                "speedup_8way": speedup,
                "speedup_floor": 3.0,
                "speedup_floor_enforced": enforced,
                "runs": [{"threads": n, "digest": d, "wall_ns": 100.0}
                         for n, d in zip((1, 2, 4, 8), digests)]}}
        (root / "BENCH_K.json").write_text(json.dumps(doc))

    def make_multiuser_tree(root: pathlib.Path, speedup: float, jain: float,
                            drained: bool = True, divergences: int = 0,
                            outcomes: tuple[str, ...] = ("0x1",) * 3) -> None:
        doc = {"bench": "U", "benchmarks": [
            {"name": "BM_MultiUserStorm/legacy", "real_time_ns": 100.0,
             "cpu_time_ns": 100.0, "iterations": 1}],
            "multiuser": {
                "delta_speedup": speedup, "speedup_floor": 5.0,
                "jain": jain, "jain_floor": 0.9,
                "drained": drained, "jobs_completed": 10,
                "divergences": divergences,
                "digests_identical": len(set(outcomes)) == 1,
                "digest_runs": [
                    {"mode": m, "outcome_digest": d, "kernel_digest": d}
                    for m, d in zip(("legacy", "N1", "N8"), outcomes)]}}
        (root / "BENCH_U.json").write_text(json.dumps(doc))

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = pathlib.Path(tmp) / "base"
        cur_dir = pathlib.Path(tmp) / "cur"
        base_dir.mkdir()
        cur_dir.mkdir()

        # Island-scale gate: identical digests + met floor pass; diverging
        # digests fail even when the floor is unenforced; an enforced floor
        # catches a 2x-only 8-way run; a 1-core machine skips the floor but
        # still checks digests.
        scale_dir = pathlib.Path(tmp) / "scale"
        scale_dir.mkdir()
        same = ["0xabc"] * 4
        make_scale_tree(scale_dir, same, enforced=True, speedup=3.4)
        if check_island_scale(scale_dir) != 0:
            failures.append("healthy island_scale tree must pass")
        make_scale_tree(scale_dir, ["0xabc", "0xabc", "0xdef", "0xabc"],
                        enforced=False, speedup=0.9)
        if check_island_scale(scale_dir) != 1:
            failures.append("diverging digests must fail the scale gate")
        make_scale_tree(scale_dir, same, enforced=True, speedup=2.0)
        if check_island_scale(scale_dir) != 1:
            failures.append("enforced floor must catch a 2.0x 8-way run")
        make_scale_tree(scale_dir, same, enforced=False, speedup=0.8)
        if check_island_scale(scale_dir) != 0:
            failures.append("unenforced floor must not fail on speedup")
        (scale_dir / "BENCH_K.json").unlink()

        # Multi-user gate: a healthy report passes; a sub-floor speedup, a
        # sub-floor Jain index, an undrained campaign, a sweep divergence,
        # and a cross-kernel outcome mismatch each fail exactly once.
        storm_dir = pathlib.Path(tmp) / "storm"
        storm_dir.mkdir()
        make_multiuser_tree(storm_dir, speedup=8.0, jain=0.95)
        if check_multiuser(storm_dir) != 0:
            failures.append("healthy multiuser tree must pass")
        make_multiuser_tree(storm_dir, speedup=3.0, jain=0.95)
        if check_multiuser(storm_dir) != 1:
            failures.append("sub-floor delta speedup must fail")
        make_multiuser_tree(storm_dir, speedup=8.0, jain=0.5)
        if check_multiuser(storm_dir) != 1:
            failures.append("sub-floor Jain index must fail")
        make_multiuser_tree(storm_dir, speedup=8.0, jain=0.95, drained=False)
        if check_multiuser(storm_dir) != 1:
            failures.append("undrained campaign must fail")
        make_multiuser_tree(storm_dir, speedup=8.0, jain=0.95, divergences=2)
        if check_multiuser(storm_dir) != 1:
            failures.append("sweep divergences must fail")
        make_multiuser_tree(storm_dir, speedup=8.0, jain=0.95,
                            outcomes=("0x1", "0x1", "0x2"))
        if check_multiuser(storm_dir) != 1:
            failures.append("cross-kernel outcome divergence must fail")
        (storm_dir / "BENCH_U.json").unlink()
        make_tree(base_dir, {"steady": 100.0, "faster": 100.0,
                             "slower": 100.0, "gone": 100.0})
        make_tree(cur_dir, {"steady": 104.0, "faster": 50.0,
                            "slower": 150.0, "fresh": 100.0})

        # Attribution gate: a phase p99 growing 600s -> 900s and the
        # attributed share dropping 1.0 -> 0.9 are both regressions; the
        # sub-second rtt wobble (0.2s -> 0.3s, +50% but tiny) is not.
        make_attributed_tree(base_dir, share=1.0, poll_p99=600.0,
                             rtt_p99=0.2)
        make_attributed_tree(cur_dir, share=0.9, poll_p99=900.0,
                             rtt_p99=0.3)
        attribution_base = load_attribution(base_dir)
        attribution_cur = load_attribution(cur_dir)
        if len(attribution_base) != 4:
            failures.append("load_attribution returned wrong entry count")
        hits = compare_attribution(attribution_base, attribution_cur,
                                   threshold=0.10)
        if hits != 2:
            failures.append(
                f"expected 2 attribution regressions, got {hits}")
        if compare_attribution(attribution_base, attribution_base,
                               threshold=0.10) != 0:
            failures.append("identical attribution must not regress")
        (base_dir / "BENCH_A.json").unlink()
        (cur_dir / "BENCH_A.json").unlink()
        baseline = load_tree(base_dir)
        current = load_tree(cur_dir)
        if len(baseline) != 4 or len(current) != 4:
            failures.append("load_tree returned wrong entry counts")
        regressions = compare(baseline, current, threshold=0.10)
        if regressions != 1:
            failures.append(f"expected exactly 1 regression, got {regressions}")
        if compare(baseline, baseline, threshold=0.10) != 0:
            failures.append("identical trees must not regress")
        # A looser threshold should absorb the 1.5x slowdown.
        if compare(baseline, current, threshold=0.60) != 0:
            failures.append("threshold=0.60 should absorb a +50% delta")
        # Unreadable JSON in the *current* tree is skipped, not fatal: a
        # half-written bench run should not mask the rest of the report.
        (cur_dir / "BENCH_BAD.json").write_text("{not json")
        if len(load_tree(cur_dir)) != 4:
            failures.append("malformed current-tree file should be skipped")
        # ...but in the *baseline* tree it is an error: a corrupt committed
        # baseline must fail the gate, not silently compare against nothing.
        try:
            load_tree(cur_dir, strict=True)
            failures.append("strict load must reject a malformed baseline")
        except BaselineError:
            pass
        # A baseline file with no usable entries is equally fatal.
        (cur_dir / "BENCH_BAD.json").write_text(json.dumps({"benchmarks": []}))
        try:
            load_tree(cur_dir, strict=True)
            failures.append("strict load must reject an empty baseline file")
        except BaselineError:
            pass
        (cur_dir / "BENCH_BAD.json").unlink()
        if len(load_tree(cur_dir, strict=True)) != 4:
            failures.append("strict load should accept a healthy tree")
    for failure in failures:
        print(f"SELF-TEST FAIL: {failure}")
    print("bench_compare self-test:", "FAIL" if failures else "OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json dir")
    parser.add_argument("current", nargs="?", help="current BENCH_*.json dir")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in self test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current directories are required")

    base_root = pathlib.Path(args.baseline)
    if not base_root.is_dir():
        print(f"error: baseline directory {args.baseline} does not exist",
              file=sys.stderr)
        return 2
    try:
        baseline = load_tree(base_root, strict=True)
    except BaselineError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    current = load_tree(pathlib.Path(args.current))
    if not baseline:
        # An empty baseline tree would make every run pass vacuously.
        print(f"error: no BENCH_*.json under {args.baseline}; the comparison "
              "gate needs committed baselines", file=sys.stderr)
        return 2
    print(f"comparing {args.current} against {args.baseline} "
          f"(threshold {args.threshold:.0%})")
    regressions = compare(baseline, current, args.threshold)
    regressions += compare_attribution(load_attribution(base_root),
                                       load_attribution(
                                           pathlib.Path(args.current)),
                                       args.threshold)
    regressions += check_island_scale(pathlib.Path(args.current))
    regressions += check_multiuser(pathlib.Path(args.current))
    if regressions:
        print(f"{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0%}")
        return 1
    print("no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
