// Dynamic/static cross-check of the island-cut message classification.
//
// PR 6's analyzer (tools/analyze/condorg_partition.py) classifies the
// GRAM/GASS/MDS/GSI message types that cross the user/site/central
// partition boundary *statically*, from the source. This tool measures the
// same boundary *dynamically*: it arms sim::Profiler, runs one campaign
// that exercises every protocol leg (two-phase submission, staging,
// polling, MyProxy refresh, MDS registration/query, and the rare recovery
// RPCs no healthy campaign emits — pings, restart_jobmanager, update_gass,
// refresh_credential, cancel, the odd GASS verbs, grrp.unregister), then
// compares the set of message types observed crossing partitions in the
// profiler's traffic matrix against the report's cut classification.
//
// The two sets must agree exactly:
//   * a type classified but never observed means the scenario (or the
//     analyzer's notion of "cross-partition") has drifted from the code;
//   * a type observed but never classified means the static analyzer
//     missed a cut message — the exact bug it exists to prevent.
//
// With --proto, the gate becomes three-way: the checked-in protocol spec
// (src/proto/protocols.json, exported by tools/analyze/condorg_proto.py
// into proto_report.json) must equal the static cut, and the dynamic
// matrix must be a subset of the spec:
//
//     spec == static extraction ⊇ dynamic matrix
//
// so a message type cannot enter the island cut without a spec entry, and
// a spec entry cannot outlive the code that sends it.
//
// Usage: condorg_profile_check <partition_report.json>
//            [--proto proto_report.json] [--dump profile.json]
// Exit:  0 = sets agree, 1 = mismatch (details on stderr),
//        77 = report missing (ctest SKIP_RETURN_CODE).

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/gass/client.h"
#include "condorg/gram/client.h"
#include "condorg/gsi/myproxy.h"
#include "condorg/sim/profiler.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/json.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cs = condorg::sim;
namespace cw = condorg::workloads;
namespace gsi = condorg::gsi;
namespace util = condorg::util;

namespace {

/// Strip the RPC reply suffix: the cut is classified by request type.
std::string base_type(const std::string& type) {
  const std::string suffix = ".reply";
  if (type.size() > suffix.size() &&
      type.compare(type.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return type.substr(0, type.size() - suffix.size());
  }
  return type;
}

/// Union of "messages" over every cross_host_edges entry whose from/to
/// partitions differ (the CONDOR shadow/startd protocol is user-internal
/// and stays out of the cut).
std::set<std::string> static_cut(const util::JsonValue& report,
                                 std::vector<std::string>& problems) {
  std::set<std::string> cut;
  const util::JsonValue* edges = report.find("cross_host_edges");
  if (edges == nullptr) {
    problems.push_back("partition report has no cross_host_edges");
    return cut;
  }
  for (const util::JsonValue& edge : edges->items()) {
    const util::JsonValue* from = edge.find("from");
    const util::JsonValue* to = edge.find("to");
    const util::JsonValue* messages = edge.find("messages");
    if (from == nullptr || to == nullptr || messages == nullptr) continue;
    if (from->as_string() == to->as_string()) continue;
    for (const util::JsonValue& message : messages->items()) {
      cut.insert(message.as_string());
    }
  }
  return cut;
}

struct Observation {
  std::set<std::string> cross_partition;  // base types crossing the cut
  std::string profile_json;               // to_json(false).dump()
};

/// Run the all-protocol campaign with the profiler armed and return the
/// base message types observed between hosts of *different* partitions.
Observation run_scenario(std::vector<std::string>& problems) {
  cw::GridTestbed testbed(7);
  testbed.world().sim().profiler().set_enabled(true);

  cw::SiteSpec pbs;
  pbs.name = "pbs.anl.gov";
  pbs.kind = cw::SiteKind::kPbs;
  pbs.cpus = 8;
  cw::Site& site0 = testbed.add_site(pbs);
  cw::SiteSpec pool;
  pool.name = "pool.wisc.edu";
  pool.kind = cw::SiteKind::kCondorPool;
  pool.cpus = 8;
  testbed.add_site(pool);
  condorg::mds::GiisServer& giis = testbed.enable_mds("giis.grid.org");

  // Host -> partition, mirroring the analyzer's classification: the agent
  // machine is "user", site front-ends and clusters are "site", and the
  // shared directory/credential services are "central".
  const std::map<std::string, std::string> partition_of = {
      {"submit.wisc.edu", "user"},         {"pbs.anl.gov", "site"},
      {"pbs.anl.gov.cluster", "site"},     {"pool.wisc.edu", "site"},
      {"pool.wisc.edu.cluster", "site"},   {"giis.grid.org", "central"},
      {"myproxy.ncsa.edu", "central"},
  };

  gsi::Pki pki(util::Rng(9));
  gsi::CertificateAuthority ca(pki, "/CN=CA");
  gsi::Credential user = ca.issue(pki, "/O=UW/CN=jfrey", 0.0, 30 * 86400.0);
  gsi::MyProxyServer myproxy(testbed.world().add_host("myproxy.ncsa.edu"),
                             testbed.world().net(), pki);
  cs::Host& submit = testbed.add_submit_host("submit.wisc.edu");
  {
    gsi::MyProxyClient boot(submit, testbed.world().net(),
                            "profile.myproxy.boot");
    boot.store(myproxy.address(), "jfrey", "pw",
               user.delegate(pki, 0.0, 7 * 86400.0), [](bool) {});
    testbed.world().sim().run_until(10.0);
  }

  // Short seed proxy + MyProxy auto-refresh so myproxy.get shows up once
  // the campaign outlives the refresh threshold.
  core::AgentOptions options;
  options.user = "jfrey";
  options.credentials.use_myproxy = true;
  options.credentials.myproxy_server = myproxy.address();
  options.credentials.myproxy_user = "jfrey";
  options.credentials.myproxy_passphrase = "pw";
  options.credentials.scan_interval = 300.0;
  options.credentials.refresh_threshold = 1800.0;
  options.credentials.refresh_lifetime = 3600.0;
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu", options);
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();
  const gsi::Credential proxy =
      user.delegate(pki, testbed.world().now(), 3600.0);
  agent.credentials().set_credential(proxy);

  core::JobDescription desc;
  desc.universe = core::Universe::kGrid;
  desc.runtime_seconds = 300.0;
  desc.executable_size = 256 * 1024;
  desc.output_size = 2048;
  for (int i = 0; i < 4; ++i) agent.submit(desc);
  desc.runtime_seconds = 8000.0;  // outlives the proxy refresh threshold
  const std::uint64_t long_id = agent.submit(desc);

  // Run until the long job holds a contact (the short jobs complete along
  // the way, exercising submit/commit/callback/status and both stagings).
  while (testbed.world().now() < 4000.0 &&
         agent.query(long_id)->gram_contact.empty()) {
    if (!testbed.world().sim().run_until(testbed.world().now() + 50.0)) break;
  }
  const std::string contact = agent.query(long_id)->gram_contact;
  if (contact.empty()) {
    problems.push_back("long job never obtained a GRAM contact");
    return {};
  }

  // The recovery/maintenance RPCs no healthy campaign sends: drive them
  // directly, exactly as the GridManager's recovery ladder would.
  condorg::gram::GramClient extra(submit, testbed.world().net(),
                                  "profile.check");
  extra.set_credential(proxy);
  extra.ping_gatekeeper(site0.gatekeeper_address(), [](bool) {});
  extra.ping_jobmanager(contact, [](bool) {});
  extra.update_gass(contact, agent.gridmanager().gass_address(),
                    [](bool) {});
  extra.refresh_remote_credential(contact, [](bool) {});
  testbed.world().sim().run_until(testbed.world().now() + 120.0);
  extra.restart_jobmanager(contact, [](auto) {});
  testbed.world().sim().run_until(testbed.world().now() + 120.0);

  // GASS verbs the standard stage-in/stage-out path never uses, sent from
  // the site front-end to the agent's GASS server (the classified site ->
  // user direction).
  condorg::gass::FileClient files(*site0.frontend, testbed.world().net(),
                                  "profile.gass");
  files.set_credential(proxy);
  const cs::Address gass = agent.gridmanager().gass_address();
  files.put(gass, "profile.out", "data", 4, [](bool) {});
  files.append(gass, "profile.log", "line\n", 5, [](bool) {}, 600.0,
               "profiler", 1);
  files.stat(gass, "profile.log", [](auto) {});
  files.get(gass, "profile.out", [](auto) {});
  files.pull(gass, "profile.pulled", gass, "profile.out", [](bool) {});

  // MDS queries (a personal broker's view) and the unregister leg.
  condorg::mds::MdsClient mds(submit, testbed.world().net(), "profile.mds");
  mds.query(giis.address(), "", [](auto) {});
  mds.lookup(giis.address(), "pbs.anl.gov", [](auto) {});
  cs::RpcClient grrp(*site0.frontend, testbed.world().net(), "profile.grrp");
  cs::Payload unreg;
  unreg.set("name", "pool.wisc.edu");
  grrp.call(giis.address(), "grrp.unregister", std::move(unreg), 30.0,
            [](bool, const cs::Payload&) {});
  testbed.world().sim().run_until(testbed.world().now() + 300.0);

  // Hold the long job past the first credential scan that finds the seed
  // proxy under its refresh threshold (1800s left of 3600s), so the agent
  // fetches a fresh proxy from MyProxy and re-delegates it site-side.
  testbed.world().sim().run_until(2500.0);

  // Cancel tears down the long job's JobManager (jm.cancel crosses).
  extra.cancel(contact, [](bool) {});
  agent.remove(long_id);
  testbed.world().sim().run_until(testbed.world().now() + 600.0);

  Observation out;
  const cs::Profiler& profiler = testbed.world().sim().profiler();
  for (const auto& [key, cell] : profiler.messages()) {
    const auto& [from, to, daemon, type] = key;
    (void)daemon;
    (void)cell;
    const auto from_it = partition_of.find(from);
    const auto to_it = partition_of.find(to);
    if (from_it == partition_of.end() || to_it == partition_of.end()) {
      problems.push_back("host outside the partition map: " + from + " -> " +
                         to);
      continue;
    }
    if (from_it->second == to_it->second) continue;
    out.cross_partition.insert(base_type(type));
  }
  out.profile_json = profiler.to_json(false).dump();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string proto_path;
  std::string dump_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump" && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (arg == "--proto" && i + 1 < argc) {
      proto_path = argv[++i];
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      std::cerr << "usage: condorg_profile_check <partition_report.json>"
                   " [--proto proto_report.json] [--dump profile.json]\n";
      return 2;
    }
  }
  if (report_path.empty()) {
    std::cerr << "usage: condorg_profile_check <partition_report.json>"
                 " [--proto proto_report.json] [--dump profile.json]\n";
    return 2;
  }

  std::ifstream in(report_path);
  if (!in) {
    std::cout << "SKIP: " << report_path
              << " not found (run the analyze.partition stage first)\n";
    return 77;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto report = util::JsonValue::parse(buffer.str());
  if (!report) {
    std::cerr << "FAIL: " << report_path << " is not valid JSON\n";
    return 1;
  }

  std::vector<std::string> problems;
  const std::set<std::string> classified = static_cut(*report, problems);

  // Spec leg of the triangle (optional, third analyzer's report).
  bool have_spec = false;
  std::set<std::string> spec;
  if (!proto_path.empty()) {
    std::ifstream proto_in(proto_path);
    if (!proto_in) {
      std::cout << "SKIP: " << proto_path
                << " not found (run the analyze.proto stage first)\n";
      return 77;
    }
    std::stringstream proto_buffer;
    proto_buffer << proto_in.rdbuf();
    const auto proto = util::JsonValue::parse(proto_buffer.str());
    if (!proto) {
      std::cerr << "FAIL: " << proto_path << " is not valid JSON\n";
      return 1;
    }
    const util::JsonValue* cut_types = proto->find("cut_types");
    if (cut_types == nullptr) {
      std::cerr << "FAIL: " << proto_path << " has no cut_types\n";
      return 1;
    }
    have_spec = true;
    for (const util::JsonValue& type : cut_types->items()) {
      spec.insert(type.as_string());
    }
    // spec == static: every spec'd cut type must be classified as crossing
    // by the partition analyzer, and vice versa.
    for (const std::string& type : spec) {
      if (classified.count(type) == 0) {
        problems.push_back(
            "in protocol spec but not in the static cut: " + type);
      }
    }
    for (const std::string& type : classified) {
      if (spec.count(type) == 0) {
        problems.push_back(
            "in the static cut but missing from the protocol spec: " + type);
      }
    }
  }

  const Observation observed = run_scenario(problems);

  // spec ⊇ dynamic: nothing may cross the cut without a spec entry. (The
  // reverse is not required here — spec == static already ties the spec to
  // the code, and static == dynamic is checked below.)
  if (have_spec) {
    for (const std::string& type : observed.cross_partition) {
      if (spec.count(type) == 0) {
        problems.push_back(
            "observed crossing but missing from the protocol spec: " + type);
      }
    }
  }

  for (const std::string& type : classified) {
    if (observed.cross_partition.count(type) == 0) {
      problems.push_back("classified but never observed crossing: " + type);
    }
  }
  for (const std::string& type : observed.cross_partition) {
    if (classified.count(type) == 0) {
      problems.push_back("observed crossing but not classified: " + type);
    }
  }

  if (!dump_path.empty() && !observed.profile_json.empty()) {
    std::ofstream out(dump_path);
    out << observed.profile_json << "\n";
  }

  std::cout << "classified cut types: " << classified.size()
            << ", observed cross-partition types: "
            << observed.cross_partition.size();
  if (have_spec) std::cout << ", spec cut types: " << spec.size();
  std::cout << "\n";
  if (!problems.empty()) {
    for (const std::string& problem : problems) {
      std::cerr << "FAIL: " << problem << "\n";
    }
    return 1;
  }
  std::cout << (have_spec
                    ? "OK: spec == static cut ⊇ dynamic traffic matrix\n"
                    : "OK: traffic matrix agrees with the static cut\n");
  return 0;
}
