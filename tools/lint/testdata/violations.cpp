// Fixture for condorg_lint.py --self-test: every block below must trip
// exactly the rule named in the comment. This file is never compiled.
#include <cstdlib>
#include <ctime>
#include <functional>
#include <unordered_map>

// banned-rand
int noisy() { return std::rand(); }                    // banned-rand
// wall-clock
long stamp() { return time(nullptr); }                 // wall-clock

struct Table {
  std::unordered_map<int, int> cells_;
  int sum() const {
    int total = 0;
    for (const auto& [k, v] : cells_) total += v;      // unordered-iteration
    return total;
  }
};

struct Emitter {
  std::unordered_map<int, int> rows_;
  void dump() {
    // trips unordered-iteration AND unordered-trace-emit: the body emits
    // JSON, so iteration order becomes output order.
    for (const auto& [k, v] : rows_) {                 // unordered-trace-emit
      emit_json(k, v);
    }
  }
  void emit_json(int, int);
};

struct Base {
  virtual ~Base() = default;
  virtual void poke();                                 // fine: not derived
};
struct Derived : public Base {
  virtual void poke();                                 // virtual-in-derived
};

void fire() {
  std::function<void()> hook;
  hook();                                              // unchecked-function-call
}

void shout() { std::printf("loud\n"); }                // direct-io

struct Queue {
  std::unordered_map<int, int>* jobs();
};
int drain(Queue& schedd) {
  int n = 0;
  for (const auto& [id, job] : *schedd.jobs()) {       // schedd-full-scan
    n += job;
  }
  // idle_jobs() is an index read, not a scan — must NOT trip the rule:
  return n;
}

// unbalanced-span: spans that are opened but can never be closed.
struct FixtureTracer {
  int begin_span(const char* name);
  void end_span(int span);
  int begin_job(int job);
  void end_job(int job);
};
void span_lifecycle(FixtureTracer& t) {
  int orphan = t.begin_span("leaked");                 // unbalanced-span
  (void)orphan;
  t.begin_span("dropped");                             // unbalanced-span
  t.begin_job(1);                                      // unbalanced-span
  // A balanced pair must NOT trip the rule:
  int paired = t.begin_span("balanced");
  t.end_span(paired);
}

// raw-threading: concurrency primitives outside src/sim/. One hit only —
// the rule must fire on the primitive, not on mentions in comments.
struct Cache {
  std::mutex mu_;                                      // raw-threading
};

// Suppression forms must keep working:
int allowed_noise() {
  // lint-allow(banned-rand): fixture proves inline allows suppress
  return std::rand();
}
