#!/usr/bin/env python3
"""Determinism / correctness lint for the Condor-G reproduction.

Every run of the simulation must be exactly reproducible from its seed:
protocol timeouts, crash schedules, and brokering decisions are all events in
one deterministic queue (src/sim/simulation.h). This lint scans sim-visible
code (everything under src/) for constructs that historically break that
guarantee or the paper's exactly-once protocol:

  banned-rand            std::rand / srand / std::random_device — all
                         randomness must come from util::Rng streams derived
                         from the run seed.
  wall-clock             system_clock / steady_clock / time(...) /
                         gettimeofday / localtime — simulated daemons must use
                         sim::Simulation::now(), never the host clock.
  unordered-iteration    range-for over a variable declared as
                         std::unordered_map / std::unordered_set — iteration
                         order is implementation-defined and leaks
                         nondeterminism into event scheduling and protocol
                         message order. Iterate a std::map/std::set or a
                         sorted copy instead.
  unordered-trace-emit   the same range-for, but the loop body emits trace /
                         JSON output (tracer, emit, json). The schedule
                         explorer replays counterexamples by comparing
                         formatted output byte-for-byte, so emission order
                         from an unordered container is a correctness bug,
                         not a style one — this rule fires *in addition to*
                         unordered-iteration and needs its own allow.
  virtual-in-derived     `virtual` on a member function of a class that has a
                         base-clause — overrides must say `override` (the
                         compiler backstop is -Wsuggest-override); a derived
                         class introducing a brand-new virtual is rare enough
                         to deserve an explicit allow.
  unchecked-function-call invoking a declared std::function object in a file
                         that never null-checks it — moved-from or
                         default-constructed std::function invocation is UB
                         (std::bad_function_call at best).
  direct-io              std::cout / std::cerr / printf-family calls —
                         daemon and simulation code must log through
                         util::Logger (levelled, capturable, deterministic);
                         direct stdio belongs to benches, examples, and the
                         report tool (which is allowlisted).
  raw-threading          std::thread / std::mutex / std::atomic (and friends)
                         outside src/sim/ — the island kernel owns all
                         concurrency; daemon code must stay single-threaded
                         per island so determinism proofs stay local to the
                         kernel. Infrastructure that is genuinely shared
                         across island workers (the logger sink, metric
                         counters) is allowlisted with its synchronization
                         story.
  unbalanced-span        a tracer begin_span whose SpanId is discarded, or is
                         assigned to a variable that no end_span(<same
                         variable>) in the file ever closes; likewise a file
                         calling begin_job with no end_job. An unclosed span
                         corrupts every downstream trace consumer (the
                         critical-path walker sees a window that never ends).
                         Line-based: "no matching end on any path" is
                         approximated as "no matching end anywhere in the
                         file", which all legitimate sites satisfy.

Suppressions, in order of preference:
  1. Fix the code.
  2. Inline, for a single audited line:   // lint-allow(<rule>): <why>
     (on the offending line or the line directly above it)
  3. File-level, in tools/lint/allowlist.txt:   <relpath>:<rule>  # why
     for rules that are structurally fine in that one file.

A file-level entry that no longer suppresses anything is itself an error
(rule: stale-suppression) on full-tree runs — the same burn-down policy as
scripts/tidy.sh: stale entries must be deleted, or they silently swallow
the next genuine finding in that file.

Exit status: 0 = clean, 1 = unallowlisted violations, 2 = usage error.
"""

import argparse
import json
import os
import re
import sys

SRC_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Every rule this engine can emit (stale-suppression detection judges only
# its own rules: the shared tools/analyze/allowlist.txt also carries
# partition- and proto-rule entries policed by those analyzers).
LINT_RULES = frozenset({
    "banned-rand", "wall-clock", "schedd-full-scan", "direct-io",
    "raw-threading", "unordered-iteration", "unordered-trace-emit",
    "virtual-in-derived", "unchecked-function-call", "unbalanced-span",
})

# ---------------------------------------------------------------------------
# Simple single-line rules: (rule, regex, message)
# ---------------------------------------------------------------------------
LINE_RULES = [
    (
        "banned-rand",
        re.compile(r"\b(std::rand\b|std::srand\b|(?<![:\w])s?rand\s*\(|"
                   r"random_device\b|mt19937\b|default_random_engine\b)"),
        "use util::Rng streams seeded from the run seed, not ambient RNGs",
    ),
    (
        "wall-clock",
        re.compile(r"\b(system_clock|steady_clock|high_resolution_clock|"
                   r"gettimeofday|clock_gettime|timespec_get|"
                   r"localtime|gmtime|mktime|strftime|"
                   r"(?<![:\w.>])time\s*\(\s*(?:nullptr|NULL|0|&)|"
                   r"(?<![:\w.>])clock\s*\(\s*\))"),
        "simulated code must read sim::Simulation::now(), not the host clock",
    ),
    (
        "schedd-full-scan",
        re.compile(r"\bfor\s*\(.*:\s*[\w.>()*-]*\bjobs\(\)"),
        "full job-table scan; use the Schedd's secondary indexes "
        "(idle_jobs / jobs_with_status / count) — audit, recovery, and "
        "report sites may lint-allow",
    ),
    (
        "direct-io",
        re.compile(r"(?<![:\w])(?:std::)?(?:cout|cerr)\b|"
                   r"(?<![:\w])(?:std::)?"
                   r"(?:printf|fprintf|fputs|fputc|putchar|puts)\s*\("),
        "log through util::Logger; direct stdio is for tools/benches only",
    ),
]

# Concurrency primitives are the island kernel's business only (src/sim/).
# Everything else runs single-threaded within its island; a stray mutex or
# thread elsewhere either hides a data race or silently serializes islands.
RAW_THREADING = re.compile(
    r"\bstd::(?:jthread|thread\b|mutex|recursive_mutex|timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|atomic\w*|"
    r"lock_guard|scoped_lock|unique_lock|shared_lock|call_once|once_flag|"
    r"promise\s*<|future\s*<|shared_future|async\s*\(|latch|barrier\s*<|"
    r"counting_semaphore|binary_semaphore)|"
    r"#\s*include\s*<(?:thread|mutex|shared_mutex|atomic|"
    r"condition_variable|future|semaphore|latch|barrier|stop_token)>")
# Directory prefix where RAW_THREADING is legal (the kernel itself).
THREADING_HOME = "src/sim/"

DECL_UNORDERED = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
# `name` of a variable/member declared on a line that mentions an unordered
# container: last identifier before `;`, `=`, `{`, or `(`.
DECL_NAME = re.compile(r"([A-Za-z_]\w*)\s*(?:;|=|\{|\()")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*\*?\s*(?:this->)?([A-Za-z_][\w.>-]*)\s*\)")

CLASS_DERIVED = re.compile(
    r"\b(?:class|struct)\s+[A-Za-z_]\w*\s*(?:final\s*)?:\s*(?:virtual\s+)?"
    r"(?:public|protected|private)\b")
CLASS_ANY = re.compile(r"\b(?:class|struct)\s+[A-Za-z_]\w*")
VIRTUAL_DECL = re.compile(r"^\s*virtual\b")

DECL_FUNCTION_OBJ = re.compile(
    r"\bstd::function\s*<[^;]*>\s+([A-Za-z_]\w*)\s*[;={(]")
# Tracer span lifecycle. Only qualified calls (".begin_span" / "->begin_span")
# count, so the Tracer's own implementation is out of scope; the optional
# leading group captures the lvalue the SpanId is assigned to.
BEGIN_SPAN_CALL = re.compile(
    r"(?:([A-Za-z_][\w.\[\]>-]*)\s*=\s*)?[\w.\]()>-]*(?:\.|->)\s*"
    r"begin_span\s*\(")
BEGIN_JOB_CALL = re.compile(r"(?:\.|->)\s*begin_job\s*\(")
END_JOB_CALL = re.compile(r"(?:\.|->)\s*end_job\s*\(")
# Trace/JSON emission inside a loop body: the tracer, anything emit-like, or
# any json helper. Scanned against noise-stripped lines, so string literals
# cannot fake a hit.
EMIT_OUTPUT = re.compile(r"json|Json|JSON|[Tt]racer\b|\bemit\w*\s*\(")
ALLOW_INLINE = re.compile(r"lint-allow\(([\w,-]+)\)")

COMMENT_LINE = re.compile(r"^\s*(//|\*|/\*)")
STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_noise(line):
    """Drop string literals and trailing // comments before matching."""
    line = STRING_LITERAL.sub('""', line)
    cut = line.find("//")
    if cut != -1:
        line = line[:cut]
    return line


def inline_allows(lines, idx):
    """Rules allowed for line idx (0-based) via lint-allow on it or above."""
    allowed = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_INLINE.search(lines[probe])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


INCLUDE_PROJECT = re.compile(r'#include\s+"(condorg/[\w/.]+)"')


def _project_header_decls(root, lines, cache):
    """Names of unordered containers / std::function objects declared in the
    project headers a file includes — so a .cpp iterating a member declared
    in its own header is still caught."""
    unordered, functions = set(), set()
    for line in lines:
        m = INCLUDE_PROJECT.search(line)
        if not m:
            continue
        header = m.group(1)
        if header not in cache:
            names = (set(), set())
            for module in sorted(os.listdir(os.path.join(root, "src"))):
                candidate = os.path.join(root, "src", module, "include",
                                         header)
                if os.path.isfile(candidate):
                    with open(candidate, encoding="utf-8",
                              errors="replace") as fh:
                        names = _collect_decls(fh.read().splitlines())
                    break
            cache[header] = names
        unordered.update(cache[header][0])
        functions.update(cache[header][1])
    return unordered, functions


def _collect_decls(lines):
    unordered_names, function_names = set(), set()
    for line in lines:
        if COMMENT_LINE.match(line):
            continue
        bare = strip_noise(line)
        if DECL_UNORDERED.search(bare):
            tail = bare[DECL_UNORDERED.search(bare).start():]
            m = DECL_NAME.search(_skip_template(tail))
            if m:
                unordered_names.add(m.group(1))
        m = DECL_FUNCTION_OBJ.search(bare)
        if m:
            function_names.add(m.group(1))
    return unordered_names, function_names


def lint_file(path, rel, file_allows, root, header_cache, used_allows=None):
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()

    violations = []

    def report(idx, rule, message):
        if rule in file_allows:
            if used_allows is not None:
                used_allows.add((rel, rule))
            return
        if rule in inline_allows(lines, idx):
            return
        violations.append(Violation(rel, idx + 1, rule, message))

    # Pass 1: collect names of unordered containers and std::function objects
    # declared in this file (members and locals alike) or in the project
    # headers it includes.
    unordered_names, function_names = _collect_decls(lines)
    header_unordered, _header_functions = _project_header_decls(
        root, lines, header_cache)
    unordered_names |= header_unordered
    # Header-declared std::function members are deliberately NOT pulled into
    # the unchecked-call rule: the declaring file already owns that audit and
    # cross-file flow analysis from a line-based lint would be all noise.

    # A single null-check anywhere in the file is accepted as evidence the
    # author thought about emptiness; the rule targets files that invoke
    # std::function objects with no check at all.
    joined = "\n".join(strip_noise(l) for l in lines)
    checked_functions = set()
    for name in function_names:
        if re.search(
                rf"(\bif\s*\(\s*!?\s*(?:\w+(?:\.|->))?{name}\b)|"
                rf"(\b{name}\s*(?:\?|==|!=))|(assert\s*\(\s*{name}\b)|"
                rf"(!\s*{name}\b)",
                joined):
            checked_functions.add(name)

    # Pass 2: line rules + context-sensitive rules.
    in_derived_class = False
    brace_depth = 0
    class_depth_stack = []
    for idx, raw in enumerate(lines):
        if COMMENT_LINE.match(raw):
            continue
        line = strip_noise(raw)

        for rule, pattern, message in LINE_RULES:
            if pattern.search(line):
                report(idx, rule, message)

        if not rel.replace(os.sep, "/").startswith(THREADING_HOME) \
                and RAW_THREADING.search(line):
            report(idx, "raw-threading",
                   "concurrency primitive outside src/sim/ — the island "
                   "kernel owns threading; daemon code is single-threaded "
                   "per island")

        m = RANGE_FOR.search(line)
        if m and m.group(1).split(".")[0].split("->")[0] in unordered_names:
            report(idx, "unordered-iteration",
                   f"range-for over unordered container '{m.group(1)}'; "
                   "iteration order is nondeterministic")
            if _loop_body_emits(lines, idx):
                report(idx, "unordered-trace-emit",
                       f"loop over unordered container '{m.group(1)}' emits "
                       "trace/JSON output; replay compares that output "
                       "byte-for-byte — iterate a sorted view instead")

        if CLASS_DERIVED.search(line):
            class_depth_stack.append(brace_depth)
            in_derived_class = True
        brace_depth += line.count("{") - line.count("}")
        if class_depth_stack and brace_depth <= class_depth_stack[-1]:
            class_depth_stack.pop()
            in_derived_class = bool(class_depth_stack)

        if in_derived_class and VIRTUAL_DECL.search(line) \
                and "override" not in line and "final" not in line:
            report(idx, "virtual-in-derived",
                   "derived-class member uses 'virtual'; say 'override' "
                   "(or lint-allow a genuinely new virtual)")

        m = BEGIN_SPAN_CALL.search(line)
        if m:
            lvalue = m.group(1)
            if lvalue is None:
                if "return" not in line:
                    report(idx, "unbalanced-span",
                           "begin_span result discarded — nothing can ever "
                           "close this span; assign the SpanId and end_span "
                           "it on every path")
            else:
                span_var = lvalue.split(".")[-1].split("->")[-1]
                if not re.search(
                        rf"end_span\s*\(\s*[\w.\[\]>-]*\b"
                        rf"{re.escape(span_var)}\b", joined):
                    report(idx, "unbalanced-span",
                           f"begin_span id '{span_var}' has no matching "
                           "end_span in this file; an unclosed span breaks "
                           "the critical-path walk")
        if BEGIN_JOB_CALL.search(line) and not END_JOB_CALL.search(joined):
            report(idx, "unbalanced-span",
                   "begin_job with no end_job anywhere in this file; the "
                   "job root span can never close")

        for name in function_names:
            if name in checked_functions:
                continue
            # Direct invocation `name(...)` that is not the declaration.
            if re.search(rf"(?<![\w.>]){name}\s*\(", line) \
                    and not DECL_FUNCTION_OBJ.search(line) \
                    and "std::function" not in line:
                report(idx, "unchecked-function-call",
                       f"std::function '{name}' invoked but never "
                       "null-checked in this file")

    return violations


def _loop_body_emits(lines, idx, max_lines=30):
    """True when the range-for starting at line idx has trace/JSON emission
    in its body (brace-balanced, or the single next statement)."""
    depth = 0
    opened = False
    for probe in range(idx, min(idx + max_lines, len(lines))):
        line = strip_noise(lines[probe])
        if EMIT_OUTPUT.search(line):
            return True
        depth += line.count("{") - line.count("}")
        opened = opened or "{" in line
        if opened and depth <= 0:
            break  # closing brace of the loop reached
        if not opened and probe > idx:
            break  # braceless loop: body is the single next line
    return False


def _skip_template(text):
    """Return text after the matching '>' of the leading 'std::unordered_x<'."""
    depth = 0
    for i, ch in enumerate(text):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return text[i + 1:]
    return text


def allowlist_entries(path):
    """Parse an allowlist into (relpath, rule, line_no) tuples — the line
    number anchors stale-suppression diagnostics on the entry itself."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" not in line:
                print(f"allowlist: malformed entry (need path:rule): {line}",
                      file=sys.stderr)
                sys.exit(2)
            rel, rule = line.rsplit(":", 1)
            entries.append((rel.strip(), rule.strip(), line_no))
    return entries


def load_allowlist(path):
    """Map relpath -> set of allowed rules."""
    allows = {}
    for rel, rule, _ in allowlist_entries(path):
        allows.setdefault(rel, set()).add(rule)
    return allows


def stale_allow_violations(allowlist_path, root, used_allows, rule_set):
    """tidy.sh's burn-down policy, ported: on a full-tree run, a file-level
    entry (for a rule in rule_set) that suppressed nothing is debt that
    outlived its finding and must be deleted."""
    rel = os.path.relpath(allowlist_path, root)
    stale = []
    for entry_rel, rule, line_no in allowlist_entries(allowlist_path):
        if rule not in rule_set:
            continue
        if (entry_rel, rule) not in used_allows:
            stale.append(Violation(
                rel, line_no, "stale-suppression",
                f"allowlist entry {entry_rel}:{rule} matched no diagnostic "
                "— delete it (suppressions must burn down, not linger)"))
    return stale


def diagnostics_json(violations):
    """The one --json schema all three analyzers share: a JSON array sorted
    by (file, line, rule)."""
    ordered = sorted(violations, key=lambda v: (v.path, v.line_no, v.rule))
    return json.dumps([{
        "file": v.path, "line": v.line_no, "rule": v.rule,
        "message": v.message,
    } for v in ordered], indent=2)


def self_test(root):
    """Lint the bundled fixture and require one hit per rule — guards the
    rules themselves against regressions."""
    fixture = os.path.join(root, "tools", "lint", "testdata",
                           "violations.cpp")
    found = lint_file(fixture, os.path.relpath(fixture, root), set(), root,
                      {})
    got = sorted({v.rule for v in found})
    want = sorted(["banned-rand", "wall-clock", "unordered-iteration",
                   "unordered-trace-emit", "virtual-in-derived",
                   "unchecked-function-call", "direct-io",
                   "schedd-full-scan", "unbalanced-span", "raw-threading"])
    ok = got == want
    # The inline-allowed std::rand at the bottom must NOT be reported twice.
    rand_hits = sum(1 for v in found if v.rule == "banned-rand")
    ok = ok and rand_hits == 1
    # The fixture's one std::mutex member is the only threading hit; the
    # rule must not fire on comment mentions of the primitives.
    threading_hits = sum(1 for v in found if v.rule == "raw-threading")
    ok = ok and threading_hits == 1
    # The plain (no-emission) unordered loop must not trip the emit rule.
    emit_hits = [v for v in found if v.rule == "unordered-trace-emit"]
    ok = ok and len(emit_hits) == 1
    # Exactly the leaked + discarded spans and the end-less begin_job must
    # trip; the balanced begin/end pair in the fixture must NOT.
    span_hits = sum(1 for v in found if v.rule == "unbalanced-span")
    ok = ok and span_hits == 3
    if not ok:
        print(f"condorg_lint self-test FAILED: rules hit {got}, "
              f"wanted {want}; banned-rand hits {rand_hits} (want 1); "
              f"unordered-trace-emit hits {len(emit_hits)} (want 1); "
              f"unbalanced-span hits {span_hits} (want 3); "
              f"raw-threading hits {threading_hits} (want 1)")
        for v in found:
            print(f"  {v}")
        return 1
    print("condorg_lint self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and tools/)")
    parser.add_argument("--allowlist", default=None,
                        help="override allowlist path "
                             "(default: tools/lint/allowlist.txt under root)")
    parser.add_argument("--json", action="store_true",
                        help="print diagnostics as a JSON array (stable "
                             "(file, line, rule) order, machine-readable)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the bundled fixture and check every rule "
                             "fires")
    parser.add_argument("paths", nargs="*",
                        help="restrict the scan to these files/dirs "
                             "(default: src/ and tools/)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(os.path.abspath(args.root))

    root = os.path.abspath(args.root)
    allowlist_path = args.allowlist or os.path.join(root, "tools", "lint",
                                                    "allowlist.txt")
    allows = load_allowlist(allowlist_path)

    scan_roots = args.paths or [os.path.join(root, "src"),
                                os.path.join(root, "tools")]
    fixture_dir = os.path.join(root, "tools", "lint", "testdata")
    files = []
    for scan in scan_roots:
        scan = os.path.join(root, scan) if not os.path.isabs(scan) else scan
        if os.path.isfile(scan):
            files.append(scan)
            continue
        for dirpath, _, names in os.walk(scan):
            if os.path.abspath(dirpath).startswith(fixture_dir):
                continue  # the fixture violates every rule by design
            for name in sorted(names):
                if name.endswith(SRC_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    files.sort()
    if not files:
        print("condorg_lint: no source files found", file=sys.stderr)
        return 2

    violations = []
    header_cache = {}
    used_allows = set()
    for path in files:
        rel = os.path.relpath(path, root)
        violations.extend(
            lint_file(path, rel, allows.get(rel, set()), root, header_cache,
                      used_allows))
    # Stale suppressions fail the gate too — but only on full-tree runs;
    # a restricted scan cannot tell "stale" from "not scanned this time".
    if not args.paths:
        violations.extend(stale_allow_violations(
            allowlist_path, root, used_allows, LINT_RULES))
    # Deterministic output order regardless of scan order: diffable across
    # runs and machines, and what the partition analyzer merges against.
    violations.sort(key=lambda v: (v.path, v.line_no, v.rule))

    if args.json:
        print(diagnostics_json(violations))
        return 1 if violations else 0

    for v in violations:
        print(v)
    if violations:
        print(f"\ncondorg_lint: {len(violations)} violation(s) in "
              f"{len(files)} files — fix, lint-allow with a reason, or "
              f"allowlist in {os.path.relpath(allowlist_path, root)}")
        return 1
    print(f"condorg_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
