// condorg_explore: schedule-space model checking from the command line.
//
//   condorg_explore --scenario quickstart                 # exhaust the DFS
//   condorg_explore --scenario quickstart --random 500    # + random phase
//   condorg_explore --scenario quickstart --dump DIR      # write CX trace
//   condorg_explore --replay DIR/counterexample.trace     # re-run one file
//   condorg_explore --list                                # scenario names
//
// Exit status: 0 when exploration finishes with no violation (or, under
// --expect-violation, when one IS found and its replay reproduces the same
// failing audit byte-for-byte); 1 on an unexpected violation or a replay
// mismatch; 2 on usage errors.
//
// --expect-violation is the mutation self-test hook: check.sh runs it with
// CONDORG_MUTATE_DEDUP=1 to prove the checker catches a broken gatekeeper
// dedup, counterexample and all.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "condorg/sim/explorer.h"
#include "condorg/util/json.h"
#include "condorg/workloads/explore_scenarios.h"

namespace {

namespace cw = condorg::workloads;
using condorg::sim::Explorer;
using condorg::sim::RunOutcome;
using condorg::sim::ScheduleTrace;

struct Options {
  std::string scenario = "quickstart";
  std::string replay_path;
  std::string dump_dir;
  std::size_t max_schedules = 200000;
  std::size_t random_runs = 0;
  std::size_t max_choice_points = 48;
  std::size_t max_branch = 3;
  std::size_t crash_budget = 1;
  std::uint64_t seed = 1;
  std::size_t require_distinct = 0;
  bool require_exhausted = false;
  bool expect_violation = false;
  bool list = false;
  bool list_crash_points = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario NAME] [--max-schedules N] [--random N]\n"
      "          [--max-choice-points N] [--max-branch N] [--crash-budget N]\n"
      "          [--seed N] [--require-distinct N] [--require-exhausted]\n"
      "          [--expect-violation] [--dump DIR]\n"
      "       %s --replay FILE [--scenario NAME]\n"
      "       %s --list | --list-crash-points\n",
      argv0, argv0, argv0);
  return 2;
}

bool parse_size(const char* text, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

void print_violations(const std::vector<std::string>& violations) {
  for (const std::string& line : violations) {
    std::printf("  violation: %s\n", line.c_str());
  }
}

int run_replay(const Options& options) {
  const auto text = condorg::util::read_text_file(options.replay_path);
  if (!text) {
    std::fprintf(stderr, "cannot read %s\n", options.replay_path.c_str());
    return 2;
  }
  ScheduleTrace trace;
  if (!ScheduleTrace::parse(*text, &trace)) {
    std::fprintf(stderr, "unparsable trace file %s\n",
                 options.replay_path.c_str());
    return 2;
  }
  const std::string name =
      trace.scenario.empty() ? options.scenario : trace.scenario;
  Explorer::Config config;  // replay ignores exploration budgets
  Explorer explorer(name, cw::make_explore_scenario(name), config);
  const RunOutcome outcome = explorer.replay(trace);
  std::printf("replayed %s: scenario=%s choices=%zu dispatched=%llu "
              "digest=%016llx\n",
              options.replay_path.c_str(), name.c_str(), trace.choices.size(),
              static_cast<unsigned long long>(outcome.dispatched),
              static_cast<unsigned long long>(outcome.trace_digest));
  print_violations(outcome.violations);
  return outcome.violations.empty() ? 0 : 1;
}

int run_explore(const Options& options) {
  Explorer::Config config;
  config.max_schedules = options.max_schedules;
  config.random_runs = options.random_runs;
  config.seed = options.seed;
  config.oracle.max_choice_points = options.max_choice_points;
  config.oracle.max_branch = options.max_branch;
  config.oracle.crash_budget = options.crash_budget;
  Explorer explorer(options.scenario,
                    cw::make_explore_scenario(options.scenario), config);
  const Explorer::Result result = explorer.explore();

  std::printf("scenario=%s runs=%zu distinct=%zu pruned=%zu exhausted=%s "
              "violation=%s\n",
              options.scenario.c_str(), result.runs,
              result.distinct_schedules, result.pruned,
              result.exhausted ? "yes" : "no",
              result.violation_found ? "FOUND" : "none");

  if (result.violation_found) {
    print_violations(result.violations);
    const std::string serialized = result.counterexample.serialize();
    if (!options.dump_dir.empty()) {
      const std::string path = options.dump_dir + "/counterexample.trace";
      if (!condorg::util::write_text_file(path, serialized)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("counterexample: %zu choices -> %s\n",
                  result.counterexample.choices.size(), path.c_str());
    }
    // A counterexample is only a counterexample if it replays: re-run it
    // and require the identical failing audit, byte for byte.
    const RunOutcome again = explorer.replay(result.counterexample);
    if (again.violations != result.violations) {
      std::fprintf(stderr, "REPLAY MISMATCH: counterexample did not "
                           "reproduce the original violations\n");
      print_violations(again.violations);
      return 1;
    }
    std::printf("counterexample replayed: identical %zu violation(s)\n",
                again.violations.size());
    return options.expect_violation ? 0 : 1;
  }

  if (options.expect_violation) {
    std::fprintf(stderr, "expected a violation but none was found\n");
    return 1;
  }
  if (options.require_exhausted && !result.exhausted) {
    std::fprintf(stderr, "schedule space not exhausted within %zu runs\n",
                 options.max_schedules);
    return 1;
  }
  if (result.distinct_schedules < options.require_distinct) {
    std::fprintf(stderr, "only %zu distinct schedules (need >= %zu)\n",
                 result.distinct_schedules, options.require_distinct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--list") == 0) {
      options.list = true;
    } else if (std::strcmp(arg, "--list-crash-points") == 0) {
      options.list_crash_points = true;
    } else if (std::strcmp(arg, "--require-exhausted") == 0) {
      options.require_exhausted = true;
    } else if (std::strcmp(arg, "--expect-violation") == 0) {
      options.expect_violation = true;
    } else if (std::strcmp(arg, "--scenario") == 0 && has_value) {
      options.scenario = argv[++i];
    } else if (std::strcmp(arg, "--replay") == 0 && has_value) {
      options.replay_path = argv[++i];
    } else if (std::strcmp(arg, "--dump") == 0 && has_value) {
      options.dump_dir = argv[++i];
    } else if (std::strcmp(arg, "--max-schedules") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.max_schedules)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--random") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.random_runs)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--max-choice-points") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.max_choice_points)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--max-branch") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.max_branch)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--crash-budget") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.crash_budget)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      std::size_t seed = 0;
      if (!parse_size(argv[++i], &seed)) return usage(argv[0]);
      options.seed = seed;
    } else if (std::strcmp(arg, "--require-distinct") == 0 && has_value) {
      if (!parse_size(argv[++i], &options.require_distinct)) {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  if (options.list) {
    for (const std::string& name : cw::explore_scenario_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (options.list_crash_points) {
    // JSON so condorg_proto.py (or any harness) can diff the built binary's
    // table against the spec without scraping the source.
    std::printf("[");
    const auto& points = condorg::sim::enumerated_crash_points();
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::printf("%s\"%s\"", i == 0 ? "" : ", ", points[i].c_str());
    }
    std::printf("]\n");
    return 0;
  }
  if (!options.replay_path.empty()) return run_replay(options);
  return run_explore(options);
}
