// F2 — behavioural validation of Fig. 2 / §5's delayed-binding claim:
// "glide-ins ... allow the Condor-G agent to delay the binding of an
// application to a resource until the instant when the remote resource
// manager decides to allocate the resource(s) to the user. By doing so,
// the Condor-G agent minimizes queuing delays by preventing a job from
// waiting at one remote resource while another resource capable of serving
// the job is available."
//
// Setup: three sites with very different (and fluctuating) local load.
// Strategy A (early binding): jobs are round-robined to sites via plain
// GRAM and wait in whatever remote queue they landed in. Strategy B (late
// binding): glide-ins are flooded to all sites; jobs are matched only when
// a glided-in slot is actually free. We compare per-job wait (submit ->
// first execution) and campaign makespan.
#include <cstdio>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cu = condorg::util;

namespace {

constexpr int kJobs = 120;
constexpr double kJobSeconds = 1800.0;

std::unique_ptr<cw::GridTestbed> make_testbed(std::uint64_t seed) {
  auto testbed = std::make_unique<cw::GridTestbed>(seed);
  struct Def {
    const char* name;
    int cpus;
    double interarrival;  // background load pressure
  };
  // One lightly loaded, one moderately loaded, one hammered site — the
  // imbalance early binding cannot see.
  for (const Def& def : {Def{"light.site.edu", 32, 2400.0},
                         Def{"busy.site.edu", 32, 480.0},
                         Def{"slammed.site.edu", 32, 120.0}}) {
    cw::SiteSpec spec;
    spec.name = def.name;
    spec.cpus = def.cpus;
    spec.background_load = true;
    spec.background.mean_interarrival_seconds = def.interarrival;
    spec.background.mean_runtime_seconds = 5400.0;
    spec.background.max_cpus_per_job = 4;
    testbed->add_site(spec);
  }
  testbed->add_submit_host("submit.wisc.edu");
  // Let the local load reach steady state before the campaign arrives —
  // the slammed site accumulates the deep queue early binding cannot see.
  testbed->world().sim().run_until(86400.0);
  return testbed;
}

struct Outcome {
  cu::Samples waits;
  double makespan = 0;
  int completed = 0;
};

Outcome measure(core::CondorGAgent& agent, cw::GridTestbed& testbed,
                const std::vector<std::uint64_t>& ids) {
  Outcome o;
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 14 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 600.0);
  }
  o.makespan = testbed.world().now();
  for (const auto id : ids) {
    const auto job = agent.query(id);
    if (job->status == core::JobStatus::kCompleted) {
      ++o.completed;
      if (job->first_execute_time >= 0) {
        o.waits.add(job->first_execute_time - job->submit_time);
      }
    }
  }
  return o;
}

Outcome run_early_binding(std::uint64_t seed) {
  auto testbed = make_testbed(seed);
  core::CondorGAgent agent(testbed->world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed->gatekeepers()));
  agent.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = kJobSeconds;
    job.notify_email = false;
    ids.push_back(agent.submit(job));
  }
  return measure(agent, *testbed, ids);
}

Outcome run_late_binding(std::uint64_t seed) {
  auto testbed = make_testbed(seed);
  core::CondorGAgent agent(testbed->world(), "submit.wisc.edu");
  core::GlideInOptions options;
  options.walltime = 12 * 3600.0;
  options.idle_timeout = 1800.0;
  options.tick_interval = 300.0;
  auto& glideins = agent.enable_glideins(options);
  for (std::size_t i = 0; i < testbed->sites().size(); ++i) {
    glideins.add_site(core::GlideInSite{
        testbed->site(i).spec.name, testbed->site(i).gatekeeper_address(),
        testbed->site(i).cluster, 32, 1});
  }
  agent.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kVanilla;
    job.runtime_seconds = kJobSeconds;
    job.notify_email = false;
    ids.push_back(agent.submit(job));
  }
  return measure(agent, *testbed, ids);
}

}  // namespace

int main() {
  std::printf(
      "F2 (Fig. 2 behaviour): early vs late binding on an imbalanced grid\n"
      "%d x 30-minute jobs; three 32-CPU sites with light/busy/slammed "
      "local load.\n", kJobs);

  cu::Table table({"strategy", "completed", "wait p50", "wait p90",
                   "wait max", "makespan"});
  const Outcome early = run_early_binding(31);
  const Outcome late = run_late_binding(31);
  cu::JsonValue strategies = cu::JsonValue::array();
  for (const auto& [name, o] :
       {std::pair<const char*, const Outcome&>{"early binding (plain GRAM)",
                                               early},
        std::pair<const char*, const Outcome&>{"late binding (GlideIn)",
                                               late}}) {
    table.add_row({name, cu::format("%d/%d", o.completed, kJobs),
                   cu::format_duration(o.waits.percentile(50)),
                   cu::format_duration(o.waits.percentile(90)),
                   cu::format_duration(o.waits.max()),
                   cu::format_duration(o.makespan)});
    cu::JsonValue row = cu::JsonValue::object();
    row["strategy"] = name;
    row["completed"] = o.completed;
    row["wait_p50_seconds"] = o.waits.percentile(50);
    row["wait_p90_seconds"] = o.waits.percentile(90);
    row["wait_max_seconds"] = o.waits.max();
    row["makespan_seconds"] = o.makespan;
    strategies.push_back(std::move(row));
  }
  std::fputs(table.render("F2: delayed binding via GlideIn").c_str(),
             stdout);
  std::printf(
      "\npaper claim preserved when late binding's tail waits (p90/max) and "
      "makespan\nbeat early binding's: no job waits at a busy site while "
      "another site is free.\n");
  cu::JsonValue report = cu::JsonValue::object();
  report["jobs"] = kJobs;
  report["strategies"] = std::move(strategies);
  const int write_rc = condorg::bench::write_report("F2", std::move(report));
  return (early.completed == kJobs && late.completed == kJobs &&
          write_rc == 0)
             ? 0
             : 1;
}
