// A2 — ablation of credential management (§4.3): long campaigns outlive
// short-lived proxies. Compare three policies over a 200-job, multi-day
// campaign with 8-hour proxies:
//   * none          — the proxy silently expires; jobs are held and stay
//                     held (the user is away), progress stops;
//   * hold + manual — the agent holds jobs and e-mails; the user refreshes
//                     (grid-proxy-init) after a 6-hour "away" delay;
//   * MyProxy       — the agent refreshes 8-hour proxies automatically
//                     from a week-long credential in the repository and
//                     re-forwards them to remote JobManagers.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/gsi/myproxy.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/grid_builder.h"
#ifdef CONDORG_AUDIT
#include "condorg/core/audit.h"
#endif

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace gsi = condorg::gsi;
namespace cu = condorg::util;

namespace {

constexpr int kJobs = 200;
constexpr double kJobSeconds = 4 * 3600.0;
constexpr double kProxyLifetime = 8 * 3600.0;
constexpr double kHorizon = 7 * 86400.0;

enum class Policy { kNone, kManual, kMyProxy };

struct Outcome {
  int completed = 0;
  std::uint64_t holds = 0;
  std::uint64_t refreshes = 0;
  std::size_t emails = 0;
  double wall_days = 0;
};

Outcome run_policy(Policy policy) {
  gsi::Pki pki((condorg::util::Rng(5)));
  gsi::CertificateAuthority ca(pki, "/CN=Globus CA");
  const gsi::Credential user =
      ca.issue(pki, "/O=UW/CN=jfrey", 0.0, 30 * 86400.0);

  // Sites enforce GSI: submissions with an expired proxy are refused, so
  // credential health gates campaign progress, exactly as in §4.3.
  cw::GridTestbed testbed(77);
  cw::SiteSpec spec;
  spec.gatekeeper.auth.pki = &pki;
  spec.gatekeeper.auth.anchors[ca.name()] = ca.public_key();
  spec.gatekeeper.auth.gridmap.add("/O=UW/CN=jfrey", "jfrey");
  spec.gatekeeper.auth.require_auth = true;
  spec.name = "pbs.anl.gov";
  spec.cpus = 16;
  testbed.add_site(spec);
  spec.name = "lsf.ncsa.edu";
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");

  gsi::MyProxyServer myproxy(testbed.world().add_host("myproxy.ncsa.edu"),
                             testbed.world().net(), pki);

  core::AgentOptions options;
  // Throttled submission (GRIDMANAGER_MAX_SUBMITTED_JOBS): jobs flow to
  // the sites in waves, so later waves genuinely depend on a live proxy.
  options.gridmanager.max_submitted_jobs = 32;
  options.credentials.scan_interval = 600.0;
  options.credentials.refresh_threshold = 1800.0;
  options.credentials.refresh_lifetime = kProxyLifetime;
  if (policy == Policy::kMyProxy) {
    options.credentials.use_myproxy = true;
    options.credentials.myproxy_server = myproxy.address();
    options.credentials.myproxy_user = "jfrey";
    options.credentials.myproxy_passphrase = "pw";
  }
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu", options);
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

#ifdef CONDORG_AUDIT
  // Audited run: §4.3's contract — an expired proxy never leaves live grid
  // jobs behind — must hold under every policy, including "no management".
  core::StandardAuditor auditor(testbed.world().sim(), /*period=*/512);
  auditor.attach_agent(agent);
  for (const auto& site : testbed.sites()) {
    auditor.attach_gatekeeper(*site->gatekeeper);
  }
  auditor.auditor().set_fail_fast(true);
#endif

  // Seed the repository with a week-long credential (myproxy-init).
  {
    gsi::MyProxyClient boot(agent.host(), testbed.world().net(),
                            "boot.myproxy");
    boot.store(myproxy.address(), "jfrey", "pw",
               user.delegate(pki, 0.0, 7 * 86400.0), [](bool) {});
    testbed.world().sim().run_until(5.0);
  }
  agent.credentials().set_credential(
      user.delegate(pki, testbed.world().now(), kProxyLifetime));

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = kJobSeconds;
    job.notify_email = false;
    ids.push_back(agent.submit(job));
  }

  // Manual policy: whenever jobs sit held for credentials, the user
  // reappears ~6 hours later and runs grid-proxy-init.
  if (policy == Policy::kManual) {
    auto watcher = std::make_shared<std::function<void()>>();
    auto* world = &testbed.world();
    // The function body must not own the shared_ptr that owns it (cycle);
    // the scheduled-event closures hold the strong references instead.
    std::weak_ptr<std::function<void()>> weak = watcher;
    *watcher = [&agent, &pki, &user, world, weak] {
      const auto self = weak.lock();
      if (!self) return;
      bool any_held = false;
      for (const auto& [id, job] : agent.schedd().jobs()) {
        if (job.status == core::JobStatus::kHeld &&
            job.hold_reason == core::CredentialManager::kHoldReason) {
          any_held = true;
          break;
        }
      }
      if (any_held) {
        world->sim().schedule_in(6 * 3600.0, [&agent, &pki, &user, world] {
          agent.credentials().set_credential(
              user.delegate(pki, world->now(), kProxyLifetime));
        });
        world->sim().schedule_in(7 * 3600.0, [self] { (*self)(); });
      } else {
        world->sim().schedule_in(1800.0, [self] { (*self)(); });
      }
    };
    testbed.world().sim().schedule_at(600.0, [watcher] { (*watcher)(); });
  }

  while (!agent.schedd().all_terminal() && testbed.world().now() < kHorizon) {
    testbed.world().sim().run_until(testbed.world().now() + 1800.0);
  }

  Outcome o;
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted) ++o.completed;
  }
  o.holds = agent.credentials().holds_issued();
  o.refreshes = agent.credentials().refreshes();
  o.emails = agent.log().emails().size();
  o.wall_days = testbed.world().now() / 86400.0;
  return o;
}

}  // namespace

int main() {
  std::printf(
      "A2: credential expiry management (§4.3)\n"
      "%d x 4h jobs on 32 CPUs (~%.1f days of work); 8-hour proxies; 7-day "
      "horizon.\n",
      kJobs, kJobs * kJobSeconds / (32 * 86400.0));

  cu::Table table({"policy", "completed", "holds", "auto-refreshes",
                   "e-mails", "wall (days)"});
  const std::pair<Policy, const char*> policies[] = {
      {Policy::kNone, "no management (user away)"},
      {Policy::kManual, "hold + e-mail + manual refresh"},
      {Policy::kMyProxy, "MyProxy auto-refresh"},
  };
  cu::JsonValue policies_json = cu::JsonValue::array();
  for (const auto& [policy, name] : policies) {
    const Outcome o = run_policy(policy);
    table.add_row({name, cu::format("%d/%d", o.completed, kJobs),
                   std::to_string(o.holds), std::to_string(o.refreshes),
                   std::to_string(o.emails),
                   cu::format("%.2f", o.wall_days)});
    cu::JsonValue row = cu::JsonValue::object();
    row["policy"] = name;
    row["completed"] = o.completed;
    row["holds"] = o.holds;
    row["refreshes"] = o.refreshes;
    row["emails"] = o.emails;
    row["wall_days"] = o.wall_days;
    policies_json.push_back(std::move(row));
  }
  std::fputs(table.render("A2: credential lifecycle ablation").c_str(),
             stdout);
  std::printf(
      "\npaper claim preserved: unmanaged campaigns stall at the first "
      "expiry; hold+e-mail\nrecovers with user-latency gaps; MyProxy keeps "
      "the campaign running hands-free.\n");
  cu::JsonValue report = cu::JsonValue::object();
  report["jobs"] = kJobs;
  report["policies"] = std::move(policies_json);
  return condorg::bench::write_report("A2", std::move(report));
}
