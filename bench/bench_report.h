// Machine-readable bench telemetry: every bench_* binary renders its
// human-readable tables as before AND drops a BENCH_<id>.json next to the
// working directory so experiment harnesses can diff runs without scraping
// stdout. The document always carries the bench id; everything else is
// bench-specific.
#pragma once

#include <cstdio>
#include <string>

#include "condorg/util/json.h"

namespace condorg::bench {

/// Write `body` (plus a "bench" id member) to BENCH_<id>.json. Returns 0 on
/// success so main() can fold it into its exit code.
inline int write_report(const std::string& id, util::JsonValue body) {
  body["bench"] = id;
  const std::string path = "BENCH_" + id + ".json";
  if (!util::write_text_file(path, body.dump() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("telemetry: %s\n", path.c_str());
  return 0;
}

}  // namespace condorg::bench
