// E1 — the paper's flagship experience (§6): a master-worker QAP
// branch-and-bound campaign across ten sites (eight Condor pools, one PBS
// cluster, one LSF supercomputer; >2,500 CPUs), delivering ~95,000 CPU-hours
// in under seven days with an average of 653 and a maximum of 1,007
// concurrently busy processors, solving ~540 billion Linear Assignment
// Problems.
//
// Reproduction: the same topology (10 sites, 2,512 authorized CPUs,
// per-site glide-in caps totalling ~1,010 — the paper's users were never
// allocated every CPU at once), a worker campaign whose per-unit durations
// are drawn from the heavy-tailed subtree-size distribution of a *real*
// QAP branch-and-bound frontier (solved in-process), and the paper's own
// implied LAP rate (95,000 CPU-hours / 540e9 LAPs = 0.633 ms per LAP) to
// convert delivered CPU time into LAPs. Workers run as vanilla jobs on
// glided-in startds with checkpointing; random site failures are injected
// throughout.
#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/sim/failure.h"
#include <map>

#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/grid_builder.h"
#include "condorg/workloads/qap.h"
#include "condorg/workloads/qap_master.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cs = condorg::sim;
namespace cu = condorg::util;

namespace {

// Paper-reported figures (§6).
constexpr double kPaperCpuHours = 95000.0;
constexpr double kPaperAvgBusy = 653.0;
constexpr double kPaperMaxBusy = 1007.0;
constexpr double kPaperDays = 7.0;
constexpr double kPaperLaps = 540e9;
// The paper's implied LAP throughput: one LAP every 0.633 ms of CPU time.
constexpr double kSecondsPerLap = kPaperCpuHours * 3600.0 / kPaperLaps;

constexpr int kWorkUnits = 6000;
constexpr double kMeanUnitSeconds = 57000.0;  // => ~95k CPU-hours total

}  // namespace

int main() {
  std::printf("E1: master-worker QAP campaign on a ten-site grid\n");

  // --- real B&B frontier: durations follow genuine subtree sizes ---
  condorg::util::Rng qap_rng(2001);
  const auto instance = cw::QapInstance::random(10, qap_rng);
  cw::QapMaster master(instance, /*branch_depth=*/2);
  std::vector<double> unit_weights;  // nodes per subtree, the real tail
  {
    double total_nodes = 0;
    while (auto unit = master.next_unit()) {
      const auto result =
          cw::solve_qap_subtree(instance, unit->prefix, unit->upper_bound);
      master.complete_unit(unit->id, result);
      unit_weights.push_back(static_cast<double>(result.nodes) + 1.0);
      total_nodes += static_cast<double>(result.nodes) + 1.0;
    }
    // Normalize to unit mean.
    for (double& w : unit_weights) {
      w *= static_cast<double>(unit_weights.size()) / total_nodes;
    }
    std::printf(
        "  frontier solved: %zu subtrees, optimum %lld, %llu real LAPs\n",
        master.total_units(), static_cast<long long>(master.incumbent()),
        static_cast<unsigned long long>(master.total_laps()));
  }

  // --- topology: 8 Condor pools + PBS + LSF, 2512 CPUs ---
  cw::GridTestbed testbed(10);
  struct SiteDef {
    const char* name;
    cw::SiteKind kind;
    int cpus;
    int glidein_cap;
  };
  const SiteDef defs[] = {
      {"condor.wisc.edu", cw::SiteKind::kCondorPool, 450, 180},
      {"condor.anl.gov", cw::SiteKind::kCondorPool, 300, 120},
      {"condor.nwu.edu", cw::SiteKind::kCondorPool, 250, 100},
      {"condor.uiowa.edu", cw::SiteKind::kCondorPool, 250, 100},
      {"condor.gatech.edu", cw::SiteKind::kCondorPool, 220, 90},
      {"condor.ucsd.edu", cw::SiteKind::kCondorPool, 200, 80},
      {"condor.unm.edu", cw::SiteKind::kCondorPool, 180, 80},
      {"condor.infn.it", cw::SiteKind::kCondorPool, 150, 60},
      {"pbs.anl.gov", cw::SiteKind::kPbs, 256, 120},
      {"lsf.ncsa.edu", cw::SiteKind::kLsf, 256, 80},
  };
  int total_cpus = 0, total_cap = 0;
  for (const auto& def : defs) {
    cw::SiteSpec spec;
    spec.name = def.name;
    spec.kind = def.kind;
    spec.cpus = def.cpus;
    // Competing local users: glide-ins queue behind them, so the number of
    // busy worker CPUs fluctuates as it did in the real run.
    spec.background_load = true;
    spec.background.mean_interarrival_seconds = 90000.0 / def.cpus;
    spec.background.mean_runtime_seconds = 7200.0;
    spec.background.max_cpus_per_job = 4;
    testbed.add_site(spec);
    total_cpus += def.cpus;
    total_cap += def.glidein_cap;
  }
  testbed.add_submit_host("master.mcs.anl.gov");

  core::AgentOptions agent_options;
  agent_options.vanilla.negotiator.cycle_period = 300.0;
  agent_options.vanilla.shadow.poll_interval = 600.0;
  core::CondorGAgent agent(testbed.world(), "master.mcs.anl.gov",
                           agent_options);
  core::GlideInOptions glidein_options;
  glidein_options.walltime = 36 * 3600.0;
  glidein_options.idle_timeout = 2 * 3600.0;
  glidein_options.advertise_period = 600.0;
  glidein_options.checkpoint_interval = 1800.0;
  glidein_options.tick_interval = 600.0;
  // Shared-pool reality: glide-in slots are reclaimed by the pools' own
  // users and owners (~65% availability), evicting our workers with
  // checkpoints — the fluctuation behind the paper's 653-average /
  // 1007-max processor counts.
  glidein_options.mean_slot_available_seconds = 7.5 * 3600.0;
  glidein_options.mean_slot_reclaimed_seconds = 3.4 * 3600.0;
  auto& glideins = agent.enable_glideins(glidein_options);
  for (std::size_t i = 0; i < testbed.sites().size(); ++i) {
    glideins.add_site(core::GlideInSite{
        testbed.site(i).spec.name, testbed.site(i).gatekeeper_address(),
        testbed.site(i).cluster, defs[i].glidein_cap, 1});
  }
  agent.start();

  // --- chaos: every site front-end crashes about twice over the week ---
  cs::FailureInjector chaos(testbed.world());
  for (const auto& def : defs) {
    cs::CrashPlan plan;
    plan.host = def.name;
    plan.mtbf_seconds = 3.5 * 86400.0;
    plan.mean_downtime_seconds = 1800.0;
    chaos.add_crash_plan(plan);
  }

  // --- the campaign: worker jobs with real-subtree-shaped durations ---
  condorg::util::Rng duration_rng = testbed.world().sim().make_rng("e1");
  std::vector<std::uint64_t> ids;
  ids.reserve(kWorkUnits);
  double total_demand_seconds = 0;
  constexpr double kMaxUnitSeconds = 86400.0;  // master splits deep subtrees
  for (int i = 0; i < kWorkUnits; ++i) {
    const double weight = unit_weights[static_cast<std::size_t>(
        duration_rng.below(unit_weights.size()))];
    double runtime = std::max(600.0, kMeanUnitSeconds * weight *
                                         duration_rng.uniform(0.6, 1.4));
    // The MW master re-partitions subtrees that are too deep; model that
    // by splitting oversized units into equal chunks (same total work).
    const int chunks =
        static_cast<int>(std::ceil(runtime / kMaxUnitSeconds));
    for (int c = 0; c < chunks; ++c) {
      core::JobDescription job;
      job.universe = core::Universe::kVanilla;
      job.runtime_seconds = runtime / chunks;
      total_demand_seconds += job.runtime_seconds;
      job.notify_email = false;
      ids.push_back(agent.submit(job));
    }
  }

  // --- run, tracking busy CPUs over time ---
  cu::TimeWeightedGauge busy(0.0);
  std::size_t running_now = 0;
  std::map<std::uint64_t, bool> running_flag;
  agent.schedd().add_queue_listener([&](const core::Job& job) {
    const bool now_running = job.status == core::JobStatus::kRunning;
    bool& was = running_flag[job.id];
    if (now_running && !was) {
      ++running_now;
    } else if (!now_running && was) {
      --running_now;
    }
    was = now_running;
    busy.set(testbed.world().now(), static_cast<double>(running_now));
  });

  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 14 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 3600.0);
    if (std::getenv("E1_TRACE") &&
        static_cast<long long>(testbed.world().now()) % 43200 == 0) {
      std::printf("  t=%5.1fd busy=%4zu glideins=%4zu pending=%4zu idle=%4zu "
                  "collector=%4zu\n",
                  testbed.world().now() / 86400.0, running_now,
                  glideins.live_glideins(), glideins.pending_glideins(),
                  agent.schedd().idle_jobs(core::Universe::kVanilla).size(),
                  agent.collector().live_count());
    }
  }
  const double wall = testbed.world().now();
  chaos.disarm();

  // --- results ---
  std::size_t completed = 0;
  double cpu_seconds = 0;
  for (const auto id : ids) {
    const auto job = agent.query(id);
    if (job->status == core::JobStatus::kCompleted) {
      ++completed;
      cpu_seconds += job->desc.runtime_seconds;
    }
  }
  const double cpu_hours = cpu_seconds / 3600.0;
  const double laps = cpu_seconds / kSecondsPerLap;

  cu::Table table({"metric", "paper (§6)", "measured", "note"});
  table.add_row({"sites", "10", "10", "8 Condor pools + PBS + LSF"});
  table.add_row({"CPUs authorized", ">2500", std::to_string(total_cpus), ""});
  table.add_row({"worker jobs completed", "~1e6 (unreported)",
                 cu::format("%zu/%zu", completed, ids.size()),
                 "independent B&B subtrees"});
  table.add_row({"CPU-hours delivered", cu::format("%.0f", kPaperCpuHours),
                 cu::format("%.0f", cpu_hours), ""});
  table.add_row({"avg busy CPUs", cu::format("%.0f", kPaperAvgBusy),
                 cu::format("%.0f", busy.average(wall)), ""});
  table.add_row({"max busy CPUs", cu::format("%.0f", kPaperMaxBusy),
                 cu::format("%.0f", busy.peak()),
                 cu::format("glide-in caps total %d", total_cap)});
  table.add_row({"wall-clock days", cu::format("< %.0f", kPaperDays),
                 cu::format("%.2f", wall / 86400.0), ""});
  table.add_row({"LAPs solved", cu::format("%.0fe9", kPaperLaps / 1e9),
                 cu::format("%.0fe9 (modelled)", laps / 1e9),
                 cu::format("at the paper's %.3f ms/LAP",
                            kSecondsPerLap * 1000)});
  table.add_row({"site crashes survived", "-",
                 std::to_string(chaos.crashes_injected()), "injected"});
  table.add_row({"evictions (ckpt+migrate)", "-",
                 std::to_string(agent.log().count(
                     core::LogEventKind::kEvicted)),
                 ""});
  table.add_row({"glide-ins launched", "-",
                 std::to_string(glideins.glideins_started()), ""});
  std::fputs(table.render("E1: QAP master-worker campaign").c_str(), stdout);

  std::printf("\ndemand submitted: %.0f CPU-hours; completion %.1f%%\n",
              total_demand_seconds / 3600.0,
              100.0 * static_cast<double>(completed) /
                  static_cast<double>(ids.size()));

  cu::JsonValue report = cu::JsonValue::object();
  report["sites"] = 10;
  report["cpus_authorized"] = total_cpus;
  report["glidein_cap_total"] = total_cap;
  report["jobs"] = ids.size();
  report["completed"] = completed;
  report["cpu_hours"] = cpu_hours;
  report["avg_busy_cpus"] = busy.average(wall);
  report["max_busy_cpus"] = busy.peak();
  report["wall_days"] = wall / 86400.0;
  report["laps_modelled"] = laps;
  report["site_crashes"] = chaos.crashes_injected();
  report["evictions"] = agent.log().count(core::LogEventKind::kEvicted);
  report["glideins_launched"] = glideins.glideins_started();
  const int write_rc = condorg::bench::write_report("E1", std::move(report));
  return completed == ids.size() && write_rc == 0 ? 0 : 1;
}
