// Per-phase latency attribution for the bench harness: re-run a bench's
// campaign shape once, untimed, with the causal tracer armed, walk the
// trace with sim::CriticalPath, and fold the aggregates into the BENCH
// JSON as a "latency_attribution" object. tools/bench_compare.py gates
// these fields alongside throughput, so a change that shifts time between
// phases (say, staging into poll-wait) fails the comparison even when the
// end-to-end makespan is unchanged.
//
// The attribution run is separate from the timed iterations on purpose:
// the tracer is armed here and disarmed there, so arming cost never
// pollutes the throughput numbers and the throughput runs never truncate
// the trace.
#pragma once

#include <string>

#include "condorg/core/agent.h"
#include "condorg/sim/critical_path.h"
#include "condorg/util/json.h"
#include "condorg/workloads/grid_builder.h"

namespace condorg::bench {

struct PhaseProfile {
  util::JsonValue json;           // the "latency_attribution" object
  double attributed_share = 0.0;  // fraction of to-ACTIVE time named
};

/// One traced submission storm: `jobs` identical grid jobs sharing one
/// executable, fanned round-robin over `sites` gatekeepers (the S1 shape;
/// smaller benches pass smaller numbers). Deterministic for a fixed seed.
inline PhaseProfile profile_storm(std::uint64_t seed, int jobs, int sites,
                                  int cpus_per_site, double runtime_seconds,
                                  std::uint64_t exe_bytes) {
  workloads::GridTestbed testbed(seed);
  for (int s = 0; s < sites; ++s) {
    workloads::SiteSpec spec;
    spec.name = "site" + std::to_string(s) + ".grid.org";
    spec.cpus = cpus_per_site;
    testbed.add_site(spec);
  }
  testbed.add_submit_host("submit.wisc.edu");
  testbed.world().sim().tracer().set_enabled(true);

  core::AgentOptions options;
  options.gridmanager.staged_content_bytes = exe_bytes;
  options.gridmanager.max_pending_per_site = 128;
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu", options);
  agent.start();
  for (int i = 0; i < jobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "sweep.bin";
    job.executable_size = exe_bytes;
    job.runtime_seconds = runtime_seconds;
    job.grid_site =
        testbed.site(static_cast<std::size_t>(i % sites)).spec.name;
    job.notify_email = false;
    agent.submit(job);
  }
  sim::Simulation& sim = testbed.world().sim();
  while (!agent.schedd().all_terminal() && sim.now() < 400000.0) {
    sim.run_until(sim.now() + 3600.0);
  }

  const sim::CriticalPath path(sim.tracer().records());
  PhaseProfile out;
  out.attributed_share = path.attributed_share();
  util::JsonValue json = util::JsonValue::object();
  json["jobs"] = static_cast<std::uint64_t>(path.jobs_seen());
  json["reached_active"] =
      static_cast<std::uint64_t>(path.to_active().size());
  json["mean_time_to_active_seconds"] = path.mean_time_to_active();
  json["attributed_share"] = path.attributed_share();
  util::JsonValue p99 = util::JsonValue::object();
  for (const auto& [phase, seconds] : path.phase_p99_to_active()) {
    p99[phase] = seconds;
  }
  json["phase_p99_seconds"] = std::move(p99);
  out.json = std::move(json);
  return out;
}

}  // namespace condorg::bench
