// F1 — behavioural validation of Fig. 1 and §4.2: the remote-execution
// chain (Schedd -> GridManager -> Gatekeeper -> JobManager -> local
// scheduler) with persistent queues must tolerate all four failure types
// while preserving exactly-once execution:
//   F1 crash of the Globus JobManager (process only),
//   F2 crash of the machine that manages the remote resource,
//   F3 crash of the machine running the GridManager (submit machine),
//   F4 failures in the network connecting the two.
//
// Each scenario injects its failure repeatedly during a 40-job campaign;
// we count completions, duplicate executions (must be 0), lost jobs (must
// be 0), and recovery machinery activity.
#include <cstdio>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/failure.h"
#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cs = condorg::sim;
namespace cu = condorg::util;

namespace {

constexpr int kJobs = 40;

struct Outcome {
  int completed = 0;
  int duplicates = 0;
  int lost = 0;
  std::uint64_t jm_restarts = 0;
  std::size_t jm_lost_events = 0;
  double wall_hours = 0;
  std::size_t incidents = 0;
  /// recovery.begin -> recovery.end windows from the trace (seconds).
  cu::Samples recovery;
};

enum class Failure { kNone, kF1, kF2, kF3, kF4 };

Outcome run_scenario(Failure failure, std::uint64_t seed) {
  cw::GridTestbed testbed(seed);
  // Recovery latency comes from the trace's recovery.begin/end pairs, so
  // tracing must be on before any daemon exists.
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 24;
  testbed.add_site(spec);
  spec.name = "lsf.ncsa.edu";
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");

  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 2.0 * 3600.0;
    job.notify_email = false;
    ids.push_back(agent.submit(job));
  }

  cs::FailureInjector chaos(testbed.world());
  std::size_t f1_kills = 0;
  switch (failure) {
    case Failure::kNone:
      break;
    case Failure::kF1: {
      // Kill a random live JobManager process every ~20 minutes.
      condorg::util::Rng rng = testbed.world().sim().make_rng("f1");
      auto killer = std::make_shared<std::function<void()>>();
      auto* world = &testbed.world();
      *killer = [&agent, &testbed, &f1_kills, rng, killer, world]() mutable {
        std::vector<std::pair<int, std::string>> live;
        for (const auto& [id, job] : agent.schedd().jobs()) {
          if (job.status == core::JobStatus::kRunning &&
              !job.gram_contact.empty()) {
            live.emplace_back(job.gram_site == "pbs.anl.gov" ? 0 : 1,
                              job.gram_contact);
          }
        }
        if (!live.empty()) {
          const auto& [site, contact] =
              live[rng.below(live.size())];
          if (testbed.site(static_cast<std::size_t>(site))
                  .gatekeeper->kill_jobmanager(contact)) {
            ++f1_kills;
          }
        }
        world->sim().schedule_in(1200.0, [killer] { (*killer)(); });
      };
      world->sim().schedule_at(1800.0, [killer] { (*killer)(); });
      break;
    }
    case Failure::kF2: {
      cs::CrashPlan plan;
      plan.host = "pbs.anl.gov";
      plan.mtbf_seconds = 2.0 * 3600.0;
      plan.mean_downtime_seconds = 900.0;
      chaos.add_crash_plan(plan);
      plan.host = "lsf.ncsa.edu";
      chaos.add_crash_plan(plan);
      break;
    }
    case Failure::kF3: {
      cs::CrashPlan plan;
      plan.host = "submit.wisc.edu";
      plan.mtbf_seconds = 3.0 * 3600.0;
      plan.mean_downtime_seconds = 600.0;
      chaos.add_crash_plan(plan);
      break;
    }
    case Failure::kF4: {
      cs::PartitionPlan plan;
      plan.host_a = "submit.wisc.edu";
      plan.host_b = "pbs.anl.gov";
      plan.mtbf_seconds = 2.0 * 3600.0;
      plan.mean_duration_seconds = 1200.0;
      chaos.add_partition_plan(plan);
      plan.host_b = "lsf.ncsa.edu";
      chaos.add_partition_plan(plan);
      break;
    }
  }

  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 6 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 1800.0);
  }
  chaos.disarm();

  Outcome outcome;
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted) {
      ++outcome.completed;
    }
  }
  // Count *successful* executions at the sites; a job may have failed
  // attempts (walltime kill, cancel) but must SUCCEED exactly once.
  std::size_t successes = 0;
  for (const auto& site : testbed.sites()) {
    for (const auto& record : site->scheduler->history()) {
      if (record.state == condorg::batch::JobState::kCompleted) ++successes;
    }
  }
  outcome.duplicates =
      static_cast<int>(successes) - outcome.completed > 0
          ? static_cast<int>(successes) - outcome.completed
          : 0;
  outcome.lost = kJobs - outcome.completed;
  outcome.jm_restarts = agent.gridmanager().jobmanager_restarts();
  outcome.jm_lost_events =
      agent.log().count(core::LogEventKind::kJobManagerLost);
  outcome.wall_hours = testbed.world().now() / 3600.0;
  outcome.incidents = failure == Failure::kF1
                          ? f1_kills
                          : chaos.crashes_injected() +
                                chaos.partitions_injected();
  for (const double latency : testbed.world().sim().tracer().
           paired_event_latencies("recovery.begin", "recovery.end")) {
    outcome.recovery.add(latency);
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "F1 (Fig. 1 behaviour): four failure types vs exactly-once execution\n"
      "%d jobs x 2 CPU-hours across two sites per scenario.\n", kJobs);

  const std::pair<Failure, const char*> scenarios[] = {
      {Failure::kNone, "baseline (no failures)"},
      {Failure::kF1, "F1: JobManager process crashes"},
      {Failure::kF2, "F2: site front-end crashes"},
      {Failure::kF3, "F3: submit machine crashes"},
      {Failure::kF4, "F4: network partitions"},
  };
  cu::Table table({"scenario", "incidents", "completed", "duplicates",
                   "lost", "JM restarts", "recovery p50/p99 (s)",
                   "wall (h)"});
  bool all_ok = true;
  cu::JsonValue scenarios_json = cu::JsonValue::array();
  for (const auto& [failure, name] : scenarios) {
    const Outcome o = run_scenario(failure, 5150);
    const std::string recovery_cell =
        o.recovery.empty()
            ? "-"
            : cu::format("%.0f / %.0f", o.recovery.percentile(50),
                         o.recovery.percentile(99));
    table.add_row({name, std::to_string(o.incidents),
                   cu::format("%d/%d", o.completed, kJobs),
                   std::to_string(o.duplicates), std::to_string(o.lost),
                   std::to_string(o.jm_restarts), recovery_cell,
                   cu::format("%.1f", o.wall_hours)});
    all_ok = all_ok && o.completed == kJobs && o.duplicates == 0;

    cu::JsonValue row = cu::JsonValue::object();
    row["scenario"] = name;
    row["incidents"] = o.incidents;
    row["completed"] = o.completed;
    row["duplicates"] = o.duplicates;
    row["lost"] = o.lost;
    row["jm_restarts"] = o.jm_restarts;
    row["wall_hours"] = o.wall_hours;
    cu::JsonValue recovery = cu::JsonValue::object();
    recovery["windows"] = o.recovery.count();
    if (!o.recovery.empty()) {
      recovery["p50_seconds"] = o.recovery.percentile(50);
      recovery["p99_seconds"] = o.recovery.percentile(99);
      recovery["max_seconds"] = o.recovery.max();
    }
    row["recovery"] = std::move(recovery);
    scenarios_json.push_back(std::move(row));
  }
  std::fputs(table.render("F1: fault-tolerance matrix").c_str(), stdout);
  std::printf("\n%s\n", all_ok
                            ? "paper claim preserved: every failure type "
                              "recovered; 0 duplicates, 0 lost."
                            : "VIOLATION: duplicates or losses detected!");
  cu::JsonValue report = cu::JsonValue::object();
  report["jobs_per_scenario"] = kJobs;
  report["all_ok"] = all_ok;
  report["scenarios"] = std::move(scenarios_json);
  const int write_rc = condorg::bench::write_report("F1", std::move(report));
  return all_ok && write_rc == 0 ? 0 : 1;
}
