// M1 — implementation microbenchmarks (google-benchmark): the hot paths of
// the reproduction. Not a paper table; included so performance regressions
// in the substrate are visible.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "condorg/batch/fifo_scheduler.h"
#include "condorg/classad/parser.h"
#include "condorg/condor/negotiator.h"
#include "condorg/gram/client.h"
#include "condorg/gram/gatekeeper.h"
#include "condorg/gass/file_service.h"
#include "condorg/sim/rpc.h"
#include "condorg/sim/world.h"
#include "condorg/workloads/hungarian.h"
#include "condorg/workloads/qap.h"

namespace ca = condorg::classad;
namespace cs = condorg::sim;
namespace cc = condorg::condor;
namespace cw = condorg::workloads;

namespace {

void BM_SimEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    cs::Simulation sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimEventDispatch)->Arg(1000)->Arg(100000);

void BM_ClassAdParse(benchmark::State& state) {
  const std::string text =
      "[Requirements = other.Memory >= ImageSize && "
      "stringListMember(\"X86_64\", other.ArchList); Rank = other.FreeCpus "
      "* 10 - other.QueueLength; ImageSize = 128; Owner = \"jfrey\"]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca::parse_ad(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassAdParse);

void BM_ClassAdMatch(benchmark::State& state) {
  const ca::ClassAd job = ca::parse_ad(
      "[ImageSize = 128; Requirements = other.Memory >= ImageSize && "
      "other.Arch == \"X86_64\"; Rank = other.Kflops]");
  const ca::ClassAd machine = ca::parse_ad(
      "[Memory = 512; Arch = \"X86_64\"; Kflops = 40000; Requirements = "
      "other.ImageSize < Memory]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca::symmetric_match(job, machine));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassAdMatch);

void BM_Matchmaking(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<cc::IdleJob> jobs;
  std::vector<ca::ClassAd> slots;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back({std::to_string(i),
                    ca::parse_ad("[Requirements = other.Memory >= 128; Rank "
                                 "= other.Memory]")});
    slots.push_back(ca::parse_ad(
        "[Name = \"s" + std::to_string(i) + "\"; Memory = " +
        std::to_string(128 + (i % 8) * 64) + "; State = \"Unclaimed\"]"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::match_jobs_to_slots(jobs, slots));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Matchmaking)->Arg(16)->Arg(128);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  condorg::util::Rng rng(7);
  cw::CostMatrix cost(n, std::vector<std::int64_t>(n));
  for (auto& row : cost) {
    for (auto& cell : row) cell = rng.range(0, 1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::solve_assignment(cost));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hungarian)->Arg(10)->Arg(30)->Arg(60);

void BM_GilmoreLawlerBound(benchmark::State& state) {
  condorg::util::Rng rng(11);
  const auto instance =
      cw::QapInstance::random(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::gilmore_lawler_bound(instance, {0, 1}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GilmoreLawlerBound)->Arg(10)->Arg(14);

void BM_RpcRoundTrip(benchmark::State& state) {
  cs::World world;
  cs::Host& client_host = world.add_host("a");
  cs::Host& server_host = world.add_host("b");
  server_host.register_service("echo", [&](const cs::Message& m) {
    cs::rpc_reply(world.net(), m, {"b", "echo"}, cs::Payload{});
  });
  cs::RpcClient rpc(client_host, world.net(), "cli");
  for (auto _ : state) {
    bool done = false;
    rpc.call({"b", "echo"}, "echo", {}, 30.0,
             [&done](bool, const cs::Payload&) { done = true; });
    world.sim().run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcRoundTrip);

void BM_GramSubmitPipeline(benchmark::State& state) {
  for (auto _ : state) {
    cs::World world;
    cs::Host& submit = world.add_host("submit");
    world.add_host("site");
    condorg::batch::FifoScheduler cluster(world.sim(), "site", 256);
    condorg::gram::Gatekeeper gatekeeper(world.host("site"), world.net(),
                                         cluster);
    condorg::gass::FileService gass(submit, world.net(), "gass");
    gass.store().put("exe", "x");
    condorg::gram::GramClient client(submit, world.net(), "bench");
    int done = 0;
    for (int i = 0; i < 32; ++i) {
      condorg::gram::GramJobSpec spec;
      spec.executable = "exe";
      spec.output = "";
      spec.gass_url = gass.address().str();
      spec.runtime_seconds = 10.0;
      client.submit(gatekeeper.address(), spec, {"submit", "cb"},
                    [&done](std::optional<std::string> c) { done += !!c; });
    }
    world.sim().run_until(10000.0);
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_GramSubmitPipeline);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    cs::Simulation sim;
    condorg::batch::FifoScheduler pbs(sim, "pbs", 64);
    for (int i = 0; i < 2000; ++i) {
      condorg::batch::JobRequest request;
      request.runtime_seconds = 100.0;
      pbs.submit(std::move(request));
    }
    sim.run();
    benchmark::DoNotOptimize(pbs.history().size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SchedulerThroughput);

// Console output as usual, but every run is also captured so main() can
// drop the machine-readable BENCH_M1.json alongside.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    namespace cu = condorg::util;
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      cu::JsonValue row = cu::JsonValue::object();
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<double>(run.iterations);
      row["real_time_ns"] = run.GetAdjustedRealTime();
      row["cpu_time_ns"] = run.GetAdjustedCPUTime();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row["items_per_second"] = static_cast<double>(items->second);
      }
      results.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<condorg::util::JsonValue> results;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  namespace cu = condorg::util;
  cu::JsonValue benchmarks = cu::JsonValue::array();
  for (cu::JsonValue& row : reporter.results) {
    benchmarks.push_back(std::move(row));
  }
  cu::JsonValue report = cu::JsonValue::object();
  report["benchmarks"] = std::move(benchmarks);
  return condorg::bench::write_report("M1", std::move(report));
}
