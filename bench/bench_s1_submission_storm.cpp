// S1 — submission-pipeline throughput (google-benchmark): a burst of N
// identical jobs fanned across 8 gatekeepers, timed end-to-end (burst
// submitted at t=0 until the queue is all-terminal). The production path
// stages one content-addressed executable per site (the per-site GASS
// cache coalesces the rest), reads idle jobs off the Schedd's secondary
// indexes, and pipelines at most max_pending_per_site submissions per
// gatekeeper. The retained reference path re-stages "exe/<id>" per job,
// scans the whole queue each tick, and floods every idle job at its site
// at once — the pre-optimization behaviour bench_compare.py measures the
// speedup against.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_phase_profile.h"
#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/sim/det.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cu = condorg::util;

namespace {

constexpr int kSites = 8;
constexpr int kCpusPerSite = 64;
constexpr std::uint64_t kContentBytes = 256 * 1024;
constexpr double kHorizon = 400000.0;

struct StormResult {
  std::size_t completed = 0;
  std::uint64_t exe_transfers = 0;   // GASS gets served by the submit side
  std::uint64_t bytes_served = 0;
  double makespan = 0;               // sim seconds to drain the burst
};

StormResult run_storm(int jobs, bool reference) {
  cw::GridTestbed testbed(42);
  for (int s = 0; s < kSites; ++s) {
    cw::SiteSpec spec;
    spec.name = "site" + std::to_string(s) + ".grid.org";
    spec.cpus = kCpusPerSite;
    testbed.add_site(spec);
  }
  testbed.add_submit_host("submit.wisc.edu");

  core::AgentOptions options;
  options.gridmanager.staged_content_bytes = kContentBytes;
  options.gridmanager.reference_submit_path = reference;
  if (!reference) options.gridmanager.max_pending_per_site = 128;
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu", options);
  agent.start();

  // One executable shared by the whole burst, fixed sites round-robin:
  // the shape a parameter sweep produces and the staging cache exists for.
  for (int i = 0; i < jobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "sweep.bin";
    job.executable_size = kContentBytes;
    job.runtime_seconds = 300.0;
    job.grid_site = testbed.site(static_cast<std::size_t>(i % kSites))
                        .spec.name;
    job.notify_email = false;
    agent.submit(job);
  }

  condorg::sim::Simulation& sim = testbed.world().sim();
  while (!agent.schedd().all_terminal() && sim.now() < kHorizon) {
    sim.run_until(sim.now() + 3600.0);
  }

  StormResult result;
  result.completed = agent.schedd().count(core::JobStatus::kCompleted);
  result.exe_transfers = agent.gridmanager().gass().gets_served();
  result.bytes_served = agent.gridmanager().gass().bytes_served();
  result.makespan = sim.now();
  return result;
}

void run_bench(benchmark::State& state, int jobs, bool reference) {
  StormResult result;
  for (auto _ : state) {
    result = run_storm(jobs, reference);
    benchmark::DoNotOptimize(result.completed);
  }
  if (result.completed != static_cast<std::size_t>(jobs)) {
    const std::string why = "burst did not drain: " +
                            std::to_string(result.completed) + "/" +
                            std::to_string(jobs);
    state.SkipWithError(why.c_str());
    return;
  }
  state.SetItemsProcessed(state.iterations() * jobs);
  state.counters["exe_transfers"] =
      static_cast<double>(result.exe_transfers);
  state.counters["gass_bytes_served"] =
      static_cast<double>(result.bytes_served);
  state.counters["sim_makespan_seconds"] = result.makespan;
}

// Console output as usual, but every run is also captured so main() can
// drop the machine-readable BENCH_S1.json alongside.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      cu::JsonValue row = cu::JsonValue::object();
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<double>(run.iterations);
      row["real_time_ns"] = run.GetAdjustedRealTime();
      row["cpu_time_ns"] = run.GetAdjustedCPUTime();
      for (const char* counter :
           {"items_per_second", "exe_transfers", "gass_bytes_served",
            "sim_makespan_seconds"}) {
        const auto it = run.counters.find(counter);
        if (it != run.counters.end()) {
          row[counter] = static_cast<double>(it->second);
        }
      }
      results.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<cu::JsonValue> results;
};

}  // namespace

int main(int argc, char** argv) {
  for (const auto& [jobs, tag] :
       {std::pair<int, const char*>{1000, "1000x8sites"},
        std::pair<int, const char*>{10000, "10000x8sites"}}) {
    const int n = jobs;
    benchmark::RegisterBenchmark(
        (std::string("BM_SubmissionStorm/") + tag).c_str(),
        [n](benchmark::State& state) { run_bench(state, n, false); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("BM_SubmissionStormReference/") + tag).c_str(),
        [n](benchmark::State& state) { run_bench(state, n, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  cu::JsonValue benchmarks = cu::JsonValue::array();
  for (cu::JsonValue& row : reporter.results) {
    benchmarks.push_back(std::move(row));
  }
  cu::JsonValue report = cu::JsonValue::object();
  report["benchmarks"] = std::move(benchmarks);

  // Untimed re-run of the 10k x 8 storm with the causal tracer armed:
  // per-phase p99 time-to-ACTIVE for bench_compare.py to gate. The walk
  // must attribute >= 95% of time-to-ACTIVE to named phases — an eroding
  // share means daemons stopped stamping the records the walker needs.
  condorg::bench::PhaseProfile profile = condorg::bench::profile_storm(
      42, 10000, kSites, kCpusPerSite, 300.0, kContentBytes);
  report["latency_attribution"] = std::move(profile.json);
  if (profile.attributed_share < 0.95) {
    std::fprintf(stderr,
                 "latency attribution degraded: %.4f of time-to-ACTIVE "
                 "named (need >= 0.95)\n",
                 profile.attributed_share);
    return 5;
  }

  if (condorg::det::report("bench_s1") > 0) return 4;
  return condorg::bench::write_report("S1", std::move(report));
}
