// M2 — matchmaking throughput (google-benchmark): the Negotiator's
// match_jobs_to_slots over synthetic pools of 100 / 1k / 10k slot ads and
// 100 / 1k job ads, reported as candidate pairs per second plus a
// matches-made rate. The reference (pre-optimization) matcher runs the same
// grids so tools/bench_compare.py can show the prefilter speedup.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_phase_profile.h"
#include "bench_report.h"
#include "condorg/classad/parser.h"
#include "condorg/condor/negotiator.h"
#include "condorg/util/rng.h"

namespace ca = condorg::classad;
namespace cc = condorg::condor;
namespace cu = condorg::util;

namespace {

// A heterogeneous pool: four architectures, a spread of memory sizes and
// speeds. Roughly 3/4 of the slots fail a job's Arch conjunct and more fail
// the Memory bound — the share the prefilter can reject without running the
// full evaluator, mirroring a real multi-institutional pool where most
// resources are ineligible for any given job.
std::vector<cc::Collector::AdPtr> make_slots(std::size_t n) {
  static const char* kArchs[] = {"X86_64", "INTEL", "PPC", "SUN4u"};
  cu::Rng rng(101);
  std::vector<cc::Collector::AdPtr> slots;
  slots.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string arch = kArchs[rng.below(4)];
    const std::int64_t memory = 128 << rng.below(5);  // 128..2048
    const std::int64_t mips = rng.range(100, 4000);
    slots.push_back(std::make_shared<const ca::ClassAd>(ca::parse_ad(
        "[Name = \"slot" + std::to_string(i) + "\"; Arch = \"" + arch +
        "\"; Memory = " + std::to_string(memory) +
        "; Mips = " + std::to_string(mips) +
        "; State = \"Unclaimed\"; Requirements = other.ImageSize <= Memory]")));
  }
  return slots;
}

std::vector<cc::IdleJob> make_jobs(std::size_t n) {
  cu::Rng rng(202);
  std::vector<cc::IdleJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t image = 64 << rng.below(4);  // 64..512
    const std::int64_t min_memory = 128 << rng.below(4);
    jobs.push_back(
        {std::to_string(i),
         ca::parse_ad("[ImageSize = " + std::to_string(image) +
                      "; Requirements = other.Arch == \"X86_64\" && "
                      "other.Memory >= " + std::to_string(min_memory) +
                      "; Rank = other.Mips]")});
  }
  return jobs;
}

void run_matcher(benchmark::State& state, bool reference) {
  const auto n_slots = static_cast<std::size_t>(state.range(0));
  const auto n_jobs = static_cast<std::size_t>(state.range(1));
  const std::vector<cc::Collector::AdPtr> slots = make_slots(n_slots);
  const std::vector<cc::IdleJob> jobs = make_jobs(n_jobs);
  std::size_t matches = 0;
  for (auto _ : state) {
    const std::vector<cc::Match> result =
        reference ? cc::match_jobs_to_slots_reference(jobs, slots)
                  : cc::match_jobs_to_slots(jobs, slots);
    matches = result.size();
    benchmark::DoNotOptimize(matches);
  }
  // Candidate pairs examined per second; matches made per second alongside.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_slots * n_jobs));
  state.counters["matches_per_second"] = benchmark::Counter(
      static_cast<double>(matches) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Matcher(benchmark::State& state) { run_matcher(state, false); }
BENCHMARK(BM_Matcher)
    ->Args({100, 100})
    ->Args({1000, 100})
    ->Args({10000, 100})
    ->Args({100, 1000})
    ->Args({1000, 1000})
    ->Args({10000, 1000});

void BM_MatcherReference(benchmark::State& state) { run_matcher(state, true); }
BENCHMARK(BM_MatcherReference)
    ->Args({100, 100})
    ->Args({1000, 100})
    ->Args({10000, 100})
    ->Args({100, 1000})
    ->Args({1000, 1000})
    ->Args({10000, 1000});

// Console output as usual, but every run is also captured so main() can
// drop the machine-readable BENCH_M2.json alongside.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      cu::JsonValue row = cu::JsonValue::object();
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<double>(run.iterations);
      row["real_time_ns"] = run.GetAdjustedRealTime();
      row["cpu_time_ns"] = run.GetAdjustedCPUTime();
      for (const char* counter : {"items_per_second", "matches_per_second"}) {
        const auto it = run.counters.find(counter);
        if (it != run.counters.end()) {
          row[counter] = static_cast<double>(it->second);
        }
      }
      results.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<cu::JsonValue> results;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  cu::JsonValue benchmarks = cu::JsonValue::array();
  for (cu::JsonValue& row : reporter.results) {
    benchmarks.push_back(std::move(row));
  }
  cu::JsonValue report = cu::JsonValue::object();
  report["benchmarks"] = std::move(benchmarks);

  // Matchmaking itself has no GRAM pipeline, so the latency-attribution
  // fields come from one small traced grid campaign (2 sites x 16 cpus,
  // 200 jobs) — enough signal for bench_compare.py to catch a phase-level
  // latency regression without turning M2 into a second S1.
  condorg::bench::PhaseProfile profile =
      condorg::bench::profile_storm(42, 200, 2, 16, 300.0, 1 << 20);
  report["latency_attribution"] = std::move(profile.json);

  return condorg::bench::write_report("M2", std::move(report));
}
