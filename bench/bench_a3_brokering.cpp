// A3 — ablation of resource brokering (§4.4): "A more sophisticated
// approach is to construct a personal resource broker ... combines
// information about user authorization, application requirements and
// resource status (obtained from MDS) to build a list of candidate
// resources ... ranked by user preferences."
//
// Six heterogeneous sites (different sizes, background loads, walltime
// caps). 150 jobs whose walltime needs exceed two sites' caps. Strategies:
//   * static round-robin over the user-supplied list (the paper's "simple
//     approach ... good starting point"),
//   * uniform random,
//   * MDS + ClassAd matchmaking (Requirements filter out short-walltime
//     sites; Rank prefers idle CPUs and short queues).
#include <cstdio>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cu = condorg::util;

namespace {

constexpr int kJobs = 150;
constexpr double kJobSeconds = 3600.0;  // jobs need 1 hour

struct Outcome {
  int completed = 0;
  std::size_t walltime_kills = 0;  // mismatches: sent to a capped site
  std::uint64_t resubmissions = 0;
  double makespan_hours = 0;
  cu::Samples waits;
};

enum class Strategy { kStatic, kRandom, kMds };

Outcome run_strategy(Strategy strategy) {
  cw::GridTestbed testbed(4242);
  struct Def {
    const char* name;
    int cpus;
    double max_walltime;
    double interarrival;
  };
  // Two sites cap walltime below the jobs' needs: a blind broker keeps
  // feeding them jobs that get killed.
  const Def defs[] = {
      {"big.lightly.edu", 48, 1e18, 1800.0},
      {"mid.busy.edu", 32, 1e18, 300.0},
      {"small.idle.edu", 16, 1e18, 3600.0},
      {"short.queue.gov", 32, 1800.0, 900.0},   // 30-min cap: mismatch
      {"shorter.site.gov", 24, 900.0, 900.0},   // 15-min cap: mismatch
      {"tiny.slow.org", 8, 1e18, 1200.0},
  };
  for (const Def& def : defs) {
    cw::SiteSpec spec;
    spec.name = def.name;
    spec.cpus = def.cpus;
    spec.max_walltime = def.max_walltime;
    spec.background_load = true;
    spec.background.mean_interarrival_seconds = def.interarrival;
    spec.background.mean_runtime_seconds = 3600.0;
    testbed.add_site(spec);
  }
  testbed.enable_mds("giis.grid.org");
  testbed.add_submit_host("submit.wisc.edu");

  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  std::unique_ptr<core::MdsBroker> broker;
  switch (strategy) {
    case Strategy::kStatic:
      agent.set_site_chooser(
          core::make_static_chooser(testbed.gatekeepers()));
      break;
    case Strategy::kRandom:
      agent.set_site_chooser(core::make_random_chooser(
          testbed.gatekeepers(), condorg::util::Rng(9)));
      break;
    case Strategy::kMds:
      broker = std::make_unique<core::MdsBroker>(
          agent.host(), testbed.world().net(),
          condorg::sim::Address{"giis.grid.org",
                                condorg::mds::GiisServer::kService});
      agent.set_site_chooser(broker->chooser());
      break;
  }
  agent.start();
  testbed.world().sim().run_until(400.0);  // let MDS ads register

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = kJobSeconds;
    job.walltime_limit = kJobSeconds * 1.5;
    job.notify_email = false;
    // The broker-visible constraints: enough walltime, prefer free CPUs
    // over deep queues.
    job.ad.insert_expr("Requirements",
                       "other.MaxWalltime >= 5400.0 && other.FreeCpus >= 0");
    job.ad.insert_expr("Rank", "other.FreeCpus * 10 - other.QueueLength");
    ids.push_back(agent.submit(job));
  }

  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 10 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 900.0);
  }

  Outcome o;
  for (const auto id : ids) {
    const auto job = agent.query(id);
    if (job->status == core::JobStatus::kCompleted) {
      ++o.completed;
      if (job->first_execute_time >= 0) {
        o.waits.add(job->first_execute_time - job->submit_time);
      }
    }
  }
  for (const auto& site : testbed.sites()) {
    for (const auto& record : site->scheduler->history()) {
      if (record.state == condorg::batch::JobState::kWalltimeExceeded &&
          record.request.owner == "gram") {
        ++o.walltime_kills;
      }
    }
  }
  o.resubmissions = agent.gridmanager().resubmissions();
  o.makespan_hours = testbed.world().now() / 3600.0;
  return o;
}

}  // namespace

int main() {
  std::printf(
      "A3: resource brokering strategies (§4.4)\n"
      "%d x 1h jobs over six heterogeneous sites; two sites silently kill "
      "jobs at their walltime cap.\n", kJobs);

  cu::Table table({"broker", "completed", "walltime kills", "resubmits",
                   "wait p50", "makespan (h)"});
  const std::pair<Strategy, const char*> strategies[] = {
      {Strategy::kStatic, "static list (round-robin)"},
      {Strategy::kRandom, "uniform random"},
      {Strategy::kMds, "MDS + Matchmaking"},
  };
  cu::JsonValue strategies_json = cu::JsonValue::array();
  for (const auto& [strategy, name] : strategies) {
    const Outcome o = run_strategy(strategy);
    table.add_row({name, cu::format("%d/%d", o.completed, kJobs),
                   std::to_string(o.walltime_kills),
                   std::to_string(o.resubmissions),
                   cu::format_duration(o.waits.percentile(50)),
                   cu::format("%.1f", o.makespan_hours)});
    cu::JsonValue row = cu::JsonValue::object();
    row["broker"] = name;
    row["completed"] = o.completed;
    row["walltime_kills"] = o.walltime_kills;
    row["resubmissions"] = o.resubmissions;
    row["wait_p50_seconds"] = o.waits.percentile(50);
    row["makespan_hours"] = o.makespan_hours;
    strategies_json.push_back(std::move(row));
  }
  std::fputs(table.render("A3: brokering ablation").c_str(), stdout);
  std::printf(
      "\npaper claim preserved: the MDS+Matchmaking broker avoids the "
      "capped sites entirely\n(zero walltime kills) and finishes sooner; "
      "blind strategies burn attempts on mismatches.\n");
  cu::JsonValue report = cu::JsonValue::object();
  report["jobs"] = kJobs;
  report["strategies"] = std::move(strategies_json);
  return condorg::bench::write_report("A3", std::move(report));
}
