// K1 — island-kernel scaling: one grid campaign (8 sites, one agent, a
// 1200-job burst) run to completion under the legacy kernel and under the
// island kernel at CONDORG_PARALLEL ∈ {1, 2, 4, 8}. Reports per-N wall
// time, speedup vs the 1-thread island run, the kernel trace digest, and
// per-island execution stats.
//
// Two gates ride on BENCH_K1.json (tools/bench_compare.py):
//   * digest equality — every island-mode run must produce the identical
//     trace digest whatever N is; a mismatch fails this binary directly
//     (exit 6) AND the comparator, so it cannot slip through a skipped
//     bench stage;
//   * a speedup floor — 8-way must reach >= 3x over 1-way, enforced only
//     when the machine actually has >= 8 hardware threads (recorded in the
//     report as speedup_floor_enforced); a 1-core CI box records the
//     numbers without pretending they mean anything.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/sim/det.h"
#include "condorg/sim/world.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cu = condorg::util;
namespace sim = condorg::sim;

namespace {

constexpr int kSites = 8;
constexpr int kCpusPerSite = 32;
constexpr int kJobs = 1200;
constexpr double kHorizon = 200000.0;
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};
constexpr double kSpeedupFloor = 3.0;

struct ScaleRun {
  int threads = -1;  // -1 = legacy kernel
  std::uint64_t wall_ns = 0;
  std::uint64_t digest = 0;
  std::uint64_t dispatched = 0;
  std::size_t completed = 0;
  std::vector<sim::Simulation::IslandStat> stats;
};

ScaleRun run_campaign(int threads) {
  sim::World::ScopedParallelOverride force(threads);
  cw::GridTestbed testbed(/*seed=*/77);
  for (int s = 0; s < kSites; ++s) {
    cw::SiteSpec spec;
    spec.name = "site" + std::to_string(s) + ".grid.org";
    spec.cpus = kCpusPerSite;
    testbed.add_site(spec);
  }
  testbed.add_submit_host("submit.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.start();

  for (int i = 0; i < kJobs; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "sweep.bin";
    job.runtime_seconds = 300.0 + 30.0 * (i % 20);
    job.grid_site =
        testbed.site(static_cast<std::size_t>(i % kSites)).spec.name;
    job.notify_email = false;
    agent.submit(job);
  }

  sim::Simulation& s = testbed.world().sim();
  const auto start = std::chrono::steady_clock::now();
  while (!agent.schedd().all_terminal() && s.now() < kHorizon) {
    s.run_until(s.now() + 3600.0);
  }
  const auto stop = std::chrono::steady_clock::now();

  ScaleRun run;
  run.threads = threads;
  run.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  run.digest = s.trace_digest();
  run.dispatched = s.dispatched();
  run.completed = agent.schedd().count(core::JobStatus::kCompleted);
  if (s.island_mode()) run.stats = s.island_stats();
  return run;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

int main() {
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("K1 island-kernel scaling: %d jobs, %d sites, hw threads %u\n",
              kJobs, kSites, hardware);

  std::vector<ScaleRun> runs;
  runs.push_back(run_campaign(0));  // legacy reference
  for (const unsigned n : kThreadCounts) {
    runs.push_back(run_campaign(static_cast<int>(n)));
  }

  const ScaleRun& legacy = runs[0];
  const ScaleRun& one = runs[1];
  bool digests_identical = true;
  for (std::size_t i = 2; i < runs.size(); ++i) {
    if (runs[i].digest != one.digest || runs[i].dispatched != one.dispatched) {
      digests_identical = false;
    }
  }

  cu::JsonValue benchmarks = cu::JsonValue::array();
  cu::JsonValue scale_runs = cu::JsonValue::array();
  double speedup_8way = 0.0;
  for (const ScaleRun& run : runs) {
    const std::string label =
        run.threads == 0 ? std::string("legacy")
                         : "N" + std::to_string(run.threads);
    const double speedup =
        run.threads >= 1 && run.wall_ns > 0
            ? static_cast<double>(one.wall_ns) /
                  static_cast<double>(run.wall_ns)
            : 0.0;
    if (run.threads == 8) speedup_8way = speedup;
    std::printf("  %-7s wall %8.1f ms  speedup %5.2fx  digest %s  "
                "completed %zu/%d\n",
                label.c_str(), static_cast<double>(run.wall_ns) / 1e6,
                speedup, hex64(run.digest).c_str(), run.completed, kJobs);

    cu::JsonValue row = cu::JsonValue::object();
    row["name"] = "BM_IslandScale/" + label;
    row["iterations"] = 1.0;
    row["real_time_ns"] = static_cast<double>(run.wall_ns);
    row["cpu_time_ns"] = static_cast<double>(run.wall_ns);
    benchmarks.push_back(std::move(row));

    cu::JsonValue entry = cu::JsonValue::object();
    entry["threads"] = static_cast<double>(run.threads);
    entry["wall_ns"] = static_cast<double>(run.wall_ns);
    entry["speedup"] = speedup;
    entry["digest"] = hex64(run.digest);
    entry["dispatched"] = static_cast<double>(run.dispatched);
    entry["completed"] = static_cast<double>(run.completed);
    if (!run.stats.empty()) {
      cu::JsonValue islands = cu::JsonValue::array();
      for (const sim::Simulation::IslandStat& st : run.stats) {
        cu::JsonValue is = cu::JsonValue::object();
        is["events"] = static_cast<double>(st.events);
        is["inbox_messages"] = static_cast<double>(st.inbox_messages);
        is["epochs"] = static_cast<double>(st.epochs);
        islands.push_back(std::move(is));
      }
      entry["islands"] = std::move(islands);
    }
    scale_runs.push_back(std::move(entry));
  }

  const bool floor_enforced = hardware >= 8;
  cu::JsonValue scale = cu::JsonValue::object();
  scale["hardware_concurrency"] = static_cast<double>(hardware);
  scale["digests_identical"] = digests_identical;
  scale["legacy_wall_ns"] = static_cast<double>(legacy.wall_ns);
  scale["speedup_8way"] = speedup_8way;
  scale["speedup_floor"] = kSpeedupFloor;
  scale["speedup_floor_enforced"] = floor_enforced;
  scale["runs"] = std::move(scale_runs);

  cu::JsonValue report = cu::JsonValue::object();
  report["benchmarks"] = std::move(benchmarks);
  report["island_scale"] = std::move(scale);

  if (condorg::det::report("bench_k1") > 0) return 4;
  const int write_rc = condorg::bench::write_report("K1", std::move(report));
  if (write_rc != 0) return write_rc;

  if (!digests_identical) {
    std::fprintf(stderr,
                 "K1: trace digests diverged across CONDORG_PARALLEL "
                 "thread counts\n");
    return 6;
  }
  if (floor_enforced && speedup_8way < kSpeedupFloor) {
    std::fprintf(stderr,
                 "K1: 8-way speedup %.2fx below the %.1fx floor "
                 "(hardware_concurrency=%u)\n",
                 speedup_8way, kSpeedupFloor, hardware);
    return 7;
  }
  return 0;
}
