// U1 — multi-user portal storm: N users behind one core::Portal, each with
// a personal Schedd + PoolRunner, publishing job ads into one shared
// central Collector negotiated by the incremental (delta) PoolNegotiator
// with batch::FairShareTable ordering. The pool is deliberately
// heterogeneous — users' jobs only match their own site group, and half the
// groups fit nobody — so the retained full-requery reference matcher pays
// for every pending job against every eligible slot each cycle while the
// delta path touches only what changed.
//
// ISSUE 10 names a 10k-user x 100-job x 16-site storm; that shape is a
// ~1M-job discrete-event run, far past a CI wall-clock budget, so the
// committed shape is scaled down (same topology, same 16 site groups) and
// the constants below are the only thing to grow. The headline number is
// unchanged by the scaling: per-cycle delta cost tracks churn while the
// reference tracks pool size, so the measured ratio *understates* the win
// at the issue's full shape.
//
// Three gates ride on BENCH_U1.json (tools/bench_compare.py check_multiuser
// mirrors them, so a skipped bench stage cannot hide a regression):
//   * delta speedup — mean steady-state delta cycle must be >= 5x faster
//     than the mean retained full-requery reference cycle (exit 7);
//   * fairness — Jain's index over per-user matched jobs, snapshotted the
//     moment half the campaign has matched, must be >= 0.9 (exit 7);
//   * determinism — a reduced shape runs jitter-free under CONDORG_PARALLEL
//     in {legacy, 1, 8}; the FNV outcome digest (every job's status and
//     lifecycle times, every user's matched count) must be byte-identical
//     across all three, and the kernel's key-stream digest across the two
//     island runs (the legacy kernel folds a different key universe by
//     design, so the outcome digest is the cross-kernel witness) (exit 6).
// The anti-entropy sweep runs throughout (full_sweep_every); any recorded
// delta-vs-reference divergence fails the binary directly (exit 5).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "condorg/classad/parser.h"
#include "condorg/condor/collector.h"
#include "condorg/condor/pool_negotiator.h"
#include "condorg/condor/startd.h"
#include "condorg/core/pool_runner.h"
#include "condorg/core/portal.h"
#include "condorg/core/portal_client.h"
#include "condorg/core/schedd.h"
#include "condorg/sim/det.h"
#include "condorg/sim/world.h"
#include "condorg/util/rng.h"

namespace cc = condorg::condor;
namespace co = condorg::core;
namespace cu = condorg::util;
namespace sim = condorg::sim;

namespace {

struct Shape {
  int users = 0;
  std::uint64_t jobs_per_user = 0;
  int groups = 0;       // site groups; machine ads carry SiteGroup = "gK"
  int busy_groups = 0;  // users target groups [0, busy_groups) round-robin
  int slots_per_group = 0;
  std::uint64_t batch_size = 0;
  double base_runtime = 0;  // per-user runtime = base + step * (u % 4)
  double runtime_step = 0;
  double horizon = 0;
};

// Headline: 16 site groups as issued, users packed onto half of them so the
// other half stays permanently eligible-but-unmatchable (the heterogeneity
// the reference matcher re-scans every cycle).
constexpr Shape kStorm = {1000, 10, 16, 8, 16, 5, 40.0, 10.0, 30000.0};
// Reduced shape for the CONDORG_PARALLEL digest triple.
constexpr Shape kDigestShape = {48, 4, 8, 4, 4, 2, 20.0, 10.0, 6000.0};

constexpr double kCyclePeriod = 5.0;
constexpr int kSweepEvery = 8;
constexpr double kSpeedupFloor = 5.0;
constexpr double kJainFloor = 0.9;

struct StormResult {
  std::uint64_t wall_ns = 0;
  std::uint64_t digest = 0;
  std::uint64_t outcome_digest = 0;
  std::uint64_t dispatched = 0;
  std::size_t jobs_completed = 0;
  bool drained = false;

  double delta_mean_ns = 0;
  double reference_mean_ns = 0;
  double speedup = 0;
  std::size_t delta_samples = 0;
  std::size_t reference_samples = 0;

  double jain = 0;
  double max_min_ratio = 0;
  double snapshot_fraction = 0;
  double p99_time_to_active_s = 0;
  double mean_time_to_active_s = 0;

  std::uint64_t cycles = 0;
  std::uint64_t matches = 0;
  std::uint64_t skipped_cycles = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t full_resyncs = 0;
  std::uint64_t divergences = 0;
  std::uint64_t noop_updates = 0;
  std::uint64_t portal_busy = 0;
  std::uint64_t runner_busy = 0;
  std::vector<std::string> audit;
};

/// Mean over the steady-state tail: the first quarter (resync, queue ramp)
/// is warm-up, not the per-cycle cost the gate is about.
double tail_mean(const std::vector<std::uint64_t>& samples) {
  if (samples.empty()) return 0.0;
  const std::size_t from = samples.size() / 4;
  double sum = 0;
  for (std::size_t i = from; i < samples.size(); ++i) {
    sum += static_cast<double>(samples[i]);
  }
  return sum / static_cast<double>(samples.size() - from);
}

double jain_index(const std::vector<double>& xs) {
  double sum = 0, sum_sq = 0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

StormResult run_storm(int threads, const Shape& shape, bool timed,
                      bool jitter_free = false) {
  sim::World::ScopedParallelOverride force(threads);
  sim::World world(/*seed=*/2001);

  if (jitter_free) {
    // Digest runs: the legacy kernel draws jitter from the shared network
    // stream, island mode from per-sender streams — different draws, so a
    // cross-kernel comparison is only meaningful with the jitter (the sole
    // RNG consumer on this workload) switched off. Base latency stays, so
    // the island lookahead is unchanged.
    sim::LinkConfig link = world.net().default_link();
    link.jitter = 0.0;
    world.net().set_default_link(link);
  }

  sim::Host& central = world.add_host("portal.grid");
  cc::Collector collector(central, world.net());

  cc::PoolNegotiatorOptions nopt;
  nopt.cycle_period = kCyclePeriod;
  nopt.full_sweep_every = kSweepEvery;
  nopt.hold_timeout = 60.0;
  cc::PoolNegotiator negotiator(central, world.net(), collector, nopt);
  if (timed) {
    negotiator.set_clock([] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    });
  }

  co::Portal portal(central, world.net());

  struct User {
    std::string name;
    std::unique_ptr<co::Schedd> schedd;
    std::unique_ptr<co::PoolRunner> runner;
    std::unique_ptr<co::PortalClient> client;
  };
  std::vector<std::unique_ptr<User>> users;
  users.reserve(static_cast<std::size_t>(shape.users));
  for (int u = 0; u < shape.users; ++u) {
    auto user = std::make_unique<User>();
    char name[16];
    std::snprintf(name, sizeof(name), "u%04d", u);
    user->name = name;
    sim::Host& host = world.add_host(user->name + ".grid");
    user->schedd = std::make_unique<co::Schedd>(host);

    co::PoolRunnerOptions ropt;
    ropt.collector = collector.address();
    ropt.advertise_period = 30.0;
    ropt.shadow.poll_interval = 30.0;
    user->runner =
        std::make_unique<co::PoolRunner>(*user->schedd, world.net(), ropt);

    co::PortalClientOptions copt;
    copt.portal = portal.address();
    copt.deliver_to = user->runner->address();
    copt.user = user->name;
    copt.total_jobs = shape.jobs_per_user;
    copt.batch_size = shape.batch_size;
    copt.runtime_seconds = shape.base_runtime + shape.runtime_step * (u % 4);
    copt.requirements = "other.SiteGroup == \"g" +
                        std::to_string(u % shape.busy_groups) + "\"";
    user->client =
        std::make_unique<co::PortalClient>(host, world.net(), copt);
    users.push_back(std::move(user));
  }

  std::vector<std::unique_ptr<cc::Startd>> startds;
  for (int g = 0; g < shape.groups; ++g) {
    for (int s = 0; s < shape.slots_per_group; ++s) {
      char node[32];
      std::snprintf(node, sizeof(node), "g%02d-n%02d.grid", g, s);
      sim::Host& host = world.add_host(node);
      cc::StartdOptions sopt;
      sopt.collector = collector.address();
      sopt.advertise_period = 30.0;
      sopt.checkpoint_interval = 300.0;
      sopt.base_ad = condorg::classad::parse_ad(
          "[Arch = \"X86_64\"; Memory = 512; SiteGroup = \"g" +
          std::to_string(g) + "\"]");
      // Slot names must be pool-unique: the Collector keys machine ads by
      // Name, so identical slot names would collapse the whole pool into
      // one entry owned by whichever startd advertised last.
      startds.push_back(std::make_unique<cc::Startd>(
          host, world.net(), std::string("slot1@") + node, sopt));
    }
  }

  portal.start();
  negotiator.start();
  for (auto& user : users) {
    user->runner->start();
    user->client->start();
  }

  const std::uint64_t total_jobs =
      static_cast<std::uint64_t>(shape.users) * shape.jobs_per_user;
  std::map<std::string, std::uint64_t> matched_snapshot;
  double snapshot_fraction = 0;

  sim::Simulation& s = world.sim();
  const auto start = std::chrono::steady_clock::now();
  while (s.now() < shape.horizon) {
    s.run_until(s.now() + 15.0);
    std::uint64_t matched_sum = 0;
    for (const auto& [user, n] : negotiator.matched_by_user()) {
      (void)user;
      matched_sum += n;
    }
    // Fairness is judged mid-campaign: once half the storm has matched,
    // every user should already own roughly the same share. (At the end
    // everyone finishes and any index is trivially 1.)
    if (matched_snapshot.empty() && 2 * matched_sum >= total_jobs) {
      matched_snapshot = negotiator.matched_by_user();
      snapshot_fraction =
          static_cast<double>(matched_sum) / static_cast<double>(total_jobs);
    }
    bool done = true;
    for (const auto& user : users) {
      if (!user->client->drained() || !user->schedd->all_terminal()) {
        done = false;
        break;
      }
    }
    if (done && portal.queue_depth() == 0) break;
  }
  const auto stop = std::chrono::steady_clock::now();

  StormResult result;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  result.digest = s.trace_digest();
  result.dispatched = s.dispatched();

  // Outcome digest: every job's terminal state and lifecycle times plus the
  // per-user matched counts, folded in the (deterministic) user/job order.
  // Unlike the kernel key-stream digest this is kernel-agnostic, so it is
  // what the {legacy, 1, 8} triple compares.
  const auto fold_time = [](std::uint64_t h, sim::Time t) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &t, sizeof(bits));
    return cu::fnv1a_mix(h, bits);
  };
  std::uint64_t outcome = cu::fnv1a("U1/outcome");

  result.drained = true;
  std::vector<double> ttas;
  for (const auto& user : users) {
    if (!user->client->drained() || !user->schedd->all_terminal()) {
      result.drained = false;
    }
    result.jobs_completed += user->schedd->count(co::JobStatus::kCompleted);
    outcome = cu::fnv1a_mix(outcome, cu::fnv1a(user->name));
    for (const auto& [id, job] : user->schedd->jobs()) {
      outcome = cu::fnv1a_mix(outcome, id);
      outcome =
          cu::fnv1a_mix(outcome, static_cast<std::uint64_t>(job.status));
      outcome = fold_time(outcome, job.submit_time);
      outcome = fold_time(outcome, job.first_execute_time);
      outcome = fold_time(outcome, job.completion_time);
      if (job.first_execute_time >= 0.0) {
        ttas.push_back(job.first_execute_time - job.submit_time);
      }
    }
    result.runner_busy += user->runner->busy_rejections();
  }
  for (const auto& [user, n] : negotiator.matched_by_user()) {
    outcome = cu::fnv1a_mix(outcome, cu::fnv1a(user));
    outcome = cu::fnv1a_mix(outcome, n);
  }
  result.outcome_digest = outcome;
  if (!ttas.empty()) {
    std::sort(ttas.begin(), ttas.end());
    double sum = 0;
    for (const double t : ttas) sum += t;
    result.mean_time_to_active_s = sum / static_cast<double>(ttas.size());
    result.p99_time_to_active_s = ttas[(ttas.size() * 99) / 100 >=
                                               ttas.size()
                                           ? ttas.size() - 1
                                           : (ttas.size() * 99) / 100];
  }

  if (matched_snapshot.empty()) {
    matched_snapshot = negotiator.matched_by_user();
    snapshot_fraction = 1.0;
  }
  std::vector<double> per_user;
  per_user.reserve(users.size());
  double max_matched = 0, min_matched = 1e18;
  for (const auto& user : users) {
    const auto it = matched_snapshot.find(user->name);
    const double n =
        it == matched_snapshot.end() ? 0.0 : static_cast<double>(it->second);
    per_user.push_back(n);
    max_matched = std::max(max_matched, n);
    min_matched = std::min(min_matched, n);
  }
  result.jain = jain_index(per_user);
  result.max_min_ratio = max_matched / std::max(1.0, min_matched);
  result.snapshot_fraction = snapshot_fraction;

  if (timed) {
    result.delta_mean_ns = tail_mean(negotiator.delta_cycle_ns());
    result.reference_mean_ns = tail_mean(negotiator.reference_cycle_ns());
    result.delta_samples = negotiator.delta_cycle_ns().size();
    result.reference_samples = negotiator.reference_cycle_ns().size();
    if (result.delta_mean_ns > 0) {
      result.speedup = result.reference_mean_ns / result.delta_mean_ns;
    }
  }

  result.cycles = negotiator.cycles();
  result.matches = negotiator.matches_made();
  result.skipped_cycles = negotiator.skipped_cycles();
  result.sweeps = negotiator.sweeps();
  result.full_resyncs = negotiator.full_resyncs();
  result.divergences = negotiator.divergences();
  result.noop_updates = collector.noop_updates();
  result.portal_busy = portal.busy_rejections();
  negotiator.audit(result.audit);
  return result;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

int main() {
  std::printf("U1 multi-user storm: %d users x %llu jobs, %d site groups "
              "(%d busy) x %d slots\n",
              kStorm.users,
              static_cast<unsigned long long>(kStorm.jobs_per_user),
              kStorm.groups, kStorm.busy_groups, kStorm.slots_per_group);

  // Headline: legacy kernel with the negotiator's wall clock armed; the
  // delta-vs-reference cycle means come out of the same run (the sweep
  // times the retained reference path on identical state).
  const StormResult storm = run_storm(/*threads=*/0, kStorm, /*timed=*/true);
  std::printf(
      "  storm   wall %8.1f ms  completed %zu  cycles %llu (skipped %llu)  "
      "matches %llu\n",
      static_cast<double>(storm.wall_ns) / 1e6, storm.jobs_completed,
      static_cast<unsigned long long>(storm.cycles),
      static_cast<unsigned long long>(storm.skipped_cycles),
      static_cast<unsigned long long>(storm.matches));
  std::printf(
      "  delta %9.1f us/cycle  reference %9.1f us/cycle  speedup %5.2fx\n",
      storm.delta_mean_ns / 1e3, storm.reference_mean_ns / 1e3,
      storm.speedup);
  std::printf(
      "  jain %.4f (at %.0f%% matched)  max/min %.2f  "
      "p99 time-to-ACTIVE %.1fs\n",
      storm.jain, storm.snapshot_fraction * 100.0, storm.max_min_ratio,
      storm.p99_time_to_active_s);

  // Determinism triple on the reduced shape: the per-user hosts land in
  // distinct islands, so this is the island engine under its intended load.
  // Jitter-free, so legacy and island runs see identical message timing;
  // the outcome digest must agree across all three, the kernel key-stream
  // digest (a per-kernel encoding) across the island pair.
  std::vector<std::pair<std::string, StormResult>> digest_runs;
  for (const int threads : {0, 1, 8}) {
    const std::string label =
        threads == 0 ? std::string("legacy") : "N" + std::to_string(threads);
    digest_runs.emplace_back(label, run_storm(threads, kDigestShape,
                                              /*timed=*/false,
                                              /*jitter_free=*/true));
    const StormResult& run = digest_runs.back().second;
    std::printf(
        "  %-7s wall %8.1f ms  outcome %s  kernel %s  dispatched %llu\n",
        label.c_str(), static_cast<double>(run.wall_ns) / 1e6,
        hex64(run.outcome_digest).c_str(), hex64(run.digest).c_str(),
        static_cast<unsigned long long>(run.dispatched));
  }
  bool digests_identical = true;
  const StormResult& first = digest_runs.front().second;
  for (const auto& [label, run] : digest_runs) {
    if (run.outcome_digest != first.outcome_digest ||
        run.jobs_completed != first.jobs_completed) {
      digests_identical = false;
    }
    // The island pair must agree on the committed key stream too.
    if (label != "legacy" &&
        (run.digest != digest_runs.back().second.digest ||
         run.dispatched != digest_runs.back().second.dispatched)) {
      digests_identical = false;
    }
  }

  cu::JsonValue benchmarks = cu::JsonValue::array();
  {
    cu::JsonValue row = cu::JsonValue::object();
    row["name"] = "BM_MultiUserStorm/legacy";
    row["iterations"] = 1.0;
    row["real_time_ns"] = static_cast<double>(storm.wall_ns);
    row["cpu_time_ns"] = static_cast<double>(storm.wall_ns);
    benchmarks.push_back(std::move(row));
  }
  cu::JsonValue runs = cu::JsonValue::array();
  for (const auto& [label, run] : digest_runs) {
    cu::JsonValue row = cu::JsonValue::object();
    row["name"] = "BM_DigestShape/" + label;
    row["iterations"] = 1.0;
    row["real_time_ns"] = static_cast<double>(run.wall_ns);
    row["cpu_time_ns"] = static_cast<double>(run.wall_ns);
    benchmarks.push_back(std::move(row));

    cu::JsonValue entry = cu::JsonValue::object();
    entry["mode"] = label;
    entry["outcome_digest"] = hex64(run.outcome_digest);
    entry["kernel_digest"] = hex64(run.digest);
    entry["dispatched"] = static_cast<double>(run.dispatched);
    entry["completed"] = static_cast<double>(run.jobs_completed);
    runs.push_back(std::move(entry));
  }

  cu::JsonValue section = cu::JsonValue::object();
  section["users"] = static_cast<double>(kStorm.users);
  section["jobs_per_user"] = static_cast<double>(kStorm.jobs_per_user);
  section["site_groups"] = static_cast<double>(kStorm.groups);
  section["busy_groups"] = static_cast<double>(kStorm.busy_groups);
  section["slots_per_group"] = static_cast<double>(kStorm.slots_per_group);
  section["jobs_completed"] = static_cast<double>(storm.jobs_completed);
  section["drained"] = storm.drained;
  section["delta_cycle_ns_mean"] = storm.delta_mean_ns;
  section["reference_cycle_ns_mean"] = storm.reference_mean_ns;
  section["delta_samples"] = static_cast<double>(storm.delta_samples);
  section["reference_samples"] = static_cast<double>(storm.reference_samples);
  section["delta_speedup"] = storm.speedup;
  section["speedup_floor"] = kSpeedupFloor;
  section["jain"] = storm.jain;
  section["jain_floor"] = kJainFloor;
  section["jain_snapshot_fraction"] = storm.snapshot_fraction;
  section["max_min_ratio"] = storm.max_min_ratio;
  section["p99_time_to_active_s"] = storm.p99_time_to_active_s;
  section["mean_time_to_active_s"] = storm.mean_time_to_active_s;
  section["negotiator_cycles"] = static_cast<double>(storm.cycles);
  section["matches"] = static_cast<double>(storm.matches);
  section["skipped_cycles"] = static_cast<double>(storm.skipped_cycles);
  section["sweeps"] = static_cast<double>(storm.sweeps);
  section["full_resyncs"] = static_cast<double>(storm.full_resyncs);
  section["divergences"] = static_cast<double>(storm.divergences);
  section["collector_noop_updates"] = static_cast<double>(storm.noop_updates);
  section["portal_busy_rejections"] = static_cast<double>(storm.portal_busy);
  section["runner_busy_rejections"] = static_cast<double>(storm.runner_busy);
  section["digests_identical"] = digests_identical;
  section["digest_runs"] = std::move(runs);

  cu::JsonValue report = cu::JsonValue::object();
  report["benchmarks"] = std::move(benchmarks);
  report["multiuser"] = std::move(section);

  if (condorg::det::report("bench_u1") > 0) return 4;
  const int write_rc = condorg::bench::write_report("U1", std::move(report));
  if (write_rc != 0) return write_rc;

  if (storm.divergences > 0 || !storm.audit.empty()) {
    std::fprintf(stderr,
                 "U1: anti-entropy recorded %llu divergence(s); delta state "
                 "does not equal full-scan state\n",
                 static_cast<unsigned long long>(storm.divergences));
    for (const std::string& line : storm.audit) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
    return 5;
  }
  if (!digests_identical) {
    std::fprintf(stderr,
                 "U1: digests diverged across CONDORG_PARALLEL "
                 "{legacy, 1, 8}\n");
    return 6;
  }
  if (storm.speedup < kSpeedupFloor) {
    std::fprintf(stderr,
                 "U1: delta speedup %.2fx below the %.1fx floor\n",
                 storm.speedup, kSpeedupFloor);
    return 7;
  }
  if (storm.jain < kJainFloor) {
    std::fprintf(stderr, "U1: Jain index %.4f below the %.2f floor\n",
                 storm.jain, kJainFloor);
    return 7;
  }
  if (!storm.drained) {
    std::fprintf(stderr, "U1: storm did not drain within the horizon\n");
    return 7;
  }
  return 0;
}
