// E2 — the CMS experience (§6): "A two-node Directed Acyclic Graph (DAG)
// of jobs submitted to a Condor-G agent at Caltech triggers 100 simulation
// jobs on the Condor pool at the University of Wisconsin. Each of these
// jobs generates 500 events. ... all events produced are transferred via
// GridFTP to a data repository at NCSA. Once all simulation jobs terminate
// and all data is shipped to the repository, the agent at Caltech submits
// a subsequent reconstruction job to the PBS system that manages the
// reconstruction cluster at NCSA." — 50,000 events, ~1,200 CPU-hours, in
// less than a day and a half.
//
// Full paper scale (100 x 500 events); per-event CPU costs calibrated so
// the total ≈ 1,200 CPU-hours. End-to-end exactly-once delivery is proven
// by digest equality.
#include <cstdio>

#include "bench_report.h"
#include "condorg/core/agent.h"
#include "condorg/gass/client.h"
#include "condorg/gass/file_service.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/cms_pipeline.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cg = condorg::gass;
namespace cu = condorg::util;

int main() {
  std::printf("E2: CMS simulation/reconstruction DAG (paper scale)\n");

  cw::CmsConfig config;
  config.simulation_jobs = 100;
  config.events_per_job = 500;
  // 1,200 CPU-hours over 50,000 events => 86.4 s/event end to end.
  config.seconds_per_event_sim = 70.0;
  config.seconds_per_event_reco = 16.4;

  cw::GridTestbed testbed(2001);
  cw::SiteSpec uw;
  uw.name = "condor.wisc.edu";
  uw.kind = cw::SiteKind::kCondorPool;
  uw.cpus = 100;
  testbed.add_site(uw);
  cw::SiteSpec ncsa;
  ncsa.name = "pbs.ncsa.edu";
  ncsa.cpus = 16;
  testbed.add_site(ncsa);
  testbed.add_submit_host("cms.caltech.edu");
  cg::FileService repository(testbed.world().add_host("mss.ncsa.edu"),
                             testbed.world().net(), "gridftp");
  // A realistic WAN for the bulk transfers: 100 Mbit/s Abilene-era link.
  condorg::sim::LinkConfig wan;
  wan.latency = 0.03;
  wan.bandwidth_bps = 1.0e8;
  testbed.world().net().set_default_link(wan);

  core::CondorGAgent agent(testbed.world(), "cms.caltech.edu");
  agent.start();
  cg::FileClient mover(agent.host(), testbed.world().net(), "cms.mover");

  core::Dag dag;
  int transfers_done = 0;
  double first_transfer = -1, last_transfer = -1;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    core::DagNode sim;
    sim.name = "sim" + std::to_string(j);
    sim.job.universe = core::Universe::kGrid;
    sim.job.grid_site = "condor.wisc.edu";
    sim.job.runtime_seconds =
        config.events_per_job * config.seconds_per_event_sim;
    sim.job.output = "events/run" + std::to_string(j) + ".dat";
    sim.job.output_size = cw::cms_job_output_bytes(config);
    sim.job.notify_email = false;
    sim.post = [&, j] {
      agent.gridmanager().gass().store().put(
          "events/run" + std::to_string(j) + ".dat",
          cw::cms_job_output(config, j), cw::cms_job_output_bytes(config));
      mover.pull(repository.address(), "store/run" + std::to_string(j),
                 agent.gridmanager().gass_address(),
                 "events/run" + std::to_string(j) + ".dat", [&](bool ok) {
                   if (!ok) return;
                   ++transfers_done;
                   if (first_transfer < 0) first_transfer = testbed.world().now();
                   last_transfer = testbed.world().now();
                 });
    };
    dag.add_node(std::move(sim));
  }
  core::DagNode reco;
  reco.name = "reconstruction";
  reco.job.universe = core::Universe::kGrid;
  reco.job.grid_site = "pbs.ncsa.edu";
  reco.job.cpus = 16;
  reco.job.runtime_seconds = config.simulation_jobs * config.events_per_job *
                             config.seconds_per_event_reco / 16.0;
  reco.job.notify_email = false;
  dag.add_node(std::move(reco));
  for (int j = 0; j < config.simulation_jobs; ++j) {
    dag.add_edge("sim" + std::to_string(j), "reconstruction");
  }

  core::DagManOptions dag_options;
  dag_options.max_jobs_in_flight = 50;  // the disk-buffer guard
  auto dagman = agent.make_dagman(std::move(dag), dag_options);
  dagman->start();

  while (!dagman->complete() && !dagman->failed() &&
         testbed.world().now() < 10 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 600.0);
  }
  const double wall = testbed.world().now();

  std::vector<std::string> files;
  std::uint64_t bytes_at_mss = 0;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    const auto file = repository.store().get("store/run" + std::to_string(j));
    files.push_back(file ? file->content : "");
    if (file) bytes_at_mss += file->size();
  }
  const bool verified =
      cw::cms_reconstruct_from_files(config.run_seed, files) ==
      cw::cms_reconstruction_digest(config);
  const double cpu_hours =
      (config.simulation_jobs * config.events_per_job *
       (config.seconds_per_event_sim + config.seconds_per_event_reco)) /
      3600.0;

  cu::Table table({"metric", "paper (§6)", "measured"});
  table.add_row({"simulation jobs", "100",
                 cu::format("%zu", dagman->nodes_done() > 0
                                       ? dagman->nodes_done() - 1
                                       : 0)});
  table.add_row({"events", "50000",
                 cu::format("%d", config.simulation_jobs *
                                      config.events_per_job)});
  table.add_row({"CPU-hours", "~1200", cu::format("%.0f", cpu_hours)});
  table.add_row({"wall-clock days", "< 1.5", cu::format("%.2f", wall / 86400.0)});
  table.add_row({"GridFTP transfers to MSS", "100",
                 std::to_string(transfers_done)});
  table.add_row({"data at repository", "-",
                 cu::format_bytes(static_cast<double>(bytes_at_mss))});
  table.add_row({"exactly-once digest check", "-",
                 verified ? "PASS" : "FAIL"});
  std::fputs(table.render("E2: CMS two-stage DAG").c_str(), stdout);

  cu::JsonValue report = cu::JsonValue::object();
  report["simulation_jobs"] = config.simulation_jobs;
  report["events"] = config.simulation_jobs * config.events_per_job;
  report["cpu_hours"] = cpu_hours;
  report["wall_days"] = wall / 86400.0;
  report["transfers_to_mss"] = transfers_done;
  report["bytes_at_repository"] = bytes_at_mss;
  report["dag_complete"] = dagman->complete();
  report["digest_verified"] = verified;
  const int write_rc = condorg::bench::write_report("E2", std::move(report));
  return (dagman->complete() && verified && write_rc == 0) ? 0 : 1;
}
