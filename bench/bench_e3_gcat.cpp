// E3 — the GridGaussian/G-Cat experience (§6): "G-Cat hides network
// performance variations from Gaussian by using local scratch storage as a
// buffer for Gaussian's output, rather than sending the output directly
// over the network", while the output is "reliably stored at MSS" and
// viewable "as it is produced".
//
// Ablation: a long-running job producing output at a steady rate, over a
// WAN whose bandwidth oscillates and suffers outages. G-Cat (buffered,
// chunked, idempotent appends) vs. direct synchronous writes. Reported per
// scenario: job stall time (G-Cat: zero by construction), staleness of the
// MSS-visible copy, final integrity.
#include <cstdio>
#include <functional>

#include "bench_report.h"
#include "condorg/gass/file_service.h"
#include "condorg/sim/world.h"
#include "condorg/util/stats.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"
#include "condorg/workloads/gcat.h"

namespace cs = condorg::sim;
namespace cg = condorg::gass;
namespace cw = condorg::workloads;
namespace cu = condorg::util;

namespace {

struct Scenario {
  const char* name;
  double good_mbps;
  double bad_mbps;
  double outage_start = -1;
  double outage_len = 0;
};

struct Result {
  double job_wall = 0;       // when the producer finished emitting
  double stored_wall = 0;    // when the MSS copy was complete
  double stall_seconds = 0;  // producer blocked on the network
  double staleness_p50 = 0;  // MB the viewer lags behind, sampled
  double staleness_max = 0;
  bool intact = false;
};

constexpr int kTicks = 360;               // 2 hours of output
constexpr double kTickSeconds = 20.0;
constexpr std::uint64_t kTickBytes = 512 << 10;

void apply_weather(cs::World& world, const Scenario& s) {
  for (int cycle = 0; cycle < 24; ++cycle) {
    world.sim().schedule_at(cycle * 600.0, [&world, &s, cycle] {
      cs::LinkConfig link;
      link.latency = 0.08;
      link.bandwidth_bps = (cycle % 2 == 0 ? s.good_mbps : s.bad_mbps) * 1e6;
      world.net().set_link("worker", "mss", link);
    });
  }
  if (s.outage_start >= 0) {
    world.sim().schedule_at(s.outage_start, [&world] {
      world.net().set_partitioned("worker", "mss", true);
    });
    world.sim().schedule_at(s.outage_start + s.outage_len, [&world] {
      world.net().set_partitioned("worker", "mss", false);
    });
  }
}

Result run_gcat(const Scenario& s) {
  cs::World world(11);
  cs::Host& worker = world.add_host("worker");
  cg::FileService mss(world.add_host("mss"), world.net(), "mss");
  apply_weather(world, s);

  cw::GCatOptions options;
  options.chunk_bytes = 2 << 20;
  options.flush_interval = 60.0;
  cw::GCat gcat(worker, world.net(), mss.address(), "out", options);

  Result result;
  cu::Samples staleness;
  int tick = 0;
  std::function<void()> produce = [&] {
    if (tick >= kTicks) {
      result.job_wall = world.now();
      gcat.finish([&] { result.stored_wall = world.now(); });
      return;
    }
    gcat.on_output("x", kTickBytes);
    ++tick;
    worker.post(kTickSeconds, produce);
  };
  worker.post(0.0, produce);
  // Viewer sampling every minute.
  std::function<void()> sample = [&] {
    if (result.job_wall > 0) return;
    staleness.add(static_cast<double>(gcat.staleness_bytes()) / (1 << 20));
    worker.post(60.0, sample);
  };
  worker.post(30.0, sample);
  world.sim().run_until(12 * 3600.0);

  result.stall_seconds = 0.0;  // by construction: on_output never blocks
  result.staleness_p50 = staleness.median();
  result.staleness_max = staleness.max();
  const auto file = mss.store().get("out");
  result.intact = file && file->size() == gcat.bytes_produced() &&
                  gcat.bytes_produced() ==
                      static_cast<std::uint64_t>(kTicks) * kTickBytes;
  return result;
}

Result run_direct(const Scenario& s) {
  cs::World world(11);
  cs::Host& worker = world.add_host("worker");
  cg::FileService mss(world.add_host("mss"), world.net(), "mss");
  apply_weather(world, s);

  cw::DirectWriter writer(worker, world.net(), mss.address(), "out");
  Result result;
  cu::Samples staleness;
  std::uint64_t produced = 0;
  int tick = 0;
  std::function<void()> produce = [&] {
    if (tick >= kTicks) {
      result.job_wall = world.now();
      result.stored_wall = world.now();
      return;
    }
    ++tick;
    produced += kTickBytes;
    // The job blocks until the record is durable, then computes for the
    // remainder of its tick.
    writer.write("x", kTickBytes, [&] { worker.post(kTickSeconds, produce); });
  };
  worker.post(0.0, produce);
  std::function<void()> sample = [&] {
    if (result.job_wall > 0) return;
    staleness.add(
        static_cast<double>(produced - writer.bytes_acked()) / (1 << 20));
    worker.post(60.0, sample);
  };
  worker.post(30.0, sample);
  world.sim().run_until(24 * 3600.0);

  result.stall_seconds = writer.total_stall_seconds();
  result.staleness_p50 = staleness.median();
  result.staleness_max = staleness.max();
  const auto file = mss.store().get("out");
  result.intact = file && file->size() ==
                              static_cast<std::uint64_t>(kTicks) * kTickBytes;
  return result;
}

}  // namespace

int main() {
  std::printf(
      "E3: G-Cat buffered streaming vs direct remote writes\n"
      "producer: %d x %s every %.0fs (%s total)\n", kTicks,
      cu::format_bytes(kTickBytes).c_str(), kTickSeconds,
      cu::format_bytes(static_cast<double>(kTicks) * kTickBytes).c_str());

  const Scenario scenarios[] = {
      {"steady 8 Mbit/s", 8.0, 8.0},
      {"oscillating 8/0.8", 8.0, 0.8},
      {"osc. + 15 min outage", 8.0, 0.8, 3600.0, 900.0},
  };
  cu::Table table({"scenario", "writer", "job wall", "job stalled",
                   "lag p50 (MB)", "lag max (MB)", "stored intact"});
  cu::JsonValue rows = cu::JsonValue::array();
  const auto to_json = [](const char* scenario, const char* writer,
                          const Result& r) {
    cu::JsonValue row = cu::JsonValue::object();
    row["scenario"] = scenario;
    row["writer"] = writer;
    row["job_wall_seconds"] = r.job_wall;
    row["stall_seconds"] = r.stall_seconds;
    row["lag_p50_mb"] = r.staleness_p50;
    row["lag_max_mb"] = r.staleness_max;
    row["intact"] = r.intact;
    return row;
  };
  for (const Scenario& s : scenarios) {
    const Result g = run_gcat(s);
    const Result d = run_direct(s);
    rows.push_back(to_json(s.name, "gcat", g));
    rows.push_back(to_json(s.name, "direct", d));
    table.add_row({s.name, "G-Cat", cu::format_duration(g.job_wall),
                   cu::format_duration(g.stall_seconds),
                   cu::format("%.1f", g.staleness_p50),
                   cu::format("%.1f", g.staleness_max),
                   g.intact ? "yes" : "NO"});
    table.add_row({"", "direct", cu::format_duration(d.job_wall),
                   cu::format_duration(d.stall_seconds),
                   cu::format("%.1f", d.staleness_p50),
                   cu::format("%.1f", d.staleness_max),
                   d.intact ? "yes" : "NO"});
    table.add_separator();
  }
  std::fputs(table.render("E3: GridGaussian output handling").c_str(),
             stdout);
  std::printf(
      "\npaper claim preserved: G-Cat never stalls the job and rides out\n"
      "bandwidth dips and outages via local scratch; direct writes stall\n"
      "the computation whenever the network misbehaves.\n");
  cu::JsonValue report = cu::JsonValue::object();
  report["rows"] = std::move(rows);
  return condorg::bench::write_report("E3", std::move(report));
}
