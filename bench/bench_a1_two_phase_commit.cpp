// A1 — ablation of GRAM's two-phase commit (§3.2): "Two-phase commit is
// important as a means of achieving exactly once execution semantics. Each
// request from a client is accompanied by a unique sequence number ... The
// repeated sequence number allows the resource to distinguish between a
// lost request and a lost response."
//
// Sweep message-loss probability and compare the revised protocol
// (sequence numbers + dedup + commit) against the pre-revision one-phase
// protocol (blind retransmission, no dedup). The one-phase protocol turns
// lost *responses* into duplicate job executions; the revised protocol
// never duplicates and never loses a job.
#include <cstdio>

#include "bench_report.h"
#include "condorg/batch/fifo_scheduler.h"
#include "condorg/gass/file_service.h"
#include "condorg/gram/client.h"
#include "condorg/gram/gatekeeper.h"
#include "condorg/sim/world.h"
#include "condorg/util/strings.h"
#include "condorg/util/table.h"

namespace gram = condorg::gram;
namespace cb = condorg::batch;
namespace cs = condorg::sim;
namespace cu = condorg::util;

namespace {

struct Outcome {
  int submitted = 0;
  int acked = 0;          // client believes the job was placed
  std::size_t executed = 0;  // jobs that actually entered the site queue
  std::uint64_t wire_submits = 0;
};

Outcome run_trial(double loss, bool two_phase, std::uint64_t seed) {
  cs::World world(seed);
  cs::Host& submit = world.add_host("submit");
  world.add_host("site");
  cb::FifoScheduler cluster(world.sim(), "site", 64);

  gram::GatekeeperOptions gk_options;
  gk_options.dedup_submissions = two_phase;
  gram::Gatekeeper gatekeeper(world.host("site"), world.net(), cluster,
                              gk_options);
  condorg::gass::FileService gass(submit, world.net(), "gass");
  gass.store().put("exe", "worker", 1 << 20);

  cs::LinkConfig link;
  link.loss_probability = loss;
  world.net().set_link("submit", "site", link);

  gram::GramClientOptions client_options;
  client_options.two_phase = two_phase;
  client_options.retry_delay = 15.0;
  client_options.max_attempts = 60;
  gram::GramClient client(submit, world.net(), "bench", client_options);

  Outcome outcome;
  outcome.submitted = 50;
  for (int i = 0; i < outcome.submitted; ++i) {
    gram::GramJobSpec spec;
    spec.executable = "exe";
    spec.output = "";
    spec.gass_url = gass.address().str();
    spec.runtime_seconds = 300.0;
    client.submit(gatekeeper.address(), spec, {"submit", "cb"},
                  [&outcome](std::optional<std::string> contact) {
                    if (contact) ++outcome.acked;
                  });
  }
  world.sim().run_until(100000.0);
  outcome.executed = cluster.history().size();
  outcome.wire_submits = client.submits_sent();
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "A1: exactly-once submission under message loss\n"
      "50 jobs per cell; 'dup' = executions beyond one per job; 'lost' = "
      "jobs never executed.\n");

  cu::Table table({"loss", "protocol", "acked", "executed", "dup", "lost",
                   "wire submits"});
  cu::JsonValue cells = cu::JsonValue::array();
  for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    for (const bool two_phase : {true, false}) {
      const Outcome o =
          run_trial(loss, two_phase, 7000 + static_cast<int>(loss * 100));
      const int dup =
          static_cast<int>(o.executed) > o.submitted
              ? static_cast<int>(o.executed) - o.submitted
              : 0;
      const int lost = static_cast<int>(o.executed) < o.submitted
                           ? o.submitted - static_cast<int>(o.executed)
                           : 0;
      table.add_row({cu::format("%.0f%%", loss * 100),
                     two_phase ? "2-phase (revised GRAM)" : "1-phase",
                     cu::format("%d/%d", o.acked, o.submitted),
                     std::to_string(o.executed), std::to_string(dup),
                     std::to_string(lost),
                     std::to_string(o.wire_submits)});
      cu::JsonValue cell = cu::JsonValue::object();
      cell["loss"] = loss;
      cell["protocol"] = two_phase ? "two_phase" : "one_phase";
      cell["submitted"] = o.submitted;
      cell["acked"] = o.acked;
      cell["executed"] = o.executed;
      cell["duplicates"] = dup;
      cell["lost"] = lost;
      cell["wire_submits"] = o.wire_submits;
      cells.push_back(std::move(cell));
    }
    table.add_separator();
  }
  std::fputs(table.render("A1: two-phase commit ablation").c_str(), stdout);
  std::printf(
      "\npaper claim preserved: the revised protocol shows dup=0 and lost=0 "
      "at every loss rate;\nthe one-phase protocol duplicates jobs as soon "
      "as responses can be lost.\n");
  cu::JsonValue report = cu::JsonValue::object();
  report["cells"] = std::move(cells);
  return condorg::bench::write_report("A1", std::move(report));
}
