#!/usr/bin/env bash
# Full correctness gate: determinism lint, a warnings-as-errors build with
# the plain test suite, then the same suite under ASan+UBSan (with the
# invariant auditor compiled into examples/benches). Mirrors what CI runs;
# use the CMake presets (dev / asan / tsan) for the individual pieces.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== determinism lint =="
python3 tools/lint/condorg_lint.py --root .
python3 tools/lint/condorg_lint.py --root . --self-test

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== dev build (warnings are errors) + tests =="
cmake --preset dev >/dev/null
cmake --build --preset dev -j "${jobs}"
ctest --preset dev -j "${jobs}"

echo "== clang-tidy (skips when not installed) =="
bash scripts/tidy.sh --build-dir build

echo "== schedule-space exploration =="
# The model checker must exhaust the bounded quickstart schedule space with
# zero invariant violations, and must catch a deliberately broken gatekeeper
# dedup with a counterexample that replays to the identical failing audit.
./build/tools/condorg_explore --scenario quickstart \
  --require-distinct 1000 --require-exhausted
CONDORG_MUTATE_DEDUP=1 ./build/tools/condorg_explore --scenario quickstart \
  --expect-violation >/dev/null

echo "== trace determinism + report self-check =="
# Two same-seed quickstart runs must export byte-identical trace JSONL, and
# the report tool must find no structural problems in it.
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
(cd "${trace_dir}" &&
  CONDORG_TRACE=run1.jsonl CONDORG_METRICS=run1-metrics.json \
    "${OLDPWD}/build/examples/quickstart" >/dev/null &&
  CONDORG_TRACE=run2.jsonl \
    "${OLDPWD}/build/examples/quickstart" >/dev/null)
cmp "${trace_dir}/run1.jsonl" "${trace_dir}/run2.jsonl"
./build/tools/condorg_report --trace "${trace_dir}/run1.jsonl" \
  --metrics "${trace_dir}/run1-metrics.json" --self-check

echo "== bench telemetry comparator =="
# The comparator's own logic is deterministic and always checked; diffing a
# fresh bench run against the committed baselines needs real (noisy) numbers,
# so it only runs when asked: CONDORG_BENCH_COMPARE=1 after running the
# bench binaries (they drop BENCH_<id>.json next to themselves).
python3 tools/bench_compare.py --self-test
if [[ "${CONDORG_BENCH_COMPARE:-0}" == "1" ]]; then
  # S1 is cheap enough to (re)generate here; M1/M2 are compared from
  # whatever run the operator produced beforehand.
  (cd build/bench && ./bench_s1_submission_storm >/dev/null)
  python3 tools/bench_compare.py bench/baselines build/bench
fi

echo "== ASan+UBSan build + tests (auditor enabled) =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${jobs}"
ctest --preset asan -j "${jobs}"

echo "ALL CHECKS PASSED"
