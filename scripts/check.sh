#!/usr/bin/env bash
# Full correctness gate: determinism lint, partition-safety analysis, a
# warnings-as-errors build with the plain test suite, the DetSan smoke
# runs, then the same suite under ASan+UBSan (with the invariant auditor
# compiled into examples/benches). Mirrors what CI runs; use the CMake
# presets (dev / asan / tsan) for the individual pieces. Each stage prints
# its wall time so regressions in the gate itself are visible.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_started=0
stage_name=""
stage_begin() {
  stage_name="$1"
  stage_started=${SECONDS}
  echo "== ${stage_name} =="
}
stage_end() {
  echo "-- ${stage_name}: $((SECONDS - stage_started))s"
}

stage_begin "determinism lint"
python3 tools/lint/condorg_lint.py --root .
python3 tools/lint/condorg_lint.py --root . --self-test
stage_end

stage_begin "analyze.partition (island-cut report + rule self-test)"
# The static half of the partition-safety story: zero violations in the
# tree, every fixture mutation caught, and an island-cut report covering
# the GRAM/GASS/MDS/GSI message boundaries.
python3 tools/analyze/condorg_partition.py --root . --build-dir build \
  --report build/partition_report.json
python3 tools/analyze/condorg_partition.py --self-test
stage_end

stage_begin "analyze.proto (protocol-conformance report + rule self-test)"
# The spec-checked message graph: every island-cut message type must carry
# a spec entry (sender, receiver, reply, timeout owner, durability), every
# handler must reply on all paths, every durable transition's crash points
# must exist in code AND in the Explorer's enumerated table, and every
# protocol timer must re-arm. Zero unallowlisted findings; the report is
# archived next to the partition report for the three-way profile gate.
python3 tools/analyze/condorg_proto.py --root . --build-dir build \
  --report build/proto_report.json
python3 tools/analyze/condorg_proto.py --self-test
stage_end

jobs="$(nproc 2>/dev/null || echo 4)"

stage_begin "dev build (warnings are errors) + tests"
cmake --preset dev >/dev/null
cmake --build --preset dev -j "${jobs}"
ctest --preset dev -j "${jobs}"
stage_end

stage_begin "clang-tidy (skips when not installed)"
bash scripts/tidy.sh --build-dir build
stage_end

stage_begin "detsan.smoke (determinism sanitizer armed)"
# The dynamic half: quickstart, the fault drill, and the S1 submission
# storm must complete with zero host-ownership violations when DetSan is
# armed via the environment (exit 4 is the detsan-failure exit).
CONDORG_DETSAN=1 ./build/examples/quickstart >/dev/null
CONDORG_DETSAN=1 ./build/examples/fault_drill >/dev/null
CONDORG_DETSAN=1 CONDORG_BENCH_DIR="$(mktemp -d)" \
  ./build/bench/bench_s1_submission_storm \
  --benchmark_filter='BM_SubmissionStorm/1000x8sites' >/dev/null
stage_end

stage_begin "schedule-space exploration"
# The model checker must exhaust the bounded quickstart schedule space with
# zero invariant violations, and must catch two seeded mutations with
# counterexamples that replay to the identical failing audit: a broken
# gatekeeper dedup, and a direct cross-host state access (DetSan).
./build/tools/condorg_explore --scenario quickstart \
  --require-distinct 1000 --require-exhausted
CONDORG_MUTATE_DEDUP=1 ./build/tools/condorg_explore --scenario quickstart \
  --expect-violation >/dev/null
CONDORG_MUTATE_CROSS_HOST=1 ./build/tools/condorg_explore \
  --scenario quickstart --expect-violation >/dev/null
stage_end

stage_begin "kernel.parallel_digest (island kernel, N-independence)"
# The island kernel must produce byte-identical results whatever the
# worker count. Full scenario output (job tables, recovery epilogue) is
# the proxy here; the digest/tracer/explorer matrix is
# tests/parallel_digest_test.cpp, and bench_k1_island_scale gates the
# same property on a campaign 100x this size.
pd_dir="$(mktemp -d)"
CONDORG_PARALLEL=1 ./build/examples/quickstart > "${pd_dir}/q1.out"
CONDORG_PARALLEL=8 ./build/examples/quickstart > "${pd_dir}/q8.out"
cmp "${pd_dir}/q1.out" "${pd_dir}/q8.out"
CONDORG_PARALLEL=2 ./build/examples/fault_drill > "${pd_dir}/f2.out"
CONDORG_PARALLEL=4 ./build/examples/fault_drill > "${pd_dir}/f4.out"
cmp "${pd_dir}/f2.out" "${pd_dir}/f4.out"
rm -rf "${pd_dir}"
stage_end

stage_begin "trace determinism + report self-check"
# Two same-seed quickstart runs must export byte-identical trace JSONL, and
# the report tool must find no structural problems in it.
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
(cd "${trace_dir}" &&
  CONDORG_TRACE=run1.jsonl CONDORG_METRICS=run1-metrics.json \
    "${OLDPWD}/build/examples/quickstart" >/dev/null &&
  CONDORG_TRACE=run2.jsonl \
    "${OLDPWD}/build/examples/quickstart" >/dev/null)
cmp "${trace_dir}/run1.jsonl" "${trace_dir}/run2.jsonl"
./build/tools/condorg_report --trace "${trace_dir}/run1.jsonl" \
  --metrics "${trace_dir}/run1-metrics.json" --self-check
stage_end

stage_begin "report.critical_path (byte-stable causal attribution)"
# The critical-path walk must pass its own self-check (per-job phase
# attributions tile the walk window exactly — violations exit nonzero) and
# both the JSON and the folded-flamegraph exports must be byte-identical
# across the two same-seed runs above.
./build/tools/condorg_report --trace "${trace_dir}/run1.jsonl" \
  --critical-path > "${trace_dir}/cp1.json"
./build/tools/condorg_report --trace "${trace_dir}/run2.jsonl" \
  --critical-path > "${trace_dir}/cp2.json"
cmp "${trace_dir}/cp1.json" "${trace_dir}/cp2.json"
./build/tools/condorg_report --trace "${trace_dir}/run1.jsonl" \
  --flame > "${trace_dir}/cp1.folded"
./build/tools/condorg_report --trace "${trace_dir}/run2.jsonl" \
  --flame > "${trace_dir}/cp2.folded"
cmp "${trace_dir}/cp1.folded" "${trace_dir}/cp2.folded"
stage_end

stage_begin "profile.traffic_matrix (spec == static cut ⊇ dynamic)"
# The three-way gate: the protocol spec's cut types must equal the
# partition analyzer's static classification, the kernel profiler's
# measured cross-partition traffic must stay inside the spec, and the
# dumped profile must render through the report CLI.
./build/tools/condorg_profile_check build/partition_report.json \
  --proto build/proto_report.json \
  --dump build/profile.json
./build/tools/condorg_report --profile build/profile.json \
  --traffic-matrix >/dev/null
stage_end

stage_begin "bench telemetry comparator"
# The comparator's own logic is deterministic and always checked; diffing a
# fresh bench run against the committed baselines needs real (noisy) numbers,
# so it only runs when asked: CONDORG_BENCH_COMPARE=1 after running the
# bench binaries (they drop BENCH_<id>.json next to themselves).
python3 tools/bench_compare.py --self-test
if [[ "${CONDORG_BENCH_COMPARE:-0}" == "1" ]]; then
  # S1 is cheap enough to (re)generate here; M1/M2 are compared from
  # whatever run the operator produced beforehand.
  (cd build/bench && ./bench_s1_submission_storm >/dev/null)
  python3 tools/bench_compare.py bench/baselines build/bench
fi
stage_end

stage_begin "ASan+UBSan build + tests (auditor enabled)"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${jobs}"
ctest --preset asan -j "${jobs}"
stage_end

stage_begin "TSan island kernel (racy-by-construction suite)"
# The windowed executor really runs worker threads, so the digest tests
# double as the race harness: build just the island suites under
# ThreadSanitizer and run them with an 8-thread budget.
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${jobs}" \
  --target island_test parallel_digest_test
CONDORG_PARALLEL=8 ./build-tsan/tests/island_test
./build-tsan/tests/parallel_digest_test
stage_end

echo "ALL CHECKS PASSED"
