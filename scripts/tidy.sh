#!/usr/bin/env bash
# clang-tidy gate over the exported compilation database.
#
#   scripts/tidy.sh [--build-dir DIR] [files...]
#
# Checks come from .clang-tidy at the repo root; per-file suppressions for
# pre-existing findings live in tools/tidy/allowlist.txt (path:check lines).
# With no file arguments, every src/ and tools/ translation unit present in
# compile_commands.json is checked.
#
# Exit status: 0 clean (or clang-tidy unavailable — the container toolchain
# does not ship it, so the gate degrades to a skip rather than failing every
# run); 1 unallowlisted findings; 2 usage/setup error.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="build"
files=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      [[ $# -ge 2 ]] || { echo "tidy.sh: --build-dir needs a value" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    -*)
      echo "tidy.sh: unknown flag $1" >&2; exit 2 ;;
    *)
      files+=("$1"); shift ;;
  esac
done

tidy_bin=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy_bin="${candidate}"
    break
  fi
done
if [[ -z "${tidy_bin}" ]]; then
  echo "tidy.sh: clang-tidy not installed; skipping (gate passes vacuously)"
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "tidy.sh: ${db} not found; configure first: cmake --preset dev" >&2
  exit 2
fi

if [[ ${#files[@]} -eq 0 ]]; then
  # Every first-party TU the database knows about, sorted for stable output.
  mapfile -t files < <(python3 - "${db}" <<'EOF'
import json, os, sys
root = os.getcwd()
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = os.path.relpath(os.path.join(entry["directory"], entry["file"]),
                           root)
    if path.startswith(("src/", "tools/")) and path not in seen:
        seen.add(path)
        print(path)
EOF
  )
  files=($(printf '%s\n' "${files[@]}" | sort))
fi
if [[ ${#files[@]} -eq 0 ]]; then
  echo "tidy.sh: no first-party sources in ${db}" >&2
  exit 2
fi

echo "tidy.sh: ${tidy_bin} over ${#files[@]} translation units"
raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT
status=0
"${tidy_bin}" -p "${build_dir}" --quiet "${files[@]}" >"${raw}" 2>/dev/null \
  || status=$?
if [[ ${status} -gt 1 ]]; then
  echo "tidy.sh: ${tidy_bin} itself failed (exit ${status})" >&2
  sed -n '1,40p' "${raw}" >&2
  exit 2
fi

# Keep findings whose (file, check) pair is not allowlisted, and fail on
# stale suppressions: an allowlist entry that matched nothing in a real
# clang-tidy run is debt that outlived its finding — it must be deleted,
# or it will silently swallow the next genuine finding in that file.
# (Entries against files checked only on other toolchains stay honest
# because this code only runs when clang-tidy actually produced output.)
python3 - "${raw}" tools/tidy/allowlist.txt <<'EOF'
import os, re, sys
finding = re.compile(r"^(?P<path>[^:\s]+):\d+:\d+: (?:warning|error): "
                     r".*\[(?P<checks>[\w.,-]+)\]$")
allows = {}
with open(sys.argv[2], encoding="utf-8") as fh:
    for line in fh:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        path, check = line.rsplit(":", 1)
        allows.setdefault(path.strip(), set()).add(check.strip())
root = os.getcwd()
kept, shown = 0, set()
used = set()
with open(sys.argv[1], encoding="utf-8", errors="replace") as fh:
    for line in fh:
        m = finding.match(line.rstrip())
        if not m:
            continue
        rel = os.path.relpath(m.group("path"), root)
        checks = set(m.group("checks").split(","))
        if checks <= allows.get(rel, set()):
            used.update((rel, check) for check in checks)
            continue
        if line not in shown:  # headers repeat across TUs
            shown.add(line)
            kept += 1
            sys.stdout.write(line)
stale = sorted((rel, check) for rel, checks in allows.items()
               for check in checks if (rel, check) not in used)
if kept:
    print(f"\ntidy.sh: {kept} unallowlisted finding(s) — fix, NOLINT with a "
          "reason, or allowlist in tools/tidy/allowlist.txt")
    sys.exit(1)
if stale:
    for rel, check in stale:
        print(f"tidy.sh: STALE suppression {rel}:{check} matched no "
              "finding — delete it from tools/tidy/allowlist.txt")
    sys.exit(1)
print("tidy.sh: clean (no stale suppressions)")
EOF
