// GlideIn (§5): dynamically build a personal Condor pool out of three grid
// sites, run checkpointable vanilla jobs on it, watch one site's allocation
// expire mid-job (eviction + checkpoint + migration), and watch idle
// daemons shut themselves down afterwards.
#include <cstdio>

#include "condorg/core/agent.h"
#include "condorg/gass/file_service.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;

int main() {
  cw::GridTestbed testbed(99);
  for (const char* name :
       {"pbs.anl.gov", "lsf.ncsa.edu", "condor.wisc.edu"}) {
    cw::SiteSpec spec;
    spec.name = name;
    spec.cpus = 12;
    testbed.add_site(spec);
  }
  testbed.add_submit_host("desktop.wisc.edu");

  // Central repository with the glidein binaries (fetched over GridFTP by
  // the bootstrap script, as in the paper).
  condorg::gass::FileService repo(testbed.world().add_host("repo.wisc.edu"),
                                  testbed.world().net(), "gridftp");
  repo.store().put("condor/startd-bundle", "CONDOR-BINARIES", 25 << 20);

  core::CondorGAgent agent(testbed.world(), "desktop.wisc.edu");
  core::GlideInOptions options;
  options.walltime = 2 * 3600.0;   // short allocations: expect migrations
  options.idle_timeout = 1200.0;
  options.checkpoint_interval = 300.0;
  options.tick_interval = 120.0;
  options.binary_repository = repo.address();
  auto& glideins = agent.enable_glideins(options);
  for (std::size_t i = 0; i < testbed.sites().size(); ++i) {
    glideins.add_site(core::GlideInSite{testbed.site(i).spec.name,
                                        testbed.site(i).gatekeeper_address(),
                                        testbed.site(i).cluster, 6, 1});
  }
  agent.start();

  // 30 checkpointable jobs of ~100 minutes: longer than one allocation
  // minus startup, so several must migrate with their checkpoints.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 30; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kVanilla;
    job.runtime_seconds = 6000.0;
    ids.push_back(agent.submit(job));
  }

  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 4 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 600.0);
  }
  int completed = 0;
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted) ++completed;
  }

  // Let idle daemons drain.
  testbed.world().sim().run_until(testbed.world().now() + 4 * 3600.0);

  std::printf("glide-ins: %llu submitted, %llu started, %llu exited, %zu "
              "still alive\n",
              static_cast<unsigned long long>(glideins.glideins_submitted()),
              static_cast<unsigned long long>(glideins.glideins_started()),
              static_cast<unsigned long long>(glideins.glideins_exited()),
              glideins.live_glideins());
  std::printf("binary fetches from repository: %llu\n",
              static_cast<unsigned long long>(repo.gets_served()));
  std::printf("jobs completed: %d/%zu\n", completed, ids.size());
  std::printf("evictions survived (jobs resumed from checkpoints): %zu\n",
              agent.log().count(core::LogEventKind::kEvicted));
  std::printf("total wall time: %s\n",
              condorg::util::format_duration(testbed.world().now()).c_str());
  return completed == static_cast<int>(ids.size()) &&
                 glideins.live_glideins() == 0
             ? 0
             : 1;
}
