// Fault drill: walk through the paper's four failure types (§4.2) against
// a live campaign and narrate the agent's recovery: F1 JobManager crash,
// F2 site front-end crash, F3 submit-machine crash, F4 network partition.
#include <cstdio>
#include <cstdlib>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/det.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/grid_builder.h"
#ifdef CONDORG_AUDIT
#include "condorg/core/audit.h"
#endif

namespace core = condorg::core;
namespace cw = condorg::workloads;

int main() {
  cw::GridTestbed testbed(1984);
  // Tracing is always on here: the drill doubles as the exercise for the
  // auditor's trace-root check (every terminal job must close its root span
  // even across the crashes below). CONDORG_TRACE=<path> exports it.
  testbed.world().sim().tracer().set_enabled(true);
  cw::SiteSpec spec;
  spec.name = "pbs.anl.gov";
  spec.cpus = 16;
  testbed.add_site(spec);
  spec.name = "lsf.ncsa.edu";
  testbed.add_site(spec);
  testbed.add_submit_host("submit.wisc.edu");

  core::CondorGAgent agent(testbed.world(), "submit.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

#ifdef CONDORG_AUDIT
  // Audit aggressively: the drills are exactly the mutations the invariants
  // are meant to survive.
  core::StandardAuditor auditor(testbed.world().sim(), /*period=*/64);
  auditor.attach_agent(agent);
  for (const auto& site : testbed.sites()) {
    auditor.attach_gatekeeper(*site->gatekeeper);
  }
#endif

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.runtime_seconds = 3 * 3600.0;  // long enough to straddle the drills
    ids.push_back(agent.submit(job));
  }
  auto& world = testbed.world();
  auto banner = [&](const char* what) {
    std::printf("[%-11s] %s\n",
                condorg::util::format_duration(world.now()).c_str(), what);
  };

  world.sim().run_until(1800.0);
  banner("campaign running; beginning failure drills");

  // F1: kill every JobManager at site 0 (processes only).
  {
    int killed = 0;
    for (const auto& [id, job] : agent.schedd().jobs()) {
      if (job.gram_site == "pbs.anl.gov" && !job.gram_contact.empty()) {
        if (testbed.site(0).gatekeeper->kill_jobmanager(job.gram_contact)) {
          ++killed;
        }
      }
    }
    banner(condorg::util::format("F1: killed %d JobManager processes",
                                 killed)
               .c_str());
  }
  world.sim().run_until(3600.0);

  // F2: crash the other site's front-end machine for 20 minutes.
  testbed.site(1).frontend->crash_for(1200.0);
  banner("F2: crashed lsf.ncsa.edu front-end (20 min outage)");
  world.sim().run_until(6000.0);

  // F4: partition the submit machine from site 0 for 15 minutes.
  world.net().set_partitioned("submit.wisc.edu", "pbs.anl.gov", true);
  banner("F4: partitioned submit machine from pbs.anl.gov");
  world.sim().schedule_at(world.now() + 900.0, [&] {
    world.net().set_partitioned("submit.wisc.edu", "pbs.anl.gov", false);
  });
  world.sim().run_until(8000.0);

  // F3: crash the submit machine itself for 10 minutes.
  agent.host().crash_for(600.0);
  banner("F3: crashed the submit machine (GridManager + Schedd)");

  while (!agent.schedd().all_terminal() && world.now() < 4 * 86400.0) {
    world.sim().run_until(world.now() + 600.0);
  }

  int completed = 0;
  for (const auto id : ids) {
    if (agent.query(id)->status == core::JobStatus::kCompleted) ++completed;
  }
  std::size_t executions = 0;
  for (const auto& site : testbed.sites()) {
    for (const auto& record : site->scheduler->history()) {
      if (record.state == condorg::batch::JobState::kCompleted) ++executions;
    }
  }
  banner("drill complete");
  std::printf("\njobs completed:            %d/%zu\n", completed, ids.size());
  std::printf("completed site executions: %zu (exactly-once requires <= %zu "
              "successful runs counted once each)\n",
              executions, ids.size());
  std::printf("JobManager restarts:       %llu\n",
              static_cast<unsigned long long>(
                  agent.gridmanager().jobmanager_restarts()));
  std::printf("JOBMANAGER_LOST events:    %zu\n",
              agent.log().count(core::LogEventKind::kJobManagerLost));
  std::printf("RECONNECTED events:        %zu\n",
              agent.log().count(core::LogEventKind::kReconnected));
  std::printf("probes sent:               %llu\n",
              static_cast<unsigned long long>(
                  agent.gridmanager().probes_sent()));
  bool ok =
      completed == static_cast<int>(ids.size()) && executions == ids.size();
#ifdef CONDORG_AUDIT
  std::printf("\n%s", auditor.report().c_str());
  ok = ok && auditor.ok();
#endif
  const auto& tracer = testbed.world().sim().tracer();
  std::printf("trace records:             %zu (%zu spans still open)\n",
              tracer.records().size(), tracer.open_span_count());
  const auto recoveries =
      tracer.paired_event_latencies("recovery.begin", "recovery.end");
  std::printf("recovery windows traced:   %zu\n", recoveries.size());
  if (const char* trace_path = std::getenv("CONDORG_TRACE")) {
    if (tracer.write_jsonl(trace_path)) {
      std::printf("trace written to:          %s\n", trace_path);
    }
  }
  ok = ok && condorg::det::report("fault_drill") == 0;
  std::printf("\n%s\n", ok ? "ALL JOBS RECOVERED, EXACTLY ONCE."
                           : "RECOVERY INCOMPLETE OR DUPLICATED WORK!");
  return ok ? 0 : 1;
}
