// The CMS experience (§6) as a DAGMan pipeline, scaled down: a DAG at
// "Caltech" triggers simulation jobs on the Wisconsin Condor pool; each
// job's events are shipped via GridFTP to the NCSA repository; once all
// simulation data is in, one reconstruction job runs on the NCSA PBS
// cluster. The run verifies, by digest, that every event was produced,
// transferred, and reconstructed exactly once.
#include <cstdio>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/gass/client.h"
#include "condorg/gass/file_service.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/cms_pipeline.h"
#include "condorg/workloads/grid_builder.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;
namespace cg = condorg::gass;

int main() {
  cw::CmsConfig config;
  config.simulation_jobs = 20;  // scaled from the paper's 100
  config.events_per_job = 500;

  // --- topology: Caltech submit node, UW pool, NCSA repository+cluster ---
  cw::GridTestbed testbed(42);
  cw::SiteSpec uw;
  uw.name = "condor.wisc.edu";
  uw.kind = cw::SiteKind::kCondorPool;
  uw.cpus = 64;
  testbed.add_site(uw);
  cw::SiteSpec ncsa;
  ncsa.name = "pbs.ncsa.edu";
  ncsa.cpus = 16;
  testbed.add_site(ncsa);
  testbed.add_submit_host("cms.caltech.edu");
  cg::FileService repository(testbed.world().add_host("mss.ncsa.edu"),
                             testbed.world().net(), "gridftp");

  core::CondorGAgent agent(testbed.world(), "cms.caltech.edu");
  agent.start();
  cg::FileClient mover(agent.host(), testbed.world().net(), "cms.mover");

  // --- the DAG: sim_i -> xfer_i -> reconstruction ---
  // Simulation jobs run at UW; each POST stages the job's event file into
  // the agent's GASS store and asks the repository to pull it (GridFTP
  // third-party transfer). Reconstruction waits for every transfer.
  core::Dag dag;
  int transfers_done = 0;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    core::DagNode sim;
    sim.name = "sim" + std::to_string(j);
    sim.job.universe = core::Universe::kGrid;
    sim.job.grid_site = "condor.wisc.edu";
    sim.job.runtime_seconds =
        config.events_per_job * config.seconds_per_event_sim;
    sim.job.output = "events/run" + std::to_string(j) + ".dat";
    sim.job.output_size = cw::cms_job_output_bytes(config);
    sim.post = [&, j] {
      // The *content* of the events file is reproducible from the seed;
      // place it at the agent's GASS store (overwriting the synthetic
      // output the JobManager staged) and ship it to the repository.
      agent.gridmanager().gass().store().put(
          "events/run" + std::to_string(j) + ".dat",
          cw::cms_job_output(config, j), cw::cms_job_output_bytes(config));
      mover.pull(repository.address(), "store/run" + std::to_string(j),
                 agent.gridmanager().gass_address(),
                 "events/run" + std::to_string(j) + ".dat",
                 [&transfers_done](bool ok) {
                   if (ok) ++transfers_done;
                 });
    };
    dag.add_node(std::move(sim));
  }
  core::DagNode reco;
  reco.name = "reconstruction";
  reco.job.universe = core::Universe::kGrid;
  reco.job.grid_site = "pbs.ncsa.edu";
  reco.job.runtime_seconds = config.simulation_jobs * config.events_per_job *
                             config.seconds_per_event_reco / 16.0;
  dag.add_node(std::move(reco));
  for (int j = 0; j < config.simulation_jobs; ++j) {
    dag.add_edge("sim" + std::to_string(j), "reconstruction");
  }

  // Throttle simulation fan-out (the paper's disk-buffer guard).
  core::DagManOptions dag_options;
  dag_options.max_jobs_in_flight = 8;
  auto dagman = agent.make_dagman(std::move(dag), dag_options);
  dagman->start();

  while (!dagman->complete() && !dagman->failed() &&
         testbed.world().now() < 30 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 600.0);
  }

  // --- verification: reconstruct from what actually reached NCSA ---
  std::vector<std::string> files;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    const auto file = repository.store().get("store/run" + std::to_string(j));
    files.push_back(file ? file->content : "");
  }
  const auto measured = cw::cms_reconstruct_from_files(config.run_seed, files);
  const auto expected = cw::cms_reconstruction_digest(config);

  const long long events =
      static_cast<long long>(config.simulation_jobs) * config.events_per_job;
  std::printf("pipeline %s in %s\n",
              dagman->complete() ? "completed" : "INCOMPLETE",
              condorg::util::format_duration(testbed.world().now()).c_str());
  std::printf("simulated %lld events across %d jobs; %d transfers to MSS\n",
              events, config.simulation_jobs, transfers_done);
  std::printf("reconstruction digest: %016llx (expected %016llx) — %s\n",
              static_cast<unsigned long long>(measured),
              static_cast<unsigned long long>(expected),
              measured == expected ? "EXACTLY-ONCE VERIFIED" : "MISMATCH");
  return (dagman->complete() && measured == expected) ? 0 : 1;
}
