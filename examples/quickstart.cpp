// Quickstart: build a two-site grid, start a Condor-G agent on a submit
// machine, run 20 grid-universe jobs across the sites, and read the user
// log — the paper's §4.1 user experience in ~60 lines of calling code.
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/sim/det.h"
#include "condorg/util/json.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/grid_builder.h"
#ifdef CONDORG_AUDIT
#include "condorg/core/audit.h"
#endif

namespace core = condorg::core;
namespace cw = condorg::workloads;

int main() {
  // --- the grid: one PBS cluster at ANL, one LSF machine at NCSA ---
  cw::GridTestbed testbed(/*seed=*/2001);
  // Observability: CONDORG_TRACE=<path> exports the run's trace as JSONL,
  // CONDORG_METRICS=<path> a metrics snapshot — both readable with
  // tools/condorg_report. Tracing goes on before any daemon exists so every
  // job has a complete root span.
  // CONDORG_PROFILE=<path> additionally dumps the kernel profiler (the
  // World constructor already armed it for any non-"0" value; "1" arms
  // without dumping).
  const char* trace_path = std::getenv("CONDORG_TRACE");
  const char* metrics_path = std::getenv("CONDORG_METRICS");
  const char* profile_path = std::getenv("CONDORG_PROFILE");
  if (trace_path != nullptr) {
    testbed.world().sim().tracer().set_enabled(true);
  }
  cw::SiteSpec pbs;
  pbs.name = "pbs.anl.gov";
  pbs.kind = cw::SiteKind::kPbs;
  pbs.cpus = 16;
  testbed.add_site(pbs);

  cw::SiteSpec lsf;
  lsf.name = "lsf.ncsa.edu";
  lsf.kind = cw::SiteKind::kLsf;
  lsf.cpus = 8;
  testbed.add_site(lsf);

  // --- the agent on the user's desktop ---
  testbed.add_submit_host("desktop.wisc.edu");
  core::CondorGAgent agent(testbed.world(), "desktop.wisc.edu");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

#ifdef CONDORG_AUDIT
  core::StandardAuditor auditor(testbed.world().sim(), /*period=*/256);
  auditor.attach_agent(agent);
  for (const auto& site : testbed.sites()) {
    auditor.attach_gatekeeper(*site->gatekeeper);
  }
#endif

  // --- submit 20 jobs exactly as one would to a local queue ---
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) {
    core::JobDescription job;
    job.universe = core::Universe::kGrid;
    job.executable = "render_frame";
    job.runtime_seconds = 1800 + 120 * i;  // 30-68 minutes each
    job.output_size = 4 << 20;
    ids.push_back(agent.submit(job));
  }
  std::printf("submitted %zu jobs to the grid\n", ids.size());

  // --- let the (simulated) grid run until everything finishes ---
  while (!agent.schedd().all_terminal() &&
         testbed.world().now() < 48 * 3600.0) {
    testbed.world().sim().run_until(testbed.world().now() + 300.0);
  }

  // --- query results like condor_q / condor_history ---
  int completed = 0;
  for (const auto id : ids) {
    const auto job = agent.query(id);
    if (job->status == core::JobStatus::kCompleted) ++completed;
    std::printf("job %-3llu  %-10s site=%-14s wall=%s\n",
                static_cast<unsigned long long>(id),
                core::to_string(job->status), job->gram_site.c_str(),
                condorg::util::format_duration(job->completion_time -
                                               job->submit_time)
                    .c_str());
  }
  std::printf("\n%d/%zu jobs completed in %s of simulated time\n", completed,
              ids.size(),
              condorg::util::format_duration(testbed.world().now()).c_str());

  // --- the user log: a complete history of every job ---
  std::printf("\nfirst 10 user-log events:\n");
  int shown = 0;
  for (const auto& event : agent.log().events()) {
    if (shown++ >= 10) break;
    std::printf("  t=%-9.1f job %-3llu %s %s\n", event.time,
                static_cast<unsigned long long>(event.job_id),
                core::to_string(event.kind), event.detail.c_str());
  }

#ifdef CONDORG_AUDIT
  std::printf("\n%s", auditor.report().c_str());
  if (!auditor.ok()) return 2;
#endif

  // --- export the observability artifacts, if asked for ---
  if (trace_path != nullptr) {
    if (!testbed.world().sim().tracer().write_jsonl(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path);
      return 3;
    }
    std::printf("trace: %zu records -> %s\n",
                testbed.world().sim().tracer().records().size(), trace_path);
  }
  if (metrics_path != nullptr) {
    const std::string json =
        testbed.world().sim().metrics().to_json(testbed.world().now());
    if (!condorg::util::write_text_file(metrics_path, json + "\n")) {
      std::fprintf(stderr, "failed to write metrics to %s\n", metrics_path);
      return 3;
    }
    std::printf("metrics: %zu series -> %s\n",
                testbed.world().sim().metrics().size(), metrics_path);
  }
  if (profile_path != nullptr && std::string_view(profile_path) != "0" &&
      std::string_view(profile_path) != "1") {
    const std::string json =
        testbed.world().sim().profiler().to_json(/*include_wall=*/false)
            .dump();
    if (!condorg::util::write_text_file(profile_path, json + "\n")) {
      std::fprintf(stderr, "failed to write profile to %s\n", profile_path);
      return 3;
    }
    std::printf("profile: -> %s\n", profile_path);
  }
  // Determinism sanitizer (CONDORG_DETSAN=1 or -DCONDORG_DETSAN=ON):
  // any host-ownership violation is a partition-safety failure.
  if (condorg::det::report("quickstart") > 0) return 4;
  return completed == static_cast<int>(ids.size()) ? 0 : 1;
}
