// The GridGaussian portal (§6): a long-running Gaussian98-style job whose
// output must (a) be reliably stored at the NCSA Mass Storage System and
// (b) be viewable by the user *while the job runs*, despite a wobbly WAN.
// G-Cat buffers output on local scratch and ships partial-file chunks.
#include <cstdio>

#include "condorg/gass/client.h"
#include "condorg/gass/file_service.h"
#include "condorg/sim/world.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/gcat.h"

namespace cs = condorg::sim;
namespace cg = condorg::gass;
namespace cw = condorg::workloads;

int main() {
  cs::World world(1234);
  cs::Host& worker = world.add_host("node07.cluster.uiuc.edu");
  cs::Host& mss_host = world.add_host("mss.ncsa.edu");
  cg::FileService mss(mss_host, world.net(), "mss");

  // A WAN whose bandwidth oscillates between healthy and terrible, with a
  // 10-minute outage in the middle of the run.
  auto set_bandwidth = [&](double mbps) {
    cs::LinkConfig link;
    link.latency = 0.08;
    link.bandwidth_bps = mbps * 1e6;
    world.net().set_link("node07.cluster.uiuc.edu", "mss.ncsa.edu", link);
  };
  set_bandwidth(8.0);
  for (int cycle = 0; cycle < 20; ++cycle) {
    world.sim().schedule_at(cycle * 600.0, [&, cycle] {
      set_bandwidth(cycle % 2 == 0 ? 8.0 : 0.8);
    });
  }
  world.sim().schedule_at(4000.0, [&] {
    world.net().set_partitioned("node07.cluster.uiuc.edu", "mss.ncsa.edu",
                                true);
  });
  world.sim().schedule_at(4600.0, [&] {
    world.net().set_partitioned("node07.cluster.uiuc.edu", "mss.ncsa.edu",
                                false);
  });

  // The Gaussian job: emits ~512 KB of log output every 20 s for 3 hours.
  cw::GCatOptions options;
  options.chunk_bytes = 2 << 20;
  options.flush_interval = 60.0;
  cw::GCat gcat(worker, world.net(), mss.address(), "gaussian/h2o.out",
                options);

  const int total_ticks = 540;  // 3 hours / 20 s
  int tick = 0;
  bool job_finished = false;
  std::function<void()> produce = [&] {
    if (tick >= total_ticks) {
      gcat.finish([&] { job_finished = true; });
      return;
    }
    gcat.on_output(condorg::util::format("SCF iteration %d converged\n", tick),
                   512 << 10);
    ++tick;
    worker.post(20.0, produce);
  };
  worker.post(0.0, produce);

  // A user "viewing the output as it is produced": sample the MSS copy
  // every 10 minutes and report how far it lags production.
  std::printf("%-10s %14s %14s %12s\n", "time", "produced", "visible@MSS",
              "lag");
  std::function<void()> watch = [&] {
    if (job_finished) return;
    const auto file = mss.store().get("gaussian/h2o.out");
    const double produced = static_cast<double>(gcat.bytes_produced());
    const double visible = file ? static_cast<double>(file->size()) : 0.0;
    std::printf("%-10s %14s %14s %12s\n",
                condorg::util::format_duration(world.now()).c_str(),
                condorg::util::format_bytes(produced).c_str(),
                condorg::util::format_bytes(visible).c_str(),
                condorg::util::format_bytes(produced - visible).c_str());
    worker.post(600.0, watch);
  };
  worker.post(1.0, watch);

  world.sim().run_until(6 * 3600.0);

  const auto final_file = mss.store().get("gaussian/h2o.out");
  std::printf("\njob finished: %s; MSS holds %s of %s produced (%llu chunks)\n",
              job_finished ? "yes" : "no",
              final_file
                  ? condorg::util::format_bytes(
                        static_cast<double>(final_file->size()))
                        .c_str()
                  : "nothing",
              condorg::util::format_bytes(
                  static_cast<double>(gcat.bytes_produced()))
                  .c_str(),
              static_cast<unsigned long long>(gcat.chunks_sent()));
  std::printf("peak scratch buffer during outages: %s\n",
              condorg::util::format_bytes(
                  static_cast<double>(gcat.peak_buffer_bytes()))
                  .c_str());
  const bool intact =
      final_file && final_file->size() == gcat.bytes_produced();
  std::printf("output reliably stored: %s\n", intact ? "YES" : "NO");
  return job_finished && intact ? 0 : 1;
}
