// Master-worker QAP branch-and-bound on a multi-site grid — a scaled-down
// version of the paper's flagship computation (§6): the master enumerates
// branch-and-bound subtrees, each subtree is an independent grid job, and
// the incumbent tightens as workers report back. The instance is solved to
// *proven optimality* and cross-checked against a direct sequential solve.
#include <cstdio>
#include <map>

#include "condorg/core/agent.h"
#include "condorg/core/broker.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/grid_builder.h"
#include "condorg/workloads/qap.h"
#include "condorg/workloads/qap_master.h"

namespace core = condorg::core;
namespace cw = condorg::workloads;

namespace {

/// Simulated seconds a worker needs per B&B node (models the LAP-heavy
/// inner loop on turn-of-the-millennium hardware).
constexpr double kSecondsPerNode = 0.4;

}  // namespace

int main() {
  // --- instance ---
  condorg::util::Rng instance_rng(7);
  const auto instance = cw::QapInstance::random(9, instance_rng);
  cw::QapMaster master(instance, /*branch_depth=*/2);
  std::printf("QAP n=%d: %zu independent subtree work units\n", instance.n,
              master.total_units());

  // --- grid: four sites of varying size ---
  cw::GridTestbed testbed(7);
  for (const auto& [name, cpus] :
       std::map<std::string, int>{{"condor.wisc.edu", 24},
                                  {"pbs.anl.gov", 16},
                                  {"lsf.ncsa.edu", 8},
                                  {"condor.iastate.edu", 12}}) {
    cw::SiteSpec spec;
    spec.name = name;
    spec.cpus = cpus;
    testbed.add_site(spec);
  }
  testbed.add_submit_host("master.mcs.anl.gov");
  core::CondorGAgent agent(testbed.world(), "master.mcs.anl.gov");
  agent.set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
  agent.start();

  // --- drive: each work unit becomes one grid job. The unit is solved
  //     when its job completes; its simulated runtime reflects the real
  //     number of B&B nodes the subtree needed. ---
  std::map<std::uint64_t, cw::QapWorkUnit> in_flight;  // job id -> unit
  std::map<std::uint64_t, cw::QapResult> results;
  std::size_t max_parallel = 48;

  std::function<void()> pump = [&] {
    while (in_flight.size() < max_parallel) {
      auto unit = master.next_unit();
      if (!unit) break;
      // Solve eagerly (cheap at this scale) to derive the job's true cost;
      // the *grid* work is modelled by the job's simulated runtime.
      const auto result =
          cw::solve_qap_subtree(instance, unit->prefix, unit->upper_bound);
      core::JobDescription job;
      job.universe = core::Universe::kGrid;
      job.runtime_seconds =
          std::max(30.0, static_cast<double>(result.nodes) * kSecondsPerNode);
      job.tag = "qap-unit-" + std::to_string(unit->id);
      const auto job_id = agent.submit(job);
      in_flight.emplace(job_id, *unit);
      results.emplace(job_id, result);
    }
  };
  agent.schedd().add_queue_listener([&](const core::Job& job) {
    const auto it = in_flight.find(job.id);
    if (it == in_flight.end()) return;
    if (job.status == core::JobStatus::kCompleted) {
      master.complete_unit(it->second.id, results.at(job.id));
      in_flight.erase(it);
      results.erase(job.id);
      pump();
    }
  });
  pump();

  while (!master.done() && testbed.world().now() < 30 * 86400.0) {
    testbed.world().sim().run_until(testbed.world().now() + 600.0);
    pump();
  }

  // --- verify against a direct solve ---
  const auto direct = cw::solve_qap(instance);
  std::printf("\ngrid solve:   optimum %lld after %llu LAPs, %llu nodes\n",
              static_cast<long long>(master.incumbent()),
              static_cast<unsigned long long>(master.total_laps()),
              static_cast<unsigned long long>(master.total_nodes()));
  std::printf("direct solve: optimum %lld\n",
              static_cast<long long>(direct.best_cost));
  std::printf("wall time on the grid: %s\n",
              condorg::util::format_duration(testbed.world().now()).c_str());
  std::printf("permutation: ");
  for (const int loc : master.best_perm()) std::printf("%d ", loc);
  std::printf("\n");

  if (master.incumbent() != direct.best_cost) {
    std::printf("MISMATCH — grid result is wrong!\n");
    return 1;
  }
  std::printf("results agree: the grid computation is correct.\n");
  return 0;
}
