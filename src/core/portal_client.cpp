#include "condorg/core/portal_client.h"

#include <algorithm>
#include <utility>

namespace condorg::core {

namespace {
constexpr const char* kProgressKey = "portal_client/progress";
}  // namespace

PortalClient::PortalClient(sim::Host& host, sim::Network& network,
                           Options options)
    : host_(host),
      options_(std::move(options)),
      rpc_(host, network, "portal_client." + options_.user),
      remaining_(options_.total_jobs) {
  reload_progress();
  boot_id_ = host_.add_boot([this] {
    reload_progress();
    if (started_ && !in_flight_) submit_next();
  });
  crash_listener_ = host_.add_crash_listener([this] { in_flight_ = false; });
}

PortalClient::~PortalClient() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
}

void PortalClient::start(std::function<void()> on_drained) {
  on_drained_ = std::move(on_drained);
  if (started_) return;
  started_ = true;
  submit_next();
}

void PortalClient::persist_progress() {
  sim::Payload progress;
  progress.set_uint("next_seq", next_seq_);
  progress.set_uint("remaining", remaining_);
  host_.disk().put(kProgressKey, progress.serialize());
}

void PortalClient::reload_progress() {
  const auto record = host_.disk().get(kProgressKey);
  if (!record) return;
  const sim::Payload progress = sim::Payload::deserialize(*record);
  next_seq_ = progress.get_uint("next_seq", 1);
  remaining_ = progress.get_uint("remaining", options_.total_jobs);
}

void PortalClient::submit_next() {
  if (remaining_ == 0) {
    if (on_drained_) {
      auto done = std::move(on_drained_);
      on_drained_ = nullptr;
      done();
    }
    return;
  }
  if (in_flight_) return;
  in_flight_ = true;
  const std::uint64_t count = std::min(remaining_, options_.batch_size);
  const std::uint64_t seq = next_seq_;
  sim::Payload payload;
  payload.set("user", options_.user);
  payload.set_uint("seq", seq);
  payload.set_uint("count", count);
  payload.set("deliver_to", options_.deliver_to.str());
  payload.set_double("runtime", options_.runtime_seconds);
  payload.set_int("cpus", options_.cpus);
  if (!options_.requirements.empty()) {
    payload.set("requirements", options_.requirements);
  }
  if (!options_.rank.empty()) payload.set("rank", options_.rank);
  ++batches_sent_;
  rpc_.call(options_.portal, "portal.submit", std::move(payload),
            options_.submit_timeout,
            [this, count](bool ok, const sim::Payload& reply) {
              in_flight_ = false;
              if (ok && reply.get("status") == "ok") {
                remaining_ -= count;
                ++next_seq_;
                persist_progress();
                submit_next();
                return;
              }
              // Busy portal or lost ack: same sequence again after a
              // backoff — the portal's admission record dedups a batch
              // that actually made it in.
              ++retries_;
              host_.post(options_.retry_backoff, life_.wrap([this] {
                            if (!in_flight_) submit_next();
                          }));
            });
}

}  // namespace condorg::core
