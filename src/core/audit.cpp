#include "condorg/core/audit.h"

#include <map>

#include "condorg/condor/pool_negotiator.h"
#include "condorg/core/agent.h"
#include "condorg/core/credential_manager.h"
#include "condorg/core/gridmanager.h"
#include "condorg/core/schedd.h"
#include "condorg/gram/gatekeeper.h"
#include "condorg/gram/jobmanager.h"
#include "condorg/sim/simulation.h"

namespace condorg::core {

StandardAuditor::StandardAuditor(sim::Simulation& sim, std::uint64_t period)
    : sim_(sim) {
  // The cross-daemon checks close over the attach lists, so daemons can be
  // attached in any order after construction.
  auditor_.add_check(
      "cross/unique-jobmanager", [this](std::vector<std::string>& out) {
        // callback|tag -> contact of the JobManager already running the job.
        // The tag alone is not unique across users; qualified by the client
        // callback address it names exactly one queue entry.
        std::map<std::string, std::string> owner;
        for (gram::Gatekeeper* gatekeeper : gatekeepers_) {
          if (!gatekeeper->options().dedup_submissions) continue;  // A1 mode
          gatekeeper->for_each_jobmanager([&](const gram::JobManager& jm) {
            if (!jm.process_alive() || !jm.committed() ||
                gram::is_terminal(jm.state())) {
              return;
            }
            const std::string key =
                jm.client_callback().str() + "|" + jm.spec().tag;
            const auto [it, inserted] = owner.emplace(key, jm.contact());
            if (!inserted) {
              out.push_back("job " + jm.spec().tag +
                            " live in two jobmanagers: " + it->second +
                            " and " + jm.contact());
            }
          });
        }
      });
  auditor_.add_check(
      "cross/no-unknown-messages", [this](std::vector<std::string>& out) {
        // Every dispatch tail counts messages it had no arm for into
        // unknown_message{daemon,type}. A nonzero series means protocol
        // drift: a sender ships a type the receiver no longer (or never)
        // handles, and retries/timeouts are masking it. Deliberately
        // unhandled types must be listed here with a justification.
        static const std::map<std::string, std::string> ignored = {
            // {"unknown_message{daemon=X,type=Y}", "why it is ignored"}
        };
        sim_.metrics().for_each_counter(
            "unknown_message", [&](std::string_view key, std::uint64_t n) {
              if (n == 0 || ignored.count(std::string(key))) return;
              out.push_back(std::string(key) + " = " + std::to_string(n) +
                            " (message reached a daemon with no handler)");
            });
      });
  auditor_.add_check(
      "cross/seq-monotonic", [this](std::vector<std::string>& out) {
        // allocate_seq() persists the bumped allocator before handing a seq
        // out, so a queue entry at or above the allocator carries a sequence
        // number that was never allocated.
        for (GridManager* gridmanager : gridmanagers_) {
          const std::uint64_t next = gridmanager->gram().next_seq();
          for (const auto& [id, job] : gridmanager->schedd().jobs()) {
            if (job.gram_seq != 0 && job.gram_seq >= next) {
              out.push_back("job " + std::to_string(id) + " carries seq " +
                            std::to_string(job.gram_seq) +
                            " but the client allocator is at " +
                            std::to_string(next));
            }
          }
        }
      });
  auditor_.add_check(
      "cross/record-on-disk", [this](std::vector<std::string>& out) {
        // A Running grid job's contact must be backed by a JobManager record
        // on the site front-end's stable storage (persisted before the
        // submit reply, never deleted) — it is what the §4.2 restart ladder
        // reattaches to after any front-end crash.
        for (GridManager* gridmanager : gridmanagers_) {
          for (const auto& [id, job] : gridmanager->schedd().jobs()) {
            if (job.desc.universe != Universe::kGrid ||
                job.status != JobStatus::kRunning ||
                job.gram_contact.empty()) {
              continue;
            }
            const auto colon = job.gram_contact.rfind(':');
            const std::string site = colon == std::string::npos
                                         ? job.gram_contact
                                         : job.gram_contact.substr(0, colon);
            for (gram::Gatekeeper* gatekeeper : gatekeepers_) {
              if (gatekeeper->host().name() != site) continue;
              if (!gatekeeper->host().disk().contains(
                      gram::JobManager::record_key(job.gram_contact))) {
                out.push_back("running job " + std::to_string(id) +
                              " has no stable record for contact " +
                              job.gram_contact + " at " + site);
              }
            }
          }
        }
      });
  auditor_.add_check(
      "cross/trace-roots", [this](std::vector<std::string>& out) {
        // Observability must tell the truth about lifecycles: with tracing
        // on, a terminal queue entry has exactly one closed root span, an
        // open root belongs to a live entry, and no root was begun twice.
        const sim::Tracer& tracer = sim_.tracer();
        if (!tracer.enabled()) return;
        for (Schedd* schedd : schedds_) {
          const std::string& host = schedd->host().name();
          for (const auto& [id, job] : schedd->jobs()) {
            const bool terminal = job.status == JobStatus::kCompleted ||
                                  job.status == JobStatus::kRemoved;
            const sim::Tracer::RootState state =
                tracer.job_root_state(host, id);
            if (state == sim::Tracer::RootState::kNone) {
              continue;  // submitted before tracing was switched on
            }
            if (state == sim::Tracer::RootState::kDuplicate) {
              out.push_back("job " + std::to_string(id) + " on " + host +
                            " has a duplicated root span");
            } else if (terminal &&
                       state != sim::Tracer::RootState::kClosed) {
              out.push_back("terminal job " + std::to_string(id) + " on " +
                            host + " lacks a closed root span");
            } else if (!terminal &&
                       state == sim::Tracer::RootState::kClosed) {
              out.push_back("live job " + std::to_string(id) + " on " + host +
                            " already has a closed root span");
            }
          }
        }
        // Orphans: a root claiming an audited submit host for a job that
        // host's Schedd has never heard of. Roots from unattached hosts are
        // left alone (the auditor may cover only part of a world).
        for (const auto& [host, job_id, state] : tracer.root_states()) {
          (void)state;
          for (Schedd* schedd : schedds_) {
            if (schedd->host().name() != host) continue;
            if (schedd->jobs().count(job_id) == 0) {
              out.push_back("orphan root span for job " +
                            std::to_string(job_id) + " on " + host);
            }
            break;
          }
        }
      });
  auditor_.add_check(
      "cross/metric-cardinality", [this](std::vector<std::string>& out) {
        // The registry's label-cardinality guard must actually hold: no
        // metric family may carry more distinct non-`other` label sets than
        // the cap. A violation means series were minted behind the guard's
        // back (e.g. a direct map insert bypassing the capped lookup).
        for (std::string& line : sim_.metrics().cardinality_violations()) {
          out.push_back(std::move(line));
        }
      });
  sim_.attach_auditor(&auditor_, period);
}

StandardAuditor::~StandardAuditor() {
  if (sim_.auditor() == &auditor_) sim_.attach_auditor(nullptr);
}

void StandardAuditor::attach_schedd(Schedd& schedd) {
  schedds_.push_back(&schedd);
  auditor_.add_check("schedd/" + schedd.host().name(),
                     [&schedd](std::vector<std::string>& out) {
                       schedd.audit(out);
                     });
}

void StandardAuditor::attach_gridmanager(GridManager& gridmanager) {
  gridmanagers_.push_back(&gridmanager);
  auditor_.add_check("gridmanager/" + gridmanager.schedd().host().name(),
                     [&gridmanager](std::vector<std::string>& out) {
                       gridmanager.audit(out);
                     });
}

void StandardAuditor::attach_credential_manager(
    CredentialManager& credentials) {
  auditor_.add_check("credentials/#" + std::to_string(auditor_.check_count()),
                     [&credentials](std::vector<std::string>& out) {
                       credentials.audit(out);
                     });
}

void StandardAuditor::attach_gatekeeper(gram::Gatekeeper& gatekeeper) {
  gatekeepers_.push_back(&gatekeeper);
  auditor_.add_check("gatekeeper/" + gatekeeper.host().name(),
                     [&gatekeeper](std::vector<std::string>& out) {
                       gatekeeper.audit(out);
                     });
}

void StandardAuditor::attach_pool_negotiator(
    condor::PoolNegotiator& negotiator) {
  auditor_.add_check("pool_negotiator/#" +
                         std::to_string(auditor_.check_count()),
                     [&negotiator](std::vector<std::string>& out) {
                       negotiator.audit(out);
                     });
}

void StandardAuditor::attach_agent(CondorGAgent& agent) {
  attach_schedd(agent.schedd());
  attach_gridmanager(agent.gridmanager());
  attach_credential_manager(agent.credentials());
}

}  // namespace condorg::core
