#include "condorg/core/agent.h"

namespace condorg::core {

CondorGAgent::CondorGAgent(sim::World& world, const std::string& submit_host,
                           AgentOptions options)
    : world_(world),
      host_(world.host(submit_host)),
      chooser_(std::make_shared<SiteChooser>(
          [](const Job&,
             std::function<void(std::optional<sim::Address>)> done) {
            done(std::nullopt);  // no broker installed
          })) {
  schedd_ = std::make_unique<Schedd>(host_);
  // The GridManager gets a stable proxy that forwards to the replaceable
  // chooser, so brokers can be swapped at runtime.
  auto chooser_ref = chooser_;
  gridmanager_ = std::make_unique<GridManager>(
      *schedd_, world.net(), options.user,
      [chooser_ref](const Job& job,
                    std::function<void(std::optional<sim::Address>)> done) {
        (*chooser_ref)(job, std::move(done));
      },
      options.gridmanager);
  credentials_ = std::make_unique<CredentialManager>(
      *schedd_, *gridmanager_, world.net(), options.credentials);
  collector_ = std::make_unique<condor::Collector>(host_, world.net());
  vanilla_ = std::make_unique<VanillaRunner>(*schedd_, world.net(),
                                             *collector_, options.vanilla);
}

GlideInManager& CondorGAgent::enable_glideins(GlideInOptions options) {
  if (!glideins_) {
    if (options.collector.host.empty()) {
      options.collector = collector_->address();
    }
    glideins_ = std::make_unique<GlideInManager>(
        *schedd_, world_.net(), gridmanager_->gass(), std::move(options));
    if (!gridmanager_->gram().credential_text().empty()) {
      glideins_->set_credential_text(gridmanager_->gram().credential_text());
    }
  }
  return *glideins_;
}

void CondorGAgent::start() {
  gridmanager_->start();
  credentials_->start();
  vanilla_->start();
  if (glideins_) glideins_->start();
}

std::unique_ptr<DagMan> CondorGAgent::make_dagman(Dag dag,
                                                  DagManOptions options) {
  return std::make_unique<DagMan>(*schedd_, std::move(dag), options);
}

}  // namespace condorg::core
