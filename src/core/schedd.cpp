#include "condorg/core/schedd.h"

#include <algorithm>
#include <iterator>

namespace condorg::core {
namespace {
constexpr const char* kNextIdKey = "schedd/next_id";
}

std::string Schedd::job_key(std::uint64_t id) {
  return "schedd/job/" + std::to_string(id);
}

Schedd::Schedd(sim::Host& host)
    : host_(host),
      jobs_(host, "schedd.jobs"),
      status_counts_(host, "schedd.status_counts"),
      status_sets_(host, "schedd.status_sets") {
  reload();
  boot_id_ = host_.add_boot([this] { reload(); });
  // Every user-log event doubles as a trace event, which is what gives the
  // per-job timelines in tools/condorg_report their submit/execute/
  // reconnect detail without instrumenting each call site twice.
  log_.add_listener([this](const LogEvent& event) {
    sim::Tracer& tracer = host_.tracer();
    if (!tracer.enabled()) return;
    tracer.event(std::string("userlog.") + to_string(event.kind),
                 event.job_id, host_.name(), host_.epoch(), event.detail);
  });
}

Schedd::~Schedd() { host_.remove_boot(boot_id_); }

void Schedd::reload() {
  jobs_->clear();
  for (const std::string& key : host_.disk().keys_with_prefix("schedd/job/")) {
    const auto text = host_.disk().get(key);
    if (!text) continue;
    Job job = Job::deserialize(*text);
    jobs_->emplace(job.id, std::move(job));
  }
  if (const auto stored = host_.disk().get(kNextIdKey)) {
    next_id_ = std::stoull(*stored);
  }
  status_counts_ = {};
  status_sets_ = {};
  for (const auto& [id, job] : *jobs_) {
    ++(*status_counts_)[status_index(job.status)];
    (*status_sets_)[universe_index(job.desc.universe)][status_index(job.status)]
        .insert(id);
  }
}

void Schedd::reindex(const Job& job, JobStatus previous, bool is_new) {
  auto& row = (*status_sets_)[universe_index(job.desc.universe)];
  if (!is_new) row[status_index(previous)].erase(job.id);
  row[status_index(job.status)].insert(job.id);
  if (is_new) {
    // Total indexed ids only grows at submit/reload (jobs are never erased
    // from the queue), so the gauge is refreshed on the insert edge.
    host_.metrics()
        .gauge("schedd_index_size", {{"host", host_.name()}})
        .set(host_.now(), static_cast<double>(jobs_->size()));
  }
}

void Schedd::persist(const Job& job) {
  host_.disk().put(job_key(job.id), job.serialize());
}

void Schedd::notify(const Job& job) {
  const auto listeners = listeners_;
  for (const auto& listener : listeners) listener(job);
}

void Schedd::set_depth_gauge(JobStatus status) {
  host_.metrics()
      .gauge("schedd.queue_depth",
             {{"host", host_.name()}, {"status", to_string(status)}})
      .set(host_.now(),
           static_cast<double>((*status_counts_)[status_index(status)]));
}

void Schedd::on_status_change(const Job& job, JobStatus previous,
                              bool is_new) {
  sim::Tracer& tracer = host_.tracer();
  if (is_new) {
    ++(*status_counts_)[status_index(job.status)];
    reindex(job, job.status, /*is_new=*/true);
    host_.metrics().counter("schedd.submits", {{"host", host_.name()}}).inc();
    set_depth_gauge(job.status);
    if (tracer.enabled()) {
      tracer.begin_job(job.id, host_.name(), host_.epoch(),
                       std::string(to_string(job.desc.universe)) +
                           " universe");
    }
    return;
  }
  if (previous == job.status) return;
  --(*status_counts_)[status_index(previous)];
  ++(*status_counts_)[status_index(job.status)];
  reindex(job, previous, /*is_new=*/false);
  host_.metrics()
      .counter("schedd.transitions", {{"host", host_.name()},
                                      {"from", to_string(previous)},
                                      {"to", to_string(job.status)}})
      .inc();
  set_depth_gauge(previous);
  set_depth_gauge(job.status);
  // Close the root span exactly once: terminal states never transition
  // again (mark_completed / remove both refuse terminal entries), so this
  // is the unique closing edge.
  if (tracer.enabled() && (job.status == JobStatus::kCompleted ||
                           job.status == JobStatus::kRemoved)) {
    tracer.end_job(
        job.id, host_.name(),
        job.status == JobStatus::kCompleted ? "completed" : "removed",
        job.hold_reason);
  }
}

std::uint64_t Schedd::submit(JobDescription description) {
  const std::uint64_t id = next_id_++;
  host_.disk().put(kNextIdKey, std::to_string(next_id_));
  Job job;
  job.id = id;
  job.desc = std::move(description);
  job.submit_time = host_.now();
  persist(job);
  const auto [it, inserted] = jobs_->emplace(id, std::move(job));
  on_status_change(it->second, it->second.status, /*is_new=*/true);
  log_.record(host_.now(), id, LogEventKind::kSubmit,
              std::string(to_string(it->second.desc.universe)) + " universe");
  notify(it->second);
  return id;
}

std::optional<Job> Schedd::query(std::uint64_t id) const {
  const auto it = jobs_->find(id);
  if (it == jobs_->end()) return std::nullopt;
  return it->second;
}

bool Schedd::with_job(std::uint64_t id,
                      const std::function<void(Job&)>& mutate) {
  const auto it = jobs_->find(id);
  if (it == jobs_->end()) return false;
  const JobStatus previous = it->second.status;
  mutate(it->second);
  persist(it->second);
  on_status_change(it->second, previous, /*is_new=*/false);
  notify(it->second);
  return true;
}

bool Schedd::hold(std::uint64_t id, const std::string& reason) {
  const auto it = jobs_->find(id);
  if (it == jobs_->end() || it->second.status == JobStatus::kCompleted ||
      it->second.status == JobStatus::kRemoved) {
    return false;
  }
  log_.record(host_.now(), id, LogEventKind::kHeld, reason);
  return with_job(id, [&reason](Job& job) {
    job.status = JobStatus::kHeld;
    job.hold_reason = reason;
  });
}

bool Schedd::release(std::uint64_t id) {
  const auto it = jobs_->find(id);
  if (it == jobs_->end() || it->second.status != JobStatus::kHeld) {
    return false;
  }
  log_.record(host_.now(), id, LogEventKind::kReleased, "");
  return with_job(id, [](Job& job) {
    job.status = JobStatus::kIdle;
    job.hold_reason.clear();
  });
}

bool Schedd::remove(std::uint64_t id) {
  const auto it = jobs_->find(id);
  if (it == jobs_->end() || it->second.status == JobStatus::kCompleted ||
      it->second.status == JobStatus::kRemoved) {
    return false;
  }
  log_.record(host_.now(), id, LogEventKind::kAborted, "removed by user");
  return with_job(id, [](Job& job) { job.status = JobStatus::kRemoved; });
}

void Schedd::mark_grid_submitted(std::uint64_t id, std::uint64_t seq,
                                 const std::string& site,
                                 const std::string& contact) {
  log_.record(host_.now(), id, LogEventKind::kGridSubmit,
              "site=" + site + " contact=" + contact);
  with_job(id, [&](Job& job) {
    job.gram_seq = seq;
    job.gram_site = site;
    job.gram_contact = contact;
    job.status = JobStatus::kRunning;
    job.remote_state = "PENDING";
    ++job.attempts;
  });
}

void Schedd::mark_executing(std::uint64_t id, const std::string& where) {
  log_.record(host_.now(), id, LogEventKind::kExecute, where);
  with_job(id, [this](Job& job) {
    job.status = JobStatus::kRunning;
    job.remote_state = "ACTIVE";
    if (job.first_execute_time < 0) job.first_execute_time = host_.now();
  });
}

void Schedd::mark_completed(std::uint64_t id) {
  const auto it = jobs_->find(id);
  if (it == jobs_->end() || it->second.status == JobStatus::kCompleted) {
    return;  // idempotent: duplicate DONE callbacks are harmless
  }
  log_.record(host_.now(), id, LogEventKind::kTerminated, "");
  with_job(id, [this](Job& job) {
    job.status = JobStatus::kCompleted;
    job.remote_state = "DONE";
    job.completion_time = host_.now();
  });
  if (it->second.desc.notify_email) {
    send_email("job " + std::to_string(id) + " completed",
               "your job finished successfully");
  }
}

void Schedd::mark_idle_again(std::uint64_t id, LogEventKind why,
                             const std::string& detail) {
  log_.record(host_.now(), id, why, detail);
  with_job(id, [](Job& job) {
    job.status = JobStatus::kIdle;
    job.gram_contact.clear();
    job.gram_seq = 0;
    job.remote_state.clear();
  });
}

void Schedd::mark_evicted(std::uint64_t id, double checkpointed_work,
                          const std::string& detail) {
  log_.record(host_.now(), id, LogEventKind::kEvicted, detail);
  with_job(id, [checkpointed_work](Job& job) {
    job.status = JobStatus::kIdle;
    job.checkpointed_work =
        std::max(job.checkpointed_work, checkpointed_work);
  });
}

std::vector<std::uint64_t> Schedd::jobs_with_status(JobStatus status) const {
  // O(result): merge the per-universe id sets (both already id-ordered) so
  // the output order matches the old full scan exactly.
  const auto& grid = (*status_sets_)[universe_index(Universe::kGrid)]
                                 [status_index(status)];
  const auto& vanilla = (*status_sets_)[universe_index(Universe::kVanilla)]
                                    [status_index(status)];
  std::vector<std::uint64_t> out;
  out.reserve(grid.size() + vanilla.size());
  std::merge(grid.begin(), grid.end(), vanilla.begin(), vanilla.end(),
             std::back_inserter(out));
  return out;
}

std::vector<std::uint64_t> Schedd::idle_jobs(Universe universe) const {
  // O(result) from the secondary index; id-ascending like the old scan.
  const auto& ids =
      (*status_sets_)[universe_index(universe)][status_index(JobStatus::kIdle)];
  return {ids.begin(), ids.end()};
}

std::size_t Schedd::count(JobStatus status) const {
  // O(1) from the counts maintained by on_status_change (cross-checked
  // against a full scan in audit()); callers poll this in driver loops.
  return (*status_counts_)[status_index(status)];
}

std::size_t Schedd::count(Universe universe, JobStatus status) const {
  return (*status_sets_)[universe_index(universe)][status_index(status)].size();
}

bool Schedd::all_terminal() const {
  return (*status_counts_)[status_index(JobStatus::kCompleted)] +
             (*status_counts_)[status_index(JobStatus::kRemoved)] ==
         jobs_->size();
}

std::size_t Schedd::active_count() const {
  return jobs_->size() - count(JobStatus::kCompleted) -
         count(JobStatus::kRemoved);
}

void Schedd::audit(std::vector<std::string>& out) const {
  std::map<std::uint64_t, std::uint64_t> seq_owner;  // gram_seq -> job id
  std::array<std::size_t, 5> scanned{};
  for (const auto& [id, job] : *jobs_) {
    ++scanned[status_index(job.status)];
    if (job.id != id) {
      out.push_back("job " + std::to_string(id) + " stored under wrong key");
    }
    if (id >= next_id_) {
      out.push_back("job " + std::to_string(id) +
                    " at or past the persisted id allocator (" +
                    std::to_string(next_id_) + ")");
    }
    // Exactly-once bedrock: a live sequence number names one job, ever.
    // Completed/removed jobs keep their seq for the log, but two *live* jobs
    // sharing one means a re-driven submission could adopt another job's
    // JobManager.
    const bool live = job.status == JobStatus::kIdle ||
                      job.status == JobStatus::kRunning ||
                      job.status == JobStatus::kHeld;
    if (live && job.gram_seq != 0) {
      const auto [it, inserted] = seq_owner.emplace(job.gram_seq, id);
      if (!inserted) {
        out.push_back("gram_seq " + std::to_string(job.gram_seq) +
                      " shared by live jobs " + std::to_string(it->second) +
                      " and " + std::to_string(id));
      }
    }
    if (job.desc.universe == Universe::kGrid &&
        job.status == JobStatus::kRunning && job.gram_seq == 0) {
      out.push_back("job " + std::to_string(id) +
                    " running at a site without an allocated gram_seq");
    }
    if (!job.gram_contact.empty() && job.gram_seq == 0 &&
        job.status != JobStatus::kCompleted &&
        job.status != JobStatus::kRemoved) {
      out.push_back("job " + std::to_string(id) +
                    " holds contact " + job.gram_contact + " without a seq");
    }
    if (job.status == JobStatus::kHeld && job.hold_reason.empty()) {
      out.push_back("job " + std::to_string(id) + " held with no reason");
    }
    if (job.first_execute_time >= 0 &&
        job.first_execute_time < job.submit_time) {
      out.push_back("job " + std::to_string(id) + " executed before submit");
    }
    if (job.status == JobStatus::kCompleted &&
        job.completion_time < job.submit_time) {
      out.push_back("job " + std::to_string(id) + " completed before submit");
    }
  }
  // The incremental status counts must agree with a full scan, or every
  // count()/all_terminal() caller is being lied to.
  if (scanned != *status_counts_) {
    out.push_back("status count cache diverges from a queue scan");
  }
  // Same bar for the secondary indexes: every (universe, status) id set
  // must hold exactly the ids a brute-force scan would find, or
  // idle_jobs()/jobs_with_status()/count(universe, status) callers are
  // driving stale state.
  std::array<std::array<std::set<std::uint64_t>, 5>, 2> rebuilt;
  for (const auto& [id, job] : *jobs_) {
    rebuilt[universe_index(job.desc.universe)][status_index(job.status)]
        .insert(id);
  }
  if (rebuilt != *status_sets_) {
    out.push_back("status index diverges from a queue scan");
  }
}

void Schedd::add_queue_listener(std::function<void(const Job&)> listener) {
  listeners_.push_back(std::move(listener));
}

void Schedd::send_email(const std::string& subject, const std::string& body) {
  log_.email(host_.now(), "user@submit", subject, body);
}

}  // namespace condorg::core
