#include "condorg/core/userlog.h"

#include "condorg/util/strings.h"

namespace condorg::core {

const char* to_string(LogEventKind kind) {
  switch (kind) {
    case LogEventKind::kSubmit: return "SUBMIT";
    case LogEventKind::kGridSubmit: return "GRID_SUBMIT";
    case LogEventKind::kExecute: return "EXECUTE";
    case LogEventKind::kEvicted: return "EVICTED";
    case LogEventKind::kTerminated: return "TERMINATED";
    case LogEventKind::kAborted: return "ABORTED";
    case LogEventKind::kHeld: return "HELD";
    case LogEventKind::kReleased: return "RELEASED";
    case LogEventKind::kJobManagerLost: return "JOBMANAGER_LOST";
    case LogEventKind::kReconnected: return "RECONNECTED";
    case LogEventKind::kResubmitted: return "RESUBMITTED";
  }
  return "?";
}

void UserLog::record(sim::Time time, std::uint64_t job_id, LogEventKind kind,
                     std::string detail) {
  events_.push_back(LogEvent{time, job_id, kind, std::move(detail)});
  for (const auto& listener : listeners_) listener(events_.back());
}

void UserLog::email(sim::Time time, std::string to, std::string subject,
                    std::string body) {
  emails_.push_back(
      Email{time, std::move(to), std::move(subject), std::move(body)});
}

std::vector<LogEvent> UserLog::events_for(std::uint64_t job_id) const {
  std::vector<LogEvent> out;
  for (const LogEvent& event : events_) {
    if (event.job_id == job_id) out.push_back(event);
  }
  return out;
}

std::size_t UserLog::count(LogEventKind kind) const {
  std::size_t n = 0;
  for (const LogEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

void UserLog::add_listener(std::function<void(const LogEvent&)> listener) {
  listeners_.push_back(std::move(listener));
}

std::string UserLog::render() const {
  std::string out;
  for (const LogEvent& event : events_) {
    out += util::format("%12.1f  job %-5llu  %-16s %s\n", event.time,
                        static_cast<unsigned long long>(event.job_id),
                        to_string(event.kind), event.detail.c_str());
  }
  return out;
}

}  // namespace condorg::core
