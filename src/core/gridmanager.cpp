#include "condorg/core/gridmanager.h"

#include <algorithm>

#include "condorg/util/rng.h"
#include "condorg/util/strings.h"

namespace condorg::core {

GridManager::GridManager(Schedd& schedd, sim::Network& network,
                         std::string user, SiteChooser chooser,
                         GridManagerOptions options)
    : schedd_(schedd),
      host_(schedd.host()),
      network_(network),
      user_(std::move(user)),
      chooser_(std::move(chooser)),
      options_(options),
      gass_(host_, network, "gass." + user_),
      gram_(host_, network, user_, options.gram),
      submitting_(host_, "gridmanager.submitting"),
      contact_to_job_(host_, "gridmanager.contact_to_job"),
      probing_(host_, "gridmanager.probing"),
      pending_since_(host_, "gridmanager.pending_since"),
      migrating_(host_, "gridmanager.migrating"),
      degraded_since_(host_, "gridmanager.degraded_since"),
      site_ready_(host_, "gridmanager.site_ready"),
      queued_(host_, "gridmanager.queued"),
      pipeline_site_of_(host_, "gridmanager.pipeline_site_of"),
      site_pipeline_(host_, "gridmanager.site_pipeline"),
      repump_(host_, "gridmanager.repump"),
      artifacts_(host_, "gridmanager.artifacts") {
  host_.register_service("gridmanager." + user_,
                         [this](const sim::Message& m) { dispatch(m); });
  boot_id_ = host_.add_boot([this] {
    host_.register_service("gridmanager." + user_,
                           [this](const sim::Message& m) { dispatch(m); });
    if (started_) recover_after_boot();
  });
}

GridManager::~GridManager() {
  host_.remove_boot(boot_id_);
  if (host_.alive()) host_.unregister_service("gridmanager." + user_);
}

sim::Address GridManager::callback_address() const {
  return {host_.name(), "gridmanager." + user_};
}

void GridManager::count(std::string_view name) {
  host_.metrics().counter(name, {{"user", user_}}).inc();
}

void GridManager::note_degraded(std::uint64_t job_id, std::string_view why) {
  if (degraded_since_->count(job_id)) return;  // outage already open
  degraded_since_->emplace(job_id, host_.now());
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    tracer.event("recovery.begin", job_id, host_.name(), host_.epoch(), why);
  }
}

void GridManager::note_recovered(std::uint64_t job_id,
                                 std::string_view how) {
  const auto it = degraded_since_->find(job_id);
  if (it == degraded_since_->end()) return;
  const double latency = host_.now() - it->second;
  degraded_since_->erase(it);
  host_.metrics()
      .histogram("gridmanager.recovery_seconds", {{"user", user_}})
      .observe(latency);
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    tracer.event("recovery.end", job_id, host_.name(), host_.epoch(), how);
  }
}

void GridManager::set_credential_text(const std::string& serialized) {
  gram_.set_credential_text(serialized);
}

void GridManager::start() {
  if (started_) return;
  started_ = true;
  tick();
}

void GridManager::tick() {
  prune_pipeline();
  drive_idle_jobs();
  host_.post(options_.poll_interval, [this] { tick(); });
}

gram::GramJobSpec GridManager::spec_for(const Job& job) {
  gram::GramJobSpec spec;
  if (options_.reference_submit_path) {
    spec.executable = "exe/" + std::to_string(job.id);
  } else {
    // Content-addressed: every job running this executable names the same
    // store entry, and the checksum lets the site's staging cache serve
    // repeats without a transfer (and detect changed content).
    const Artifact& artifact = stage_artifact(job);
    spec.executable = artifact.path;
    spec.exe_checksum = artifact.checksum;
  }
  spec.output = job.desc.output.empty()
                    ? "out/" + std::to_string(job.id) + ".out"
                    : job.desc.output;
  spec.gass_url = gass_.address().str();
  spec.runtime_seconds = job.desc.runtime_seconds;
  spec.walltime_limit = job.desc.walltime_limit;
  spec.cpus = job.desc.cpus;
  spec.output_size = job.desc.output_size;
  spec.tag = "job" + std::to_string(job.id);
  return spec;
}

std::string GridManager::make_exe_content(const std::string& name) const {
  // The executable content is synthetic but deterministic: regenerable from
  // the name alone, so crash recovery re-creates byte-identical content
  // (and hence the same checksum) without persisting it anywhere.
  std::string content = "executable:" + name;
  const std::uint64_t want = options_.staged_content_bytes;
  if (want > content.size()) {
    const std::string block =
        content + "#" + std::to_string(util::fnv1a(name)) + "\n";
    content.reserve(want);
    while (content.size() < want) {
      content.append(block, 0, std::min<std::uint64_t>(
                                   block.size(), want - content.size()));
    }
  }
  return content;
}

const GridManager::Artifact& GridManager::stage_artifact(const Job& job) {
  const auto memo = artifacts_->find(job.desc.executable);
  if (memo != artifacts_->end()) return memo->second;
  std::string content = make_exe_content(job.desc.executable);
  Artifact artifact;
  artifact.checksum = util::fnv1a(content);
  artifact.path = "exe/cas/" + std::to_string(artifact.checksum);
  artifact.declared_size = job.desc.executable_size;
  gass_.store().put_if_absent(artifact.path, std::move(content),
                              artifact.declared_size);
  return artifacts_->emplace(job.desc.executable, std::move(artifact))
      .first->second;
}

void GridManager::stage_executable(const Job& job) {
  // What matters is that the executable exists on the GASS server for the
  // JobManager to fetch (and is re-created after a submit-machine crash).
  if (options_.reference_submit_path) {
    // Reference path: one store entry per job, re-put on every submission.
    gass_.store().put("exe/" + std::to_string(job.id),
                      make_exe_content(job.desc.executable),
                      job.desc.executable_size);
    return;
  }
  stage_artifact(job);
}

std::size_t GridManager::pipeline_depth(const std::string& site) const {
  const auto it = site_pipeline_->find(site);
  return it == site_pipeline_->end() ? 0 : it->second;
}

void GridManager::set_depth_gauge(const std::string& site,
                                  std::size_t depth) {
  util::Gauge*& gauge = depth_gauges_[site];
  if (gauge == nullptr) {
    gauge = &host_.metrics().gauge("submit_pipeline_depth",
                                   {{"user", user_}, {"site", site}});
  }
  gauge->set(host_.now(), static_cast<double>(depth));
}

void GridManager::begin_pipeline(std::uint64_t job_id,
                                 const std::string& site) {
  if (!pipeline_site_of_->emplace(job_id, site).second) return;
  set_depth_gauge(site, ++(*site_pipeline_)[site]);
}

void GridManager::end_pipeline(std::uint64_t job_id) {
  const auto it = pipeline_site_of_->find(job_id);
  if (it == pipeline_site_of_->end()) return;
  const std::string site = it->second;
  pipeline_site_of_->erase(it);
  std::size_t& depth = (*site_pipeline_)[site];
  if (depth > 0) --depth;
  set_depth_gauge(site, depth);
  pump_site(site);  // the freed slot refills without waiting for a tick
}

void GridManager::prune_pipeline() {
  for (auto it = pipeline_site_of_->begin(); it != pipeline_site_of_->end();) {
    const std::uint64_t id = (it++)->first;  // end_pipeline erases
    const auto job = schedd_.query(id);
    // A slot is owed while the submit is in flight or the job sits at the
    // site without an ACTIVE sighting; anything else (held, removed,
    // terminal with a lost callback) is reclaimed here.
    const bool owed =
        job && (submitting_->count(id) != 0 ||
                (job->status == JobStatus::kRunning &&
                 job->remote_state != "ACTIVE"));
    if (!owed) end_pipeline(id);
  }
}

void GridManager::drive_idle_jobs() {
  if (options_.reference_submit_path) {
    drive_idle_jobs_reference();
    return;
  }
  for (const std::uint64_t id : schedd_.idle_jobs(Universe::kGrid)) {
    if (queued_->count(id) || submitting_->count(id)) continue;
    enqueue_idle(id);
  }
  pump_all();
}

void GridManager::drive_idle_jobs_reference() {
  std::size_t in_flight = submitting_->size();
  if (options_.max_submitted_jobs > 0) {
    // Retained pre-index reference path for bench_s1; the production path
    // uses count(universe, status).
    // lint-allow(schedd-full-scan): reference configuration by design
    for (const auto& [id, job] : schedd_.jobs()) {
      if (job.desc.universe == Universe::kGrid &&
          job.status == JobStatus::kRunning) {
        ++in_flight;
      }
    }
  }
  for (const std::uint64_t id : schedd_.idle_jobs(Universe::kGrid)) {
    if (options_.max_submitted_jobs > 0 &&
        in_flight >= options_.max_submitted_jobs) {
      return;
    }
    if (!submitting_->count(id)) {
      submit_job(id);
      ++in_flight;
    }
  }
}

void GridManager::enqueue_idle(std::uint64_t job_id) {
  const auto job = schedd_.query(job_id);
  if (!job || job->status != JobStatus::kIdle) return;
  if (!job->gram_contact.empty()) {
    // Released-from-hold with a live site contact: reconnect, don't queue.
    submit_job(job_id);
    return;
  }
  queued_->insert(job_id);
  if (!job->desc.grid_site.empty()) {
    (*site_ready_)[job->desc.grid_site].push_back(job_id);
    return;
  }
  chooser_(*job, [this, job_id](std::optional<sim::Address> gatekeeper) {
    if (queued_->count(job_id) == 0) return;  // dropped meanwhile (reboot)
    if (!gatekeeper) {
      // No candidate resource right now; try again next tick.
      queued_->erase(job_id);
      return;
    }
    (*site_ready_)[gatekeeper->host].push_back(job_id);
    pump_site(gatekeeper->host);
  });
}

void GridManager::pump_all() {
  // Site-name order (map order), job-id order within each site's queue:
  // the deterministic issue order the traces and the explorer rely on.
  for (const auto& [site, queue] : *site_ready_) repump_->insert(site);
  pump_site("");  // drain repump_; "" names no site and pumps nothing
}

void GridManager::pump_site(const std::string& site) {
  if (pump_in_progress_) {
    // A completion callback freed a slot while the outer pump is mid-loop:
    // defer, the outermost call drains below.
    repump_->insert(site);
    return;
  }
  pump_in_progress_ = true;
  do_pump(site);
  while (!repump_->empty()) {
    const std::string next = *repump_->begin();
    repump_->erase(repump_->begin());
    do_pump(next);
  }
  pump_in_progress_ = false;
}

void GridManager::do_pump(const std::string& site) {
  const auto it = site_ready_->find(site);
  if (it == site_ready_->end()) return;
  std::deque<std::uint64_t>& queue = it->second;
  while (!queue.empty()) {
    if (options_.max_pending_per_site > 0 &&
        pipeline_depth(site) >= options_.max_pending_per_site) {
      return;
    }
    if (options_.max_submitted_jobs > 0 &&
        submitting_->size() +
                schedd_.count(Universe::kGrid, JobStatus::kRunning) >=
            options_.max_submitted_jobs) {
      return;
    }
    const std::uint64_t job_id = queue.front();
    queue.pop_front();
    queued_->erase(job_id);
    const auto job = schedd_.query(job_id);
    if (!job || job->status != JobStatus::kIdle ||
        submitting_->count(job_id)) {
      continue;  // moved on (held/removed/re-driven) while waiting
    }
    submitting_->insert(job_id);
    stage_executable(*job);
    begin_pipeline(job_id, site);
    submit_to(job_id, sim::Address{site, gram::kGatekeeperService});
  }
}

void GridManager::submit_job(std::uint64_t job_id) {
  const auto job = schedd_.query(job_id);
  if (!job || job->status != JobStatus::kIdle) return;

  if (!job->gram_contact.empty()) {
    // The job already lives at a site (e.g. it was held for a credential
    // refresh and released): reconnect to the existing JobManager instead
    // of submitting a second copy. The probe ladder handles a JobManager
    // that died in the meantime.
    const std::string contact = job->gram_contact;
    (*contact_to_job_)[contact] = job_id;
    schedd_.log().record(host_.now(), job_id, LogEventKind::kReconnected,
                         "release: reattaching to " + contact);
    schedd_.with_job(job_id,
                     [](Job& j) { j.status = JobStatus::kRunning; });
    if (!probing_->count(job_id)) {
      probing_->insert(job_id);
      host_.post(1.0, [this, job_id] { probe(job_id); });
    }
    return;
  }

  submitting_->insert(job_id);
  stage_executable(*job);

  if (!job->desc.grid_site.empty()) {
    submit_to(job_id, sim::Address{job->desc.grid_site,
                                   gram::kGatekeeperService});
    return;
  }
  chooser_(*job, [this, job_id](std::optional<sim::Address> gatekeeper) {
    if (!gatekeeper) {
      // No candidate resource right now; try again next tick.
      submitting_->erase(job_id);
      return;
    }
    submit_to(job_id, *gatekeeper);
  });
}

void GridManager::submit_to(std::uint64_t job_id,
                            const sim::Address& gatekeeper) {
  const auto job = schedd_.query(job_id);
  if (!job || job->status != JobStatus::kIdle) {
    submitting_->erase(job_id);
    return;
  }
  // Allocate (or reuse, during crash recovery) the persisted sequence
  // number BEFORE sending: this is what makes the submission exactly-once.
  std::uint64_t seq = job->gram_seq;
  if (seq == 0) {
    seq = gram_.allocate_seq();
    schedd_.with_job(job_id, [seq, &gatekeeper](Job& j) {
      j.gram_seq = seq;
      j.gram_site = gatekeeper.host;
    });
  }
  ++submissions_;
  count("gridmanager.submissions");
  const sim::SpanId submit_span = host_.tracer().begin_span(
      "gram.submit", job_id, host_.name(), host_.epoch(),
      host_.tracer().job_root(host_.name(), job_id),
      "site=" + gatekeeper.host + " seq=" + std::to_string(seq));
  gram_.submit_with_seq(
      seq, gatekeeper, spec_for(*job), callback_address(),
      [this, job_id, seq, gatekeeper,
       submit_span](std::optional<std::string> contact) {
        submitting_->erase(job_id);
        const auto current = schedd_.query(job_id);
        if (!current || current->status == JobStatus::kRemoved) {
          host_.tracer().end_span(submit_span, "stale", "job removed");
          end_pipeline(job_id);
          if (contact) gram_.cancel(*contact, [](bool) {});
          return;
        }
        if (!contact) {
          // Site never answered (or refused): release the job to be
          // brokered elsewhere.
          host_.tracer().end_span(submit_span, "error", "site unreachable");
          end_pipeline(job_id);
          schedd_.mark_idle_again(job_id, LogEventKind::kResubmitted,
                                  "site unreachable: " + gatekeeper.host);
          ++resubmissions_;
          count("gridmanager.resubmissions");
          return;
        }
        host_.tracer().end_span(submit_span, "ok", "contact=" + *contact);
        // Crash point: submission committed remotely but not yet recorded
        // in the queue — the §4.2 ladder must reconcile via the persisted
        // seq, not run the job twice.
        if (host_.crash_point("gridmanager.submit_ack")) return;
        (*contact_to_job_)[*contact] = job_id;
        schedd_.mark_grid_submitted(job_id, seq, gatekeeper.host, *contact);
        if (!probing_->count(job_id)) {
          probing_->insert(job_id);
          host_.post(options_.probe_interval,
                     [this, job_id] { probe(job_id); });
        }
      });
}

void GridManager::dispatch(const sim::Message& message) {
  if (message.type == "gram.callback") {
    on_gram_callback(message);
    return;
  }
  // gram.callback is the only notify aimed at this service; anything else
  // is drift (callbacks are one-way, so there is no error reply to send).
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "gridmanager"}, {"type", message.type}})
      .inc();
}

void GridManager::on_gram_callback(const sim::Message& message) {
  const std::string contact = message.body.get("contact");
  const auto it = contact_to_job_->find(contact);
  if (it == contact_to_job_->end()) return;  // stale / unknown
  handle_remote_state(it->second, message.body.get("state"),
                      message.body.get("why"));
}

void GridManager::handle_remote_state(std::uint64_t job_id,
                                      const std::string& state,
                                      const std::string& why) {
  const auto job = schedd_.query(job_id);
  if (!job || job->status == JobStatus::kCompleted ||
      job->status == JobStatus::kRemoved) {
    pending_since_->erase(job_id);  // terminal: drop the queued-at-site watch
    end_pipeline(job_id);
    return;
  }
  if (state == "ACTIVE" && job->remote_state != "ACTIVE") {
    pending_since_->erase(job_id);
    end_pipeline(job_id);  // the site started it; its slot frees up
    schedd_.mark_executing(job_id, "site=" + job->gram_site);
    return;
  }
  if (state == "DONE") {
    pending_since_->erase(job_id);
    end_pipeline(job_id);
    schedd_.mark_completed(job_id);
    probing_->erase(job_id);
    degraded_since_->erase(job_id);  // job left the site; outage moot
    return;
  }
  if (state == "FAILED") {
    pending_since_->erase(job_id);
    end_pipeline(job_id);
    probing_->erase(job_id);
    degraded_since_->erase(job_id);
    if (migrating_->erase(job_id)) {
      // This FAILED is our own migration cancel taking effect: re-broker
      // without charging the job an attempt.
      ++queued_migrations_;
      count("gridmanager.migrations");
      contact_to_job_->erase(job->gram_contact);
      schedd_.mark_idle_again(job_id, LogEventKind::kResubmitted,
                              "migrated: queued too long at " +
                                  job->gram_site);
      return;
    }
    if (job->attempts >= job->desc.max_attempts) {
      schedd_.hold(job_id, "too many failures; last: " + why);
    } else {
      ++resubmissions_;
      count("gridmanager.resubmissions");
      schedd_.mark_idle_again(job_id, LogEventKind::kResubmitted,
                              "remote failure: " + why);
    }
    return;
  }
  // PENDING / STAGE_IN / UNSUBMITTED: remember the remote state.
  schedd_.with_job(job_id, [&state](Job& j) { j.remote_state = state; });
  if (state == "PENDING") {
    pending_since_->emplace(job_id, host_.now());  // keep first-seen time
    maybe_migrate_pending(job_id);
  } else {
    pending_since_->erase(job_id);
  }
}

void GridManager::maybe_migrate_pending(std::uint64_t job_id) {
  if (options_.max_pending_seconds <= 0) return;
  const auto since = pending_since_->find(job_id);
  if (since == pending_since_->end()) return;
  if (host_.now() - since->second < options_.max_pending_seconds) return;
  const auto job = schedd_.query(job_id);
  if (!job || job->remote_state != "PENDING" || job->gram_contact.empty()) {
    return;
  }
  // Stuck in a remote queue: cancel there, and only once the cancel has
  // demonstrably taken effect (the JobManager's FAILED callback, or the
  // cancel ack) release the job for re-brokering — re-submitting while the
  // old copy might still run would break exactly-once.
  pending_since_->erase(job_id);
  migrating_->insert(job_id);
  const std::string contact = job->gram_contact;
  const std::string site = job->gram_site;
  gram_.cancel(contact, [this, job_id, contact, site](bool ok) {
    if (!ok) {
      // Unreachable site: leave the job where it is; the probe ladder
      // keeps watching and migration can be retried on a later PENDING
      // report.
      migrating_->erase(job_id);
      pending_since_->emplace(job_id, host_.now());
      return;
    }
    // Usually the JobManager's FAILED callback lands first and does the
    // re-queue; this path covers a lost callback.
    if (!migrating_->erase(job_id)) return;
    const auto current = schedd_.query(job_id);
    if (!current || current->gram_contact != contact ||
        current->status != JobStatus::kRunning) {
      return;  // state moved on while the cancel was in flight
    }
    probing_->erase(job_id);
    contact_to_job_->erase(contact);
    end_pipeline(job_id);
    ++queued_migrations_;
    count("gridmanager.migrations");
    schedd_.mark_idle_again(job_id, LogEventKind::kResubmitted,
                            "migrated: queued too long at " + site);
  });
}

void GridManager::probe(std::uint64_t job_id) {
  const auto job = schedd_.query(job_id);
  if (!job || job->gram_contact.empty() ||
      job->status == JobStatus::kCompleted ||
      job->status == JobStatus::kRemoved ||
      job->status == JobStatus::kHeld) {
    probing_->erase(job_id);
    pending_since_->erase(job_id);  // backstop for lost terminal callbacks
    end_pipeline(job_id);
    return;
  }
  const std::string contact = job->gram_contact;
  ++probes_;
  count("gridmanager.probes");
  gram_.ping_jobmanager(contact, [this, job_id, contact](bool jm_ok) {
    if (jm_ok) {
      // An open outage ends the moment the JobManager answers again
      // (F2/F4 reconnect; F1 usually closes via the restart path below).
      note_recovered(job_id, "jobmanager answered probe");
      // Backstop status poll: callbacks can be lost on the wire.
      gram_.status(contact,
                   [this, job_id](std::optional<gram::GramJobState> state) {
                     if (state) {
                       handle_remote_state(job_id,
                                           gram::to_string(*state), "poll");
                     }
                   });
      host_.post(options_.probe_interval, [this, job_id] { probe(job_id); });
      return;
    }
    note_degraded(job_id, "jobmanager silent: " + contact);
    // JobManager silent: probe the Gatekeeper to classify the failure.
    gram_.ping_gatekeeper(
        gram::gatekeeper_address_for(contact),
        [this, job_id, contact](bool gk_ok) {
          const auto current = schedd_.query(job_id);
          if (!current || current->gram_contact != contact) {
            probing_->erase(job_id);
            return;
          }
          if (gk_ok) {
            // F1: only the JobManager died. Restart it; the replacement
            // re-attaches to the local job (or reports it finished).
            schedd_.log().record(host_.now(), job_id,
                                 LogEventKind::kJobManagerLost,
                                 "gatekeeper up; restarting jobmanager");
            ++jm_restarts_;
            count("gridmanager.jm_restarts");
            gram_.restart_jobmanager(
                contact, [this, job_id](std::optional<gram::GramJobState>) {
                  note_recovered(job_id, "jobmanager restarted");
                  schedd_.log().record(host_.now(), job_id,
                                       LogEventKind::kReconnected, "");
                  host_.post(options_.probe_interval,
                             [this, job_id] { probe(job_id); });
                });
          } else {
            // F2 or F4 — indistinguishable from here. Wait and re-probe;
            // when the site answers again we reconnect (and restart the
            // JobManager if needed).
            host_.post(options_.recover_retry,
                       [this, job_id] { probe(job_id); });
          }
        });
  });
}

void GridManager::recover_after_boot() {
  // F3 recovery: rebuild in-memory state from the persistent queue.
  submitting_->clear();
  contact_to_job_->clear();
  probing_->clear();
  degraded_since_->clear();  // outage windows restart from the reboot
  site_ready_->clear();
  queued_->clear();
  pipeline_site_of_->clear();
  for (auto& [site, depth] : *site_pipeline_) {
    depth = 0;
    set_depth_gauge(site, 0);
  }
  artifacts_->clear();  // the GASS store is scratch; re-stage on demand
  count("gridmanager.boot_recoveries");
  // Boot-time recovery walks the whole persistent queue by design (§4.2 F3).
  // lint-allow(schedd-full-scan): one-shot recovery scan
  for (const auto& [id, job] : schedd_.jobs()) {
    if (job.desc.universe != Universe::kGrid) continue;
    if (job.status == JobStatus::kCompleted ||
        job.status == JobStatus::kRemoved || job.status == JobStatus::kHeld) {
      continue;
    }
    stage_executable(job);
    if (!job.gram_contact.empty()) {
      // We had an acknowledged submission: reconnect. Tell the JobManager
      // our (possibly new) GASS address, ask the gatekeeper to restart the
      // JobManager if it is gone, and resume probing. Recovery latency for
      // F3 is measured from the reboot to the re-established contact.
      note_degraded(id, "submit machine rebooted");
      (*contact_to_job_)[job.gram_contact] = id;
      if (job.remote_state != "ACTIVE") {
        // Still working through the site's queue: it owes a pipeline slot.
        begin_pipeline(id, job.gram_site);
      }
      const std::string contact = job.gram_contact;
      const std::uint64_t job_id = id;
      gram_.ping_jobmanager(contact, [this, job_id, contact](bool ok) {
        if (ok) {
          note_recovered(job_id, "reattached after reboot");
          gram_.update_gass(contact, gass_.address(), [](bool) {});
        } else {
          ++jm_restarts_;
          count("gridmanager.jm_restarts");
          gram_.restart_jobmanager(
              contact,
              [this, job_id, contact](std::optional<gram::GramJobState>) {
                note_recovered(job_id, "jobmanager restarted after reboot");
                gram_.update_gass(contact, gass_.address(), [](bool) {});
              });
        }
      });
      probing_->insert(id);
      host_.post(options_.probe_interval, [this, job_id] { probe(job_id); });
    } else if (job.gram_seq != 0) {
      // Crash hit between allocating the sequence number and learning the
      // contact: re-drive with the SAME seq; dedup at the gatekeeper makes
      // this safe even if the original request did get through.
      submitting_->insert(id);
      begin_pipeline(id, job.gram_site);
      const std::uint64_t job_id = id;
      const std::uint64_t seq = job.gram_seq;
      const sim::Address gatekeeper{job.gram_site,
                                    gram::kGatekeeperService};
      host_.post(1.0, [this, job_id, seq, gatekeeper] {
        const auto j = schedd_.query(job_id);
        if (!j) return;
        gram_.submit_with_seq(
            seq, gatekeeper, spec_for(*j), callback_address(),
            [this, job_id, seq, gatekeeper](
                std::optional<std::string> contact) {
              submitting_->erase(job_id);
              if (!contact) {
                end_pipeline(job_id);
                schedd_.mark_idle_again(job_id, LogEventKind::kResubmitted,
                                        "recovery: site unreachable");
                return;
              }
              (*contact_to_job_)[*contact] = job_id;
              schedd_.mark_grid_submitted(job_id, seq, gatekeeper.host,
                                          *contact);
              if (!probing_->count(job_id)) {
                probing_->insert(job_id);
                host_.post(options_.probe_interval,
                           [this, job_id] { probe(job_id); });
              }
            });
      });
    }
    // else: plain Idle; the tick loop re-drives it.
  }
  tick();
}

void GridManager::audit(std::vector<std::string>& out) const {
  // Conservation, schedd -> gridmanager: every grid job the queue believes
  // is running at a site must be tracked here (otherwise its callbacks are
  // dropped and the probe ladder never watches it), unless the host is down
  // or the daemon has not started managing the queue yet.
  if (host_.alive() && started_) {
    // The audit cross-checks tracking maps against the whole queue.
    // lint-allow(schedd-full-scan): audit site
    for (const auto& [id, job] : schedd_.jobs()) {
      if (job.desc.universe != Universe::kGrid ||
          job.status != JobStatus::kRunning || job.gram_contact.empty()) {
        continue;
      }
      const auto tracked = contact_to_job_->find(job.gram_contact);
      if (tracked == contact_to_job_->end()) {
        out.push_back("running job " + std::to_string(id) + " contact " +
                      job.gram_contact + " untracked by the gridmanager");
      } else if (tracked->second != id) {
        out.push_back("contact " + job.gram_contact + " of running job " +
                      std::to_string(id) + " tracked for job " +
                      std::to_string(tracked->second));
      }
    }
  }
  // Conservation, gridmanager -> schedd: tracked state must refer to real
  // queue entries. Stale contact entries for jobs that moved on are part of
  // the design (late callbacks must be droppable), but entries for unknown
  // jobs mean the maps and the queue have diverged.
  for (const auto& [contact, id] : *contact_to_job_) {
    const auto job = schedd_.query(id);
    if (!job) {
      out.push_back("contact " + contact + " tracked for unknown job " +
                    std::to_string(id));
      continue;
    }
    if (job->status == JobStatus::kRunning && !job->gram_contact.empty() &&
        job->gram_contact != contact &&
        contact_to_job_->count(job->gram_contact) == 0) {
      out.push_back("running job " + std::to_string(id) +
                    " reachable only via stale contact " + contact);
    }
  }
  for (const std::uint64_t id : *submitting_) {
    if (!schedd_.query(id)) {
      out.push_back("in-flight submit for unknown job " + std::to_string(id));
    }
  }
  for (const std::uint64_t id : *probing_) {
    if (!schedd_.query(id)) {
      out.push_back("probe loop for unknown job " + std::to_string(id));
    }
  }
  // Pipeline conservation: the per-site depth counters must equal the
  // per-site cardinality of pipeline_site_of_, and every slot holder /
  // queued job must be a real queue entry.
  std::map<std::string, std::size_t> recomputed;
  for (const auto& [id, site] : *pipeline_site_of_) {
    ++recomputed[site];
    if (!schedd_.query(id)) {
      out.push_back("pipeline slot held by unknown job " +
                    std::to_string(id));
    }
  }
  for (const auto& [site, depth] : *site_pipeline_) {
    if (depth == 0) continue;
    const auto it = recomputed.find(site);
    if (it == recomputed.end() || it->second != depth) {
      out.push_back("pipeline depth for " + site + " is " +
                    std::to_string(depth) + " but " +
                    std::to_string(it == recomputed.end() ? 0 : it->second) +
                    " jobs hold slots there");
    }
  }
  for (const std::uint64_t id : *queued_) {
    if (!schedd_.query(id)) {
      out.push_back("ready queue holds unknown job " + std::to_string(id));
    }
  }
}

void GridManager::reforward_credential() {
  for (const auto& [contact, job_id] : *contact_to_job_) {
    const auto job = schedd_.query(job_id);
    if (!job || job->status != JobStatus::kRunning) continue;
    gram_.refresh_remote_credential(contact, [](bool) {});
  }
}

}  // namespace condorg::core
