// Cross-daemon invariant auditing for Condor-G scenarios.
//
// The sim::InvariantAuditor engine runs named checks between events; this
// header supplies the standard check set for a Condor-G world. Per-daemon
// audit() hooks validate each daemon's own state machine; StandardAuditor
// registers those and adds the checks that span daemons and hosts:
//
//   * sequence-number monotonicity — every GRAM sequence number recorded in
//     a queue is strictly below its client's persisted allocator (§3.2's
//     exactly-once bedrock: a seq is allocated-and-persisted before first
//     use, so one above the allocator was never allocated at all);
//   * no job live in two JobManagers — across every attached gatekeeper, a
//     client job (callback + tag) has at most one committed, non-terminal
//     JobManager (the duplicated-execution failure the two-phase protocol
//     exists to prevent);
//   * submission records on stable storage — a Running grid job's contact at
//     an attached site is backed by a JobManager record on that site's disk,
//     so the §4.2 restart ladder always has something to reattach to;
//   * trace-root conservation — when tracing is on, every terminal job in an
//     attached Schedd has exactly one closed root span in the Tracer, no
//     root was opened twice, and no closed root belongs to a still-live job
//     (the observability layer must not lie about job lifecycles).
//
// Queue-count conservation lives in Schedd/GridManager::audit and the
// expired-proxy lease check in CredentialManager::audit; attaching those
// daemons wires them in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condorg/sim/invariant_auditor.h"

namespace condorg::sim {
class Simulation;
}
namespace condorg::gram {
class Gatekeeper;
}
namespace condorg::condor {
class PoolNegotiator;
}

namespace condorg::core {

class CondorGAgent;
class CredentialManager;
class GridManager;
class Schedd;

class StandardAuditor {
 public:
  /// Attaches its auditor to `sim` (checks run every `period` dispatched
  /// events) and registers the cross-daemon checks. Attach daemons next;
  /// the auditor must outlive the simulation run (detaches in ~).
  explicit StandardAuditor(sim::Simulation& sim, std::uint64_t period = 512);
  ~StandardAuditor();

  StandardAuditor(const StandardAuditor&) = delete;
  StandardAuditor& operator=(const StandardAuditor&) = delete;

  void attach_schedd(Schedd& schedd);
  void attach_gridmanager(GridManager& gridmanager);
  void attach_credential_manager(CredentialManager& credentials);
  void attach_gatekeeper(gram::Gatekeeper& gatekeeper);
  /// Registers the delta-negotiation soundness hook: every recorded
  /// anti-entropy divergence or delta-vs-reference matcher disagreement
  /// becomes an invariant violation.
  void attach_pool_negotiator(condor::PoolNegotiator& negotiator);
  /// Schedd + GridManager + CredentialManager in one call.
  void attach_agent(CondorGAgent& agent);

  sim::InvariantAuditor& auditor() { return auditor_; }
  const sim::InvariantAuditor& auditor() const { return auditor_; }
  bool ok() const { return auditor_.ok(); }
  std::string report() const { return auditor_.report(); }

 private:
  sim::Simulation& sim_;
  sim::InvariantAuditor auditor_;
  std::vector<Schedd*> schedds_;
  std::vector<GridManager*> gridmanagers_;
  std::vector<gram::Gatekeeper*> gatekeepers_;
};

}  // namespace condorg::core
