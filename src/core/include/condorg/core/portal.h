// Multi-user submission portal (front-end).
//
// One shared entry point for a whole community of users, in front of the
// per-user agents: a PortalClient submits job batches here with a stable
// per-user sequence number; the portal admits them into a bounded queue,
// persists each admission to stable storage *before* acknowledging, and a
// flush timer hands admitted batches to each user's PoolRunner
// (`portal.deliver`) with retry until acknowledged. Duplicate submissions
// (client retry after a lost ack) are absorbed by the persisted admission
// record, and duplicate deliveries (portal retry after a lost ack) by the
// runner's own persisted marker — together: exactly-once admission across
// portal crashes, which explore.portal_storm model-checks.
//
// Backpressure is explicit at both hops: a full admission queue rejects
// with "busy" (the client backs off), and a runner whose Schedd is at its
// active-job cap rejects the delivery with "busy" (the batch stays queued
// here). Users therefore trickle into their Schedds instead of
// materializing a million-job queue up front.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/metrics.h"

namespace condorg::core {

struct PortalOptions {
  /// Admission-queue depth cap (batches, not jobs); beyond it submissions
  /// are rejected "busy" and the client retries after a backoff.
  std::size_t max_queue_depth = 1024;
  /// Batching interval for the hand-off to PoolRunners.
  double flush_period = 1.0;
  /// Deliveries started per flush tick.
  std::size_t flush_batch = 64;
  double deliver_timeout = 10.0;
};

class Portal {
 public:
  /// Shared community infrastructure, like the GIIS directory.
  CONDORG_HOST_LOCAL("central");

  static constexpr const char* kService = "portal";

  using Options = PortalOptions;

  Portal(sim::Host& host, sim::Network& network, Options options = {});
  ~Portal();

  Portal(const Portal&) = delete;
  Portal& operator=(const Portal&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  /// Begin the periodic flush loop.
  void start();

  // --- statistics ---
  std::uint64_t submits_received() const { return *submits_received_; }
  std::uint64_t batches_admitted() const { return *batches_admitted_; }
  std::uint64_t jobs_admitted() const { return *jobs_admitted_; }
  std::uint64_t duplicate_submits() const { return *duplicate_submits_; }
  std::uint64_t busy_rejections() const { return *busy_rejections_; }
  std::uint64_t deliveries_acked() const { return *deliveries_acked_; }
  std::size_t queue_depth() const { return queue_->size(); }

 private:
  /// One admitted batch awaiting delivery to its user's PoolRunner.
  struct Admission {
    std::string user;
    std::uint64_t seq = 0;
    sim::Payload body;  // the original submit payload (redelivered verbatim)
    bool in_flight = false;
  };

  void install();
  void on_message(const sim::Message& message);
  void flush();
  void deliver(Admission& admission);
  /// Rebuild the admission queue from the persisted pending records.
  void reload();
  static std::string admitted_key(const std::string& user, std::uint64_t seq);
  static std::string pending_key(const std::string& user, std::uint64_t seq);

  sim::Host& host_;
  sim::Network& network_;
  Options options_;
  sim::RpcClient rpc_;
  sim::Lifetime life_;

  det::HostLocal<std::deque<Admission>> queue_;
  det::HostLocal<std::uint64_t> submits_received_;
  det::HostLocal<std::uint64_t> batches_admitted_;
  det::HostLocal<std::uint64_t> jobs_admitted_;
  det::HostLocal<std::uint64_t> duplicate_submits_;
  det::HostLocal<std::uint64_t> busy_rejections_;
  det::HostLocal<std::uint64_t> deliveries_acked_;

  util::Counter& admitted_counter_;
  util::Counter& duplicate_counter_;
  util::Counter& busy_counter_;
  util::Gauge& depth_gauge_;

  bool started_ = false;
  int boot_id_ = 0;
  int crash_listener_ = 0;
};

}  // namespace condorg::core
