// The Condor Scheduler daemon (Schedd): the persistent job queue.
//
// "To protect against local failure, all relevant state for each submitted
// job is stored persistently in the scheduler's job queue. This persistent
// information allows the GridManager to recover from a local crash."
// (§4.2). Every mutation is written through to the submit machine's stable
// storage; after a crash the queue is rebuilt from disk and the
// GridManager re-drives every non-terminal job.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "condorg/core/job.h"
#include "condorg/core/userlog.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"

namespace condorg::core {

class Schedd {
 public:
  /// Submit-host daemon: the queue lives with the user's agent.
  CONDORG_HOST_LOCAL("user");

  explicit Schedd(sim::Host& host);
  ~Schedd();

  Schedd(const Schedd&) = delete;
  Schedd& operator=(const Schedd&) = delete;

  sim::Host& host() { return host_; }
  const sim::Host& host() const { return host_; }
  UserLog& log() { return log_; }
  const UserLog& log() const { return log_; }

  // --- user API (§4.1) ---
  std::uint64_t submit(JobDescription description);
  std::optional<Job> query(std::uint64_t id) const;
  bool hold(std::uint64_t id, const std::string& reason);
  bool release(std::uint64_t id);
  bool remove(std::uint64_t id);

  // --- agent-side mutation (GridManager, shadows, DAGMan) ---
  /// Apply `mutate` to the job and persist. Returns false for unknown ids.
  bool with_job(std::uint64_t id, const std::function<void(Job&)>& mutate);

  /// Logged transitions.
  void mark_grid_submitted(std::uint64_t id, std::uint64_t seq,
                           const std::string& site,
                           const std::string& contact);
  void mark_executing(std::uint64_t id, const std::string& where);
  void mark_completed(std::uint64_t id);
  void mark_idle_again(std::uint64_t id, LogEventKind why,
                       const std::string& detail);
  void mark_evicted(std::uint64_t id, double checkpointed_work,
                    const std::string& detail);

  // --- queue inspection ---
  const std::map<std::uint64_t, Job>& jobs() const { return *jobs_; }
  std::vector<std::uint64_t> jobs_with_status(JobStatus status) const;
  std::vector<std::uint64_t> idle_jobs(Universe universe) const;
  std::size_t count(JobStatus status) const;
  /// O(1) per-(universe, status) count from the secondary indexes — e.g.
  /// the GridManager's in-flight cap check, formerly a full queue scan.
  std::size_t count(Universe universe, JobStatus status) const;
  bool all_terminal() const;
  std::size_t active_count() const;  // idle + running + held

  /// Invariant audit hook (see sim::InvariantAuditor): appends one line per
  /// violated queue invariant — duplicate live GRAM sequence numbers,
  /// incoherent status bookkeeping, a job id at or past the persisted
  /// allocator. Appending nothing means the queue is sound.
  void audit(std::vector<std::string>& out) const;

  /// Fires after every queue mutation (submit or state change).
  void add_queue_listener(std::function<void(const Job&)> listener);

  /// E-mail hook (also appended to the UserLog mailbox).
  void send_email(const std::string& subject, const std::string& body);

 private:
  void persist(const Job& job);
  void reload();
  void notify(const Job& job);
  /// Observability choke point: every queue mutation (submit and every
  /// with_job status change) flows through here. Maintains the O(1) status
  /// counts, the per-status queue-depth gauges, the transition counters, and
  /// the job's root trace span (opened at submit, closed exactly once when
  /// the entry turns terminal).
  void on_status_change(const Job& job, JobStatus previous, bool is_new);
  void set_depth_gauge(JobStatus status);
  static std::size_t status_index(JobStatus status) {
    return static_cast<std::size_t>(status);
  }
  static std::size_t universe_index(Universe universe) {
    return static_cast<std::size_t>(universe);
  }
  /// Move `job.id` between the (universe, status) id sets. `previous` is
  /// ignored when `is_new`.
  void reindex(const Job& job, JobStatus previous, bool is_new);
  static std::string job_key(std::uint64_t id);

  sim::Host& host_;
  UserLog log_;
  det::HostLocal<std::map<std::uint64_t, Job>> jobs_;
  std::uint64_t next_id_ = 1;
  // indexed by JobStatus
  det::HostLocal<std::array<std::size_t, 5>> status_counts_;
  /// Secondary indexes: per-(universe, status) job-id sets, kept in sync by
  /// the same on_status_change choke point that maintains status_counts_
  /// (and rebuilt wholesale in reload()). idle_jobs()/jobs_with_status()
  /// read them in O(result); audit() cross-checks them against a full scan.
  /// A job's universe never changes after submit, so moves only cross
  /// status cells within one universe row.
  det::HostLocal<std::array<std::array<std::set<std::uint64_t>, 5>, 2>>
      status_sets_;
  // det-local(listeners_): registered by same-host daemons at wiring time.
  std::vector<std::function<void(const Job&)>> listeners_;
  int boot_id_ = 0;
};

}  // namespace condorg::core
