// Job model for the Condor-G agent's queue.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "condorg/classad/classad.h"
#include "condorg/sim/message.h"
#include "condorg/sim/types.h"

namespace condorg::core {

/// Which execution machinery handles the job.
enum class Universe {
  kGrid,     // submitted to a remote site via GRAM (the "Globus" universe)
  kVanilla,  // matched to pool slots (local or glided-in) by the Negotiator
};

/// Condor job states as the user sees them.
enum class JobStatus {
  kIdle,       // queued, waiting for submission/match
  kRunning,    // submitted to a site / executing on a slot
  kHeld,       // needs user attention (credential expiry, repeated failure)
  kCompleted,
  kRemoved,
};

const char* to_string(Universe universe);
const char* to_string(JobStatus status);
Universe universe_from_string(const std::string& text);
JobStatus status_from_string(const std::string& text);

/// What the user hands to Schedd::submit — deliberately shaped like a
/// Condor submit file ("nothing new or special about the semantics of these
/// capabilities", §4.1).
struct JobDescription {
  Universe universe = Universe::kGrid;
  std::string owner = "user";
  std::string executable = "a.out";
  std::string output;              // staged back on completion (grid)
  double runtime_seconds = 60.0;   // compute demand (total work, vanilla)
  int cpus = 1;
  double walltime_limit = std::numeric_limits<double>::infinity();
  std::uint64_t output_size = 1024;
  std::uint64_t executable_size = 1 << 20;
  /// Fixed destination gatekeeper host (grid universe); empty = let the
  /// resource broker choose.
  std::string grid_site;
  /// Extra attributes merged into the job's ClassAd (Requirements, Rank...).
  classad::ClassAd ad;
  int max_attempts = 10;
  bool notify_email = true;
  std::string tag;  // opaque user annotation
};

/// A job in the queue: description + progress bookkeeping. Persisted to the
/// submit machine's stable storage on every mutation.
struct Job {
  std::uint64_t id = 0;
  JobDescription desc;
  JobStatus status = JobStatus::kIdle;
  std::string hold_reason;
  int attempts = 0;

  // Grid-universe bookkeeping (exactly-once submission).
  std::uint64_t gram_seq = 0;    // 0 = none allocated
  std::string gram_contact;      // empty until the site acknowledged
  std::string gram_site;         // chosen gatekeeper host
  std::string remote_state;      // last GRAM state string

  // Vanilla-universe bookkeeping.
  double checkpointed_work = 0;

  sim::Time submit_time = 0;
  sim::Time first_execute_time = -1;
  sim::Time completion_time = -1;

  std::string serialize() const;
  static Job deserialize(const std::string& text);
};

}  // namespace condorg::core
