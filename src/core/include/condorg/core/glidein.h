// The GlideIn mechanism (§5 of the paper).
//
// "the GlideIn mechanism uses Grid protocols to dynamically create a
// personal Condor pool out of Grid resources by gliding-in Condor daemons
// to the remote resource."
//
// For each site, the manager submits GRAM jobs whose payload is the glidein
// bootstrap (a portable script that fetches the Condor binaries from a
// central repository over GSI GridFTP). When the site's batch system
// actually starts the glidein (delayed binding!), a Startd comes up on the
// site's compute side and advertises to the user's personal Collector; the
// Negotiator then matches queued vanilla jobs to it. Daemons shut down
// after a configurable idle period and at allocation expiry, checkpointing
// and evicting any running job.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "condorg/condor/startd.h"
#include "condorg/core/schedd.h"
#include "condorg/gass/file_service.h"
#include "condorg/gram/client.h"
#include "condorg/sim/host.h"

namespace condorg::core {

/// A grid site glideins can be sent to. `cluster_host` is the compute-side
/// host glided-in startds run on (a different failure domain from the
/// front-end, as in the real system).
struct GlideInSite {
  std::string name;
  sim::Address gatekeeper;
  sim::Host* cluster_host = nullptr;
  int max_glideins = 8;
  int cpus_per_glidein = 1;
};

struct GlideInOptions {
  sim::Address collector;
  double walltime = 4 * 3600.0;      // site allocation per glidein
  double idle_timeout = 1800.0;      // "guarding against runaway daemons"
  double advertise_period = 300.0;
  double checkpoint_interval = 600.0;
  double tick_interval = 120.0;
  /// Glide-in slots on shared pools are preemptible: the node's owner (or
  /// a higher-priority pool user) reclaims it, evicting our job with a
  /// checkpoint, and releases it again later. 0 disables (dedicated
  /// nodes). Availability fraction = available / (available + reclaimed).
  double mean_slot_available_seconds = 0.0;
  double mean_slot_reclaimed_seconds = 0.0;
  /// Central repository holding the Condor binaries; when set, each glidein
  /// pulls them (GSI GridFTP) before its Startd starts advertising.
  std::optional<sim::Address> binary_repository;
  std::string binary_path = "condor/startd-bundle";
  classad::ClassAd slot_base_ad;
};

class GlideInManager {
 public:
  GlideInManager(Schedd& schedd, sim::Network& network,
                 gass::FileService& gass, GlideInOptions options);
  ~GlideInManager();

  GlideInManager(const GlideInManager&) = delete;
  GlideInManager& operator=(const GlideInManager&) = delete;

  void add_site(GlideInSite site);

  /// Credential used for glidein GRAM submissions.
  void set_credential_text(const std::string& serialized) {
    gram_.set_credential_text(serialized);
  }

  /// Start the provisioning loop: while idle vanilla jobs outnumber
  /// live+pending glideins, submit more (the paper's flooding strategy,
  /// bounded per site).
  void start();

  /// Stop submitting new glideins (existing ones drain via idle timeout).
  void pause() { paused_ = true; }
  void resume() { paused_ = false; }

  std::uint64_t glideins_submitted() const { return submitted_; }
  std::uint64_t glideins_started() const { return launched_; }
  std::uint64_t glideins_exited() const { return exited_; }
  std::size_t live_glideins() const { return startds_.size(); }
  std::size_t pending_glideins() const { return pending_; }

 private:
  struct SiteState {
    GlideInSite site;
    int pending = 0;  // submitted, not yet ACTIVE
    int live = 0;     // startd running
  };

  void tick();
  void submit_glidein(SiteState& state);
  void launch_startd(SiteState& state, const std::string& contact);
  std::size_t demand() const;

  Schedd& schedd_;
  sim::Network& network_;
  sim::Host& host_;
  gass::FileService& gass_;
  GlideInOptions options_;
  gram::GramClient gram_;
  std::vector<std::unique_ptr<SiteState>> sites_;
  std::map<std::string, std::unique_ptr<condor::Startd>> startds_;
  std::map<std::string, SiteState*> contact_site_;
  bool started_ = false;
  bool paused_ = false;
  std::size_t pending_ = 0;
  std::uint64_t glidein_counter_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t exited_ = 0;
  std::map<std::string, std::string> stashed_states_;  // contact -> state
};

}  // namespace condorg::core
