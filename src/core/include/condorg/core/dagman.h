// DAGMan: dependency-driven job management.
//
// The CMS experience (§6) is "a two-node Directed Acyclic Graph (DAG) of
// jobs" whose first node fans out into 100 simulation jobs, with transfer
// and reconstruction stages gated on completion. DagMan submits a node's
// job once all its parents completed, runs optional PRE/POST hooks, retries
// failed nodes, and can throttle the number of jobs in flight (the disk-
// buffer guard of the CMS DAG).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/core/schedd.h"

namespace condorg::core {

struct DagNode {
  std::string name;
  JobDescription job;
  /// PRE runs just before submission; POST just after successful
  /// completion. Either may be null.
  std::function<void()> pre;
  std::function<void()> post;
  int max_retries = 3;
};

class Dag {
 public:
  void add_node(DagNode node);
  /// child waits for parent. Both must already exist.
  void add_edge(const std::string& parent, const std::string& child);

  const std::vector<DagNode>& nodes() const { return nodes_; }
  const std::multimap<std::string, std::string>& edges() const {
    return edges_;
  }
  bool has_node(const std::string& name) const;

 private:
  std::vector<DagNode> nodes_;
  std::multimap<std::string, std::string> edges_;  // parent -> child
};

struct DagManOptions {
  /// Max node jobs submitted-but-not-finished at once; 0 = unlimited.
  std::size_t max_jobs_in_flight = 0;
};

class DagMan {
 public:
  enum class NodeState { kWaiting, kReady, kSubmitted, kDone, kFailed };

  DagMan(Schedd& schedd, Dag dag, DagManOptions options = {});

  DagMan(const DagMan&) = delete;
  DagMan& operator=(const DagMan&) = delete;

  /// Validates the DAG (throws std::invalid_argument on cycles or unknown
  /// edge endpoints) and submits all ready roots.
  void start();

  bool complete() const;  // every node done
  bool failed() const;    // some node exhausted its retries
  NodeState node_state(const std::string& name) const;
  std::optional<std::uint64_t> node_job(const std::string& name) const;

  std::size_t nodes_done() const;
  std::uint64_t retries_performed() const { return retries_; }

  /// Invoked once when the DAG completes or fails.
  void on_finished(std::function<void(bool success)> callback) {
    finished_callback_ = std::move(callback);
  }

 private:
  struct Node {
    DagNode spec;
    NodeState state = NodeState::kWaiting;
    std::uint64_t job_id = 0;
    int attempts = 0;
    std::vector<std::size_t> parents;
    std::vector<std::size_t> children;
  };

  void validate() const;
  void pump();
  void submit_node(std::size_t index);
  void on_queue_event(const Job& job);
  void finish(bool success);

  Schedd& schedd_;
  DagManOptions options_;
  std::vector<Node> nodes_;
  std::map<std::string, std::size_t> by_name_;
  std::map<std::uint64_t, std::size_t> by_job_;
  std::size_t in_flight_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t retries_ = 0;
  std::function<void(bool)> finished_callback_;
};

}  // namespace condorg::core
