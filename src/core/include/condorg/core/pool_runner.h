// Per-user pool runner: the agent-side half of the shared-pool scale-out.
//
// Where VanillaRunner runs a *personal* Negotiator against a *personal*
// Collector, the PoolRunner participates in one shared central pool: it
// accepts admitted job batches from the Portal (`portal.deliver`, with a
// persisted dedup marker so redelivery is idempotent), publishes a window
// of the user's idle jobs as *job ads* to the central Collector, and acts
// on `negotiator.match` notifications from the pool Negotiator by spawning
// a Shadow against the matched slot — the same claim protocol as
// VanillaRunner, different matchmaking topology.
//
// The publish window is one job ad at a time: the central pool sees one
// pending ad per user (keeping the shared Collector proportional to the
// community, not the backlog), and each completion rolls the window
// forward. A delivery that would push the Schedd past `max_active` live
// jobs is rejected "busy" and stays queued at the portal — backpressure
// instead of a million-record queue.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "condorg/condor/shadow.h"
#include "condorg/core/schedd.h"
#include "condorg/sim/host.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"

namespace condorg::core {

struct PoolRunnerOptions {
  /// The shared central Collector job ads are published to.
  sim::Address collector;
  /// TTL-refresh period for the published ad; an unchanged re-publish is a
  /// no-op at the Collector (checksum match), so this is cheap.
  double advertise_period = 300.0;
  double ad_ttl_factor = 3.0;
  /// Schedd admission cap: deliveries that would exceed this many live
  /// (idle+running+held) jobs are rejected "busy" back to the portal.
  std::size_t max_active = 8;
  condor::ShadowOptions shadow;
};

class PoolRunner {
 public:
  /// Runs on the user's submit host, next to their Schedd.
  CONDORG_HOST_LOCAL("user");

  static constexpr const char* kService = "pool_runner";

  using Options = PoolRunnerOptions;

  PoolRunner(Schedd& schedd, sim::Network& network, Options options);
  ~PoolRunner();

  PoolRunner(const PoolRunner&) = delete;
  PoolRunner& operator=(const PoolRunner&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  /// Begin advertising (and re-advertising) the publish window.
  void start();

  // --- statistics ---
  std::uint64_t deliveries_accepted() const { return deliveries_accepted_; }
  std::uint64_t duplicate_deliveries() const { return duplicate_deliveries_; }
  std::uint64_t busy_rejections() const { return busy_rejections_; }
  std::uint64_t matches_received() const { return matches_received_; }
  std::uint64_t stale_matches() const { return stale_matches_; }
  std::uint64_t shadows_spawned() const { return shadows_spawned_; }

 private:
  void install();
  void on_message(const sim::Message& message);
  void on_deliver(const sim::Message& message);
  void on_match(const sim::Payload& body);
  /// (Re-)advertise the first idle un-shadowed job; invalidate the old ad
  /// when the window moved.
  void publish();
  void advertise_loop();
  void invalidate_published();
  std::string ad_name(std::uint64_t job_id) const;

  Schedd& schedd_;
  sim::Network& network_;
  sim::Host& host_;
  Options options_;
  sim::RpcClient rpc_;
  sim::Lifetime life_;

  // det-local(shadows_): touched only from this host's own message and
  // timer events, same ownership story as VanillaRunner's shadow table.
  std::map<std::uint64_t, std::unique_ptr<condor::Shadow>> shadows_;
  /// Currently published job (0 = none). Volatile: a crash drops it and the
  /// ad ages out of the Collector by TTL; boot republishes.
  std::uint64_t published_id_ = 0;
  std::uint64_t claim_counter_ = 0;

  std::uint64_t deliveries_accepted_ = 0;
  std::uint64_t duplicate_deliveries_ = 0;
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t matches_received_ = 0;
  std::uint64_t stale_matches_ = 0;
  std::uint64_t shadows_spawned_ = 0;

  bool started_ = false;
  int boot_id_ = 0;
  int crash_listener_ = 0;
};

}  // namespace condorg::core
