// Per-user submission driver for the Portal.
//
// Holds the user's workload as a *count* of jobs still to submit (never
// materializing them — at community scale that would be millions of
// records) and feeds it to the Portal in fixed-size batches under a stable
// per-user sequence number. A lost ack is retried with the same sequence,
// which the Portal's persisted admission record absorbs; a "busy" portal
// backs the client off. Progress (next sequence, jobs remaining) is
// persisted so a submit-host crash resumes instead of double-submitting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"

namespace condorg::core {

struct PortalClientOptions {
  sim::Address portal;
  /// This user's PoolRunner, where the portal delivers admitted batches.
  sim::Address deliver_to;
  std::string user = "user";
  std::uint64_t total_jobs = 0;
  std::uint64_t batch_size = 4;
  double runtime_seconds = 60.0;
  int cpus = 1;
  /// Extra job-ad attributes carried through to the delivered jobs.
  std::string requirements;
  std::string rank;
  double submit_timeout = 10.0;
  /// Backoff after a "busy" rejection or a lost ack.
  double retry_backoff = 5.0;
};

class PortalClient {
 public:
  /// Lives on the user's submit host.
  CONDORG_HOST_LOCAL("user");

  using Options = PortalClientOptions;

  PortalClient(sim::Host& host, sim::Network& network, Options options);
  ~PortalClient();

  PortalClient(const PortalClient&) = delete;
  PortalClient& operator=(const PortalClient&) = delete;

  /// Begin submitting; `on_drained` (optional) fires once when every batch
  /// has been admitted.
  void start(std::function<void()> on_drained = nullptr);

  bool drained() const { return remaining_ == 0; }
  std::uint64_t remaining_jobs() const { return remaining_; }
  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t retries() const { return retries_; }

 private:
  void submit_next();
  void persist_progress();
  void reload_progress();

  sim::Host& host_;
  Options options_;
  sim::RpcClient rpc_;
  sim::Lifetime life_;
  std::function<void()> on_drained_;

  std::uint64_t next_seq_ = 1;
  std::uint64_t remaining_ = 0;
  bool in_flight_ = false;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t retries_ = 0;

  bool started_ = false;
  int boot_id_ = 0;
  int crash_listener_ = 0;
};

}  // namespace condorg::core
