// Credential lifecycle management (§4.3 of the paper).
//
// Proxy credentials have deliberately short lifetimes. The agent
// "periodically analyzes the credentials for all users with currently
// queued jobs"; when one is expired or about to expire it places affected
// jobs on hold and e-mails the user, sends configurable expiry-alarm
// reminders, and — when a MyProxy server is configured — refreshes the
// proxy automatically and re-forwards it to remote JobManagers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "condorg/core/gridmanager.h"
#include "condorg/core/schedd.h"
#include "condorg/gsi/myproxy.h"

namespace condorg::core {

struct CredentialManagerOptions {
  double scan_interval = 600.0;
  /// Hold jobs / refresh when less than this much lifetime remains.
  double refresh_threshold = 1800.0;
  /// Send a reminder e-mail when less than this remains (the "credential
  /// alarm"); 0 disables.
  double alarm_threshold = 7200.0;
  /// Lifetime requested for refreshed proxies.
  double refresh_lifetime = 43200.0;
  bool use_myproxy = false;
  sim::Address myproxy_server;
  std::string myproxy_user;
  std::string myproxy_passphrase;
};

class CredentialManager {
 public:
  /// Submit-host daemon: the proxy lives with the user's agent.
  CONDORG_HOST_LOCAL("user");

  CredentialManager(Schedd& schedd, GridManager& gridmanager,
                    sim::Network& network, CredentialManagerOptions options);

  CredentialManager(const CredentialManager&) = delete;
  CredentialManager& operator=(const CredentialManager&) = delete;

  /// Install the user's proxy (grid-proxy-init / manual refresh). Releases
  /// jobs held for credential expiry and re-forwards to active sites.
  void set_credential(gsi::Credential proxy);
  const std::optional<gsi::Credential>& credential() const {
    return *credential_;
  }

  /// Start the periodic scan loop.
  void start();

  /// Invariant audit hook (§4.3): once the proxy has been expired for more
  /// than two scan intervals, no grid job may still be live (Idle/Running) —
  /// each must have been held, or the proxy refreshed (which replaces the
  /// credential and clears the condition). Appends one line per violation.
  void audit(std::vector<std::string>& out) const;

  std::uint64_t holds_issued() const { return holds_; }
  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t alarms_sent() const { return alarms_; }

  static constexpr const char* kHoldReason = "credential expired or expiring";

 private:
  void scan();
  void hold_grid_jobs();
  void release_credential_holds();
  void refresh_from_myproxy();

  Schedd& schedd_;
  GridManager& gridmanager_;
  sim::Host& host_;
  CredentialManagerOptions options_;
  det::HostLocal<std::optional<gsi::Credential>> credential_;
  std::unique_ptr<gsi::MyProxyClient> myproxy_;
  bool started_ = false;
  bool alarm_sent_for_current_ = false;
  bool refresh_in_flight_ = false;
  int boot_id_ = 0;
  std::uint64_t holds_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t alarms_ = 0;
};

}  // namespace condorg::core
