// Runs vanilla-universe jobs on the personal pool.
//
// Bridges the Schedd queue to the Condor machinery: feeds idle vanilla jobs
// to the Negotiator, and for each match spawns a Shadow that claims the
// slot, activates the job, and reports completion / eviction (with
// checkpoint) back into the queue. With GlideIn startds in the pool this is
// exactly Fig. 2 of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "condorg/condor/collector.h"
#include "condorg/condor/negotiator.h"
#include "condorg/condor/shadow.h"
#include "condorg/core/schedd.h"
#include "condorg/sim/network.h"

namespace condorg::core {

struct VanillaRunnerOptions {
  condor::NegotiatorOptions negotiator;
  condor::ShadowOptions shadow;
};

class VanillaRunner {
 public:
  VanillaRunner(Schedd& schedd, sim::Network& network,
                condor::Collector& collector,
                VanillaRunnerOptions options = {});
  ~VanillaRunner();

  VanillaRunner(const VanillaRunner&) = delete;
  VanillaRunner& operator=(const VanillaRunner&) = delete;

  /// Start negotiation cycles.
  void start();

  condor::Negotiator& negotiator() { return *negotiator_; }

  std::uint64_t shadows_spawned() const { return shadows_spawned_; }
  std::size_t active_shadows() const { return shadows_.size(); }

 private:
  std::vector<condor::IdleJob> idle_jobs() const;
  void on_match(const condor::Match& match);

  Schedd& schedd_;
  sim::Network& network_;
  sim::Host& host_;
  VanillaRunnerOptions options_;
  std::unique_ptr<condor::Negotiator> negotiator_;
  std::map<std::uint64_t, std::unique_ptr<condor::Shadow>> shadows_;
  std::uint64_t claim_counter_ = 0;
  std::uint64_t shadows_spawned_ = 0;
  int crash_listener_ = 0;
};

}  // namespace condorg::core
