// User-visible job event log and notification mailbox (§4.1: "obtain access
// to detailed logs, providing a complete history of their jobs' execution"
// and "be informed of job termination or problems, via callbacks or
// asynchronous mechanisms such as e-mail").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "condorg/sim/types.h"

namespace condorg::core {

enum class LogEventKind {
  kSubmit,
  kGridSubmit,     // site acknowledged the GRAM submission
  kExecute,
  kEvicted,        // vanilla job preempted (with checkpoint)
  kTerminated,     // completed successfully
  kAborted,        // removed by the user
  kHeld,
  kReleased,
  kJobManagerLost, // probing detected a dead JobManager
  kReconnected,    // recovery re-established contact
  kResubmitted,    // sent to a different site after failure
};

const char* to_string(LogEventKind kind);

struct LogEvent {
  sim::Time time = 0;
  std::uint64_t job_id = 0;
  LogEventKind kind = LogEventKind::kSubmit;
  std::string detail;
};

/// An e-mail the agent sent the user (credential expiry warnings, job
/// completion notices).
struct Email {
  sim::Time time = 0;
  std::string to;
  std::string subject;
  std::string body;
};

class UserLog {
 public:
  void record(sim::Time time, std::uint64_t job_id, LogEventKind kind,
              std::string detail = "");
  void email(sim::Time time, std::string to, std::string subject,
             std::string body = "");

  const std::vector<LogEvent>& events() const { return events_; }
  const std::vector<Email>& emails() const { return emails_; }

  /// Events for one job, in order.
  std::vector<LogEvent> events_for(std::uint64_t job_id) const;
  /// Count of events of a kind (across all jobs).
  std::size_t count(LogEventKind kind) const;

  /// Observer invoked on every event (the API's callback mechanism).
  void add_listener(std::function<void(const LogEvent&)> listener);

  /// Render a human-readable log (like a Condor userlog file).
  std::string render() const;

 private:
  std::vector<LogEvent> events_;
  std::vector<Email> emails_;
  std::vector<std::function<void(const LogEvent&)>> listeners_;
};

}  // namespace condorg::core
