// The Condor-G GridManager (§4.2 and Fig. 1).
//
// A per-user daemon on the submit machine that executes grid-universe jobs
// on remote GRAM resources:
//   * drives exactly-once submission (persisted sequence numbers re-driven
//     across submit-machine crashes),
//   * receives JobManager status callbacks and polls as a backstop,
//   * runs the §4.2 probing ladder: probe the JobManager; on silence probe
//     the Gatekeeper; if the Gatekeeper answers, restart the JobManager
//     (F1); otherwise keep waiting — front-end crash and partition are
//     indistinguishable (F2/F4) — and reconnect when the site returns,
//   * resubmits failed jobs (up to the job's max_attempts, then hold), and
//   * after a local crash (F3), re-drives every non-terminal job from the
//     Schedd's persistent queue and re-sends the GASS address to surviving
//     JobManagers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "condorg/core/schedd.h"
#include "condorg/gass/file_service.h"
#include "condorg/gram/client.h"
#include "condorg/sim/network.h"

namespace condorg::core {

/// Where should this job go? Implemented by brokers (static list, MDS
/// matchmaking, flood); consulted per submission attempt. The callback may
/// fire asynchronously (MDS queries are remote).
using SiteChooser = std::function<void(
    const Job& job,
    std::function<void(std::optional<sim::Address> gatekeeper)> done)>;

struct GridManagerOptions {
  double poll_interval = 60.0;    // queue scan + status poll backstop
  double probe_interval = 120.0;  // JobManager liveness probe
  double recover_retry = 120.0;   // site-unreachable retry cadence
  /// Queued-job migration (§4.4: "Monitoring of actual queuing and
  /// execution times allows for ... migrat[ing] queued jobs"): a job stuck
  /// PENDING at its site longer than this is cancelled and re-brokered.
  /// <= 0 disables (the paper's baseline behaviour).
  double max_pending_seconds = 0.0;
  /// Cap on jobs submitted-to-sites at once (Condor-G's
  /// GRIDMANAGER_MAX_SUBMITTED_JOBS); 0 = unlimited.
  std::size_t max_submitted_jobs = 0;
  /// Per-site submission pipeline depth: at most this many of the user's
  /// jobs may be "in the pipeline" at one site — an issued submit_with_seq
  /// without an ACTIVE sighting yet (in-flight request, or queued/staging
  /// remotely). Jobs beyond the cap wait Idle in per-site ready queues and
  /// are pumped in deterministic order (site name, then job id) as slots
  /// free up, instead of all piling onto the site's front-end at once
  /// (the paper's §6 one-JobManager-per-job scalability limit). 0 removes
  /// the cap (submission is still pipelined/event-driven).
  std::size_t max_pending_per_site = 32;
  /// Bytes of literal executable content synthesized into the GASS store
  /// per distinct executable name (regenerated deterministically from the
  /// name, so crash recovery can re-create it without persisting content).
  /// 0 keeps the tiny marker string of the original model. Benches raise
  /// this to make redundant staging cost real bytes.
  std::uint64_t staged_content_bytes = 0;
  /// Retain the pre-pipeline submit path: full-queue scan per tick, per-job
  /// "exe/<id>" staging (no content addressing, no site cache), tick-cadence
  /// global sweep. Exists as the bench_s1 reference configuration; never
  /// enabled in production setups.
  bool reference_submit_path = false;
  gram::GramClientOptions gram;
};

class GridManager {
 public:
  /// Submit-host daemon (one per user, co-located with the Schedd).
  CONDORG_HOST_LOCAL("user");

  GridManager(Schedd& schedd, sim::Network& network, std::string user,
              SiteChooser chooser, GridManagerOptions options = {});
  ~GridManager();

  GridManager(const GridManager&) = delete;
  GridManager& operator=(const GridManager&) = delete;

  /// Begin managing the queue (and re-arm on every host reboot).
  void start();

  /// The GASS server through which executables are staged out and job
  /// output is staged back (embedded in the GridManager per Fig. 1).
  gass::FileService& gass() { return gass_; }
  sim::Address gass_address() const { return gass_.address(); }

  /// Set/replace the user's proxy credential for all GRAM traffic.
  void set_credential_text(const std::string& serialized);
  const std::string& credential_text() const {
    return gram_.credential_text();
  }

  /// Re-forward the (refreshed) credential to every active JobManager
  /// (§4.3: "it also needs to re-forward the refreshed proxy to the remote
  /// GRAM server").
  void reforward_credential();

  gram::GramClient& gram() { return gram_; }
  const gram::GramClient& gram() const { return gram_; }
  Schedd& schedd() { return schedd_; }
  const Schedd& schedd() const { return schedd_; }

  /// Invariant audit hook: queue-count conservation between the Schedd's
  /// view (Running grid jobs) and this daemon's contact tracking, plus
  /// bookkeeping-set sanity. Appends one line per violation.
  void audit(std::vector<std::string>& out) const;

  // --- statistics for benches ---
  std::uint64_t submissions() const { return submissions_; }
  std::uint64_t resubmissions() const { return resubmissions_; }
  std::uint64_t jobmanager_restarts() const { return jm_restarts_; }
  std::uint64_t probes_sent() const { return probes_; }
  /// Jobs currently counted against `site`'s pipeline cap.
  std::size_t pipeline_depth(const std::string& site) const;
  /// Jobs under the PENDING-at-site watch (bounded: entries are erased when
  /// the job goes ACTIVE, terminal, or is migrated).
  std::size_t pending_watch_size() const { return pending_since_->size(); }

 private:
  /// A content-addressed staged executable: one GASS store entry per
  /// distinct executable name, shared by every job that runs it.
  struct Artifact {
    std::string path;          // "exe/cas/<checksum>"
    std::uint64_t checksum = 0;
    std::uint64_t declared_size = 0;
  };

  void tick();
  void drive_idle_jobs();
  void drive_idle_jobs_reference();
  /// Route a newly idle job into its site's ready queue (consulting the
  /// site chooser when the job has no fixed destination).
  void enqueue_idle(std::uint64_t job_id);
  /// Issue submissions from a site's ready queue up to the pipeline cap.
  /// Re-entrant calls (a completion callback freeing a slot mid-pump) are
  /// deferred and drained by the outermost call.
  void pump_site(const std::string& site);
  void pump_all();
  void do_pump(const std::string& site);
  void begin_pipeline(std::uint64_t job_id, const std::string& site);
  /// Release a job's pipeline slot (idempotent) and refill its site.
  void end_pipeline(std::uint64_t job_id);
  /// Tick-time backstop: drop pipeline entries whose job no longer needs a
  /// slot (held/removed with no callback ever arriving).
  void prune_pipeline();
  void set_depth_gauge(const std::string& site, std::size_t depth);
  /// Ensure the job's executable is staged content-addressed; memoized per
  /// executable name.
  const Artifact& stage_artifact(const Job& job);
  std::string make_exe_content(const std::string& name) const;
  void submit_job(std::uint64_t job_id);
  void submit_to(std::uint64_t job_id, const sim::Address& gatekeeper);
  void dispatch(const sim::Message& message);
  void on_gram_callback(const sim::Message& message);
  void probe(std::uint64_t job_id);
  void handle_remote_state(std::uint64_t job_id, const std::string& state,
                           const std::string& why);
  void recover_after_boot();
  void stage_executable(const Job& job);
  gram::GramJobSpec spec_for(const Job& job);
  sim::Address callback_address() const;
  /// Registry counter scoped to this daemon's user.
  void count(std::string_view name);
  /// Recovery bracketing for the trace: note_degraded opens (at most once
  /// per outage) when the probe ladder loses the JobManager or the submit
  /// machine reboots; note_recovered closes it, emits the paired trace
  /// event, and feeds the recovery-latency histogram.
  void note_degraded(std::uint64_t job_id, std::string_view why);
  void note_recovered(std::uint64_t job_id, std::string_view how);

  Schedd& schedd_;
  sim::Host& host_;
  sim::Network& network_;
  std::string user_;
  SiteChooser chooser_;
  GridManagerOptions options_;
  gass::FileService gass_;
  gram::GramClient gram_;
  bool started_ = false;
  int boot_id_ = 0;
  // jobs with an in-flight submit
  det::HostLocal<std::set<std::uint64_t>> submitting_;
  det::HostLocal<std::map<std::string, std::uint64_t>> contact_to_job_;
  // jobs with an active probe loop
  det::HostLocal<std::set<std::uint64_t>> probing_;
  // queued-at-site watch
  det::HostLocal<std::map<std::uint64_t, double>> pending_since_;
  // cancel-for-migration in flight
  det::HostLocal<std::set<std::uint64_t>> migrating_;
  // open recovery windows
  det::HostLocal<std::map<std::uint64_t, double>> degraded_since_;

  // --- pipelined submission state (production path) ---
  /// Idle jobs routed to a site, awaiting a pipeline slot (job-id order is
  /// preserved: jobs enter in id order and are popped front-first).
  det::HostLocal<std::map<std::string, std::deque<std::uint64_t>>>
      site_ready_;
  /// Jobs in some ready queue or awaiting a chooser verdict.
  det::HostLocal<std::set<std::uint64_t>> queued_;
  /// Jobs holding a pipeline slot, and at which site.
  det::HostLocal<std::map<std::uint64_t, std::string>> pipeline_site_of_;
  /// Per-site slot counts (== per-site cardinality of pipeline_site_of_,
  /// cross-checked in audit()).
  det::HostLocal<std::map<std::string, std::size_t>> site_pipeline_;
  bool pump_in_progress_ = false;
  det::HostLocal<std::set<std::string>> repump_;
  /// Content-addressed staging memo: executable name -> staged artifact.
  det::HostLocal<std::map<std::string, Artifact>> artifacts_;
  /// Cached per-site depth gauges (registry references are stable;
  /// det-local(depth_gauges_): written only from this daemon's events).
  std::map<std::string, util::Gauge*> depth_gauges_;

  std::uint64_t submissions_ = 0;
  std::uint64_t resubmissions_ = 0;
  std::uint64_t jm_restarts_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t queued_migrations_ = 0;

 public:
  std::uint64_t queued_migrations() const { return queued_migrations_; }

 private:
  void maybe_migrate_pending(std::uint64_t job_id);
};

}  // namespace condorg::core
