// The Condor-G GridManager (§4.2 and Fig. 1).
//
// A per-user daemon on the submit machine that executes grid-universe jobs
// on remote GRAM resources:
//   * drives exactly-once submission (persisted sequence numbers re-driven
//     across submit-machine crashes),
//   * receives JobManager status callbacks and polls as a backstop,
//   * runs the §4.2 probing ladder: probe the JobManager; on silence probe
//     the Gatekeeper; if the Gatekeeper answers, restart the JobManager
//     (F1); otherwise keep waiting — front-end crash and partition are
//     indistinguishable (F2/F4) — and reconnect when the site returns,
//   * resubmits failed jobs (up to the job's max_attempts, then hold), and
//   * after a local crash (F3), re-drives every non-terminal job from the
//     Schedd's persistent queue and re-sends the GASS address to surviving
//     JobManagers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "condorg/core/schedd.h"
#include "condorg/gass/file_service.h"
#include "condorg/gram/client.h"
#include "condorg/sim/network.h"

namespace condorg::core {

/// Where should this job go? Implemented by brokers (static list, MDS
/// matchmaking, flood); consulted per submission attempt. The callback may
/// fire asynchronously (MDS queries are remote).
using SiteChooser = std::function<void(
    const Job& job,
    std::function<void(std::optional<sim::Address> gatekeeper)> done)>;

struct GridManagerOptions {
  double poll_interval = 60.0;    // queue scan + status poll backstop
  double probe_interval = 120.0;  // JobManager liveness probe
  double recover_retry = 120.0;   // site-unreachable retry cadence
  /// Queued-job migration (§4.4: "Monitoring of actual queuing and
  /// execution times allows for ... migrat[ing] queued jobs"): a job stuck
  /// PENDING at its site longer than this is cancelled and re-brokered.
  /// <= 0 disables (the paper's baseline behaviour).
  double max_pending_seconds = 0.0;
  /// Cap on jobs submitted-to-sites at once (Condor-G's
  /// GRIDMANAGER_MAX_SUBMITTED_JOBS); 0 = unlimited.
  std::size_t max_submitted_jobs = 0;
  gram::GramClientOptions gram;
};

class GridManager {
 public:
  GridManager(Schedd& schedd, sim::Network& network, std::string user,
              SiteChooser chooser, GridManagerOptions options = {});
  ~GridManager();

  GridManager(const GridManager&) = delete;
  GridManager& operator=(const GridManager&) = delete;

  /// Begin managing the queue (and re-arm on every host reboot).
  void start();

  /// The GASS server through which executables are staged out and job
  /// output is staged back (embedded in the GridManager per Fig. 1).
  gass::FileService& gass() { return gass_; }
  sim::Address gass_address() const { return gass_.address(); }

  /// Set/replace the user's proxy credential for all GRAM traffic.
  void set_credential_text(const std::string& serialized);
  const std::string& credential_text() const {
    return gram_.credential_text();
  }

  /// Re-forward the (refreshed) credential to every active JobManager
  /// (§4.3: "it also needs to re-forward the refreshed proxy to the remote
  /// GRAM server").
  void reforward_credential();

  gram::GramClient& gram() { return gram_; }
  const gram::GramClient& gram() const { return gram_; }
  Schedd& schedd() { return schedd_; }
  const Schedd& schedd() const { return schedd_; }

  /// Invariant audit hook: queue-count conservation between the Schedd's
  /// view (Running grid jobs) and this daemon's contact tracking, plus
  /// bookkeeping-set sanity. Appends one line per violation.
  void audit(std::vector<std::string>& out) const;

  // --- statistics for benches ---
  std::uint64_t submissions() const { return submissions_; }
  std::uint64_t resubmissions() const { return resubmissions_; }
  std::uint64_t jobmanager_restarts() const { return jm_restarts_; }
  std::uint64_t probes_sent() const { return probes_; }

 private:
  void tick();
  void drive_idle_jobs();
  void submit_job(std::uint64_t job_id);
  void submit_to(std::uint64_t job_id, const sim::Address& gatekeeper);
  void on_gram_callback(const sim::Message& message);
  void probe(std::uint64_t job_id);
  void handle_remote_state(std::uint64_t job_id, const std::string& state,
                           const std::string& why);
  void recover_after_boot();
  void stage_executable(const Job& job);
  gram::GramJobSpec spec_for(const Job& job) const;
  sim::Address callback_address() const;
  /// Registry counter scoped to this daemon's user.
  void count(std::string_view name);
  /// Recovery bracketing for the trace: note_degraded opens (at most once
  /// per outage) when the probe ladder loses the JobManager or the submit
  /// machine reboots; note_recovered closes it, emits the paired trace
  /// event, and feeds the recovery-latency histogram.
  void note_degraded(std::uint64_t job_id, std::string_view why);
  void note_recovered(std::uint64_t job_id, std::string_view how);

  Schedd& schedd_;
  sim::Host& host_;
  sim::Network& network_;
  std::string user_;
  SiteChooser chooser_;
  GridManagerOptions options_;
  gass::FileService gass_;
  gram::GramClient gram_;
  bool started_ = false;
  int boot_id_ = 0;
  std::set<std::uint64_t> submitting_;  // jobs with an in-flight submit
  std::map<std::string, std::uint64_t> contact_to_job_;
  std::set<std::uint64_t> probing_;     // jobs with an active probe loop
  std::map<std::uint64_t, double> pending_since_;  // queued-at-site watch
  std::set<std::uint64_t> migrating_;  // cancel-for-migration in flight
  std::map<std::uint64_t, double> degraded_since_;  // open recovery windows

  std::uint64_t submissions_ = 0;
  std::uint64_t resubmissions_ = 0;
  std::uint64_t jm_restarts_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t queued_migrations_ = 0;

 public:
  std::uint64_t queued_migrations() const { return queued_migrations_; }

 private:
  void maybe_migrate_pending(std::uint64_t job_id);
};

}  // namespace condorg::core
