// Resource discovery and scheduling strategies (§4.4 of the paper).
//
// Three brokering strategies, matching the paper's discussion:
//   * a user-supplied static list of GRAM servers ("a good starting
//     point"), served round-robin;
//   * a personal resource broker that queries MDS for resource ads, builds
//     ClassAds, and uses the Matchmaking framework to filter (job
//     Requirements vs. resource ad) and rank candidates; and
//   * random choice, as a baseline for the A3 ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/core/gridmanager.h"
#include "condorg/mds/client.h"
#include "condorg/util/rng.h"

namespace condorg::core {

/// Round-robin over a fixed list of gatekeepers.
SiteChooser make_static_chooser(std::vector<sim::Address> gatekeepers);

/// Uniform-random choice over a fixed list (ablation baseline).
SiteChooser make_random_chooser(std::vector<sim::Address> gatekeepers,
                                util::Rng rng);

/// MDS + Matchmaking personal broker. Resource ads in the directory are
/// expected to carry a "GatekeeperHost" attribute naming the site front-end
/// plus whatever attributes jobs' Requirements/Rank reference (FreeCpus,
/// QueueLength, Arch, Memory...). The job side of the match is the job's
/// own ad (desc.ad) extended with Cpus/ImageSize defaults.
class MdsBroker {
 public:
  MdsBroker(sim::Host& host, sim::Network& network, sim::Address giis,
            std::string reply_service = "broker.mds");

  MdsBroker(const MdsBroker&) = delete;
  MdsBroker& operator=(const MdsBroker&) = delete;

  /// The SiteChooser interface for GridManager.
  SiteChooser chooser();

  /// Cache TTL: repeated choices within this window reuse the last query
  /// result instead of hammering the directory.
  void set_cache_ttl(double seconds) { cache_ttl_ = seconds; }

  std::uint64_t queries_sent() const { return queries_; }

 private:
  void choose(const Job& job,
              std::function<void(std::optional<sim::Address>)> done);
  void pick_from(const std::vector<mds::ResourceRecord>& records,
                 const classad::ClassAd& job_ad,
                 const std::function<void(std::optional<sim::Address>)>& done);
  /// The job side of the match, built (and its Requirements/Rank compiled)
  /// once per job id instead of once per pick_from. Retries and the async
  /// query path for the same job reuse the cached ad.
  std::shared_ptr<const classad::ClassAd> job_ad_for(const Job& job);

  sim::Host& host_;
  mds::MdsClient client_;
  sim::Address giis_;
  double cache_ttl_ = 60.0;
  double cache_time_ = -1e18;
  std::vector<mds::ResourceRecord> cache_;
  std::uint64_t queries_ = 0;
  std::uint64_t job_ad_id_ = 0;  // job id the cached ad was built from
  std::shared_ptr<const classad::ClassAd> job_ad_;
};

/// Build the ClassAd used as the job side of broker matchmaking.
classad::ClassAd broker_job_ad(const Job& job);

}  // namespace condorg::core
