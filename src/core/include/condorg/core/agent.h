// The Condor-G agent: "a personal desktop agent" (§4.1) assembled from the
// Schedd (persistent queue + user log), the GridManager (GRAM execution),
// the CredentialManager (§4.3), a personal Collector/Negotiator pair with
// the VanillaRunner (personal Condor pool), an optional GlideInManager
// (§5), and a pluggable resource broker (§4.4).
//
// "By providing the user with a familiar and reliable single access point
// to all the resources he/she is authorized to use, Condor-G empowers
// end-users to improve the productivity of their computations by providing
// a unified view of dispersed resources."
#pragma once

#include <memory>
#include <string>

#include "condorg/condor/collector.h"
#include "condorg/core/credential_manager.h"
#include "condorg/core/dagman.h"
#include "condorg/core/glidein.h"
#include "condorg/core/gridmanager.h"
#include "condorg/core/schedd.h"
#include "condorg/core/vanilla_runner.h"
#include "condorg/sim/world.h"

namespace condorg::core {

struct AgentOptions {
  std::string user = "user";
  GridManagerOptions gridmanager;
  VanillaRunnerOptions vanilla;
  CredentialManagerOptions credentials;
};

class CondorGAgent {
 public:
  /// Builds the agent on `submit_host` (which must already exist in the
  /// world). The default site chooser refuses brokering — set one with
  /// set_site_chooser() or give jobs a fixed grid_site.
  CondorGAgent(sim::World& world, const std::string& submit_host,
               AgentOptions options = {});

  CondorGAgent(const CondorGAgent&) = delete;
  CondorGAgent& operator=(const CondorGAgent&) = delete;

  /// Replace the resource broker (effective for subsequent submissions).
  void set_site_chooser(SiteChooser chooser) {
    *chooser_ = std::move(chooser);
  }

  /// Enable the GlideIn mechanism; call add_site on the returned manager.
  GlideInManager& enable_glideins(GlideInOptions options);

  /// Start all daemons.
  void start();

  // --- user API (submit / query / cancel / logs, §4.1) ---
  std::uint64_t submit(JobDescription description) {
    return schedd_->submit(std::move(description));
  }
  std::optional<Job> query(std::uint64_t id) const {
    return schedd_->query(id);
  }
  bool remove(std::uint64_t id) { return schedd_->remove(id); }
  bool hold(std::uint64_t id, const std::string& reason) {
    return schedd_->hold(id, reason);
  }
  bool release(std::uint64_t id) { return schedd_->release(id); }
  const UserLog& log() const { return schedd_->log(); }

  /// Run a DAG through this agent's queue. The returned DagMan must be
  /// started and outlives via the caller.
  std::unique_ptr<DagMan> make_dagman(Dag dag, DagManOptions options = {});

  // --- component access ---
  sim::Host& host() { return host_; }
  Schedd& schedd() { return *schedd_; }
  GridManager& gridmanager() { return *gridmanager_; }
  CredentialManager& credentials() { return *credentials_; }
  condor::Collector& collector() { return *collector_; }
  VanillaRunner& vanilla() { return *vanilla_; }
  GlideInManager* glideins() { return glideins_.get(); }

 private:
  sim::World& world_;
  sim::Host& host_;
  std::shared_ptr<SiteChooser> chooser_;
  std::unique_ptr<Schedd> schedd_;
  std::unique_ptr<GridManager> gridmanager_;
  std::unique_ptr<CredentialManager> credentials_;
  std::unique_ptr<condor::Collector> collector_;
  std::unique_ptr<VanillaRunner> vanilla_;
  std::unique_ptr<GlideInManager> glideins_;
};

}  // namespace condorg::core
