#include "condorg/core/portal.h"

#include <algorithm>
#include <utility>

namespace condorg::core {

Portal::Portal(sim::Host& host, sim::Network& network, Options options)
    : host_(host),
      network_(network),
      options_(options),
      rpc_(host, network, std::string(kService) + ".rpc"),
      queue_(host, "portal.queue"),
      submits_received_(host, "portal.submits_received", 0),
      batches_admitted_(host, "portal.batches_admitted", 0),
      jobs_admitted_(host, "portal.jobs_admitted", 0),
      duplicate_submits_(host, "portal.duplicate_submits", 0),
      busy_rejections_(host, "portal.busy_rejections", 0),
      deliveries_acked_(host, "portal.deliveries_acked", 0),
      admitted_counter_(host.metrics().counter("portal.batches_admitted",
                                               {{"host", host.name()}})),
      duplicate_counter_(host.metrics().counter("portal.duplicate_submits",
                                                {{"host", host.name()}})),
      busy_counter_(host.metrics().counter("portal.busy_rejections",
                                           {{"host", host.name()}})),
      depth_gauge_(host.metrics().gauge("portal.queue_depth",
                                        {{"host", host.name()}})) {
  install();
  reload();
  boot_id_ = host_.add_boot([this] {
    install();
    reload();
    if (started_) flush();
  });
  // In-memory queue is volatile; the pending records on disk are the truth
  // and reload() rebuilds from them at boot.
  crash_listener_ = host_.add_crash_listener([this] { queue_->clear(); });
}

Portal::~Portal() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kService);
}

void Portal::install() {
  host_.register_service(kService,
                         [this](const sim::Message& m) { on_message(m); });
}

void Portal::start() {
  if (started_) return;
  started_ = true;
  flush();
}

std::string Portal::admitted_key(const std::string& user, std::uint64_t seq) {
  return "portal/admitted/" + user + "/" + std::to_string(seq);
}

std::string Portal::pending_key(const std::string& user, std::uint64_t seq) {
  return "portal/pending/" + user + "/" + std::to_string(seq);
}

void Portal::reload() {
  queue_->clear();
  for (const std::string& key : host_.disk().keys_with_prefix("portal/pending/")) {
    const auto record = host_.disk().get(key);
    if (!record) continue;
    Admission admission;
    admission.body = sim::Payload::deserialize(*record);
    admission.user = admission.body.get("user");
    admission.seq = admission.body.get_uint("seq");
    queue_->push_back(std::move(admission));
  }
  depth_gauge_.set(host_.now(), static_cast<double>(queue_->size()));
}

void Portal::on_message(const sim::Message& message) {
  if (message.type == "portal.submit") {
    ++*submits_received_;
    const std::string user = message.body.get("user");
    const std::uint64_t seq = message.body.get_uint("seq");
    const std::uint64_t count = message.body.get_uint("count", 1);
    sim::Payload reply;
    reply.set_uint("seq", seq);
    if (user.empty() || seq == 0) {
      reply.set("status", "error");
      sim::rpc_reply(network_, message, address(), std::move(reply));
      return;
    }
    if (host_.disk().contains(admitted_key(user, seq))) {
      // Client retry after a lost ack: already admitted, just re-ack.
      ++*duplicate_submits_;
      duplicate_counter_.inc();
      reply.set("status", "ok");
      sim::rpc_reply(network_, message, address(), std::move(reply));
      return;
    }
    if (queue_->size() >= options_.max_queue_depth) {
      ++*busy_rejections_;
      busy_counter_.inc();
      reply.set("status", "busy");
      sim::rpc_reply(network_, message, address(), std::move(reply));
      return;
    }
    // Persist first, ack second: a crash in between leaves the admission
    // durable and the client's retry lands in the duplicate path above.
    host_.disk().put(admitted_key(user, seq), "1");
    host_.disk().put(pending_key(user, seq), message.body.serialize());
    if (host_.crash_point("portal.submit_recv")) return;
    Admission admission;
    admission.body = message.body;
    admission.user = user;
    admission.seq = seq;
    queue_->push_back(std::move(admission));
    ++*batches_admitted_;
    admitted_counter_.inc();
    *jobs_admitted_ += count;
    // Per-user accounting: at community scale this family overflows the
    // registry's label-cardinality cap and the tail lands in the "other"
    // bucket by design.
    host_.metrics().counter("portal.user_jobs", {{"user", user}}).inc(count);
    depth_gauge_.set(host_.now(), static_cast<double>(queue_->size()));
    reply.set("status", "ok");
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "portal"}, {"type", message.type}})
      .inc();
}

void Portal::flush() {
  std::size_t started = 0;
  for (Admission& admission : *queue_) {
    if (started >= options_.flush_batch) break;
    if (admission.in_flight) continue;
    deliver(admission);
    ++started;
  }
  host_.post(options_.flush_period, life_.wrap([this] { flush(); }));
}

void Portal::deliver(Admission& admission) {
  admission.in_flight = true;
  const std::string user = admission.user;
  const std::uint64_t seq = admission.seq;
  const sim::Address to = sim::Address::parse(admission.body.get("deliver_to"));
  sim::Payload payload = admission.body;
  rpc_.call(to, "portal.deliver", std::move(payload),
            options_.deliver_timeout,
            [this, user, seq](bool ok, const sim::Payload& reply) {
              const auto it = std::find_if(
                  queue_->begin(), queue_->end(), [&](const Admission& a) {
                    return a.user == user && a.seq == seq;
                  });
              if (it == queue_->end()) return;  // crashed + reloaded meanwhile
              if (ok && reply.get("status") == "ok") {
                host_.disk().erase(pending_key(user, seq));
                queue_->erase(it);
                ++*deliveries_acked_;
                depth_gauge_.set(host_.now(),
                                 static_cast<double>(queue_->size()));
                return;
              }
              // Runner busy or delivery lost: leave it queued; the next
              // flush retries (the runner's persisted marker absorbs any
              // duplicate that did get through).
              it->in_flight = false;
            });
}

}  // namespace condorg::core
