#include "condorg/core/dagman.h"

#include <stdexcept>

namespace condorg::core {

void Dag::add_node(DagNode node) {
  if (has_node(node.name)) {
    throw std::invalid_argument("duplicate DAG node: " + node.name);
  }
  nodes_.push_back(std::move(node));
}

void Dag::add_edge(const std::string& parent, const std::string& child) {
  if (!has_node(parent) || !has_node(child)) {
    throw std::invalid_argument("edge references unknown node: " + parent +
                                " -> " + child);
  }
  edges_.emplace(parent, child);
}

bool Dag::has_node(const std::string& name) const {
  for (const DagNode& node : nodes_) {
    if (node.name == name) return true;
  }
  return false;
}

DagMan::DagMan(Schedd& schedd, Dag dag, DagManOptions options)
    : schedd_(schedd), options_(options) {
  for (const DagNode& spec : dag.nodes()) {
    by_name_[spec.name] = nodes_.size();
    nodes_.push_back(Node{spec, NodeState::kWaiting, 0, 0, {}, {}});
  }
  for (const auto& [parent, child] : dag.edges()) {
    const std::size_t p = by_name_.at(parent);
    const std::size_t c = by_name_.at(child);
    nodes_[c].parents.push_back(p);
    nodes_[p].children.push_back(c);
  }
  schedd_.add_queue_listener([this](const Job& job) { on_queue_event(job); });
}

void DagMan::validate() const {
  // Kahn's algorithm: every node must be reachable with in-degrees
  // draining to zero, else there is a cycle.
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (const std::size_t child : node.children) ++indegree[child];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::size_t current = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const std::size_t child : nodes_[current].children) {
      if (--indegree[child] == 0) frontier.push_back(child);
    }
  }
  if (visited != nodes_.size()) {
    throw std::invalid_argument("DAG contains a cycle");
  }
}

void DagMan::start() {
  if (started_) return;
  validate();
  started_ = true;
  for (Node& node : nodes_) {
    if (node.parents.empty()) node.state = NodeState::kReady;
  }
  pump();
}

void DagMan::pump() {
  if (finished_) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state != NodeState::kReady) continue;
    if (options_.max_jobs_in_flight &&
        in_flight_ >= options_.max_jobs_in_flight) {
      return;  // throttled (the CMS disk-buffer guard)
    }
    submit_node(i);
  }
  if (complete()) finish(true);
}

void DagMan::submit_node(std::size_t index) {
  Node& node = nodes_[index];
  if (node.spec.pre) node.spec.pre();
  node.state = NodeState::kSubmitted;
  ++node.attempts;
  ++in_flight_;
  node.job_id = schedd_.submit(node.spec.job);
  by_job_[node.job_id] = index;
}

void DagMan::on_queue_event(const Job& job) {
  if (!started_ || finished_) return;
  const auto it = by_job_.find(job.id);
  if (it == by_job_.end()) return;
  Node& node = nodes_[it->second];
  if (node.state != NodeState::kSubmitted) return;

  if (job.status == JobStatus::kCompleted) {
    node.state = NodeState::kDone;
    --in_flight_;
    if (node.spec.post) node.spec.post();
    // Children whose parents are now all done become ready.
    for (const std::size_t child_index : node.children) {
      Node& child = nodes_[child_index];
      if (child.state != NodeState::kWaiting) continue;
      bool all_done = true;
      for (const std::size_t parent : child.parents) {
        if (nodes_[parent].state != NodeState::kDone) {
          all_done = false;
          break;
        }
      }
      if (all_done) child.state = NodeState::kReady;
    }
    pump();
    return;
  }
  if (job.status == JobStatus::kHeld || job.status == JobStatus::kRemoved) {
    --in_flight_;
    by_job_.erase(it);
    if (node.attempts <= node.spec.max_retries) {
      ++retries_;
      if (job.status == JobStatus::kHeld) schedd_.remove(job.id);
      node.state = NodeState::kReady;
      pump();
    } else {
      node.state = NodeState::kFailed;
      finish(false);
    }
  }
}

bool DagMan::complete() const {
  for (const Node& node : nodes_) {
    if (node.state != NodeState::kDone) return false;
  }
  return true;
}

bool DagMan::failed() const {
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kFailed) return true;
  }
  return false;
}

DagMan::NodeState DagMan::node_state(const std::string& name) const {
  return nodes_[by_name_.at(name)].state;
}

std::optional<std::uint64_t> DagMan::node_job(const std::string& name) const {
  const Node& node = nodes_[by_name_.at(name)];
  if (node.job_id == 0) return std::nullopt;
  return node.job_id;
}

std::size_t DagMan::nodes_done() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kDone) ++n;
  }
  return n;
}

void DagMan::finish(bool success) {
  if (finished_) return;
  finished_ = true;
  if (finished_callback_) finished_callback_(success);
}

}  // namespace condorg::core
