#include "condorg/core/glidein.h"

#include "condorg/gass/client.h"

namespace condorg::core {
namespace {
constexpr const char* kBootstrapPath = "glidein/glidein_startup.sh";
constexpr const char* kCallbackService = "glidein.mgr";
}  // namespace

GlideInManager::GlideInManager(Schedd& schedd, sim::Network& network,
                               gass::FileService& gass,
                               GlideInOptions options)
    : schedd_(schedd),
      network_(network),
      host_(schedd.host()),
      gass_(gass),
      options_(std::move(options)),
      gram_(host_, network, "glidein", {}) {
  // The bootstrap "executable" every glidein stages in: "a portable shell
  // script, which in turn uses GSI-authenticated GridFTP to retrieve the
  // Condor executables from a central repository".
  gass_.store().put(kBootstrapPath, "#!/bin/sh glidein_startup", 64 * 1024);
  host_.register_service(kCallbackService, [this](const sim::Message& m) {
    if (m.type != "gram.callback") {
      host_.metrics()
          .counter("unknown_message",
                   {{"daemon", "glidein"}, {"type", m.type}})
          .inc();
      return;
    }
    const std::string contact = m.body.get("contact");
    const std::string state = m.body.get("state");
    const auto it = contact_site_.find(contact);
    if (it == contact_site_.end()) {
      stashed_states_[contact] = state;  // submit-ack still in flight
      return;
    }
    SiteState& site = *it->second;
    if (state == "ACTIVE") {
      // Delayed binding: the site's batch system just allocated our slot.
      if (site.pending > 0) {
        --site.pending;
        --pending_;
        ++site.live;
        launch_startd(site, contact);
      }
    } else if (state == "DONE" || state == "FAILED") {
      // Allocation ended (or submission failed). The startd's own expiry
      // handling does the eviction; here we reconcile counters for
      // glideins that failed before ever starting.
      if (site.pending > 0 && !startds_.count(contact)) {
        --site.pending;
        --pending_;
      }
      contact_site_.erase(it);
    }
  });
}

GlideInManager::~GlideInManager() {
  if (host_.alive()) host_.unregister_service(kCallbackService);
}

void GlideInManager::add_site(GlideInSite site) {
  auto state = std::make_unique<SiteState>();
  state->site = std::move(site);
  sites_.push_back(std::move(state));
}

void GlideInManager::start() {
  if (started_) return;
  started_ = true;
  tick();
}

std::size_t GlideInManager::demand() const {
  return schedd_.idle_jobs(Universe::kVanilla).size();
}

void GlideInManager::tick() {
  if (!paused_) {
    // Flood bounded by per-site caps: keep (pending + live) glideins no
    // larger than the number of idle jobs, spread round-robin over sites.
    std::size_t supply = pending_ + startds_.size();
    const std::size_t want = demand();
    bool progress = true;
    while (supply < want && progress) {
      progress = false;
      for (auto& state : sites_) {
        if (supply >= want) break;
        if (state->pending + state->live >= state->site.max_glideins) {
          continue;
        }
        submit_glidein(*state);
        ++supply;
        progress = true;
      }
    }
  }
  host_.post(options_.tick_interval, [this] { tick(); });
}

void GlideInManager::submit_glidein(SiteState& state) {
  gram::GramJobSpec spec;
  spec.executable = kBootstrapPath;
  spec.output = "";  // daemons produce no output file
  spec.gass_url = gass_.address().str();
  spec.runtime_seconds = options_.walltime;  // occupies the slot until exit
  spec.walltime_limit = options_.walltime;
  spec.cpus = state.site.cpus_per_glidein;
  spec.tag = "glidein";
  ++state.pending;
  ++pending_;
  ++submitted_;
  gram_.submit(state.site.gatekeeper, spec,
               sim::Address{host_.name(), kCallbackService},
               [this, &state](std::optional<std::string> contact) {
                 if (!contact) {
                   --state.pending;
                   --pending_;
                   return;
                 }
                 contact_site_[*contact] = &state;
                 const auto stashed = stashed_states_.find(*contact);
                 if (stashed != stashed_states_.end()) {
                   const std::string s = stashed->second;
                   stashed_states_.erase(stashed);
                   // Replay the state we missed.
                   sim::Message replay;
                   replay.type = "gram.callback";
                   replay.body.set("contact", *contact);
                   replay.body.set("state", s);
                   if (const auto* handler =
                           host_.find_service(kCallbackService)) {
                     (*handler)(replay);
                   }
                 }
               });
}

void GlideInManager::launch_startd(SiteState& state,
                                   const std::string& contact) {
  sim::Host* node = state.site.cluster_host;
  if (node == nullptr || !node->alive()) return;

  const std::string slot_name = "glidein" + std::to_string(++glidein_counter_) +
                                "@" + state.site.name;
  auto create = [this, &state, contact, slot_name, node] {
    condor::StartdOptions so;
    so.collector = options_.collector;
    so.advertise_period = options_.advertise_period;
    so.checkpoint_interval = options_.checkpoint_interval;
    so.allocation_expires_at = host_.sim().now() + options_.walltime;
    so.idle_timeout = options_.idle_timeout;
    if (options_.mean_slot_available_seconds > 0) {
      so.owner_activity = true;
      so.mean_owner_away_seconds = options_.mean_slot_available_seconds;
      so.mean_owner_busy_seconds = options_.mean_slot_reclaimed_seconds;
    }
    so.base_ad = options_.slot_base_ad;
    so.base_ad.insert_string("GlideIn", "true");
    so.base_ad.insert_string("Site", state.site.name);
    ++launched_;
    startds_[contact] = std::make_unique<condor::Startd>(
        *node, network_, slot_name, std::move(so),
        /*on_exit=*/[this, &state, contact] {
          ++exited_;
          if (state.live > 0) --state.live;
          // Free the batch slot if the daemon quit before its allocation
          // ended (idle timeout): cancel the GRAM job.
          gram_.cancel(contact, [](bool) {});
          host_.post(0.0, [this, contact] { startds_.erase(contact); });
        });
  };

  if (options_.binary_repository) {
    // Fetch the Condor binaries from the central repository first; the
    // startd only comes up once the transfer lands.
    auto fetcher = std::make_shared<gass::FileClient>(
        *node, network_, "glidein.fetch." + slot_name);
    fetcher->get(*options_.binary_repository, options_.binary_path,
                 [create, fetcher](std::optional<gass::FileInfo> file) {
                   if (file) create();
                   // On failure the GRAM job idles until its allocation
                   // ends; the site reclaims the slot.
                 });
  } else {
    create();
  }
}

}  // namespace condorg::core
