#include "condorg/core/broker.h"

#include <limits>

namespace condorg::core {

SiteChooser make_static_chooser(std::vector<sim::Address> gatekeepers) {
  auto index = std::make_shared<std::size_t>(0);
  return [gatekeepers = std::move(gatekeepers), index](
             const Job&,
             std::function<void(std::optional<sim::Address>)> done) {
    if (gatekeepers.empty()) {
      done(std::nullopt);
      return;
    }
    done(gatekeepers[(*index)++ % gatekeepers.size()]);
  };
}

SiteChooser make_random_chooser(std::vector<sim::Address> gatekeepers,
                                util::Rng rng) {
  auto state = std::make_shared<util::Rng>(rng);
  return [gatekeepers = std::move(gatekeepers), state](
             const Job&,
             std::function<void(std::optional<sim::Address>)> done) {
    if (gatekeepers.empty()) {
      done(std::nullopt);
      return;
    }
    done(gatekeepers[state->below(gatekeepers.size())]);
  };
}

classad::ClassAd broker_job_ad(const Job& job) {
  classad::ClassAd ad = job.desc.ad;
  if (!ad.contains("Cpus")) ad.insert_int("Cpus", job.desc.cpus);
  if (!ad.contains("JobId")) {
    ad.insert_int("JobId", static_cast<std::int64_t>(job.id));
  }
  if (!ad.contains("Owner")) ad.insert_string("Owner", job.desc.owner);
  return ad;
}

MdsBroker::MdsBroker(sim::Host& host, sim::Network& network,
                     sim::Address giis, std::string reply_service)
    : host_(host),
      client_(host, network, std::move(reply_service)),
      giis_(std::move(giis)) {}

SiteChooser MdsBroker::chooser() {
  return [this](const Job& job,
                std::function<void(std::optional<sim::Address>)> done) {
    choose(job, std::move(done));
  };
}

std::shared_ptr<const classad::ClassAd> MdsBroker::job_ad_for(const Job& job) {
  // Schedd-assigned ids start at 1; id 0 means "not yet submitted" (ad-hoc
  // Job objects in tests/tools), where distinct jobs can share the id — never
  // cache those.
  if (job.id == 0) {
    return std::make_shared<const classad::ClassAd>(broker_job_ad(job));
  }
  if (!job_ad_ || job_ad_id_ != job.id) {
    job_ad_ = std::make_shared<const classad::ClassAd>(broker_job_ad(job));
    job_ad_id_ = job.id;
  }
  return job_ad_;
}

void MdsBroker::choose(
    const Job& job, std::function<void(std::optional<sim::Address>)> done) {
  std::shared_ptr<const classad::ClassAd> job_ad = job_ad_for(job);
  if (host_.now() - cache_time_ <= cache_ttl_) {
    pick_from(cache_, *job_ad, done);
    return;
  }
  ++queries_;
  client_.query(
      giis_, "",
      [this, job_ad = std::move(job_ad), done = std::move(done)](
          std::optional<std::vector<mds::ResourceRecord>> records) {
        if (!records) {
          done(std::nullopt);  // directory unreachable
          return;
        }
        cache_ = std::move(*records);
        cache_time_ = host_.now();
        pick_from(cache_, *job_ad, done);
      });
}

void MdsBroker::pick_from(
    const std::vector<mds::ResourceRecord>& records,
    const classad::ClassAd& job_ad,
    const std::function<void(std::optional<sim::Address>)>& done) {
  const mds::ResourceRecord* best = nullptr;
  double best_rank = -std::numeric_limits<double>::infinity();
  for (const mds::ResourceRecord& record : records) {
    if (!record.ad.contains("GatekeeperHost")) continue;
    if (!classad::symmetric_match(job_ad, record.ad)) continue;
    const double rank = classad::eval_rank(job_ad, record.ad);
    if (best == nullptr || rank > best_rank) {
      best = &record;
      best_rank = rank;
    }
  }
  if (best == nullptr) {
    done(std::nullopt);
    return;
  }
  done(sim::Address{*best->ad.eval_string("GatekeeperHost"),
                    gram::kGatekeeperService});
}

}  // namespace condorg::core
