#include "condorg/core/job.h"

#include "condorg/classad/parser.h"

namespace condorg::core {

const char* to_string(Universe universe) {
  switch (universe) {
    case Universe::kGrid: return "grid";
    case Universe::kVanilla: return "vanilla";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kIdle: return "IDLE";
    case JobStatus::kRunning: return "RUNNING";
    case JobStatus::kHeld: return "HELD";
    case JobStatus::kCompleted: return "COMPLETED";
    case JobStatus::kRemoved: return "REMOVED";
  }
  return "?";
}

Universe universe_from_string(const std::string& text) {
  return text == "vanilla" ? Universe::kVanilla : Universe::kGrid;
}

JobStatus status_from_string(const std::string& text) {
  if (text == "IDLE") return JobStatus::kIdle;
  if (text == "RUNNING") return JobStatus::kRunning;
  if (text == "HELD") return JobStatus::kHeld;
  if (text == "COMPLETED") return JobStatus::kCompleted;
  return JobStatus::kRemoved;
}

std::string Job::serialize() const {
  sim::Payload p;
  p.set_uint("id", id);
  p.set("universe", to_string(desc.universe));
  p.set("owner", desc.owner);
  p.set("executable", desc.executable);
  p.set("output", desc.output);
  p.set_double("runtime", desc.runtime_seconds);
  p.set_int("cpus", desc.cpus);
  p.set_double("walltime", desc.walltime_limit);
  p.set_uint("output_size", desc.output_size);
  p.set_uint("executable_size", desc.executable_size);
  p.set("grid_site_fixed", desc.grid_site);
  p.set("ad", desc.ad.unparse());
  p.set_int("max_attempts", desc.max_attempts);
  p.set_bool("notify_email", desc.notify_email);
  p.set("tag", desc.tag);

  p.set("status", to_string(status));
  p.set("hold_reason", hold_reason);
  p.set_int("attempts", attempts);
  p.set_uint("gram_seq", gram_seq);
  p.set("gram_contact", gram_contact);
  p.set("gram_site", gram_site);
  p.set("remote_state", remote_state);
  p.set_double("checkpointed_work", checkpointed_work);
  p.set_double("submit_time", submit_time);
  p.set_double("first_execute_time", first_execute_time);
  p.set_double("completion_time", completion_time);
  return p.serialize();
}

Job Job::deserialize(const std::string& text) {
  const sim::Payload p = sim::Payload::deserialize(text);
  Job job;
  job.id = p.get_uint("id");
  job.desc.universe = universe_from_string(p.get("universe"));
  job.desc.owner = p.get("owner");
  job.desc.executable = p.get("executable");
  job.desc.output = p.get("output");
  job.desc.runtime_seconds = p.get_double("runtime");
  job.desc.cpus = static_cast<int>(p.get_int("cpus", 1));
  job.desc.walltime_limit = p.get_double("walltime", 1e18);
  job.desc.output_size = p.get_uint("output_size");
  job.desc.executable_size = p.get_uint("executable_size");
  job.desc.grid_site = p.get("grid_site_fixed");
  try {
    job.desc.ad = classad::parse_ad(p.get("ad", "[]"));
  } catch (const classad::ParseError&) {
    // leave empty; a corrupt ad must not wedge queue recovery
  }
  job.desc.max_attempts = static_cast<int>(p.get_int("max_attempts", 10));
  job.desc.notify_email = p.get_bool("notify_email");
  job.desc.tag = p.get("tag");

  job.status = status_from_string(p.get("status"));
  job.hold_reason = p.get("hold_reason");
  job.attempts = static_cast<int>(p.get_int("attempts"));
  job.gram_seq = p.get_uint("gram_seq");
  job.gram_contact = p.get("gram_contact");
  job.gram_site = p.get("gram_site");
  job.remote_state = p.get("remote_state");
  job.checkpointed_work = p.get_double("checkpointed_work");
  job.submit_time = p.get_double("submit_time");
  job.first_execute_time = p.get_double("first_execute_time", -1);
  job.completion_time = p.get_double("completion_time", -1);
  return job;
}

}  // namespace condorg::core
