#include "condorg/core/vanilla_runner.h"

#include "condorg/core/broker.h"

namespace condorg::core {

VanillaRunner::VanillaRunner(Schedd& schedd, sim::Network& network,
                             condor::Collector& collector,
                             VanillaRunnerOptions options)
    : schedd_(schedd),
      network_(network),
      host_(schedd.host()),
      options_(options) {
  negotiator_ = std::make_unique<condor::Negotiator>(
      host_, collector, [this] { return idle_jobs(); },
      [this](const condor::Match& match) { on_match(match); },
      options_.negotiator);
  // Submit-machine crash kills all shadows; jobs are re-queued from their
  // persisted checkpoints when the queue reloads (their status snaps back
  // to Idle on recovery below).
  crash_listener_ = host_.add_crash_listener([this] {
    for (const auto& [job_id, shadow] : shadows_) {
      // Persisted state may say Running; the queue reload on boot keeps
      // that, so normalize: a vanilla job without a live shadow is Idle.
      schedd_.with_job(job_id, [](Job& job) {
        if (job.status == JobStatus::kRunning) job.status = JobStatus::kIdle;
      });
    }
    shadows_.clear();
  });
}

VanillaRunner::~VanillaRunner() {
  host_.remove_crash_listener(crash_listener_);
}

void VanillaRunner::start() { negotiator_->start(); }

std::vector<condor::IdleJob> VanillaRunner::idle_jobs() const {
  std::vector<condor::IdleJob> out;
  for (const std::uint64_t id : schedd_.idle_jobs(Universe::kVanilla)) {
    if (shadows_.count(id)) continue;  // already being placed
    const auto job = schedd_.query(id);
    out.push_back(
        condor::IdleJob{std::to_string(id), broker_job_ad(*job)});
  }
  return out;
}

void VanillaRunner::on_match(const condor::Match& match) {
  const std::uint64_t job_id = std::stoull(match.job_id);
  const auto job = schedd_.query(job_id);
  if (!job || job->status != JobStatus::kIdle) return;
  const auto slot_addr = match.slot_ad.eval_string("MyAddress");
  if (!slot_addr) return;

  condor::ShadowJob shadow_job;
  shadow_job.job_id = match.job_id;
  shadow_job.total_work_seconds = job->desc.runtime_seconds;
  shadow_job.checkpointed_work = job->checkpointed_work;

  const std::string claim_id =
      match.job_id + "." + std::to_string(++claim_counter_);
  ++shadows_spawned_;
  auto shadow = std::make_unique<condor::Shadow>(
      host_, network_, shadow_job, sim::Address::parse(*slot_addr), claim_id,
      options_.shadow,
      /*on_done=*/
      [this, job_id](const std::string&) {
        schedd_.mark_completed(job_id);
        host_.post(0.0, [this, job_id] { shadows_.erase(job_id); });
      },
      /*on_requeue=*/
      [this, job_id](const std::string&, double checkpoint,
                     const std::string& reason) {
        schedd_.mark_evicted(job_id, checkpoint, reason);
        host_.post(0.0, [this, job_id] { shadows_.erase(job_id); });
      });
  shadow->start();
  schedd_.mark_executing(job_id,
                         "slot=" + *match.slot_ad.eval_string("Name"));
  shadows_.emplace(job_id, std::move(shadow));
}

}  // namespace condorg::core
