#include "condorg/core/credential_manager.h"

namespace condorg::core {

CredentialManager::CredentialManager(Schedd& schedd, GridManager& gridmanager,
                                     sim::Network& network,
                                     CredentialManagerOptions options)
    : schedd_(schedd),
      gridmanager_(gridmanager),
      host_(schedd.host()),
      options_(std::move(options)),
      credential_(schedd.host(), "credmgr.credential") {
  if (options_.use_myproxy) {
    myproxy_ = std::make_unique<gsi::MyProxyClient>(host_, network,
                                                    "credmgr.myproxy");
  }
  boot_id_ = host_.add_boot([this] {
    if (started_) scan();
  });
}

void CredentialManager::set_credential(gsi::Credential proxy) {
  *credential_ = std::move(proxy);
  alarm_sent_for_current_ = false;
  gridmanager_.set_credential_text((*credential_)->serialize());
  gridmanager_.reforward_credential();
  release_credential_holds();
}

void CredentialManager::start() {
  if (started_) return;
  started_ = true;
  scan();
}

void CredentialManager::scan() {
  const sim::Time now = host_.now();
  const bool have_active_jobs = schedd_.active_count() > 0;

  if (*credential_ && have_active_jobs) {
    const double remaining = (*credential_)->expires_at() - now;

    if (options_.alarm_threshold > 0 && remaining > options_.refresh_threshold &&
        remaining <= options_.alarm_threshold && !alarm_sent_for_current_) {
      // "it can be configured to email a reminder when less than a
      // specified time remains before a credential expires."
      alarm_sent_for_current_ = true;
      ++alarms_;
      host_.metrics()
          .counter("credential.alarms", {{"host", host_.name()}})
          .inc();
      schedd_.send_email(
          "credential expiry alarm",
          "your grid proxy expires in " +
              std::to_string(static_cast<long long>(remaining)) +
              " seconds; refresh it with grid-proxy-init");
    }

    if (remaining <= options_.refresh_threshold) {
      if (options_.use_myproxy) {
        refresh_from_myproxy();
      } else {
        // No automatic path: hold the jobs and tell the user.
        hold_grid_jobs();
      }
    }
  }
  host_.post(options_.scan_interval, [this] { scan(); });
}

void CredentialManager::audit(std::vector<std::string>& out) const {
  if (!started_ || !host_.alive() || !*credential_) return;
  const double overdue = host_.now() - (*credential_)->expires_at();
  // Two full scan intervals is enough for the loop to have noticed the
  // expiry and held every live grid job (the hold actually fires
  // refresh_threshold seconds *before* expiry) or refreshed via MyProxy.
  if (overdue <= 2 * options_.scan_interval) return;
  for (const auto& [id, job] : schedd_.jobs()) {
    if (job.desc.universe != Universe::kGrid) continue;
    if (job.status == JobStatus::kIdle || job.status == JobStatus::kRunning) {
      out.push_back("job " + std::to_string(id) + " still " +
                    (job.status == JobStatus::kIdle ? "idle" : "running") +
                    " " +
                    std::to_string(static_cast<long long>(overdue)) +
                    "s after proxy expiry");
    }
  }
}

void CredentialManager::hold_grid_jobs() {
  bool any = false;
  for (const auto& [id, job] : schedd_.jobs()) {
    if (job.desc.universe != Universe::kGrid) continue;
    if (job.status == JobStatus::kIdle || job.status == JobStatus::kRunning) {
      schedd_.hold(id, kHoldReason);
      ++holds_;
      host_.metrics()
          .counter("credential.holds", {{"host", host_.name()}})
          .inc();
      sim::Tracer& tracer = host_.tracer();
      if (tracer.enabled()) {
        tracer.event("credential.hold", id, host_.name(), host_.epoch(),
                     kHoldReason);
      }
      any = true;
    }
  }
  if (any) {
    schedd_.send_email(
        "jobs held: credential expired",
        "your jobs cannot run again until your credentials are refreshed");
  }
}

void CredentialManager::release_credential_holds() {
  for (const auto& [id, job] : schedd_.jobs()) {
    if (job.status == JobStatus::kHeld && job.hold_reason == kHoldReason) {
      schedd_.release(id);
    }
  }
}

void CredentialManager::refresh_from_myproxy() {
  if (refresh_in_flight_) return;
  refresh_in_flight_ = true;
  myproxy_->get(
      options_.myproxy_server, options_.myproxy_user,
      options_.myproxy_passphrase, options_.refresh_lifetime,
      [this](std::optional<gsi::Credential> fresh) {
        refresh_in_flight_ = false;
        if (!fresh) {
          // MyProxy unreachable or refused: fall back to holding jobs.
          hold_grid_jobs();
          return;
        }
        ++refreshes_;
        host_.metrics()
            .counter("credential.refreshes", {{"host", host_.name()}})
            .inc();
        sim::Tracer& tracer = host_.tracer();
        if (tracer.enabled()) {
          tracer.event("credential.refresh", 0, host_.name(), host_.epoch(),
                       "refreshed from myproxy");
        }
        set_credential(std::move(*fresh));
      });
}

}  // namespace condorg::core
