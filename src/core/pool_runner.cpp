#include "condorg/core/pool_runner.h"

#include <utility>

#include "condorg/core/broker.h"

namespace condorg::core {

PoolRunner::PoolRunner(Schedd& schedd, sim::Network& network, Options options)
    : schedd_(schedd),
      network_(network),
      host_(schedd.host()),
      options_(std::move(options)),
      rpc_(host_, network, std::string(kService) + ".rpc") {
  install();
  boot_id_ = host_.add_boot([this] {
    install();
    // Same recovery rule as VanillaRunner: persisted Running without a live
    // shadow means the shadow died with the host — the job is Idle again.
    for (const std::uint64_t id : schedd_.jobs_with_status(JobStatus::kRunning)) {
      schedd_.with_job(id, [](Job& job) {
        if (job.desc.universe == Universe::kVanilla) {
          job.status = JobStatus::kIdle;
        }
      });
    }
    if (started_) {
      publish();
      advertise_loop();
    }
  });
  crash_listener_ = host_.add_crash_listener([this] {
    shadows_.clear();
    published_id_ = 0;  // the ad ages out of the Collector by TTL
  });
}

PoolRunner::~PoolRunner() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kService);
}

void PoolRunner::install() {
  host_.register_service(kService,
                         [this](const sim::Message& m) { on_message(m); });
}

void PoolRunner::start() {
  if (started_) return;
  started_ = true;
  publish();
  advertise_loop();
}

std::string PoolRunner::ad_name(std::uint64_t job_id) const {
  return host_.name() + "#job" + std::to_string(job_id);
}

void PoolRunner::on_message(const sim::Message& message) {
  if (message.type == "portal.deliver") {
    on_deliver(message);
    return;
  }
  if (message.type == "negotiator.match") {
    on_match(message.body);
    return;
  }
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "pool_runner"}, {"type", message.type}})
      .inc();
}

void PoolRunner::on_deliver(const sim::Message& message) {
  // Crash on receipt: nothing persisted yet, so the portal's redelivery
  // replays the whole batch — the marker below then makes it idempotent.
  if (host_.crash_point("portal.deliver_recv")) return;
  const std::string user = message.body.get("user");
  const std::uint64_t seq = message.body.get_uint("seq");
  const std::uint64_t count = message.body.get_uint("count", 1);
  sim::Payload reply;
  reply.set_uint("seq", seq);
  const std::string marker = "pool_runner/delivered/" + std::to_string(seq);
  if (host_.disk().contains(marker)) {
    // Portal retry after a lost ack: the batch is already in the queue.
    ++duplicate_deliveries_;
    reply.set("status", "ok");
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (schedd_.active_count() + count > options_.max_active) {
    ++busy_rejections_;
    reply.set("status", "busy");
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  // Schedd::submit persists every job before returning and this handler
  // cannot be interrupted between the submits, the marker, and the ack
  // (crash points are the only interruption points), so the batch lands
  // exactly once.
  for (std::uint64_t i = 0; i < count; ++i) {
    JobDescription desc;
    desc.universe = Universe::kVanilla;
    desc.owner = user;
    desc.runtime_seconds = message.body.get_double("runtime", 60.0);
    desc.cpus = static_cast<int>(message.body.get_int("cpus", 1));
    desc.notify_email = false;
    const std::string requirements = message.body.get("requirements");
    if (!requirements.empty()) {
      desc.ad.insert_expr("Requirements", requirements);
    }
    const std::string rank = message.body.get("rank");
    if (!rank.empty()) desc.ad.insert_expr("Rank", rank);
    schedd_.submit(std::move(desc));
  }
  host_.disk().put(marker, "1");
  ++deliveries_accepted_;
  reply.set("status", "ok");
  sim::rpc_reply(network_, message, address(), std::move(reply));
  publish();
}

void PoolRunner::publish() {
  std::uint64_t next = 0;
  for (const std::uint64_t id : schedd_.idle_jobs(Universe::kVanilla)) {
    if (shadows_.count(id)) continue;
    next = id;
    break;
  }
  if (next == 0) {
    invalidate_published();
    return;
  }
  if (published_id_ != 0 && published_id_ != next) invalidate_published();
  const auto job = schedd_.query(next);
  if (!job) return;
  classad::ClassAd ad = broker_job_ad(*job);
  ad.insert_string("Name", ad_name(next));
  ad.insert_string("MyAddress", address().str());
  ad.insert_string("User", job->desc.owner);
  ad.insert_string("JobUniverse", "Vanilla");
  ad.insert_string("JobStatus", "Idle");
  sim::Payload payload;
  payload.set("name", ad_name(next));
  payload.set("ad", ad.unparse());
  payload.set_double("ttl",
                     options_.advertise_period * options_.ad_ttl_factor);
  rpc_.notify(options_.collector, "collector.advertise", std::move(payload));
  published_id_ = next;
}

void PoolRunner::invalidate_published() {
  if (published_id_ == 0) return;
  sim::Payload payload;
  payload.set("name", ad_name(published_id_));
  rpc_.notify(options_.collector, "collector.invalidate", std::move(payload));
  published_id_ = 0;
}

void PoolRunner::advertise_loop() {
  host_.post(options_.advertise_period, life_.wrap([this] {
                publish();  // unchanged content is a checksum no-op
                advertise_loop();
              }));
}

void PoolRunner::on_match(const sim::Payload& body) {
  ++matches_received_;
  const std::string name = body.get("job");
  const std::string slot_address = body.get("slot_address");
  if (published_id_ == 0 || name != ad_name(published_id_) ||
      slot_address.empty()) {
    ++stale_matches_;  // window moved (crash, completion) before this landed
    return;
  }
  const std::uint64_t job_id = published_id_;
  const auto job = schedd_.query(job_id);
  if (!job || job->status != JobStatus::kIdle || shadows_.count(job_id)) {
    ++stale_matches_;
    return;
  }

  condor::ShadowJob shadow_job;
  shadow_job.job_id = name;
  shadow_job.total_work_seconds = job->desc.runtime_seconds;
  shadow_job.checkpointed_work = job->checkpointed_work;

  const std::string claim_id = name + "." + std::to_string(++claim_counter_);
  ++shadows_spawned_;
  auto shadow = std::make_unique<condor::Shadow>(
      host_, network_, shadow_job, sim::Address::parse(slot_address), claim_id,
      options_.shadow,
      /*on_done=*/
      [this, job_id](const std::string&) {
        schedd_.mark_completed(job_id);
        host_.post(0.0, life_.wrap([this, job_id] {
                     shadows_.erase(job_id);
                     publish();  // roll the window to the next idle job
                   }));
      },
      /*on_requeue=*/
      [this, job_id](const std::string&, double checkpoint,
                     const std::string& reason) {
        schedd_.mark_evicted(job_id, checkpoint, reason);
        host_.post(0.0, life_.wrap([this, job_id] {
                     shadows_.erase(job_id);
                     publish();
                   }));
      });
  shadow->start();
  schedd_.mark_executing(job_id, "slot=" + body.get("slot_name"));
  shadows_.emplace(job_id, std::move(shadow));
  // The matched job is Running now, so this retracts its ad and advertises
  // the next pending job in the window.
  publish();
}

}  // namespace condorg::core
