#include "condorg/gram/protocol.h"

namespace condorg::gram {

const char* to_string(GramJobState state) {
  switch (state) {
    case GramJobState::kUnsubmitted: return "UNSUBMITTED";
    case GramJobState::kStageIn: return "STAGE_IN";
    case GramJobState::kPending: return "PENDING";
    case GramJobState::kActive: return "ACTIVE";
    case GramJobState::kDone: return "DONE";
    case GramJobState::kFailed: return "FAILED";
  }
  return "?";
}

GramJobState gram_state_from_string(const std::string& text) {
  if (text == "UNSUBMITTED") return GramJobState::kUnsubmitted;
  if (text == "STAGE_IN") return GramJobState::kStageIn;
  if (text == "PENDING") return GramJobState::kPending;
  if (text == "ACTIVE") return GramJobState::kActive;
  if (text == "DONE") return GramJobState::kDone;
  return GramJobState::kFailed;
}

bool is_terminal(GramJobState state) {
  return state == GramJobState::kDone || state == GramJobState::kFailed;
}

void GramJobSpec::to_payload(sim::Payload& payload) const {
  payload.set("spec.executable", executable);
  payload.set_uint("spec.exe_checksum", exe_checksum);
  payload.set("spec.output", output);
  payload.set("spec.gass_url", gass_url);
  payload.set_double("spec.runtime", runtime_seconds);
  payload.set_double("spec.walltime", walltime_limit);
  payload.set_int("spec.cpus", cpus);
  payload.set_uint("spec.output_size", output_size);
  payload.set_double("spec.stream_interval", stream_interval);
  payload.set("spec.tag", tag);
}

GramJobSpec GramJobSpec::from_payload(const sim::Payload& payload) {
  GramJobSpec spec;
  spec.executable = payload.get("spec.executable");
  spec.exe_checksum = payload.get_uint("spec.exe_checksum");
  spec.output = payload.get("spec.output");
  spec.gass_url = payload.get("spec.gass_url");
  spec.runtime_seconds = payload.get_double("spec.runtime", 60.0);
  spec.walltime_limit = payload.get_double("spec.walltime", 1e18);
  spec.cpus = static_cast<int>(payload.get_int("spec.cpus", 1));
  spec.output_size = payload.get_uint("spec.output_size", 1024);
  spec.stream_interval = payload.get_double("spec.stream_interval", 0.0);
  spec.tag = payload.get("spec.tag");
  return spec;
}

}  // namespace condorg::gram
