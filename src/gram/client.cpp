#include "condorg/gram/client.h"

#include "condorg/util/logging.h"
#include "condorg/util/strings.h"

namespace condorg::gram {
namespace {
// Referenced only from CONDORG_LOG_TRACE sites (discarded-if-constexpr).
[[maybe_unused]] const util::Logger& gram_logger() {
  static const util::Logger logger("gram");
  return logger;
}
}  // namespace

sim::Address jobmanager_address(const std::string& contact) {
  const auto colon = contact.find(':');
  return sim::Address{contact.substr(0, colon), jobmanager_service(contact)};
}

sim::Address gatekeeper_address_for(const std::string& contact) {
  const auto colon = contact.find(':');
  return sim::Address{contact.substr(0, colon), kGatekeeperService};
}

GramClient::GramClient(sim::Host& host, sim::Network& network,
                       std::string client_id, GramClientOptions options)
    : host_(host),
      network_(network),
      client_id_(std::move(client_id)),
      options_(options),
      rpc_(host, network, "gram.client." + client_id_),
      submits_counter_(host.metrics().counter("gram.submits_sent",
                                              {{"client", client_id_}})),
      commits_counter_(host.metrics().counter("gram.commits_sent",
                                              {{"client", client_id_}})) {}

sim::Payload GramClient::base_payload() const {
  sim::Payload payload;
  payload.set("client_id", client_id_);
  if (!credential_.empty()) payload.set("credential", credential_);
  return payload;
}

std::string GramClient::seq_contact_key(std::uint64_t seq) const {
  return "gram.client/" + client_id_ + "/seq/" + std::to_string(seq);
}

std::uint64_t GramClient::allocate_seq() {
  const std::string key = "gram.client/" + client_id_ + "/next_seq";
  std::uint64_t seq = 1;
  if (const auto stored = host_.disk().get(key)) seq = std::stoull(*stored);
  host_.disk().put(key, std::to_string(seq + 1));
  return seq;
}

std::uint64_t GramClient::next_seq() const {
  const std::string key = "gram.client/" + client_id_ + "/next_seq";
  if (const auto stored = host_.disk().get(key)) return std::stoull(*stored);
  return 1;
}

std::optional<std::string> GramClient::contact_for_seq(
    std::uint64_t seq) const {
  return host_.disk().get(seq_contact_key(seq));
}

void GramClient::submit(const sim::Address& gatekeeper,
                        const GramJobSpec& spec, const sim::Address& callback,
                        SubmitCallback done) {
  submit_with_seq(allocate_seq(), gatekeeper, spec, callback, std::move(done));
}

void GramClient::submit_with_seq(std::uint64_t seq,
                                 const sim::Address& gatekeeper,
                                 const GramJobSpec& spec,
                                 const sim::Address& callback,
                                 SubmitCallback done) {
  drive_submit(seq, gatekeeper, spec, callback, std::move(done),
               options_.max_attempts);
}

void GramClient::drive_submit(std::uint64_t seq,
                              const sim::Address& gatekeeper,
                              const GramJobSpec& spec,
                              const sim::Address& callback,
                              SubmitCallback done, int attempts_left) {
  if (attempts_left <= 0) {
    done(std::nullopt);
    return;
  }
  // Crash point: seq already allocated and persisted, request not yet sent
  // — recovery must re-drive this seq, never allocate a fresh one.
  if (host_.crash_point("gram.client.submit_send")) return;
  sim::Payload payload = base_payload();
  payload.set_uint("seq", seq);
  payload.set_bool("two_phase", options_.two_phase);
  payload.set("callback", callback.str());
  spec.to_payload(payload);
  ++submits_sent_;
  submits_counter_.inc();
  CONDORG_LOG_TRACE(gram_logger(), client_id_, " submit seq=", seq, " to ",
                    gatekeeper.host, " attempts_left=", attempts_left);
  rpc_.call(
      gatekeeper, "gram.submit", std::move(payload), options_.rpc_timeout,
      [this, seq, gatekeeper, spec, callback, done = std::move(done),
       attempts_left](bool ok, const sim::Payload& reply) mutable {
        if (!ok) {
          // Lost request OR lost response: resend with the SAME sequence
          // number after a delay. The gatekeeper's dedup makes this safe.
          host_.post(options_.retry_delay, [this, seq, gatekeeper, spec,
                                            callback,
                                            done = std::move(done),
                                            attempts_left]() mutable {
            drive_submit(seq, gatekeeper, spec, callback, std::move(done),
                         attempts_left - 1);
          });
          return;
        }
        if (!reply.get_bool("ok")) {
          done(std::nullopt);  // authoritative refusal (auth, bad spec)
          return;
        }
        const std::string contact = reply.get("contact");
        // Crash point: contact received but not yet persisted — after
        // recovery the retransmitted seq must dedup to the same contact.
        if (host_.crash_point("gram.client.contact_persist")) return;
        host_.disk().put(seq_contact_key(seq), contact);
        if (!options_.two_phase) {
          done(contact);
          return;
        }
        drive_commit(contact, std::move(done), options_.max_attempts);
      });
}

void GramClient::drive_commit(const std::string& contact, SubmitCallback done,
                              int attempts_left) {
  if (attempts_left <= 0) {
    done(std::nullopt);
    return;
  }
  // Crash point: contact persisted, commit not yet sent — the job must not
  // start (two-phase) and recovery must be able to finish the handshake.
  if (host_.crash_point("gram.client.commit_send")) return;
  sim::Payload payload = base_payload();
  payload.set("contact", contact);
  ++commits_sent_;
  commits_counter_.inc();
  CONDORG_LOG_TRACE(gram_logger(), client_id_, " commit ", contact,
                    " attempts_left=", attempts_left);
  rpc_.call(jobmanager_address(contact), "jm.commit", std::move(payload),
            options_.rpc_timeout,
            [this, contact, done = std::move(done),
             attempts_left](bool ok, const sim::Payload& reply) mutable {
              if (ok && reply.get_bool("ok")) {
                done(contact);
                return;
              }
              host_.post(options_.retry_delay,
                         [this, contact, done = std::move(done),
                          attempts_left]() mutable {
                           drive_commit(contact, std::move(done),
                                        attempts_left - 1);
                         });
            });
}

void GramClient::status(const std::string& contact, StateCallback done) {
  rpc_.call(jobmanager_address(contact), "jm.status", base_payload(),
            options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                done(std::nullopt);
                return;
              }
              done(gram_state_from_string(reply.get("state")));
            });
}

void GramClient::ping_jobmanager(const std::string& contact,
                                 BoolCallback done) {
  rpc_.call(jobmanager_address(contact), "jm.ping", base_payload(),
            options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              done(ok && reply.get_bool("ok"));
            });
}

void GramClient::ping_gatekeeper(const sim::Address& gatekeeper,
                                 BoolCallback done) {
  rpc_.call(gatekeeper, "gram.ping", base_payload(), options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              done(ok && reply.get_bool("ok"));
            });
}

void GramClient::restart_jobmanager(const std::string& contact,
                                    StateCallback done) {
  sim::Payload payload = base_payload();
  payload.set("contact", contact);
  rpc_.call(gatekeeper_address_for(contact), "gram.restart_jobmanager",
            std::move(payload), options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                done(std::nullopt);
                return;
              }
              done(gram_state_from_string(reply.get("state")));
            });
}

void GramClient::cancel(const std::string& contact, BoolCallback done) {
  sim::Payload payload = base_payload();
  payload.set("contact", contact);
  rpc_.call(jobmanager_address(contact), "jm.cancel", std::move(payload),
            options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              done(ok && reply.get_bool("ok"));
            });
}

void GramClient::update_gass(const std::string& contact,
                             const sim::Address& gass, BoolCallback done) {
  sim::Payload payload = base_payload();
  payload.set("contact", contact);
  payload.set("gass_url", gass.str());
  rpc_.call(jobmanager_address(contact), "jm.update_gass", std::move(payload),
            options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              done(ok && reply.get_bool("ok"));
            });
}

void GramClient::refresh_remote_credential(const std::string& contact,
                                           BoolCallback done) {
  sim::Payload payload = base_payload();
  payload.set("contact", contact);
  rpc_.call(jobmanager_address(contact), "jm.refresh_credential",
            std::move(payload), options_.rpc_timeout,
            [done = std::move(done)](bool ok, const sim::Payload& reply) {
              done(ok && reply.get_bool("ok"));
            });
}

}  // namespace condorg::gram
