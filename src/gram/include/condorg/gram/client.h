// Client side of GRAM: what the GridManager uses to talk to sites.
//
// Implements the revised protocol's exactly-once submission: each request
// carries a client-unique sequence number *persisted before first send*, so
// after any combination of lost requests, lost responses, and submit-machine
// crashes, re-driving the submission with the same sequence number yields
// the same job, never a second copy. Commit is a separate phase: the job
// does not start until the client confirms it received the contact.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "condorg/gram/protocol.h"
#include "condorg/gsi/credential.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/metrics.h"

namespace condorg::gram {

struct GramClientOptions {
  double rpc_timeout = 30.0;
  double retry_delay = 30.0;
  int max_attempts = 40;  // per phase
  /// false = one-phase ablation mode: no commit phase; combined with a
  /// non-dedup gatekeeper this reproduces the duplicated-jobs failure mode
  /// the two-phase protocol exists to prevent.
  bool two_phase = true;
};

/// The JobManager endpoint for a contact ("sitehost:n").
sim::Address jobmanager_address(const std::string& contact);
/// The Gatekeeper endpoint on the site hosting `contact`.
sim::Address gatekeeper_address_for(const std::string& contact);

class GramClient {
 public:
  CONDORG_HOST_LOCAL("user");

  GramClient(sim::Host& host, sim::Network& network, std::string client_id,
             GramClientOptions options = {});

  GramClient(const GramClient&) = delete;
  GramClient& operator=(const GramClient&) = delete;

  /// Proxy credential attached to all requests.
  void set_credential(const gsi::Credential& credential) {
    credential_ = credential.serialize();
  }
  void set_credential_text(std::string serialized) {
    credential_ = std::move(serialized);
  }
  const std::string& credential_text() const { return credential_; }

  /// Allocate and persist a fresh sequence number. Persisting *before* the
  /// first send is what makes crash-recovery dedup work.
  std::uint64_t allocate_seq();

  /// The next sequence number allocate_seq() would hand out (read-only;
  /// every seq ever allocated by this client is strictly below it). Used by
  /// the invariant auditor to check seq monotonicity.
  std::uint64_t next_seq() const;

  /// Contact recorded for a sequence number (if the submit got that far).
  std::optional<std::string> contact_for_seq(std::uint64_t seq) const;

  using SubmitCallback =
      std::function<void(std::optional<std::string> contact)>;
  using BoolCallback = std::function<void(bool ok)>;
  using StateCallback =
      std::function<void(std::optional<GramJobState> state)>;

  /// Full submission (allocate seq, two-phase commit, retries). `callback_`
  /// names the client service that will receive "gram.callback" updates.
  void submit(const sim::Address& gatekeeper, const GramJobSpec& spec,
              const sim::Address& callback, SubmitCallback done);

  /// Re-drivable form used during crash recovery: same seq => same job.
  void submit_with_seq(std::uint64_t seq, const sim::Address& gatekeeper,
                       const GramJobSpec& spec, const sim::Address& callback,
                       SubmitCallback done);

  /// Poll a JobManager's job state.
  void status(const std::string& contact, StateCallback done);
  /// Probe the JobManager (alive?).
  void ping_jobmanager(const std::string& contact, BoolCallback done);
  /// Probe the site's Gatekeeper (alive & reachable?).
  void ping_gatekeeper(const sim::Address& gatekeeper, BoolCallback done);
  /// Ask the Gatekeeper to start a replacement JobManager for `contact`.
  void restart_jobmanager(const std::string& contact, StateCallback done);
  /// Cancel the job.
  void cancel(const std::string& contact, BoolCallback done);
  /// Tell the JobManager the client's GASS server moved (crash recovery).
  void update_gass(const std::string& contact, const sim::Address& gass,
                   BoolCallback done);

  /// Re-forward the current (refreshed) proxy to the JobManager, which
  /// holds a delegated copy for its own GASS traffic (§4.3).
  void refresh_remote_credential(const std::string& contact,
                                 BoolCallback done);

  std::uint64_t submits_sent() const { return submits_sent_; }
  std::uint64_t commits_sent() const { return commits_sent_; }

 private:
  void drive_submit(std::uint64_t seq, const sim::Address& gatekeeper,
                    const GramJobSpec& spec, const sim::Address& callback,
                    SubmitCallback done, int attempts_left);
  void drive_commit(const std::string& contact, SubmitCallback done,
                    int attempts_left);
  sim::Payload base_payload() const;
  std::string seq_contact_key(std::uint64_t seq) const;

  sim::Host& host_;
  sim::Network& network_;
  std::string client_id_;
  GramClientOptions options_;
  sim::RpcClient rpc_;
  // Registry references are stable for the registry's lifetime; caching
  // them keeps metric_key() string-building off the per-submit hot path.
  util::Counter& submits_counter_;
  util::Counter& commits_counter_;
  std::string credential_;
  std::uint64_t submits_sent_ = 0;
  std::uint64_t commits_sent_ = 0;
};

}  // namespace condorg::gram
