// Globus JobManager (Fig. 1 of the paper).
//
// One JobManager per GRAM job, spawned by the Gatekeeper on the site
// front-end. It stages the executable from the client's GASS server,
// submits to the site's local scheduler, relays status callbacks to the
// GridManager, streams output back on completion, and persists enough state
// that a *new* JobManager can re-attach to the local job after a crash —
// including discovering that the job finished while no JobManager existed.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "condorg/batch/local_scheduler.h"
#include "condorg/gass/client.h"
#include "condorg/gass/staging_cache.h"
#include "condorg/gram/protocol.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/metrics.h"

namespace condorg::gram {

/// Per-site cache of the "jobmanager.state_changes" counters, one per
/// GramJobState. JobManagers are one-per-job and walk each state once, so
/// the Gatekeeper resolves the registry lookups a single time and shares
/// them with every JobManager it spawns (registry references are stable).
struct JobManagerStateCounters {
  std::array<util::Counter*, 6> by_state{};

  static JobManagerStateCounters for_site(util::MetricsRegistry& metrics,
                                          const std::string& site);
  util::Counter* at(GramJobState state) const {
    return by_state[static_cast<std::size_t>(state)];
  }
};

class JobManager {
 public:
  /// Site front-end process, one per GRAM job.
  CONDORG_HOST_LOCAL("site");

  /// Fresh-submission constructor: persists the job record, then waits for
  /// commit (two-phase) or proceeds immediately (`auto_commit`, the
  /// one-phase ablation mode). `staging_cache` (owned by the Gatekeeper,
  /// may be null) serves content-addressed executables (exe_checksum != 0)
  /// without re-transferring per job.
  JobManager(sim::Host& host, sim::Network& network,
             batch::LocalScheduler& scheduler, std::string contact,
             GramJobSpec spec, sim::Address client_callback, bool auto_commit,
             std::string forwarded_credential = "",
             const JobManagerStateCounters* state_counters = nullptr,
             std::string client_id = "", std::uint64_t client_seq = 0,
             gass::StagingCache* staging_cache = nullptr);

  /// Reattach constructor: rebuilds a JobManager for `contact` from the
  /// record on the host's stable storage. Used by the Gatekeeper when asked
  /// to restart a JobManager after a crash.
  JobManager(sim::Host& host, sim::Network& network,
             batch::LocalScheduler& scheduler, std::string contact,
             const JobManagerStateCounters* state_counters = nullptr,
             gass::StagingCache* staging_cache = nullptr);

  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  const std::string& contact() const { return contact_; }
  GramJobState state() const { return state_; }
  const GramJobSpec& spec() const { return spec_; }
  const sim::Address& client_callback() const { return client_callback_; }
  /// The (client_id, seq) pair this submission was accepted under — the
  /// identity the gatekeeper's dedup key protects. Persisted with the
  /// record so the exactly-once audit can detect duplicate acceptances on
  /// stable storage even across JobManager restarts.
  const std::string& client_id() const { return client_id_; }
  std::uint64_t client_seq() const { return client_seq_; }
  bool committed() const { return committed_; }
  std::uint64_t local_job_id() const { return local_job_id_; }
  sim::Address address() const {
    return {host_.name(), jobmanager_service(contact_)};
  }

  /// Invariant audit hook: the in-memory state machine must agree with the
  /// stable-storage record it claims to have persisted (commit-before-run,
  /// a local job behind every PENDING/ACTIVE state). Appends one line per
  /// violation; no-op for a dead process, whose record is the only truth.
  void audit(std::vector<std::string>& out) const;

  /// Simulate a crash of just this JobManager process (failure type F1):
  /// its service handler disappears but the host, the Gatekeeper, and the
  /// local job live on. The stable-storage record remains for reattach.
  void kill_process();
  bool process_alive() const { return process_alive_; }

  /// Stable-storage key for a contact's record.
  static std::string record_key(const std::string& contact);

 private:
  void install();
  void persist();
  void load_record();
  void on_message(const sim::Message& message);
  void commit();
  void stage_in();
  void submit_to_scheduler();
  void watch_scheduler();
  void on_local_terminal(const batch::JobRecord& record);
  void stage_out_and_finish(GramJobState final_state,
                            const std::string& why);
  /// Real-time stdout streaming while ACTIVE (spec.stream_interval > 0).
  void stream_output_tick();
  /// Restart the stream from byte 0 at the (possibly new) GASS server —
  /// the "request resending" path after a client crash/move.
  void restream_output();
  void set_state(GramJobState state, const std::string& why = "");
  void send_callback(const std::string& why);

  sim::Host& host_;
  sim::Network& network_;
  batch::LocalScheduler& scheduler_;
  std::string contact_;
  GramJobSpec spec_;
  sim::Address client_callback_;
  std::string client_id_;
  std::uint64_t client_seq_ = 0;
  bool auto_commit_ = false;
  det::HostLocal<GramJobState> state_;
  bool committed_ = false;
  std::uint64_t local_job_id_ = 0;
  std::uint64_t streamed_chunks_ = 0;  // also the append sequence number
  bool streaming_ = false;
  bool process_alive_ = true;
  sim::Lifetime life_;
  std::string forwarded_credential_;
  std::uint64_t job_handler_token_ = 0;
  std::unique_ptr<sim::RpcClient> rpc_;
  std::unique_ptr<gass::FileClient> gass_;
  const JobManagerStateCounters* state_counters_ = nullptr;
  gass::StagingCache* staging_cache_ = nullptr;
  int crash_listener_ = 0;
  sim::SpanId stage_in_span_ = 0;
  sim::SpanId stage_out_span_ = 0;
};

}  // namespace condorg::gram
