// GRAM protocol definitions (§3.2 of the paper).
//
// The revised GRAM protocol Condor-G relies on adds, over plain remote
// submission:
//   * two-phase commit with client sequence numbers ("exactly once"
//     execution semantics): the request carries a unique sequence number
//     echoed in the response, so a client that re-sends after silence and
//     the resource can distinguish a lost request from a lost response; the
//     job only starts after an explicit commit; and
//   * resource-side fault tolerance: job details are logged to stable
//     storage so a crashed JobManager can be restarted and re-attached to
//     the still-queued-or-running local job.
#pragma once

#include <cstdint>
#include <string>

#include "condorg/sim/message.h"

namespace condorg::gram {

/// GRAM job states (the subset of the protocol's state machine we model).
enum class GramJobState {
  kUnsubmitted,  // request accepted, awaiting commit
  kStageIn,      // fetching executable/stdin via GASS
  kPending,      // waiting in the site's local queue
  kActive,       // running under the local scheduler
  kDone,         // completed successfully
  kFailed,       // staging failure, walltime kill, cancel, ...
};

const char* to_string(GramJobState state);
GramJobState gram_state_from_string(const std::string& text);
bool is_terminal(GramJobState state);

/// What the client asks the site to run.
struct GramJobSpec {
  std::string executable;        // path on the client's GASS server
  /// Content checksum of the executable (0 = unknown). Non-zero values key
  /// the site's staging cache: identical jobs share one transfer, and a
  /// changed executable under the same path is detected and re-staged.
  std::uint64_t exe_checksum = 0;
  std::string output;            // path on the client's GASS server
  std::string gass_url;          // "host/service" of the client GASS server
  double runtime_seconds = 60;   // true compute demand
  double walltime_limit = 1e18;  // requested limit (site may cap further)
  int cpus = 1;
  std::uint64_t output_size = 1024;
  /// Real-time stdout streaming: while ACTIVE, the JobManager appends an
  /// output chunk to the client's GASS server at this period (0 = only
  /// stage the full file at completion). Streamed bytes carry sequence
  /// numbers, so after a crash of client or server the stream can be
  /// resent without duplication (§3.2).
  double stream_interval = 0.0;
  std::string tag;               // opaque client annotation

  void to_payload(sim::Payload& payload) const;
  static GramJobSpec from_payload(const sim::Payload& payload);
};

/// Service names.
inline constexpr const char* kGatekeeperService = "gram.gatekeeper";
inline std::string jobmanager_service(const std::string& contact) {
  return "gram.jm." + contact;
}

/// The GridManager tags grid submissions "job<id>" (spec_for); other
/// clients use free-form tags. Returns 0 when the tag names no job, which
/// trace consumers treat as "no job association".
inline std::uint64_t job_from_tag(const std::string& tag) {
  if (tag.rfind("job", 0) != 0) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = 3; i < tag.size(); ++i) {
    const char c = tag[i];
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

}  // namespace condorg::gram
