// Globus Gatekeeper (Fig. 1 of the paper).
//
// The site front-end service that authenticates/authorizes GRAM requests
// (GSI + gridmap) and manages the site's JobManagers. Implements the
// resource side of the two-phase commit: submissions carry a (client_id,
// sequence) pair persisted to stable storage, so a retransmitted request —
// sent because the client could not tell whether its request or our
// response was lost — maps to the existing JobManager instead of starting a
// second copy of the job.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "condorg/batch/local_scheduler.h"
#include "condorg/gram/jobmanager.h"
#include "condorg/gram/protocol.h"
#include "condorg/gsi/auth.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/util/metrics.h"

namespace condorg::gram {

struct GatekeeperOptions {
  gsi::AuthConfig auth;
  /// Site policy: cap on any job's walltime (the "local policy may also
  /// impose restrictions on the running time of the job" of §5).
  double max_walltime = 1e18;
  /// Two-phase commit dedup. Disabling this models the pre-revision GRAM
  /// protocol (the A1 ablation): retransmitted submissions each start a
  /// fresh job.
  bool dedup_submissions = true;
};

class Gatekeeper {
 public:
  /// Site front-end daemon: owns this site's JobManagers and scratch cache.
  CONDORG_HOST_LOCAL("site");

  Gatekeeper(sim::Host& host, sim::Network& network,
             batch::LocalScheduler& scheduler, GatekeeperOptions options = {});
  ~Gatekeeper();

  Gatekeeper(const Gatekeeper&) = delete;
  Gatekeeper& operator=(const Gatekeeper&) = delete;

  sim::Address address() const { return {host_.name(), kGatekeeperService}; }
  sim::Host& host() { return host_; }
  const sim::Host& host() const { return host_; }
  batch::LocalScheduler& scheduler() { return scheduler_; }
  const GatekeeperOptions& options() const { return options_; }

  /// The JobManager for a contact, if one is currently running.
  JobManager* find_jobmanager(const std::string& contact);

  /// This site's staging cache (scratch space: wiped by a host crash,
  /// rebuilt empty at boot). Never null while the host is up.
  gass::StagingCache* staging_cache() { return staging_cache_.get(); }

  /// Kill one JobManager process (failure type F1) without touching the
  /// host, the local job, or stable storage.
  bool kill_jobmanager(const std::string& contact);

  /// Visit every JobManager this gatekeeper manages, in contact order
  /// (read-only; used by cross-site auditing).
  void for_each_jobmanager(
      const std::function<void(const JobManager&)>& visit) const {
    for (const auto& [contact, jm] : *jobmanagers_) visit(*jm);
  }

  /// Invariant audit hook: audits every live JobManager, checks each is
  /// registered under its own contact, that — with two-phase dedup on — no
  /// client job (callback + tag) is being run by two live JobManagers at
  /// this site at once, and that stable storage holds at most one job
  /// record per (client_id, seq) pair — the exactly-once acceptance
  /// invariant the dedup key exists to enforce. Appends one line per
  /// violation.
  void audit(std::vector<std::string>& out) const;

  std::size_t jobmanager_count() const { return jobmanagers_->size(); }
  std::uint64_t submissions_accepted() const { return accepted_; }
  std::uint64_t duplicate_submissions() const { return duplicates_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  std::uint64_t jobmanagers_started() const { return jm_started_; }

 private:
  void install();
  void on_message(const sim::Message& message);
  void handle_submit(const sim::Message& message);
  void handle_restart(const sim::Message& message);
  std::string new_contact();
  /// Registry counter labelled with this site's name; references are stable
  /// so they are resolved once at construction, off the submit hot path.
  util::Counter& count(const char* name);

  sim::Host& host_;
  sim::Network& network_;
  batch::LocalScheduler& scheduler_;
  GatekeeperOptions options_;
  // CONDORG_MUTATE_DEDUP (read at construction): deliberately skip the
  // duplicate-submission lookup while still claiming dedup is on. Exists
  // only so the explorer's mutation self-test can prove the model checker
  // catches this bug class; never set outside that ctest.
  bool mutate_dedup_ = false;
  det::HostLocal<std::map<std::string, std::unique_ptr<JobManager>>>
      jobmanagers_;
  std::unique_ptr<gass::StagingCache> staging_cache_;
  int boot_id_ = 0;
  int crash_listener_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t jm_started_ = 0;
  util::Counter& accepted_counter_;
  util::Counter& duplicates_counter_;
  util::Counter& auth_failures_counter_;
  util::Counter& jm_started_counter_;
  util::Counter& jm_restarted_counter_;
  JobManagerStateCounters jm_state_counters_;
};

}  // namespace condorg::gram
