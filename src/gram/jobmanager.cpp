#include "condorg/gram/jobmanager.h"

#include <utility>

#include "condorg/util/strings.h"

namespace condorg::gram {
namespace {
constexpr double kLocalPollInterval = 15.0;   // watch PENDING->ACTIVE
constexpr double kStageTimeout = 600.0;
constexpr double kStageRetryDelay = 60.0;
constexpr int kStageRetries = 30;
}  // namespace

std::string JobManager::record_key(const std::string& contact) {
  return "gram/job/" + contact;
}

JobManagerStateCounters JobManagerStateCounters::for_site(
    util::MetricsRegistry& metrics, const std::string& site) {
  JobManagerStateCounters counters;
  for (std::size_t i = 0; i < counters.by_state.size(); ++i) {
    const auto state = static_cast<GramJobState>(i);
    counters.by_state[i] = &metrics.counter(
        "jobmanager.state_changes",
        {{"site", site}, {"state", to_string(state)}});
  }
  return counters;
}

JobManager::JobManager(sim::Host& host, sim::Network& network,
                       batch::LocalScheduler& scheduler, std::string contact,
                       GramJobSpec spec, sim::Address client_callback,
                       bool auto_commit, std::string forwarded_credential,
                       const JobManagerStateCounters* state_counters,
                       std::string client_id, std::uint64_t client_seq,
                       gass::StagingCache* staging_cache)
    : host_(host),
      network_(network),
      scheduler_(scheduler),
      contact_(std::move(contact)),
      spec_(std::move(spec)),
      client_callback_(std::move(client_callback)),
      client_id_(std::move(client_id)),
      client_seq_(client_seq),
      auto_commit_(auto_commit),
      state_(host, "jobmanager.state", GramJobState::kUnsubmitted),
      forwarded_credential_(std::move(forwarded_credential)),
      state_counters_(state_counters),
      staging_cache_(staging_cache) {
  rpc_ = std::make_unique<sim::RpcClient>(
      host_, network_, jobmanager_service(contact_) + ".rpc");
  gass_ = std::make_unique<gass::FileClient>(
      host_, network_, jobmanager_service(contact_) + ".gass");
  gass_->set_credential_text(forwarded_credential_);
  install();
  persist();
  crash_listener_ = host_.add_crash_listener([this] { process_alive_ = false; });
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    // Milestone for the critical-path taxonomy: the interval ending here is
    // the gatekeeper's auth+spawn work.
    tracer.event("jm.created", job_from_tag(spec_.tag), host_.name(),
                 host_.epoch(), contact_);
  }
  if (auto_commit_) commit();
}

JobManager::JobManager(sim::Host& host, sim::Network& network,
                       batch::LocalScheduler& scheduler, std::string contact,
                       const JobManagerStateCounters* state_counters,
                       gass::StagingCache* staging_cache)
    : host_(host),
      network_(network),
      scheduler_(scheduler),
      contact_(std::move(contact)),
      state_(host, "jobmanager.state", GramJobState::kUnsubmitted),
      state_counters_(state_counters),
      staging_cache_(staging_cache) {
  rpc_ = std::make_unique<sim::RpcClient>(
      host_, network_, jobmanager_service(contact_) + ".rpc");
  gass_ = std::make_unique<gass::FileClient>(
      host_, network_, jobmanager_service(contact_) + ".gass");
  load_record();
  gass_->set_credential_text(forwarded_credential_);
  install();
  crash_listener_ = host_.add_crash_listener([this] { process_alive_ = false; });

  // Re-attach: figure out where the job got to while we were gone.
  if (is_terminal(state_)) {
    // Nothing to do; report the stored outcome to the (possibly new)
    // GridManager so it stops waiting.
    send_callback("reattach: already terminal");
  } else if (local_job_id_ != 0) {
    const auto status = scheduler_.status(local_job_id_);
    if (!status) {
      stage_out_and_finish(GramJobState::kFailed,
                           "reattach: local job vanished");
    } else if (batch::is_terminal(status->state)) {
      on_local_terminal(*status);
    } else {
      set_state(status->state == batch::JobState::kRunning
                    ? GramJobState::kActive
                    : GramJobState::kPending,
                "reattach");
      watch_scheduler();
      if (state_ == GramJobState::kActive && spec_.stream_interval > 0 &&
          !streaming_) {
        streaming_ = true;
        host_.post(spec_.stream_interval,
                   life_.wrap([this] { stream_output_tick(); }));
      }
    }
  } else if (committed_) {
    // Crashed between commit and local submission: redo staging.
    stage_in();
  }
  // else: still awaiting commit; nothing to do.
}

JobManager::~JobManager() {
  life_.revoke();
  host_.remove_crash_listener(crash_listener_);
  if (job_handler_token_) scheduler_.remove_job_handler(job_handler_token_);
  if (host_.alive() && process_alive_) {
    host_.unregister_service(jobmanager_service(contact_));
  }
}

void JobManager::install() {
  host_.register_service(jobmanager_service(contact_),
                         [this](const sim::Message& m) { on_message(m); });
}

void JobManager::kill_process() {
  if (!process_alive_) return;
  process_alive_ = false;
  // The tracer outlives the process: close any staging span this
  // incarnation left open (a reattached JobManager opens fresh ones).
  host_.tracer().end_span(stage_in_span_, "crashed");
  host_.tracer().end_span(stage_out_span_, "crashed");
  life_.revoke();
  if (job_handler_token_) {
    scheduler_.remove_job_handler(job_handler_token_);
    job_handler_token_ = 0;
  }
  host_.unregister_service(jobmanager_service(contact_));
  // The RpcClients' pending callbacks die with the process: drop them by
  // resetting (their destructors unregister reply services).
  rpc_.reset();
  gass_.reset();
}

void JobManager::persist() {
  sim::Payload record;
  spec_.to_payload(record);
  record.set("callback", client_callback_.str());
  record.set("client_id", client_id_);
  record.set_uint("client_seq", client_seq_);
  record.set_bool("committed", committed_);
  record.set_uint("local_job_id", local_job_id_);
  record.set("state", to_string(state_));
  record.set_bool("auto_commit", auto_commit_);
  record.set("fwd_credential", forwarded_credential_);
  record.set_uint("streamed_chunks", streamed_chunks_);
  host_.disk().put(record_key(contact_), record.serialize());
}

void JobManager::load_record() {
  const auto text = host_.disk().get(record_key(contact_));
  if (!text) return;  // empty record: job unknown; stays kUnsubmitted
  const sim::Payload record = sim::Payload::deserialize(*text);
  spec_ = GramJobSpec::from_payload(record);
  client_callback_ = sim::Address::parse(record.get("callback"));
  client_id_ = record.get("client_id");
  client_seq_ = record.get_uint("client_seq");
  committed_ = record.get_bool("committed");
  local_job_id_ = record.get_uint("local_job_id");
  state_ = gram_state_from_string(record.get("state"));
  auto_commit_ = record.get_bool("auto_commit");
  forwarded_credential_ = record.get("fwd_credential");
  streamed_chunks_ = record.get_uint("streamed_chunks");
}

void JobManager::audit(std::vector<std::string>& out) const {
  if (!process_alive_) return;
  if (!committed_ && state_ != GramJobState::kUnsubmitted) {
    out.push_back(contact_ + " reached " + to_string(state_) +
                  " without a commit");
  }
  if ((state_ == GramJobState::kPending || state_ == GramJobState::kActive) &&
      local_job_id_ == 0) {
    out.push_back(contact_ + " is " + to_string(state_) +
                  " with no local scheduler job");
  }
  // The record on stable storage is what a post-crash replacement would be
  // rebuilt from; if it lags the in-memory state, recovery would silently
  // rewind the job.
  const auto text = host_.disk().get(record_key(contact_));
  if (!text) {
    out.push_back(contact_ + " has no stable-storage record");
    return;
  }
  const sim::Payload record = sim::Payload::deserialize(*text);
  if (record.get("state") != to_string(state_)) {
    out.push_back(contact_ + " persisted state " + record.get("state") +
                  " but is " + to_string(state_));
  }
  if (record.get_bool("committed") != committed_) {
    out.push_back(contact_ + " commit flag not persisted");
  }
  if (record.get_uint("local_job_id") != local_job_id_) {
    out.push_back(contact_ + " local job id not persisted");
  }
}

void JobManager::on_message(const sim::Message& message) {
  // A dead JobManager process cannot reply; the GRAM client recovers via
  // its own timeout followed by gram.restart_jobmanager.
  // lint-allow(reply-on-all-paths): dead process, client restarts via GRAM
  if (!process_alive_) return;
  sim::Payload reply;
  reply.set_bool("ok", true);
  reply.set("contact", contact_);
  reply.set("state", to_string(state_));

  if (message.type == "jm.commit") {
    // Crash point: commit request received, commit not yet persisted — the
    // client must retry and the retried commit must be idempotent.
    if (host_.crash_point("jobmanager.commit_recv")) return;
    if (!committed_) commit();
    reply.set("state", to_string(state_));
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "jm.status" || message.type == "jm.ping") {
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "jm.cancel") {
    // Crash point: cancel received, not yet acted on — the GridManager's
    // retry must find either a cancelled job or a restartable JobManager.
    if (host_.crash_point("jobmanager.cancel_recv")) return;
    if (!is_terminal(state_)) {
      if (local_job_id_ != 0) scheduler_.cancel(local_job_id_);
      // on_local_terminal fires via the job handler for running jobs; for
      // not-yet-submitted jobs finish directly.
      if (local_job_id_ == 0) {
        stage_out_and_finish(GramJobState::kFailed, "cancelled");
      }
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "jm.refresh_credential") {
    // Crash point: refreshed proxy received but not persisted — the sender
    // retries, and until then we keep running on the old (shorter) proxy.
    if (host_.crash_point("jobmanager.refresh_recv")) return;
    // §4.3: the client re-forwards a refreshed proxy; our GASS traffic
    // switches to it immediately.
    forwarded_credential_ = message.body.get("credential");
    gass_->set_credential_text(forwarded_credential_);
    persist();
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "jm.update_gass") {
    // Crash point: new GASS address received but the spec file not yet
    // rewritten — a restart must come back with the old URL and the
    // GridManager's retry must converge on the new one.
    if (host_.crash_point("jobmanager.update_gass_recv")) return;
    // "If the address of the GASS server should change ... the GridManager
    // requests the JobManager to update the file with the new address."
    spec_.gass_url = message.body.get("gass_url");
    persist();
    sim::rpc_reply(network_, message, address(), std::move(reply));
    // The new server has none of our streamed output: resend it
    // ("permitting a client to request resending of this data after a
    // crash of client or server", §3.2).
    restream_output();
    return;
  }
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "jobmanager"}, {"type", message.type}})
      .inc();
  reply.set_bool("ok", false);
  reply.set("why", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

void JobManager::commit() {
  committed_ = true;
  persist();
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    // Milestone: the interval ending here is the commit leg of the
    // two-phase submit RTT.
    tracer.event("jm.commit", job_from_tag(spec_.tag), host_.name(),
                 host_.epoch(), contact_);
  }
  stage_in();
}

void JobManager::stage_in() {
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    stage_in_span_ = tracer.begin_span(
        "jm.stage_in", job_from_tag(spec_.tag), host_.name(), host_.epoch(),
        tracer.job_root(client_callback_.host, job_from_tag(spec_.tag)),
        spec_.executable);
  }
  set_state(GramJobState::kStageIn, "staging executable");
  // Fetch the executable from the client's GASS server, with retries: the
  // submit machine may be briefly down or partitioned.
  auto attempt = std::make_shared<int>(kStageRetries);
  auto try_fetch = std::make_shared<std::function<void()>>();
  *try_fetch = [this, attempt,
                weak = std::weak_ptr<std::function<void()>>(try_fetch)] {
    if (!process_alive_) return;
    const auto self = weak.lock();
    if (!self) return;
    // The staging cache's waiter list outlives a replaced JobManager, so
    // the callback must probe the lifetime before touching `this` (the
    // direct-get path's callback dies with our own FileClient instead).
    auto on_file = [this, attempt, self, alive = life_.observer()](
                       std::optional<gass::FileInfo> file) {
      if (!alive() || !process_alive_) return;
      if (file) {
        submit_to_scheduler();
        return;
      }
      if (--*attempt <= 0) {
        stage_out_and_finish(GramJobState::kFailed,
                             "staging failed: executable unreachable");
        return;
      }
      host_.post(kStageRetryDelay, life_.wrap([self] { (*self)(); }));
    };
    const sim::Address server = sim::Address::parse(spec_.gass_url);
    if (staging_cache_ != nullptr && spec_.exe_checksum != 0) {
      // Content-addressed executable: the per-site cache coalesces
      // concurrent stages and serves repeats with zero transfers.
      staging_cache_->fetch(server, spec_.executable, spec_.exe_checksum,
                            std::move(on_file), kStageTimeout);
    } else {
      gass_->get(server, spec_.executable, std::move(on_file), kStageTimeout);
    }
  };
  (*try_fetch)();
}

void JobManager::submit_to_scheduler() {
  batch::JobRequest request;
  request.owner = "gram";
  request.runtime_seconds = spec_.runtime_seconds;
  request.walltime_limit_seconds = spec_.walltime_limit;
  request.cpus = spec_.cpus;
  request.tag = contact_;
  local_job_id_ = scheduler_.submit(std::move(request));
  host_.tracer().end_span(stage_in_span_, "ok");
  set_state(GramJobState::kPending, "queued locally");
  watch_scheduler();
}

void JobManager::watch_scheduler() {
  // Terminal transitions arrive via a one-shot handler...
  job_handler_token_ = scheduler_.add_job_handler(
      local_job_id_,
      [this, epoch = host_.epoch()](const batch::JobRecord& record) {
        if (!process_alive_ || host_.epoch() != epoch) return;
        job_handler_token_ = 0;  // consumed
        on_local_terminal(record);
      });
  // ...while PENDING->ACTIVE is observed by polling the local scheduler.
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, weak = std::weak_ptr<std::function<void()>>(poll)] {
    if (!process_alive_ || is_terminal(state_)) return;
    const auto self = weak.lock();
    if (!self) return;
    const auto status = scheduler_.status(local_job_id_);
    if (status && status->state == batch::JobState::kRunning &&
        state_ == GramJobState::kPending) {
      set_state(GramJobState::kActive, "running");
      if (spec_.stream_interval > 0 && !streaming_) {
        streaming_ = true;
        host_.post(spec_.stream_interval,
                   life_.wrap([this] { stream_output_tick(); }));
      }
    }
    if (status && !batch::is_terminal(status->state)) {
      host_.post(kLocalPollInterval, life_.wrap([self] { (*self)(); }));
    }
  };
  host_.post(kLocalPollInterval, life_.wrap([poll] { (*poll)(); }));
}

void JobManager::on_local_terminal(const batch::JobRecord& record) {
  switch (record.state) {
    case batch::JobState::kCompleted:
      stage_out_and_finish(GramJobState::kDone, "completed");
      break;
    case batch::JobState::kWalltimeExceeded:
      stage_out_and_finish(GramJobState::kFailed, "walltime exceeded");
      break;
    case batch::JobState::kCancelled:
      stage_out_and_finish(GramJobState::kFailed, "cancelled");
      break;
    default:
      break;
  }
}

void JobManager::stage_out_and_finish(GramJobState final_state,
                                      const std::string& why) {
  // A stage-in abandoned by failure or cancel still closes its span.
  host_.tracer().end_span(stage_in_span_,
                          final_state == GramJobState::kDone ? "ok" : "error",
                          why);
  if (final_state == GramJobState::kDone && !spec_.output.empty()) {
    // Ship the output file back to the client's GASS server, retrying
    // through client downtime, THEN report DONE — so DONE implies output
    // is in place.
    sim::Tracer& tracer = host_.tracer();
    if (tracer.enabled()) {
      stage_out_span_ = tracer.begin_span(
          "jm.stage_out", job_from_tag(spec_.tag), host_.name(),
          host_.epoch(),
          tracer.job_root(client_callback_.host, job_from_tag(spec_.tag)),
          spec_.output);
    }
    auto attempt = std::make_shared<int>(kStageRetries);
    auto try_put = std::make_shared<std::function<void()>>();
    *try_put = [this, attempt, final_state, why,
                weak = std::weak_ptr<std::function<void()>>(try_put)] {
      if (!process_alive_) return;
      const auto self = weak.lock();
      if (!self) return;
      gass_->put(
          sim::Address::parse(spec_.gass_url), spec_.output,
          "output-of:" + contact_, spec_.output_size,
          [this, attempt, self, final_state, why](bool ok) {
            if (!process_alive_) return;
            if (ok) {
              host_.tracer().end_span(stage_out_span_, "ok");
              set_state(final_state, why);
              return;
            }
            if (--*attempt <= 0) {
              host_.tracer().end_span(stage_out_span_, "error");
              set_state(GramJobState::kFailed, "output staging failed");
              return;
            }
            host_.post(kStageRetryDelay,
                       life_.wrap([self] { (*self)(); }));
          },
          kStageTimeout);
    };
    (*try_put)();
    return;
  }
  set_state(final_state, why);
}

void JobManager::stream_output_tick() {
  if (!process_alive_ || state_ != GramJobState::kActive ||
      spec_.stream_interval <= 0) {
    streaming_ = false;
    return;
  }
  // One chunk of the job's stdout-so-far; sequence-numbered appends keep
  // the stream exactly-once across retries and resends.
  const std::uint64_t seq = ++streamed_chunks_;
  gass_->append(sim::Address::parse(spec_.gass_url),
                spec_.output + ".stream",
                util::format("chunk %llu of %s\n",
                             static_cast<unsigned long long>(seq),
                             contact_.c_str()),
                0, [](bool) {}, kStageTimeout,
                /*writer=*/contact_, seq);
  persist();
  host_.post(spec_.stream_interval,
             life_.wrap([this] { stream_output_tick(); }));
}

void JobManager::restream_output() {
  if (spec_.stream_interval <= 0) return;
  // Resend everything streamed so far to the (new) GASS server. The chunk
  // content is regenerated from the sequence numbers — in the real system
  // the JobManager keeps the spooled stdout on local disk.
  const std::uint64_t upto = streamed_chunks_;
  for (std::uint64_t seq = 1; seq <= upto; ++seq) {
    gass_->append(sim::Address::parse(spec_.gass_url),
                  spec_.output + ".stream",
                  util::format("chunk %llu of %s\n",
                               static_cast<unsigned long long>(seq),
                               contact_.c_str()),
                  0, [](bool) {}, kStageTimeout,
                  /*writer=*/contact_, seq);
  }
  if (state_ == GramJobState::kActive && !streaming_) {
    streaming_ = true;
    host_.post(spec_.stream_interval,
               life_.wrap([this] { stream_output_tick(); }));
  }
}

void JobManager::set_state(GramJobState state, const std::string& why) {
  state_ = state;
  persist();
  if (state_counters_ != nullptr) {
    state_counters_->at(state)->inc();
  } else {
    host_.metrics()
        .counter("jobmanager.state_changes",
                 {{"site", host_.name()}, {"state", to_string(state)}})
        .inc();
  }
  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled()) {
    tracer.event("jm.state", job_from_tag(spec_.tag), host_.name(),
                 host_.epoch(),
                 std::string(to_string(state)) +
                     (why.empty() ? "" : ": " + why));
  }
  send_callback(why);
}

void JobManager::send_callback(const std::string& why) {
  if (client_callback_.host.empty()) return;
  sim::Payload payload;
  payload.set("contact", contact_);
  payload.set("state", to_string(state_));
  payload.set("why", why);
  rpc_->notify(client_callback_, "gram.callback", std::move(payload));
}

}  // namespace condorg::gram
