#include "condorg/gram/gatekeeper.h"

#include <cstdlib>
#include <cstring>

#include "condorg/sim/rpc.h"
#include "condorg/util/strings.h"

namespace condorg::gram {
namespace {
std::string dedup_key(const std::string& client_id, std::uint64_t seq) {
  return "gram/seq/" + client_id + "/" + std::to_string(seq);
}
constexpr const char* kContactCounterKey = "gram/contact_counter";
constexpr const char* kJobRecordPrefix = "gram/job/";
}  // namespace

Gatekeeper::Gatekeeper(sim::Host& host, sim::Network& network,
                       batch::LocalScheduler& scheduler,
                       GatekeeperOptions options)
    : host_(host),
      network_(network),
      scheduler_(scheduler),
      options_(std::move(options)),
      jobmanagers_(host, "gatekeeper.jobmanagers"),
      accepted_counter_(count("gatekeeper.accepted")),
      duplicates_counter_(count("gatekeeper.duplicates")),
      auth_failures_counter_(count("gatekeeper.auth_failures")),
      jm_started_counter_(count("gatekeeper.jm_started")),
      jm_restarted_counter_(count("gatekeeper.jm_restarted")),
      jm_state_counters_(JobManagerStateCounters::for_site(host.metrics(),
                                                           host.name())) {
  mutate_dedup_ = std::getenv("CONDORG_MUTATE_DEDUP") != nullptr;
  install();
  staging_cache_ = std::make_unique<gass::StagingCache>(
      host_, network_, std::string(kGatekeeperService) + ".stagecache");
  boot_id_ = host_.add_boot([this] {
    install();
    // Scratch space is gone after a crash: the replacement cache starts
    // cold and re-fetches artifacts on demand.
    staging_cache_ = std::make_unique<gass::StagingCache>(
        host_, network_, std::string(kGatekeeperService) + ".stagecache");
  });
  // Host crash: every JobManager process dies (and the staging cache with
  // them — it holds their waiter callbacks). Their stable records remain;
  // clients must ask for restarts (§4.2's recovery ladder).
  crash_listener_ = host_.add_crash_listener([this] {
    jobmanagers_->clear();
    staging_cache_.reset();
  });
}

Gatekeeper::~Gatekeeper() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kGatekeeperService);
}

void Gatekeeper::install() {
  host_.register_service(kGatekeeperService,
                         [this](const sim::Message& m) { on_message(m); });
}

std::string Gatekeeper::new_contact() {
  // Contacts must be unique across host restarts: persist the counter.
  std::uint64_t counter = 0;
  if (const auto stored = host_.disk().get(kContactCounterKey)) {
    counter = std::stoull(*stored);
  }
  ++counter;
  host_.disk().put(kContactCounterKey, std::to_string(counter));
  return host_.name() + ":" + std::to_string(counter);
}

util::Counter& Gatekeeper::count(const char* name) {
  return host_.metrics().counter(name, {{"site", host_.name()}});
}

JobManager* Gatekeeper::find_jobmanager(const std::string& contact) {
  const auto it = jobmanagers_->find(contact);
  if (it == jobmanagers_->end()) return nullptr;
  return it->second->process_alive() ? it->second.get() : nullptr;
}

bool Gatekeeper::kill_jobmanager(const std::string& contact) {
  JobManager* jm = find_jobmanager(contact);
  if (jm == nullptr) return false;
  jm->kill_process();
  return true;
}

void Gatekeeper::audit(std::vector<std::string>& out) const {
  // callback|tag -> contact of the live JobManager already running that job.
  std::map<std::string, std::string> job_owner;
  for (const auto& [contact, jm] : *jobmanagers_) {
    if (contact != jm->contact()) {
      out.push_back("jobmanager for " + jm->contact() +
                    " registered under contact " + contact);
    }
    if (!jm->process_alive()) continue;
    jm->audit(out);
    // Exactly-once, resource side: once dedup is on, a retransmitted submit
    // maps to the existing JobManager, so two live committed non-terminal
    // JobManagers for one client job mean the job is running twice.
    // Uncommitted JobManagers never start the job and the A1 ablation
    // (dedup off) duplicates by design, so both are exempt.
    if (!options_.dedup_submissions || !jm->committed() ||
        is_terminal(jm->state())) {
      continue;
    }
    const std::string key =
        jm->client_callback().str() + "|" + jm->spec().tag;
    const auto [it, inserted] = job_owner.emplace(key, contact);
    if (!inserted) {
      out.push_back("job " + jm->spec().tag + " live in two jobmanagers: " +
                    it->second + " and " + contact);
    }
  }

  // Exactly-once, stable-storage side: the dedup key maps a retransmitted
  // (client_id, seq) onto the existing job, so at most one job record may
  // ever be created per pair. A second record — even an uncommitted one a
  // crashed-and-restarted front-end left behind — means a retransmission
  // was accepted as a fresh job. Records outlive JobManager processes, so
  // this scan catches duplicates the in-memory check above cannot see.
  if (options_.dedup_submissions) {
    std::map<std::string, std::string> record_owner;  // client|seq -> contact
    for (const auto& key : host_.disk().keys_with_prefix(kJobRecordPrefix)) {
      const auto text = host_.disk().get(key);
      if (!text) continue;
      const sim::Payload record = sim::Payload::deserialize(*text);
      const std::string client = record.get("client_id");
      const std::uint64_t seq = record.get_uint("client_seq");
      if (client.empty() || seq == 0) continue;  // pre-identity submitter
      const std::string contact = key.substr(std::strlen(kJobRecordPrefix));
      const std::string pair = client + "/" + std::to_string(seq);
      const auto [it, inserted] = record_owner.emplace(pair, contact);
      if (!inserted && it->second != contact) {
        out.push_back("submission " + pair + " has two job records: " +
                      it->second + " and " + contact);
      }
    }
  }
}

void Gatekeeper::on_message(const sim::Message& message) {
  sim::Payload reply;
  reply.set_bool("ok", false);

  const gsi::AuthResult auth =
      gsi::authenticate(options_.auth, message.body, host_.now());
  if (!auth.ok) {
    ++auth_failures_;
    auth_failures_counter_.inc();
    reply.set("why", auth.why);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  sim::Tracer& tracer = host_.tracer();
  if (tracer.enabled() && message.type != "gram.ping") {
    // Milestone for the critical-path taxonomy: request authenticated at
    // the gatekeeper (the interval ending here is the submit RTT's request
    // leg; auth itself is synchronous, so the auth phase is honest zeros).
    tracer.event("gk.auth", job_from_tag(message.body.get("spec.tag")),
                 host_.name(), host_.epoch(), message.type);
  }

  if (message.type == "gram.ping") {
    // The GridManager's probe for distinguishing a dead JobManager (F1)
    // from a dead front-end / partition (F2/F4).
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "gram.submit") {
    handle_submit(message);
    return;
  }
  if (message.type == "gram.restart_jobmanager") {
    handle_restart(message);
    return;
  }
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "gatekeeper"}, {"type", message.type}})
      .inc();
  reply.set("why", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

void Gatekeeper::handle_submit(const sim::Message& message) {
  // Crash point: request authenticated, nothing persisted yet — to the
  // client this is indistinguishable from a lost request.
  if (host_.crash_point("gatekeeper.submit_recv")) return;
  sim::Payload reply;
  const std::string client_id = message.body.get("client_id");
  const std::uint64_t seq = message.body.get_uint("seq");

  // Two-phase commit, resource side: an already-seen (client_id, seq) means
  // our earlier response was lost — return the same contact, do NOT start a
  // second job.
  const std::string key = dedup_key(client_id, seq);
  if (options_.dedup_submissions && !mutate_dedup_) {
    if (const auto existing = host_.disk().get(key)) {
      ++duplicates_;
      duplicates_counter_.inc();
      reply.set_bool("ok", true);
      reply.set("contact", *existing);
      reply.set_bool("duplicate", true);
      sim::rpc_reply(network_, message, address(), std::move(reply));
      return;
    }
  }

  GramJobSpec spec = GramJobSpec::from_payload(message.body);
  if (spec.walltime_limit > options_.max_walltime) {
    spec.walltime_limit = options_.max_walltime;  // site policy cap
  }
  const std::string contact = new_contact();
  if (options_.dedup_submissions) host_.disk().put(key, contact);

  const bool auto_commit = !message.body.get_bool("two_phase", true);
  const sim::Address callback =
      sim::Address::parse(message.body.get("callback"));
  (*jobmanagers_)[contact] = std::make_unique<JobManager>(
      host_, network_, scheduler_, contact, std::move(spec), callback,
      auto_commit, message.body.get("credential"), &jm_state_counters_,
      client_id, seq, staging_cache_.get());
  ++accepted_;
  ++jm_started_;
  accepted_counter_.inc();
  jm_started_counter_.inc();

  // Crash point: JobManager created and dedup key persisted, response not
  // sent — the client must retransmit and the dedup key must absorb it.
  if (host_.crash_point("gatekeeper.submit_accepted")) return;

  reply.set_bool("ok", true);
  reply.set("contact", contact);
  reply.set_uint("seq", seq);  // echoed sequence number
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

void Gatekeeper::handle_restart(const sim::Message& message) {
  // Crash point: restart request received; the reattach ladder must cope
  // with the front-end dying mid-recovery.
  if (host_.crash_point("gatekeeper.restart_recv")) return;
  sim::Payload reply;
  const std::string contact = message.body.get("contact");
  if (JobManager* jm = find_jobmanager(contact)) {
    // Still running: nothing to restart.
    reply.set_bool("ok", true);
    reply.set("state", to_string(jm->state()));
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (!host_.disk().contains(JobManager::record_key(contact))) {
    reply.set_bool("ok", false);
    reply.set("why", "unknown contact: " + contact);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  // Reattach from stable storage; the new JobManager works out whether the
  // local job is queued, running, or finished while unobserved.
  (*jobmanagers_)[contact] = std::make_unique<JobManager>(
      host_, network_, scheduler_, contact, &jm_state_counters_,
      staging_cache_.get());
  ++jm_started_;
  jm_started_counter_.inc();
  jm_restarted_counter_.inc();
  reply.set_bool("ok", true);
  reply.set("state", to_string((*jobmanagers_)[contact]->state()));
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

}  // namespace condorg::gram
