#include "condorg/gsi/gridmap.h"

#include "condorg/util/strings.h"

namespace condorg::gsi {

void Gridmap::add(const std::string& grid_dn, const std::string& local_user) {
  entries_[base_subject(grid_dn)] = local_user;
}

bool Gridmap::remove(const std::string& grid_dn) {
  return entries_.erase(base_subject(grid_dn)) > 0;
}

std::optional<std::string> Gridmap::map(const std::string& grid_dn) const {
  const auto it = entries_.find(base_subject(grid_dn));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Gridmap::base_subject(const std::string& dn) {
  std::string base = dn;
  static constexpr std::string_view kProxySuffix = "/CN=proxy";
  while (util::ends_with(base, kProxySuffix)) {
    base.resize(base.size() - kProxySuffix.size());
  }
  return base;
}

}  // namespace condorg::gsi
