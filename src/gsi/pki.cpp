#include "condorg/gsi/pki.h"

namespace condorg::gsi {

KeyPair Pki::generate_keypair() {
  KeyPair pair;
  pair.private_key = rng_();
  // The public key is an opaque token; deriving it by hashing keeps it
  // stable but non-invertible from the outside.
  pair.public_key = util::fnv1a_mix(pair.private_key, 0x5061726b65724b65ull);
  pub_to_priv_[pair.public_key] = pair.private_key;
  return pair;
}

std::uint64_t Pki::sign(const std::string& content,
                        std::uint64_t private_key) {
  return util::fnv1a_mix(util::fnv1a(content), private_key);
}

bool Pki::verify(const std::string& content, std::uint64_t signature,
                 std::uint64_t public_key) const {
  const auto it = pub_to_priv_.find(public_key);
  if (it == pub_to_priv_.end()) return false;  // unknown key
  return sign(content, it->second) == signature;
}

}  // namespace condorg::gsi
