#include "condorg/gsi/myproxy.h"

#include "condorg/util/rng.h"
#include "condorg/util/strings.h"

namespace condorg::gsi {
namespace {
constexpr const char* kKeyPrefix = "myproxy/";
constexpr double kRpcTimeout = 30.0;

std::string record_key(const std::string& user) {
  return std::string(kKeyPrefix) + user;
}

/// Passphrases are stored hashed, not in the clear.
std::string passphrase_digest(const std::string& passphrase) {
  return std::to_string(util::fnv1a(passphrase, 0x4d7950726f787921ull));
}
}  // namespace

MyProxyServer::MyProxyServer(sim::Host& host, sim::Network& network, Pki& pki)
    : host_(host), network_(network), pki_(pki) {
  install();
  boot_id_ = host_.add_boot([this] { install(); });
}

MyProxyServer::~MyProxyServer() {
  host_.remove_boot(boot_id_);
  if (host_.alive()) host_.unregister_service(kService);
}

void MyProxyServer::install() {
  host_.register_service(
      kService, [this](const sim::Message& m) { on_message(m); });
}

std::size_t MyProxyServer::stored_count() const {
  return host_.disk().keys_with_prefix(kKeyPrefix).size();
}

void MyProxyServer::on_message(const sim::Message& message) {
  sim::Payload reply;
  const std::string user = message.body.get("user");
  const std::string digest = passphrase_digest(message.body.get("passphrase"));

  if (message.type == "myproxy.store") {
    // Crash point: store request received, credential not yet on disk —
    // the client retries and the retried store is a plain overwrite.
    if (host_.crash_point("myproxy.store_recv")) return;
    const auto credential =
        Credential::deserialize(message.body.get("credential"));
    if (!credential || user.empty()) {
      reply.set_bool("ok", false);
      reply.set("why", "malformed store request");
    } else {
      host_.disk().put(record_key(user), digest + "\x1c" +
                                             credential->serialize());
      reply.set_bool("ok", true);
    }
  } else if (message.type == "myproxy.get") {
    const auto record = host_.disk().get(record_key(user));
    reply.set_bool("ok", false);
    if (!record) {
      reply.set("why", "no credential stored for user");
    } else {
      const auto sep = record->find('\x1c');
      if (sep == std::string::npos || record->substr(0, sep) != digest) {
        reply.set("why", "bad passphrase");
      } else {
        const auto stored = Credential::deserialize(record->substr(sep + 1));
        const double lifetime = message.body.get_double("lifetime", 43200.0);
        if (!stored || !stored->valid_at(host_.now())) {
          reply.set("why", "stored credential expired");
        } else {
          const Credential proxy =
              stored->delegate(pki_, host_.now(), lifetime);
          ++proxies_issued_;
          reply.set_bool("ok", true);
          reply.set("credential", proxy.serialize());
        }
      }
    }
  } else {
    host_.metrics()
        .counter("unknown_message",
                 {{"daemon", "myproxy"}, {"type", message.type}})
        .inc();
    reply.set_bool("ok", false);
    reply.set("why", "unknown operation");
  }
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

MyProxyClient::MyProxyClient(sim::Host& host, sim::Network& network,
                             const std::string& reply_service)
    : rpc_(host, network, reply_service) {}

void MyProxyClient::store(const sim::Address& server, const std::string& user,
                          const std::string& passphrase,
                          const Credential& credential,
                          StoreCallback callback) {
  sim::Payload payload;
  payload.set("user", user);
  payload.set("passphrase", passphrase);
  payload.set("credential", credential.serialize());
  rpc_.call(server, "myproxy.store", std::move(payload), kRpcTimeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              callback(ok && reply.get_bool("ok"));
            });
}

void MyProxyClient::get(const sim::Address& server, const std::string& user,
                        const std::string& passphrase,
                        double lifetime_seconds, GetCallback callback) {
  sim::Payload payload;
  payload.set("user", user);
  payload.set("passphrase", passphrase);
  payload.set_double("lifetime", lifetime_seconds);
  rpc_.call(server, "myproxy.get", std::move(payload), kRpcTimeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                callback(std::nullopt);
                return;
              }
              callback(Credential::deserialize(reply.get("credential")));
            });
}

}  // namespace condorg::gsi
