#include "condorg/gsi/credential.h"

#include <algorithm>

#include "condorg/util/strings.h"

namespace condorg::gsi {

std::string Certificate::signing_content() const {
  return util::format("%s\x1f%s\x1f%.9f\x1f%.9f\x1f%llu\x1f%d",
                      subject.c_str(), issuer.c_str(), not_before, not_after,
                      static_cast<unsigned long long>(public_key),
                      is_proxy ? 1 : 0);
}

std::string Certificate::serialize() const {
  return util::format("%s\x1e%s\x1e%.9f\x1e%.9f\x1e%llu\x1e%llu\x1e%d",
                      subject.c_str(), issuer.c_str(), not_before, not_after,
                      static_cast<unsigned long long>(public_key),
                      static_cast<unsigned long long>(signature),
                      is_proxy ? 1 : 0);
}

std::optional<Certificate> Certificate::deserialize(const std::string& text) {
  const auto parts = util::split(text, '\x1e');
  if (parts.size() != 7) return std::nullopt;
  try {
    Certificate cert;
    cert.subject = parts[0];
    cert.issuer = parts[1];
    cert.not_before = std::stod(parts[2]);
    cert.not_after = std::stod(parts[3]);
    cert.public_key = std::stoull(parts[4]);
    cert.signature = std::stoull(parts[5]);
    cert.is_proxy = parts[6] == "1";
    return cert;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

sim::Time Credential::expires_at() const {
  sim::Time earliest = chain_.empty() ? 0.0 : chain_.front().not_after;
  for (const Certificate& cert : chain_) {
    earliest = std::min(earliest, cert.not_after);
  }
  return earliest;
}

bool Credential::valid_at(sim::Time now) const {
  if (chain_.empty()) return false;
  return std::all_of(chain_.begin(), chain_.end(),
                     [now](const Certificate& c) { return c.valid_at(now); });
}

Credential Credential::delegate(Pki& pki, sim::Time now,
                                double lifetime) const {
  const KeyPair keys = pki.generate_keypair();
  Certificate proxy;
  proxy.subject = leaf().subject + "/CN=proxy";
  proxy.issuer = leaf().subject;
  proxy.not_before = now;
  proxy.not_after = std::min(now + lifetime, leaf().not_after);
  proxy.public_key = keys.public_key;
  proxy.is_proxy = true;
  proxy.signature = sign(proxy.signing_content());

  std::vector<Certificate> chain = chain_;
  chain.push_back(proxy);
  return Credential(std::move(chain), keys.private_key);
}

std::string Credential::serialize() const {
  std::string out = std::to_string(private_key_);
  for (const Certificate& cert : chain_) {
    out.push_back('\x1d');
    out += cert.serialize();
  }
  return out;
}

std::optional<Credential> Credential::deserialize(const std::string& text) {
  const auto parts = util::split(text, '\x1d');
  if (parts.size() < 2) return std::nullopt;
  std::uint64_t private_key = 0;
  try {
    private_key = std::stoull(parts[0]);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  std::vector<Certificate> chain;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    auto cert = Certificate::deserialize(parts[i]);
    if (!cert) return std::nullopt;
    chain.push_back(std::move(*cert));
  }
  return Credential(std::move(chain), private_key);
}

CertificateAuthority::CertificateAuthority(Pki& pki, std::string name)
    : pki_(pki), name_(std::move(name)), keys_(pki.generate_keypair()) {}

Credential CertificateAuthority::issue(Pki& pki,
                                       const std::string& subject_dn,
                                       sim::Time now,
                                       double lifetime_seconds) const {
  const KeyPair keys = pki.generate_keypair();
  Certificate cert;
  cert.subject = subject_dn;
  cert.issuer = name_;
  cert.not_before = now;
  cert.not_after = now + lifetime_seconds;
  cert.public_key = keys.public_key;
  cert.is_proxy = false;
  cert.signature = Pki::sign(cert.signing_content(), keys_.private_key);
  return Credential({cert}, keys.private_key);
}

std::optional<std::string> verify_chain(
    const Pki& pki, const std::vector<Certificate>& chain,
    const TrustAnchors& anchors, sim::Time now) {
  if (chain.empty()) return std::nullopt;

  // 1. The EEC must be signed by a trusted CA and must not itself be a proxy.
  const Certificate& eec = chain.front();
  if (eec.is_proxy) return std::nullopt;
  const auto anchor = anchors.find(eec.issuer);
  if (anchor == anchors.end()) return std::nullopt;
  if (!pki.verify(eec.signing_content(), eec.signature, anchor->second)) {
    return std::nullopt;
  }
  if (!eec.valid_at(now)) return std::nullopt;

  // 2. Each proxy must be signed by its parent, extend the parent's subject,
  //    and be within its validity window.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Certificate& parent = chain[i - 1];
    const Certificate& cert = chain[i];
    if (!cert.is_proxy) return std::nullopt;
    if (cert.issuer != parent.subject) return std::nullopt;
    if (cert.subject.rfind(parent.subject + "/", 0) != 0) return std::nullopt;
    if (!pki.verify(cert.signing_content(), cert.signature,
                    parent.public_key)) {
      return std::nullopt;
    }
    if (!cert.valid_at(now)) return std::nullopt;
  }
  return eec.subject;
}

std::optional<std::string> verify_credential(const Pki& pki,
                                             const Credential& credential,
                                             const TrustAnchors& anchors,
                                             sim::Time now) {
  return verify_chain(pki, credential.chain(), anchors, now);
}

}  // namespace condorg::gsi
