// Per-site authorization: the gridmap file.
//
// "Authorization implements local policy and may involve mapping the user's
// Grid id into a local subject name; however, this mapping is transparent to
// the user." (§3.2). Each site's Gatekeeper consults its Gridmap to decide
// whether an authenticated Grid identity may use the resource, and as which
// local account.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace condorg::gsi {

class Gridmap {
 public:
  /// Authorize `grid_dn` to run as local account `local_user`.
  void add(const std::string& grid_dn, const std::string& local_user);
  bool remove(const std::string& grid_dn);

  /// The local account for an authenticated grid identity, or nullopt if the
  /// identity is not authorized at this site. Proxy subjects are normalized:
  /// trailing "/CN=proxy" components are stripped before lookup.
  std::optional<std::string> map(const std::string& grid_dn) const;

  bool authorized(const std::string& grid_dn) const {
    return map(grid_dn).has_value();
  }

  std::size_t size() const { return entries_.size(); }

  /// Strip trailing "/CN=proxy" components from a subject DN.
  static std::string base_subject(const std::string& dn);

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace condorg::gsi
