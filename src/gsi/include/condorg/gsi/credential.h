// Certificates, credentials, and proxy chains (GSI §3.1 of the paper).
//
// A user holds a long-lived end-entity certificate (EEC) issued by a CA.
// Rather than exposing the EEC's private key to agents, GSI derives a
// short-lived *proxy credential*: a fresh keypair whose certificate is
// signed by the EEC (or by a parent proxy, for multi-level delegation).
// Condor-G authenticates every GRAM/GASS/MDS request with such a proxy and
// must cope with its expiry (§4.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/gsi/pki.h"
#include "condorg/sim/types.h"

namespace condorg::gsi {

struct Certificate {
  std::string subject;     // distinguished name
  std::string issuer;      // CA name (EEC) or parent subject (proxy)
  sim::Time not_before = 0;
  sim::Time not_after = 0;
  std::uint64_t public_key = 0;
  std::uint64_t signature = 0;
  bool is_proxy = false;

  /// Canonical byte string covered by the signature.
  std::string signing_content() const;

  bool valid_at(sim::Time now) const {
    return now >= not_before && now <= not_after;
  }
  double seconds_until_expiry(sim::Time now) const { return not_after - now; }

  /// Flat serialization (for network payloads / stable storage).
  std::string serialize() const;
  static std::optional<Certificate> deserialize(const std::string& text);
};

/// A credential = a certificate chain plus the leaf private key. For an EEC
/// the chain has one element; each delegation appends a proxy certificate.
class Credential {
 public:
  Credential() = default;
  Credential(std::vector<Certificate> chain, std::uint64_t private_key)
      : chain_(std::move(chain)), private_key_(private_key) {}

  bool empty() const { return chain_.empty(); }
  const std::vector<Certificate>& chain() const { return chain_; }
  const Certificate& leaf() const { return chain_.back(); }
  const Certificate& eec() const { return chain_.front(); }

  /// The identity this credential speaks for: the EEC subject.
  const std::string& identity() const { return chain_.front().subject; }

  int delegation_depth() const { return static_cast<int>(chain_.size()) - 1; }

  /// Effective expiry: the earliest not_after along the chain.
  sim::Time expires_at() const;
  bool valid_at(sim::Time now) const;

  /// Sign a request with the leaf private key.
  std::uint64_t sign(const std::string& content) const {
    return Pki::sign(content, private_key_);
  }

  /// Create a child proxy valid for `lifetime` seconds from `now` (clamped
  /// to this credential's own expiry). Used both for the initial proxy
  /// (grid-proxy-init) and for delegation to remote services.
  Credential delegate(Pki& pki, sim::Time now, double lifetime) const;

  /// Serialize chain + private key (the toy delegation wire format).
  std::string serialize() const;
  static std::optional<Credential> deserialize(const std::string& text);

 private:
  std::vector<Certificate> chain_;
  std::uint64_t private_key_ = 0;
};

/// A certificate authority: issues EECs, anchors trust.
class CertificateAuthority {
 public:
  CertificateAuthority(Pki& pki, std::string name);

  const std::string& name() const { return name_; }
  std::uint64_t public_key() const { return keys_.public_key; }

  /// Issue an end-entity credential for `subject_dn`.
  Credential issue(Pki& pki, const std::string& subject_dn, sim::Time now,
                   double lifetime_seconds) const;

 private:
  Pki& pki_;
  std::string name_;
  KeyPair keys_;
};

/// Trust anchors: CA name -> CA public key.
using TrustAnchors = std::map<std::string, std::uint64_t>;

/// Validate a credential chain at time `now` against the trust anchors.
/// Returns the authenticated identity (EEC subject) on success. Checks:
/// EEC signed by a trusted CA, every proxy signed by its parent, subjects
/// extend the parent subject, every certificate within its validity window.
std::optional<std::string> verify_chain(const Pki& pki,
                                        const std::vector<Certificate>& chain,
                                        const TrustAnchors& anchors,
                                        sim::Time now);

/// Convenience overload.
std::optional<std::string> verify_credential(const Pki& pki,
                                             const Credential& credential,
                                             const TrustAnchors& anchors,
                                             sim::Time now);

}  // namespace condorg::gsi
