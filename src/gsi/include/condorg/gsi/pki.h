// Toy public-key infrastructure.
//
// GSI's role in Condor-G is *structural*: single sign-on via certificates,
// limited-lifetime proxy credentials, delegation, and per-site authorization.
// None of that depends on RSA internals, so keys here are 64-bit tokens and
// signatures are keyed hashes. The asymmetric property (verify with the
// public key, sign only with the private key) is simulated by a key registry
// held by the Pki object — the "mathematics" of the simulated world. Code
// under test never sees private keys it should not have.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "condorg/util/rng.h"

namespace condorg::gsi {

struct KeyPair {
  std::uint64_t public_key = 0;
  std::uint64_t private_key = 0;
};

class Pki {
 public:
  explicit Pki(util::Rng rng) : rng_(rng) {}

  /// Generate and register a fresh keypair.
  KeyPair generate_keypair();

  /// Sign content with a private key.
  static std::uint64_t sign(const std::string& content,
                            std::uint64_t private_key);

  /// Verify a signature against the *public* key. Only succeeds if the
  /// signature was produced with the matching private key.
  bool verify(const std::string& content, std::uint64_t signature,
              std::uint64_t public_key) const;

  std::size_t keypairs_issued() const { return pub_to_priv_.size(); }

 private:
  util::Rng rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> pub_to_priv_;
};

}  // namespace condorg::gsi
