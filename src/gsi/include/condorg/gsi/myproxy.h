// MyProxy online credential repository (§4.3 of the paper).
//
// "MyProxy lets a user store a long-lived proxy credential (e.g. a week) on
// a secure server. Remote services acting on behalf of the user can then
// obtain short-lived proxies (e.g. 12 hours) from the server." Condor-G's
// CredentialManager uses this to refresh expiring proxies without user
// interaction.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "condorg/gsi/credential.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"

namespace condorg::gsi {

/// Server daemon: stores long-lived credentials keyed by (user, passphrase)
/// and issues short-lived delegated proxies on request. Stored credentials
/// are written to the host's stable storage, so the repository survives
/// crashes; the service handler is re-registered by a boot function.
class MyProxyServer {
 public:
  CONDORG_HOST_LOCAL("central");

  static constexpr const char* kService = "myproxy";

  MyProxyServer(sim::Host& host, sim::Network& network, Pki& pki);
  ~MyProxyServer();

  MyProxyServer(const MyProxyServer&) = delete;
  MyProxyServer& operator=(const MyProxyServer&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  std::size_t stored_count() const;
  std::uint64_t proxies_issued() const { return proxies_issued_; }

 private:
  void install();
  void on_message(const sim::Message& message);

  sim::Host& host_;
  sim::Network& network_;
  Pki& pki_;
  int boot_id_ = 0;
  std::uint64_t proxies_issued_ = 0;
};

/// Client helper used by tools (myproxy-init) and by the CredentialManager.
class MyProxyClient {
 public:
  MyProxyClient(sim::Host& host, sim::Network& network,
                const std::string& reply_service);

  using StoreCallback = std::function<void(bool ok)>;
  using GetCallback =
      std::function<void(std::optional<Credential> credential)>;

  /// Store a long-lived credential under (user, passphrase).
  void store(const sim::Address& server, const std::string& user,
             const std::string& passphrase, const Credential& credential,
             StoreCallback callback);

  /// Obtain a fresh short-lived proxy delegated from the stored credential.
  void get(const sim::Address& server, const std::string& user,
           const std::string& passphrase, double lifetime_seconds,
           GetCallback callback);

 private:
  sim::RpcClient rpc_;
};

}  // namespace condorg::gsi
