// Shared request-authentication helper used by every GSI-protected service
// (GRAM gatekeepers, GASS/GridFTP servers, MDS directories).
#pragma once

#include <optional>
#include <string>

#include "condorg/gsi/credential.h"
#include "condorg/gsi/gridmap.h"
#include "condorg/sim/message.h"
#include "condorg/sim/types.h"

namespace condorg::gsi {

/// A service's authentication policy. When `require_auth` is false every
/// request is accepted (with empty identity) — convenient for tests and for
/// intra-site traffic.
struct AuthConfig {
  const Pki* pki = nullptr;
  TrustAnchors anchors;
  Gridmap gridmap;
  bool require_auth = false;
};

struct AuthResult {
  bool ok = false;
  std::string grid_identity;  // EEC subject
  std::string local_user;     // gridmap-mapped account
  std::string why;            // failure reason
};

/// Verify the "credential" field of a request payload against the policy:
/// the chain must verify against the trust anchors at `now` and the
/// resulting identity must appear in the gridmap.
AuthResult authenticate(const AuthConfig& config, const sim::Payload& payload,
                        sim::Time now);

}  // namespace condorg::gsi
