#include "condorg/gsi/auth.h"

namespace condorg::gsi {

AuthResult authenticate(const AuthConfig& config, const sim::Payload& payload,
                        sim::Time now) {
  AuthResult result;
  if (!config.require_auth) {
    result.ok = true;
    return result;
  }
  const auto credential = Credential::deserialize(payload.get("credential"));
  if (!credential) {
    result.why = "missing or malformed credential";
    return result;
  }
  const auto identity =
      verify_credential(*config.pki, *credential, config.anchors, now);
  if (!identity) {
    result.why = "credential verification failed";
    return result;
  }
  result.grid_identity = *identity;
  const auto local = config.gridmap.map(*identity);
  if (!local) {
    result.why = "identity not authorized: " + *identity;
    return result;
  }
  result.local_user = *local;
  result.ok = true;
  return result;
}

}  // namespace condorg::gsi
