// Minimal structured logger.
//
// The simulator injects a clock callback so log lines carry *simulated* time.
// Components log through a named Logger; a global level gate keeps the hot
// path cheap (a single atomic load when logging is off).
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

// Compile-time gate for trace logging on hot paths (the event-dispatch loop,
// GRAM protocol drivers). Logger::log already checks the level before
// formatting, but the check itself plus argument evaluation is measurable in
// the kernel's inner loop, so trace call sites there go through
// CONDORG_LOG_TRACE and compile to nothing unless the build enables them
// (cmake -DCONDORG_TRACE_LOG=ON). Arguments are still type-checked when
// disabled (discarded `if constexpr` branch), just never evaluated.
#ifndef CONDORG_LOG_TRACE_ENABLED
#define CONDORG_LOG_TRACE_ENABLED 0
#endif

#define CONDORG_LOG_TRACE(logger, ...)               \
  do {                                               \
    if constexpr (CONDORG_LOG_TRACE_ENABLED) {       \
      (logger).trace(__VA_ARGS__);                   \
    }                                                \
  } while (false)

namespace condorg::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide logging configuration.
class LogConfig {
 public:
  static LogLevel level() {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  static void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Clock used to stamp log lines (simulated seconds). Defaults to nullptr
  /// (lines stamped "-").
  static void set_clock(std::function<double()> clock);
  static double now_or_nan();

  /// Sink for formatted lines; defaults to stderr.
  static void set_sink(std::function<void(std::string_view)> sink);
  static void emit(std::string_view line);

 private:
  // lint-allow(mutable-global): atomic log-level config, island-safe
  static std::atomic<int> level_;
};

/// Named logger handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  bool enabled(LogLevel level) const { return level >= LogConfig::level(); }

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    write(level, os.str());
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

  const std::string& name() const { return name_; }

 private:
  void write(LogLevel level, std::string_view message) const;

  std::string name_;
};

}  // namespace condorg::util
