// ASCII table printer used by the benchmark harness to emit
// "paper-reported vs measured" tables with aligned columns.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace condorg::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  /// Append a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);
  void add_row(std::initializer_list<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  std::string render() const;
  /// Render with a title banner above the table.
  std::string render(const std::string& title) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace condorg::util
