// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace condorg::util {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII case-insensitive equality (ClassAd identifiers are case-insensitive).
bool iequals(std::string_view a, std::string_view b);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render seconds of simulated time as "1d 02:03:04".
std::string format_duration(double seconds);

/// Render a byte count as "12.3 MB".
std::string format_bytes(double bytes);

}  // namespace condorg::util
