// Minimal deterministic JSON document model.
//
// Used by the observability layer (metrics snapshots, trace JSONL) and by
// tools/condorg_report to read them back. Object members live in a std::map,
// so serialization order is the sorted key order — two structurally equal
// documents always serialize to identical bytes, which is what lets the test
// suite assert byte-identical trace output across same-seed runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace condorg::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::int64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)
      : type_(Type::kString), string_(value) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  const std::string& as_string() const { return string_; }

  // --- array API (converts a null value to an array on first push) ---
  void push_back(JsonValue value);
  const std::vector<JsonValue>& items() const { return array_; }

  // --- object API (converts a null value to an object on first insert) ---
  JsonValue& operator[](const std::string& key);
  const JsonValue* find(const std::string& key) const;
  /// Number lookup with a fallback for missing/mistyped members.
  double number_at(const std::string& key, double fallback = 0.0) const;
  const std::map<std::string, JsonValue>& members() const { return object_; }

  std::size_t size() const;

  /// Compact, byte-deterministic serialization.
  std::string dump() const;

  /// Strict-enough parser for the documents this repo writes (objects,
  /// arrays, strings with escapes, numbers, bools, null). Returns nullopt on
  /// malformed input; trailing non-whitespace is an error.
  static std::optional<JsonValue> parse(std::string_view text);

  /// Deterministic shortest-round-trip rendering of a double ("17" not
  /// "17.000000"; integers up to 2^53 print without an exponent).
  static std::string number_to_string(double value);
  static std::string escape(std::string_view text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Write `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);
/// Read a whole file; nullopt if it cannot be opened.
std::optional<std::string> read_text_file(const std::string& path);

}  // namespace condorg::util
