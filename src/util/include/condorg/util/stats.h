// Statistics accumulators used by benchmarks and the simulator's metric
// collection: running summary (Welford), sample reservoirs with percentiles,
// and a time-weighted gauge for utilization-style series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace condorg::util {

/// Streaming mean/variance/min/max without storing samples (Welford).
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; provides exact percentiles. Fine for simulation-scale
/// sample counts (<= millions).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const;
  /// p in [0,100]; linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Tracks a piecewise-constant gauge over (simulated) time, e.g. "CPUs busy".
/// Integrates the gauge to report time-averages and records the peak.
class TimeWeightedGauge {
 public:
  explicit TimeWeightedGauge(double start_time = 0.0)
      : last_time_(start_time), start_time_(start_time) {}

  void set(double time, double value);
  void add(double time, double delta);

  double value() const { return value_; }
  double peak() const { return peak_; }
  /// Time-average of the gauge over [start, end].
  double average(double end_time) const;
  /// Integral of the gauge over [start, end] (e.g. CPU-seconds delivered).
  double integral(double end_time) const;

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
  double area_ = 0.0;
  double last_time_ = 0.0;
  double start_time_ = 0.0;
};

/// Fixed-bucket histogram for report printing.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;
  /// Render a compact ASCII sparkline-style dump.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace condorg::util
