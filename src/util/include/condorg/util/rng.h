// Deterministic, splittable random number generation.
//
// Every stochastic component of the simulator draws from its own Rng stream,
// derived from a master seed plus a component label. This keeps runs
// reproducible even when components are added or reordered: adding a new
// component does not perturb the streams of existing ones.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace condorg::util {

/// FNV-1a 64-bit hash; used for RNG stream derivation, toy signatures, and
/// content checksums throughout the codebase.
constexpr std::uint64_t fnv1a(std::string_view s,
                              std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Mix two 64-bit hashes; order-sensitive.
constexpr std::uint64_t fnv1a_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (a >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// xoshiro256** PRNG seeded via splitmix64. Header-only for inlining in the
/// simulator hot path.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_origin_ = seed;
    // splitmix64 expansion of the seed into the four lanes of state.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // guard log(0)
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (uncached; cheap enough for simulation use).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Pareto-tailed service time with the given mean; a few draws are much
  /// longer than the median, as real job durations are. Requires shape > 1.
  double heavy_tailed(double mean, double shape = 2.5) {
    const double xm = mean * (shape - 1.0) / shape;  // scale for desired mean
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / shape);
  }

  /// Derive an independent child stream from this stream and a textual label
  /// (component name). Stable: the child depends only on this stream's
  /// original seed and the label, not on how many values were drawn.
  Rng split(std::string_view label) const {
    return Rng(fnv1a(label, seed_origin_ ^ 0x6a09e667f3bcc909ull));
  }

  std::uint64_t seed_origin() const { return seed_origin_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
  std::uint64_t seed_origin_ = 0;
};

}  // namespace condorg::util
