// Named-metric registry for the observability layer.
//
// Every daemon in the reproduction registers counters ("how many GRAM
// submits were sent"), gauges ("queue depth over simulated time") and
// histograms ("recovery latency") against the registry its Simulation owns.
// Metrics are keyed by name plus an optional, canonically sorted label set —
// "schedd.queue_depth{host=submit.wisc.edu,status=idle}" — so one world can
// hold the same metric for many sites/users without collisions.
//
// Determinism: storage is std::map keyed by the canonical string, gauges
// integrate over *simulated* time, and serialization goes through
// util::JsonValue (sorted object keys), so a snapshot of a same-seed run is
// byte-identical across executions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "condorg/util/json.h"
#include "condorg/util/stats.h"

namespace condorg::util {

/// Label set, e.g. {{"site", "pbs.anl.gov"}}. Order does not matter; keys
/// are sorted when the canonical metric key is built.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical key: `name` or `name{k1=v1,k2=v2}` with labels sorted by key.
/// Structural characters (`\\`, `,`, `=`, `{`, `}`) inside a label name or
/// value are backslash-escaped so the key stays unambiguous.
std::string metric_key(std::string_view name, const MetricLabels& labels);

/// Parsed form of a canonical metric key, label values unescaped.
struct ParsedMetricKey {
  std::string name;
  MetricLabels labels;
};

/// Inverse of metric_key: `metric_key(p.name, p.labels)` rebuilds the input
/// for any key metric_key produced. Input without a label block parses as a
/// bare name.
ParsedMetricKey parse_metric_key(std::string_view key);

/// Monotonically increasing event count. Relaxed atomic: counters shared
/// across hosts (network totals, agent aggregates) may be bumped from
/// concurrent island workers; the final sum is interleaving-independent.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Piecewise-constant value over simulated time (queue depth, CPUs busy).
/// Thin wrapper over TimeWeightedGauge so reports get peak/average/integral.
class Gauge {
 public:
  void set(double time, double value) { series_.set(time, value); }
  void add(double time, double delta) { series_.add(time, delta); }
  double value() const { return series_.value(); }
  double peak() const { return series_.peak(); }
  double average(double end_time) const { return series_.average(end_time); }
  double integral(double end_time) const { return series_.integral(end_time); }

 private:
  TimeWeightedGauge series_;
};

/// Distribution of observed values with exact percentiles.
class HistogramMetric {
 public:
  void observe(double x) {
    samples_.add(x);
    summary_.add(x);
  }
  const Samples& samples() const { return samples_; }
  const Summary& summary() const { return summary_; }
  std::size_t count() const { return summary_.count(); }

 private:
  Samples samples_;
  Summary summary_;
};

class MetricsRegistry {
 public:
  /// Default per-family label-cardinality cap (distinct label sets per
  /// metric name, per kind). At multi-user scale a per-user label would
  /// otherwise mint one series per user; beyond the cap new label sets
  /// collapse into a single `other` bucket (every label value rewritten to
  /// "other") and the overflow is counted per family.
  static constexpr std::size_t kDefaultLabelCardinalityCap = 64;

  /// Lookup-or-create. References stay valid for the registry's lifetime
  /// (node-based map), so hot paths may cache them. The first cap distinct
  /// label sets of a family win their own series (first-come top-K); later
  /// ones share the family's `other` bucket.
  Counter& counter(std::string_view name, const MetricLabels& labels = {});
  Gauge& gauge(std::string_view name, const MetricLabels& labels = {});
  HistogramMetric& histogram(std::string_view name,
                             const MetricLabels& labels = {});

  /// Adjust the per-family cap (takes effect for series created after the
  /// call; existing series are never evicted). A cap of 0 disables the
  /// guard entirely.
  void set_label_cardinality_cap(std::size_t cap);
  std::size_t label_cardinality_cap() const;

  /// Total lookups redirected into `other` buckets so far (one per access
  /// through an over-cap label set, so it measures traffic absorbed by the
  /// bucket). The same count is visible per family as the
  /// `metrics.cardinality_overflow{family=<name>}` counter.
  std::uint64_t cardinality_overflows() const;

  /// Auditor hook: one line per metric family whose distinct non-`other`
  /// series count exceeds the cap. With the guard in place this must stay
  /// empty — a non-empty result means series were minted behind the cap's
  /// back.
  std::vector<std::string> cardinality_violations() const;

  /// Lookup by canonical key without creating; nullptr when absent.
  const Counter* find_counter(std::string_view key) const;
  const Gauge* find_gauge(std::string_view key) const;
  const HistogramMetric* find_histogram(std::string_view key) const;

  /// Convenience: counter value by canonical key, 0 when absent.
  std::uint64_t counter_value(std::string_view key) const;

  /// Visit every counter whose canonical key starts with `prefix`, in key
  /// order. Lets checks sweep a labelled family (e.g. every
  /// unknown_message{...} series) without knowing the label values.
  void for_each_counter(
      std::string_view prefix,
      const std::function<void(std::string_view, std::uint64_t)>& fn) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Snapshot of every metric as a JSON document. Gauges integrate up to
  /// `end_time` (normally Simulation::now() / World::now()).
  JsonValue snapshot(double end_time) const;
  std::string to_json(double end_time) const { return snapshot(end_time).dump(); }

 private:
  /// Resolve the key a labelled series lands under: its own canonical key
  /// while the family is under the cap, the family's `other` bucket after.
  /// Caller holds mu_. `kind` disambiguates counter/gauge/histogram
  /// families that share a name.
  std::string capped_key(char kind, std::string_view name,
                         const MetricLabels& labels, bool exists);

  // Guards the map *structure* only: lookup-or-create can race when two
  // islands first touch distinct metrics. The returned references are
  // node-stable, so cached references stay valid. Gauge and histogram
  // *objects* are not internally synchronized — they must stay host-local
  // (per-host labels), which is exactly the state discipline DetSan and the
  // partition analyzer enforce; cross-host tallies belong in Counters.
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, HistogramMetric, std::less<>> histograms_;
  std::size_t label_cap_ = kDefaultLabelCardinalityCap;
  /// Distinct labelled series per "<kind>:<family>" (the `other` bucket not
  /// included, so the count is exactly the first-come winners).
  std::map<std::string, std::size_t, std::less<>> family_series_;
  std::uint64_t cardinality_overflows_ = 0;
};

}  // namespace condorg::util
