#include "condorg/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace condorg::util {

std::uint64_t JsonValue::as_uint(std::uint64_t fallback) const {
  if (type_ != Type::kNumber || number_ < 0) return fallback;
  return static_cast<std::uint64_t>(number_);
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  return object_[key];
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_at(const std::string& key, double fallback) const {
  const JsonValue* member = find(key);
  return member ? member->as_number(fallback) : fallback;
}

std::size_t JsonValue::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string JsonValue::number_to_string(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  // Integers inside the exactly-representable range print as integers.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  // Shortest decimal form that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string JsonValue::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += number_to_string(number_);
      return;
    case Type::kString:
      out.push_back('"');
      out += escape(string_);
      out.push_back('"');
      return;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape(key);
        out += "\":";
        value.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  JsonValue fail() {
    failed = true;
    return JsonValue();
  }

  JsonValue parse_string() {
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return JsonValue(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail();
      const char esc = text[pos++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) return fail();
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail();
            }
          }
          // UTF-8 encode (surrogate pairs unsupported; the repo only writes
          // \u escapes for control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail();
      }
    }
    return fail();  // unterminated string
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos >= text.size()) return fail();
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (consume('}')) return obj;
      while (!failed) {
        if (!consume('"')) return fail();
        JsonValue key = parse_string();
        if (failed) return JsonValue();
        if (!consume(':')) return fail();
        obj[key.as_string()] = parse_value();
        if (failed) return JsonValue();
        if (consume(',')) continue;
        if (consume('}')) return obj;
        return fail();
      }
      return JsonValue();
    }
    if (c == '[') {
      ++pos;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (consume(']')) return arr;
      while (!failed) {
        arr.push_back(parse_value());
        if (failed) return JsonValue();
        if (consume(',')) continue;
        if (consume(']')) return arr;
        return fail();
      }
      return JsonValue();
    }
    if (c == '"') {
      ++pos;
      return parse_string();
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue();
    // Number.
    const char* start = text.data() + pos;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return fail();
    pos += static_cast<std::size_t>(end - start);
    return JsonValue(value);
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser parser{text};
  JsonValue value = parser.parse_value();
  if (parser.failed) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != text.size()) return std::nullopt;
  return value;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace condorg::util
