#include "condorg/util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace condorg::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_duration(double seconds) {
  if (!std::isfinite(seconds)) return "inf";
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const auto total = static_cast<long long>(seconds + 0.5);
  const long long days = total / 86400;
  const long long hours = (total % 86400) / 3600;
  const long long minutes = (total % 3600) / 60;
  const long long secs = total % 60;
  std::string out = negative ? "-" : "";
  if (days > 0) out += format("%lldd ", days);
  out += format("%02lld:%02lld:%02lld", hours, minutes, secs);
  return out;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return format("%.1f %s", bytes, kUnits[unit]);
}

}  // namespace condorg::util
