#include "condorg/util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "condorg/util/strings.h"

namespace condorg::util {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

void TimeWeightedGauge::set(double time, double value) {
  // Out-of-order updates (time <= last_time_, e.g. two sites reporting at
  // the same simulated instant) rewrite the current value without touching
  // the accumulated area, so the integral can never go backwards.
  if (time > last_time_) {
    area_ += value_ * (time - last_time_);
    last_time_ = time;
  }
  value_ = value;
  peak_ = std::max(peak_, value);
}

void TimeWeightedGauge::add(double time, double delta) {
  set(time, value_ + delta);
}

double TimeWeightedGauge::average(double end_time) const {
  // Clamp the window to what was actually observed: asking for an average
  // before the last sample would divide recorded area by too small a span,
  // and end_time == start_time_ would divide by zero. A zero-length window
  // degenerates to the current value.
  const double end = std::max(end_time, last_time_);
  const double span = end - start_time_;
  if (span <= 0.0) return value_;
  return integral(end) / span;
}

double TimeWeightedGauge::integral(double end_time) const {
  // end_time at or before the last sample contributes nothing beyond the
  // recorded area (never a negative tail).
  double area = area_;
  if (end_time > last_time_) area += value_ * (end_time - last_time_);
  return area;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bucket = static_cast<std::size_t>((x - lo_) / width);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out += format("  [%10.2f, %10.2f) %8zu |", bucket_lo(i), bucket_hi(i),
                  counts_[i]);
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace condorg::util
