#include "condorg/util/table.h"

#include <algorithm>

namespace condorg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table::Table(std::initializer_list<std::string> headers)
    : headers_(headers) {}

void Table::add_row(std::vector<std::string> cells) {
  Row row;
  row.cells = std::move(cells);
  row.cells.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row(std::initializer_list<std::string> cells) {
  add_row(std::vector<std::string>(cells));
}

void Table::add_separator() {
  Row row;
  row.separator = true;
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line.append(w + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line.push_back(' ');
      line.append(cell);
      line.append(widths[i] - cell.size() + 1, ' ');
      line.push_back('|');
    }
    line.push_back('\n');
    return line;
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    out += row.separator ? rule() : emit_row(row.cells);
  }
  out += rule();
  return out;
}

std::string Table::render(const std::string& title) const {
  std::string out = "\n=== " + title + " ===\n";
  out += render();
  return out;
}

}  // namespace condorg::util
