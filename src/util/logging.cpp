#include "condorg/util/logging.h"

#include <cmath>
#include <cstdio>
#include <mutex>
#include <utility>

namespace condorg::util {
namespace {

// lint-allow(mutable-global): the guard itself
std::mutex g_mutex;
// lint-allow(mutable-global): guarded by g_mutex
std::function<double()> g_clock;
// lint-allow(mutable-global): guarded by g_mutex
std::function<void(std::string_view)> g_sink;

void default_sink(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace

std::atomic<int> LogConfig::level_{static_cast<int>(LogLevel::kWarn)};

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void LogConfig::set_clock(std::function<double()> clock) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_clock = std::move(clock);
}

double LogConfig::now_or_nan() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_clock ? g_clock() : std::nan("");
}

void LogConfig::set_sink(std::function<void(std::string_view)> sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void LogConfig::emit(std::string_view line) {
  std::function<void(std::string_view)> sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(line);
  } else {
    default_sink(line);
  }
}

void Logger::write(LogLevel level, std::string_view message) const {
  const double now = LogConfig::now_or_nan();
  char stamp[32];
  if (std::isnan(now)) {
    std::snprintf(stamp, sizeof stamp, "-");
  } else {
    std::snprintf(stamp, sizeof stamp, "%.3f", now);
  }
  std::string line;
  line.reserve(message.size() + name_.size() + 24);
  line.append("[");
  line.append(stamp);
  line.append("] ");
  line.append(to_string(level));
  line.append(" ");
  line.append(name_);
  line.append(": ");
  line.append(message);
  LogConfig::emit(line);
}

}  // namespace condorg::util
