#include "condorg/util/metrics.h"

#include <algorithm>

namespace condorg::util {
namespace {

// Label names and values may contain the key's own structural characters
// (a GASS path with a ',', a detail with '='). Backslash-escape them so the
// canonical key stays unambiguous and parse_metric_key can invert it.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '\\' || c == ',' || c == '=' || c == '{' || c == '}') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

std::string metric_key(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key.push_back('{');
  bool first = true;
  for (const auto& [label, value] : sorted) {
    if (!first) key.push_back(',');
    first = false;
    append_escaped(key, label);
    key.push_back('=');
    append_escaped(key, value);
  }
  key.push_back('}');
  return key;
}

ParsedMetricKey parse_metric_key(std::string_view key) {
  ParsedMetricKey out;
  std::size_t brace = std::string_view::npos;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i] == '\\') {
      ++i;  // escaped character can never open the label block
    } else if (key[i] == '{') {
      brace = i;
      break;
    }
  }
  if (brace == std::string_view::npos || key.back() != '}') {
    out.name = std::string(key);
    return out;
  }
  out.name = std::string(key.substr(0, brace));
  const std::string_view body = key.substr(brace + 1, key.size() - brace - 2);
  std::string label;
  std::string value;
  bool in_value = false;
  const auto flush = [&] {
    out.labels.emplace_back(std::move(label), std::move(value));
    label.clear();
    value.clear();
    in_value = false;
  };
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '\\' && i + 1 < body.size()) {
      (in_value ? value : label).push_back(body[++i]);
    } else if (c == '=' && !in_value) {
      in_value = true;
    } else if (c == ',') {
      flush();
    } else {
      (in_value ? value : label).push_back(c);
    }
  }
  if (!label.empty() || in_value) flush();
  return out;
}

namespace {

/// Rewrite every label value to "other": the family's single shared
/// overflow bucket. Label *keys* are kept, so dashboards still see the
/// family's schema.
MetricLabels other_bucket(const MetricLabels& labels) {
  MetricLabels out = labels;
  for (auto& [key, value] : out) value = "other";
  return out;
}

}  // namespace

std::string MetricsRegistry::capped_key(char kind, std::string_view name,
                                        const MetricLabels& labels,
                                        bool exists) {
  std::string key = metric_key(name, labels);
  if (labels.empty() || label_cap_ == 0 || exists) return key;
  std::string family{kind, ':'};
  family += name;
  std::size_t& series = family_series_[family];
  if (series < label_cap_) {
    ++series;
    return key;
  }
  // Family at cap: collapse into the `other` bucket and count the overflow
  // per family (inserted directly — the overflow family is itself bounded
  // by the number of metric families, not by label values).
  ++cardinality_overflows_;
  counters_[metric_key("metrics.cardinality_overflow",
                       {{"family", std::string(name)}})]
      .inc();
  return metric_key(name, other_bucket(labels));
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool exists = counters_.count(metric_key(name, labels)) > 0;
  return counters_[capped_key('c', name, labels, exists)];
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool exists = gauges_.count(metric_key(name, labels)) > 0;
  return gauges_[capped_key('g', name, labels, exists)];
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool exists = histograms_.count(metric_key(name, labels)) > 0;
  return histograms_[capped_key('h', name, labels, exists)];
}

void MetricsRegistry::set_label_cardinality_cap(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  label_cap_ = cap;
}

std::size_t MetricsRegistry::label_cardinality_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_cap_;
}

std::uint64_t MetricsRegistry::cardinality_overflows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cardinality_overflows_;
}

std::vector<std::string> MetricsRegistry::cardinality_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (label_cap_ == 0) return out;
  // Recount from the maps themselves rather than trusting family_series_:
  // the check exists to catch series minted behind the guard's back.
  std::map<std::string, std::size_t> counts;
  const auto sweep = [&](const auto& map, char kind) {
    for (const auto& [key, unused] : map) {
      (void)unused;
      const ParsedMetricKey parsed = parse_metric_key(key);
      if (parsed.labels.empty()) continue;
      bool all_other = true;
      for (const auto& [label, value] : parsed.labels) {
        (void)label;
        if (value != "other") all_other = false;
      }
      if (all_other) continue;  // the overflow bucket itself is exempt
      ++counts[std::string{kind, ':'} + parsed.name];
    }
  };
  sweep(counters_, 'c');
  sweep(gauges_, 'g');
  sweep(histograms_, 'h');
  for (const auto& [family, n] : counts) {
    if (n > label_cap_) {
      out.push_back("metrics/cardinality: family '" + family.substr(2) +
                    "' has " + std::to_string(n) +
                    " labelled series, cap is " + std::to_string(label_cap_));
    }
  }
  return out;
}

const Counter* MetricsRegistry::find_counter(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(key);
  return it == gauges_.end() ? nullptr : &it->second;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(key);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view key) const {
  const Counter* counter = find_counter(key);
  return counter ? counter->value() : 0;
}

void MetricsRegistry::for_each_counter(
    std::string_view prefix,
    const std::function<void(std::string_view, std::uint64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (!std::string_view(it->first).starts_with(prefix)) break;
    fn(it->first, it->second.value());
  }
}

JsonValue MetricsRegistry::snapshot(double end_time) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::object();
  root["end_time"] = end_time;

  JsonValue counters = JsonValue::object();
  for (const auto& [key, counter] : counters_) {
    counters[key] = counter.value();
  }
  root["counters"] = std::move(counters);

  JsonValue gauges = JsonValue::object();
  for (const auto& [key, gauge] : gauges_) {
    JsonValue entry = JsonValue::object();
    entry["value"] = gauge.value();
    entry["peak"] = gauge.peak();
    entry["average"] = gauge.average(end_time);
    entry["integral"] = gauge.integral(end_time);
    gauges[key] = std::move(entry);
  }
  root["gauges"] = std::move(gauges);

  JsonValue histograms = JsonValue::object();
  for (const auto& [key, histogram] : histograms_) {
    const Samples& samples = histogram.samples();
    const Summary& summary = histogram.summary();
    JsonValue entry = JsonValue::object();
    entry["count"] = summary.count();
    entry["sum"] = summary.sum();
    entry["mean"] = summary.mean();
    entry["stddev"] = summary.stddev();
    entry["min"] = summary.min();
    entry["max"] = summary.max();
    entry["p50"] = samples.percentile(50.0);
    entry["p90"] = samples.percentile(90.0);
    entry["p99"] = samples.percentile(99.0);
    histograms[key] = std::move(entry);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

}  // namespace condorg::util
