#include "condorg/batch/background_load.h"

namespace condorg::batch {

BackgroundLoad::BackgroundLoad(sim::Simulation& sim,
                               LocalScheduler& scheduler,
                               BackgroundLoadOptions options, util::Rng rng)
    : sim_(sim), scheduler_(scheduler), options_(options), rng_(rng) {}

void BackgroundLoad::start() {
  if (running_) return;
  running_ = true;
  next_arrival();
}

void BackgroundLoad::next_arrival() {
  if (!running_) return;
  const double gap = rng_.exponential(options_.mean_interarrival_seconds);
  sim_.schedule_in(gap, [this] {
    if (!running_) return;
    JobRequest request;
    request.owner =
        options_.owner_prefix +
        std::to_string(rng_.below(static_cast<std::uint64_t>(
            options_.owner_count)));
    request.runtime_seconds =
        rng_.heavy_tailed(options_.mean_runtime_seconds);
    request.cpus = static_cast<int>(
        rng_.range(1, options_.max_cpus_per_job));
    scheduler_.submit(std::move(request));
    ++submitted_;
    next_arrival();
  });
}

}  // namespace condorg::batch
