// LSF/LoadLeveler-style fair-share scheduler.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "condorg/batch/local_scheduler.h"

namespace condorg::batch {

/// Cross-user fair-share accounting for negotiation-time fairness.
///
/// The per-site FairShareScheduler below orders one cluster's queue by raw
/// accumulated usage; this table is the pool-wide generalization the
/// Negotiator consults each cycle. Usage decays exponentially (half-life),
/// so a user's past consumption stops counting against them over time, and
/// users whose idle jobs keep losing cycles accrue a starvation count that
/// eventually promotes them ahead of everyone else — the classic
/// effective-usage + aging hybrid.
class FairShareTable {
 public:
  struct Options {
    /// Effective usage halves every this many simulated seconds.
    double half_life = 3600.0;
    /// Cycles a user may sit with pending-but-unmatched jobs before being
    /// promoted ahead of the usage order.
    int starvation_threshold = 8;
  };

  FairShareTable() = default;
  explicit FairShareTable(Options options) : options_(options) {}

  /// Make `user` known to the table (idempotent). priority_order() is a
  /// permutation of exactly the users noted so far.
  void note_user(const std::string& user);

  /// Charge `amount` (slot-seconds, or simply matches) of usage at `now`.
  void charge(const std::string& user, double amount, double now);

  /// The user had pending jobs this cycle and none matched / at least one
  /// matched. Served resets the starvation count.
  void note_starved(const std::string& user);
  void note_served(const std::string& user);

  /// Usage decayed to `now`.
  double effective_usage(const std::string& user, double now) const;
  int starvation(const std::string& user) const;
  std::size_t user_count() const { return users_.size(); }

  /// The cross-user negotiation order: starving users first (most starved
  /// wins, name breaks ties), then everyone else by ascending effective
  /// usage (name breaks ties). Always a permutation of the noted users.
  std::vector<std::string> priority_order(double now) const;

 private:
  struct UserState {
    double usage = 0.0;
    double usage_as_of = 0.0;
    int starvation = 0;
  };
  double decayed(const UserState& state, double now) const;

  Options options_;
  std::map<std::string, UserState> users_;
};

/// Dispatches the oldest queued job of the *least-served* owner (by
/// accumulated CPU-seconds), so one user cannot monopolize the cluster —
/// the "system-wide collection of queues each representing a different
/// class of service" model the paper contrasts Condor with (§7).
class FairShareScheduler final : public LocalScheduler {
 public:
  FairShareScheduler(sim::Simulation& sim, std::string name, int total_cpus)
      : LocalScheduler(sim, std::move(name), total_cpus) {}

 protected:
  std::size_t pick_next(int free) const override;
};

}  // namespace condorg::batch
