// LSF/LoadLeveler-style fair-share scheduler.
#pragma once

#include "condorg/batch/local_scheduler.h"

namespace condorg::batch {

/// Dispatches the oldest queued job of the *least-served* owner (by
/// accumulated CPU-seconds), so one user cannot monopolize the cluster —
/// the "system-wide collection of queues each representing a different
/// class of service" model the paper contrasts Condor with (§7).
class FairShareScheduler final : public LocalScheduler {
 public:
  FairShareScheduler(sim::Simulation& sim, std::string name, int total_cpus)
      : LocalScheduler(sim, std::move(name), total_cpus) {}

 protected:
  std::size_t pick_next(int free) const override;
};

}  // namespace condorg::batch
