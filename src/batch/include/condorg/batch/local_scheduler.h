// Local (intra-site) batch scheduling.
//
// GRAM's JobManager "submits the jobs to the execution site's local
// scheduling system (PBS, Condor, LSF, LoadLeveler, NQE, etc.)" — this
// module models those systems. A LocalScheduler lives on the *cluster*, not
// on the site's front-end host: when the front-end (Gatekeeper/JobManager
// machine) crashes, queued and running jobs carry on, which is exactly the
// situation GRAM's reattach logic (§3.2, §4.2) exists to handle.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/sim/simulation.h"
#include "condorg/sim/types.h"

namespace condorg::batch {

struct JobRequest {
  std::string owner;                     // local account
  double runtime_seconds = 60.0;         // true compute demand
  double walltime_limit_seconds =
      std::numeric_limits<double>::infinity();  // site policy cap
  int cpus = 1;
  std::string tag;  // opaque caller annotation (e.g. GRAM job contact)
};

enum class JobState {
  kQueued,
  kRunning,
  kCompleted,
  kWalltimeExceeded,  // killed by the site's runtime policy
  kCancelled,
};

const char* to_string(JobState state);
bool is_terminal(JobState state);

struct JobRecord {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  sim::Time submit_time = 0;
  sim::Time start_time = -1;
  sim::Time end_time = -1;

  double queue_wait() const {
    return start_time >= 0 ? start_time - submit_time : -1;
  }
};

/// Base class: queue bookkeeping, CPU accounting, completion events.
/// Subclasses override pick_next() to define the dispatch policy.
class LocalScheduler {
 public:
  using CompletionHandler = std::function<void(const JobRecord&)>;

  LocalScheduler(sim::Simulation& sim, std::string name, int total_cpus);
  virtual ~LocalScheduler() = default;

  LocalScheduler(const LocalScheduler&) = delete;
  LocalScheduler& operator=(const LocalScheduler&) = delete;

  /// Enqueue a job; returns its site-local id. Dispatch happens immediately
  /// if CPUs are free (subject to policy).
  std::uint64_t submit(JobRequest request);

  /// Current job record; nullopt for unknown ids. Terminal records are
  /// retained (the site's accounting log).
  std::optional<JobRecord> status(std::uint64_t id) const;

  /// Cancel a queued or running job. Returns false for unknown/terminal.
  bool cancel(std::uint64_t id);

  /// Invoked on every terminal transition (complete, walltime kill,
  /// cancel). Multiple handlers may be registered (JobManager + metrics).
  void add_completion_handler(CompletionHandler handler);

  /// Invoked once when job `id` reaches a terminal state, then discarded.
  /// If the job is already terminal the handler fires immediately. Returns
  /// a token for remove_job_handler.
  std::uint64_t add_job_handler(std::uint64_t id, CompletionHandler handler);
  void remove_job_handler(std::uint64_t token);

  const std::string& name() const { return name_; }
  int total_cpus() const { return total_cpus_; }
  int busy_cpus() const { return busy_cpus_; }
  int free_cpus() const { return total_cpus_ - busy_cpus_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::size_t running_count() const { return completion_events_.size(); }

  /// Completed-job history (terminal records, in completion order).
  const std::vector<JobRecord>& history() const { return history_; }

  /// Aggregate CPU-seconds delivered to completed jobs.
  double cpu_seconds_delivered() const { return cpu_seconds_; }

 protected:
  /// Policy hook: index into queue_ of the next job to start given `free`
  /// CPUs, or npos if none can start. The default is strict FIFO with no
  /// backfill (subclasses refine).
  virtual std::size_t pick_next(int free) const;

  const std::vector<std::uint64_t>& queue() const { return queue_; }
  const JobRecord& record(std::uint64_t id) const { return jobs_.at(id); }

  /// Owner usage accounting for fair-share policies.
  double owner_usage(const std::string& owner) const;

 private:
  void try_dispatch();
  void start_job(std::uint64_t id);
  void finish_job(std::uint64_t id, JobState state);

  sim::Simulation& sim_;
  std::string name_;
  int total_cpus_;
  int busy_cpus_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::map<std::uint64_t, sim::EventId> completion_events_;
  std::vector<std::uint64_t> queue_;  // ids of queued jobs, FIFO order
  std::vector<CompletionHandler> handlers_;
  struct JobHandler {
    std::uint64_t token;
    CompletionHandler handler;
  };
  std::map<std::uint64_t, std::vector<JobHandler>> job_handlers_;
  std::uint64_t next_handler_token_ = 1;
  std::vector<JobRecord> history_;
  std::map<std::string, double> usage_;  // owner -> cpu-seconds
  double cpu_seconds_ = 0;
};

}  // namespace condorg::batch
