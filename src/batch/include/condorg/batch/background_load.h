// Background (local-user) load generation.
//
// Grid jobs at a remote site compete with that site's own users. The
// generator submits a Poisson stream of local jobs with heavy-tailed
// runtimes, producing the fluctuating queue depths and free-CPU counts that
// Condor-G's brokering and GlideIn mechanisms are designed around.
#pragma once

#include <string>

#include "condorg/batch/local_scheduler.h"
#include "condorg/sim/simulation.h"
#include "condorg/util/rng.h"

namespace condorg::batch {

struct BackgroundLoadOptions {
  double mean_interarrival_seconds = 120.0;
  double mean_runtime_seconds = 1800.0;
  int max_cpus_per_job = 4;
  std::string owner_prefix = "local";
  int owner_count = 5;  // local jobs rotate among this many accounts
};

class BackgroundLoad {
 public:
  BackgroundLoad(sim::Simulation& sim, LocalScheduler& scheduler,
                 BackgroundLoadOptions options, util::Rng rng);

  /// Start generating; runs until stop() or end of simulation.
  void start();
  void stop() { running_ = false; }

  std::uint64_t jobs_submitted() const { return submitted_; }

 private:
  void next_arrival();

  sim::Simulation& sim_;
  LocalScheduler& scheduler_;
  BackgroundLoadOptions options_;
  util::Rng rng_;
  bool running_ = false;
  std::uint64_t submitted_ = 0;
};

}  // namespace condorg::batch
