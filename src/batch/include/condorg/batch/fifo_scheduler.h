// PBS-style FIFO scheduler with optional first-fit backfill.
#pragma once

#include "condorg/batch/local_scheduler.h"

namespace condorg::batch {

/// FIFO dispatch; with backfill enabled, a job further back in the queue may
/// start when the head does not fit but the smaller job does — the standard
/// cluster-scheduler compromise between fairness and utilization.
class FifoScheduler final : public LocalScheduler {
 public:
  FifoScheduler(sim::Simulation& sim, std::string name, int total_cpus,
                bool backfill = true)
      : LocalScheduler(sim, std::move(name), total_cpus),
        backfill_(backfill) {}

 protected:
  std::size_t pick_next(int free) const override;

 private:
  bool backfill_;
};

}  // namespace condorg::batch
