#include "condorg/batch/fair_share_scheduler.h"

#include <limits>

namespace condorg::batch {

std::size_t FairShareScheduler::pick_next(int free) const {
  const auto& q = queue();
  std::size_t best = static_cast<std::size_t>(-1);
  double best_usage = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < q.size(); ++i) {
    const JobRecord& job = record(q[i]);
    if (job.request.cpus > free) continue;
    const double usage = owner_usage(job.request.owner);
    // Oldest job of the least-served owner; FIFO order breaks ties.
    if (usage < best_usage) {
      best_usage = usage;
      best = i;
    }
  }
  return best;
}

}  // namespace condorg::batch
