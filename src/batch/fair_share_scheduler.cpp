#include "condorg/batch/fair_share_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace condorg::batch {

void FairShareTable::note_user(const std::string& user) {
  users_.try_emplace(user);
}

void FairShareTable::charge(const std::string& user, double amount,
                            double now) {
  UserState& state = users_[user];
  state.usage = decayed(state, now) + amount;
  state.usage_as_of = now;
}

void FairShareTable::note_starved(const std::string& user) {
  ++users_[user].starvation;
}

void FairShareTable::note_served(const std::string& user) {
  users_[user].starvation = 0;
}

double FairShareTable::effective_usage(const std::string& user,
                                       double now) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0.0 : decayed(it->second, now);
}

int FairShareTable::starvation(const std::string& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.starvation;
}

double FairShareTable::decayed(const UserState& state, double now) const {
  if (state.usage == 0.0) return 0.0;
  const double dt = now - state.usage_as_of;
  if (dt <= 0.0 || options_.half_life <= 0.0) return state.usage;
  return state.usage * std::exp2(-dt / options_.half_life);
}

std::vector<std::string> FairShareTable::priority_order(double now) const {
  struct Row {
    const std::string* name;
    double usage;
    int starvation;
  };
  std::vector<Row> rows;
  rows.reserve(users_.size());
  for (const auto& [name, state] : users_) {
    rows.push_back(Row{&name, decayed(state, now), state.starvation});
  }
  const int threshold = options_.starvation_threshold;
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    const bool a_starved = a.starvation >= threshold;
    const bool b_starved = b.starvation >= threshold;
    if (a_starved != b_starved) return a_starved;
    if (a_starved && b_starved && a.starvation != b.starvation) {
      return a.starvation > b.starvation;
    }
    if (a.usage != b.usage) return a.usage < b.usage;
    return *a.name < *b.name;
  });
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(*row.name);
  return out;
}

std::size_t FairShareScheduler::pick_next(int free) const {
  const auto& q = queue();
  std::size_t best = static_cast<std::size_t>(-1);
  double best_usage = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < q.size(); ++i) {
    const JobRecord& job = record(q[i]);
    if (job.request.cpus > free) continue;
    const double usage = owner_usage(job.request.owner);
    // Oldest job of the least-served owner; FIFO order breaks ties.
    if (usage < best_usage) {
      best_usage = usage;
      best = i;
    }
  }
  return best;
}

}  // namespace condorg::batch
