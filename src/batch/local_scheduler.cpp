#include "condorg/batch/local_scheduler.h"

#include <algorithm>

namespace condorg::batch {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kWalltimeExceeded: return "WALLTIME_EXCEEDED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

LocalScheduler::LocalScheduler(sim::Simulation& sim, std::string name,
                               int total_cpus)
    : sim_(sim), name_(std::move(name)), total_cpus_(total_cpus) {}

std::uint64_t LocalScheduler::submit(JobRequest request) {
  const std::uint64_t id = next_id_++;
  JobRecord record;
  record.id = id;
  record.request = std::move(request);
  record.submit_time = sim_.now();
  jobs_.emplace(id, std::move(record));
  queue_.push_back(id);
  try_dispatch();
  return id;
}

std::optional<JobRecord> LocalScheduler::status(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

bool LocalScheduler::cancel(std::uint64_t id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second.state)) return false;
  if (it->second.state == JobState::kQueued) {
    std::erase(queue_, id);
  }
  finish_job(id, JobState::kCancelled);
  return true;
}

void LocalScheduler::add_completion_handler(CompletionHandler handler) {
  handlers_.push_back(std::move(handler));
}

std::uint64_t LocalScheduler::add_job_handler(std::uint64_t id,
                                              CompletionHandler handler) {
  const std::uint64_t token = next_handler_token_++;
  const auto it = jobs_.find(id);
  if (it != jobs_.end() && is_terminal(it->second.state)) {
    handler(it->second);  // already finished: fire immediately
    return token;
  }
  job_handlers_[id].push_back(JobHandler{token, std::move(handler)});
  return token;
}

void LocalScheduler::remove_job_handler(std::uint64_t token) {
  for (auto& [id, handlers] : job_handlers_) {
    std::erase_if(handlers,
                  [token](const JobHandler& h) { return h.token == token; });
  }
}

double LocalScheduler::owner_usage(const std::string& owner) const {
  const auto it = usage_.find(owner);
  return it == usage_.end() ? 0.0 : it->second;
}

std::size_t LocalScheduler::pick_next(int free) const {
  if (queue_.empty()) return static_cast<std::size_t>(-1);
  const JobRecord& head = jobs_.at(queue_.front());
  return head.request.cpus <= free ? 0 : static_cast<std::size_t>(-1);
}

void LocalScheduler::try_dispatch() {
  while (true) {
    const std::size_t index = pick_next(free_cpus());
    if (index >= queue_.size()) return;
    const std::uint64_t id = queue_[index];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
    start_job(id);
  }
}

void LocalScheduler::start_job(std::uint64_t id) {
  JobRecord& record = jobs_.at(id);
  record.state = JobState::kRunning;
  record.start_time = sim_.now();
  busy_cpus_ += record.request.cpus;
  const double duration = std::min(record.request.runtime_seconds,
                                   record.request.walltime_limit_seconds);
  const bool killed =
      record.request.walltime_limit_seconds < record.request.runtime_seconds;
  completion_events_[id] = sim_.schedule_in(duration, [this, id, killed] {
    finish_job(id,
               killed ? JobState::kWalltimeExceeded : JobState::kCompleted);
  });
}

void LocalScheduler::finish_job(std::uint64_t id, JobState state) {
  JobRecord& record = jobs_.at(id);
  const bool was_running = record.state == JobState::kRunning;
  if (const auto it = completion_events_.find(id);
      it != completion_events_.end()) {
    sim_.cancel(it->second);
    completion_events_.erase(it);
  }
  record.state = state;
  record.end_time = sim_.now();
  if (was_running) {
    busy_cpus_ -= record.request.cpus;
    const double used = (record.end_time - record.start_time) *
                        static_cast<double>(record.request.cpus);
    usage_[record.request.owner] += used;
    if (state == JobState::kCompleted) cpu_seconds_ += used;
  }
  history_.push_back(record);
  // Copy: a handler may submit (reentrancy into try_dispatch is fine since
  // we dispatch after notifying).
  const auto handlers = handlers_;
  const JobRecord snapshot = record;
  for (const auto& handler : handlers) handler(snapshot);
  if (const auto it = job_handlers_.find(id); it != job_handlers_.end()) {
    const auto per_job = std::move(it->second);
    job_handlers_.erase(it);
    for (const auto& entry : per_job) entry.handler(snapshot);
  }
  try_dispatch();
}

}  // namespace condorg::batch
