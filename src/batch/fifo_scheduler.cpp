#include "condorg/batch/fifo_scheduler.h"

namespace condorg::batch {

std::size_t FifoScheduler::pick_next(int free) const {
  const auto& q = queue();
  if (q.empty()) return static_cast<std::size_t>(-1);
  if (record(q.front()).request.cpus <= free) return 0;
  if (!backfill_) return static_cast<std::size_t>(-1);
  for (std::size_t i = 1; i < q.size(); ++i) {
    if (record(q[i]).request.cpus <= free) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace condorg::batch
