#include "condorg/classad/value.h"

#include <cmath>

#include "condorg/util/strings.h"

namespace condorg::classad {

Value Value::list(ValueList items) {
  Value v;
  v.data_ = std::make_shared<const ValueList>(std::move(items));
  return v;
}

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kUndefined;
    case 1: return Type::kError;
    case 2: return Type::kBool;
    case 3: return Type::kInt;
    case 4: return Type::kReal;
    case 5: return Type::kString;
    default: return Type::kList;
  }
}

const ValueList& Value::as_list() const {
  return *std::get<std::shared_ptr<const ValueList>>(data_);
}

bool Value::to_number(double& out) const {
  switch (type()) {
    case Type::kInt:
      out = static_cast<double>(as_int());
      return true;
    case Type::kReal:
      out = as_real();
      return true;
    case Type::kBool:
      out = as_bool() ? 1.0 : 0.0;
      return true;
    default:
      return false;
  }
}

namespace {
std::string escape_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string Value::unparse() const {
  switch (type()) {
    case Type::kUndefined: return "undefined";
    case Type::kError: return "error";
    case Type::kBool: return as_bool() ? "true" : "false";
    case Type::kInt: return std::to_string(as_int());
    case Type::kReal: {
      // Keep reals recognizably real on round-trip.
      const double d = as_real();
      if (d == std::floor(d) && std::isfinite(d) && std::abs(d) < 1e15) {
        return util::format("%.1f", d);
      }
      return util::format("%.17g", d);
    }
    case Type::kString: return escape_string(as_string());
    case Type::kList: {
      std::string out = "{";
      const ValueList& items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += items[i].unparse();
      }
      out += "}";
      return out;
    }
  }
  return "error";
}

bool Value::same_as(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kUndefined:
    case Type::kError: return true;
    case Type::kBool: return as_bool() == other.as_bool();
    case Type::kInt: return as_int() == other.as_int();
    case Type::kReal: return as_real() == other.as_real();
    case Type::kString: return as_string() == other.as_string();
    case Type::kList: {
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].same_as(b[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace condorg::classad
