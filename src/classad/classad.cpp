#include "condorg/classad/classad.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "condorg/classad/parser.h"
#include "condorg/util/strings.h"

namespace condorg::classad {

bool AttrNameLess::operator()(const std::string& a,
                              const std::string& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca =
        static_cast<char>(std::tolower(static_cast<unsigned char>(a[i])));
    const char cb =
        static_cast<char>(std::tolower(static_cast<unsigned char>(b[i])));
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    attrs_.emplace(name, Attr{name, std::move(expr)});
  } else {
    it->second.expr = std::move(expr);  // keep canonical spelling
  }
}

void ClassAd::insert_expr(const std::string& name,
                          const std::string& expr_text) {
  insert(name, parse_expr(expr_text));
}

void ClassAd::insert_int(const std::string& name, std::int64_t value) {
  insert(name, std::make_shared<LiteralExpr>(Value::integer(value)));
}

void ClassAd::insert_real(const std::string& name, double value) {
  insert(name, std::make_shared<LiteralExpr>(Value::real(value)));
}

void ClassAd::insert_bool(const std::string& name, bool value) {
  insert(name, std::make_shared<LiteralExpr>(Value::boolean(value)));
}

void ClassAd::insert_string(const std::string& name, std::string value) {
  insert(name, std::make_shared<LiteralExpr>(Value::string(std::move(value))));
}

bool ClassAd::erase(const std::string& name) { return attrs_.erase(name) > 0; }

bool ClassAd::contains(const std::string& name) const {
  return attrs_.count(name) > 0;
}

ExprPtr ClassAd::lookup(const std::string& name) const {
  const auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : it->second.expr;
}

Value ClassAd::eval(const std::string& name, const ClassAd* target) const {
  const ExprPtr expr = lookup(name);
  if (!expr) return Value::undefined();
  return expr->evaluate(this, target);
}

std::optional<std::int64_t> ClassAd::eval_int(const std::string& name,
                                              const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_int()) return v.as_int();
  if (v.is_real()) return static_cast<std::int64_t>(v.as_real());
  return std::nullopt;
}

std::optional<double> ClassAd::eval_real(const std::string& name,
                                         const ClassAd* target) const {
  const Value v = eval(name, target);
  double d = 0;
  if (v.to_number(d)) return d;
  return std::nullopt;
}

std::optional<bool> ClassAd::eval_bool(const std::string& name,
                                       const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_bool()) return v.as_bool();
  return std::nullopt;
}

std::optional<std::string> ClassAd::eval_string(const std::string& name,
                                                const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_string()) return v.as_string();
  return std::nullopt;
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& [key, attr] : attrs_) out.push_back(attr.name);
  return out;
}

std::string ClassAd::unparse() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [key, attr] : attrs_) {
    if (!first) out += "; ";
    first = false;
    out += attr.name + " = " + attr.expr->unparse();
  }
  out += "]";
  return out;
}

void ClassAd::update(const ClassAd& other) {
  for (const auto& [key, attr] : other.attrs_) {
    insert(attr.name, attr.expr);
  }
}

bool symmetric_match(const ClassAd& left, const ClassAd& right) {
  auto half = [](const ClassAd& my, const ClassAd& target) {
    const ExprPtr req = my.lookup("Requirements");
    if (!req) return true;  // no constraints: matches anything
    const Value v = req->evaluate(&my, &target);
    return v.is_bool() && v.as_bool();
  };
  return half(left, right) && half(right, left);
}

double eval_rank(const ClassAd& ad, const ClassAd& target) {
  const ExprPtr rank = ad.lookup("Rank");
  if (!rank) return 0.0;
  const Value v = rank->evaluate(&ad, &target);
  double d = 0.0;
  if (v.to_number(d)) return d;
  return 0.0;
}

}  // namespace condorg::classad
