#include "condorg/classad/classad.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "condorg/classad/parser.h"
#include "condorg/util/strings.h"

namespace condorg::classad {
namespace {

inline char fold(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

bool AttrNameLess::operator()(std::string_view a, std::string_view b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = fold(a[i]);
    const char cb = fold(b[i]);
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

std::size_t AttrNameHash::operator()(std::string_view s) const {
  // FNV-1a over case-folded bytes.
  std::size_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(fold(c));
    h *= 1099511628211ull;
  }
  return h;
}

bool AttrNameEq::operator()(std::string_view a, std::string_view b) const {
  return util::iequals(a, b);
}

void ClassAd::refresh_hot_attr(std::string_view name, const ExprPtr& expr) {
  if (util::iequals(name, "Requirements")) {
    requirements_ = expr;
  } else if (util::iequals(name, "Rank")) {
    rank_ = expr;
  }
}

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  refresh_hot_attr(name, expr);
  auto it = attrs_.find(std::string_view(name));
  if (it == attrs_.end()) {
    attrs_.emplace(name, std::move(expr));
  } else {
    it->second = std::move(expr);  // keep canonical spelling
  }
}

void ClassAd::insert_expr(const std::string& name,
                          const std::string& expr_text) {
  insert(name, parse_expr(expr_text));
}

void ClassAd::insert_int(const std::string& name, std::int64_t value) {
  insert(name, std::make_shared<LiteralExpr>(Value::integer(value)));
}

void ClassAd::insert_real(const std::string& name, double value) {
  insert(name, std::make_shared<LiteralExpr>(Value::real(value)));
}

void ClassAd::insert_bool(const std::string& name, bool value) {
  insert(name, std::make_shared<LiteralExpr>(Value::boolean(value)));
}

void ClassAd::insert_string(const std::string& name, std::string value) {
  insert(name, std::make_shared<LiteralExpr>(Value::string(std::move(value))));
}

bool ClassAd::erase(const std::string& name) {
  refresh_hot_attr(name, nullptr);
  return attrs_.erase(name) > 0;
}

bool ClassAd::contains(const std::string& name) const {
  return attrs_.find(std::string_view(name)) != attrs_.end();
}

ExprPtr ClassAd::lookup(std::string_view name) const {
  const auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : it->second;
}

Value ClassAd::eval(const std::string& name, const ClassAd* target) const {
  const ExprPtr expr = lookup(name);
  if (!expr) return Value::undefined();
  return expr->evaluate(this, target);
}

std::optional<std::int64_t> ClassAd::eval_int(const std::string& name,
                                              const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_int()) return v.as_int();
  if (v.is_real()) return static_cast<std::int64_t>(v.as_real());
  return std::nullopt;
}

std::optional<double> ClassAd::eval_real(const std::string& name,
                                         const ClassAd* target) const {
  const Value v = eval(name, target);
  double d = 0;
  if (v.to_number(d)) return d;
  return std::nullopt;
}

std::optional<bool> ClassAd::eval_bool(const std::string& name,
                                       const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_bool()) return v.as_bool();
  return std::nullopt;
}

std::optional<std::string> ClassAd::eval_string(const std::string& name,
                                                const ClassAd* target) const {
  const Value v = eval(name, target);
  if (v.is_string()) return v.as_string();
  return std::nullopt;
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  // lint-allow(unordered-iteration): keys are sorted below, order-independent
  for (const auto& [name, expr] : attrs_) out.push_back(name);
  std::sort(out.begin(), out.end(), AttrNameLess{});
  return out;
}

std::string ClassAd::unparse() const {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : names()) {
    if (!first) out += "; ";
    first = false;
    out += name + " = " + lookup(name)->unparse();
  }
  out += "]";
  return out;
}

void ClassAd::update(const ClassAd& other) {
  // lint-allow(unordered-iteration): per-key overwrite into a map; the
  // result is independent of iteration order (keys are distinct).
  for (const auto& [name, expr] : other.attrs_) {
    insert(name, expr);
  }
}

bool symmetric_match(const ClassAd& left, const ClassAd& right) {
  // One scratch context reused for both halves instead of a rebuild per
  // evaluation; Requirements resolution is the per-ad cached pointer.
  EvalContext ctx;
  const auto half = [&ctx](const ClassAd& my, const ClassAd& target) {
    const ExprPtr& req = my.requirements();
    if (!req) return true;  // no constraints: matches anything
    ctx.my = &my;
    ctx.target = &target;
    ctx.depth = 0;
    const Value v = req->eval(ctx);
    return v.is_bool() && v.as_bool();
  };
  return half(left, right) && half(right, left);
}

bool half_match(const ClassAd& my, const ClassAd& target) {
  const ExprPtr& req = my.requirements();
  if (!req) return true;  // no constraints: matches anything
  const Value v = req->evaluate(&my, &target);
  return v.is_bool() && v.as_bool();
}

double eval_rank(const ClassAd& ad, const ClassAd& target) {
  const ExprPtr& rank = ad.rank();
  if (!rank) return 0.0;
  const Value v = rank->evaluate(&ad, &target);
  double d = 0.0;
  if (v.to_number(d)) return d;
  return 0.0;
}

}  // namespace condorg::classad
