#include "condorg/classad/lexer.h"

#include <cctype>
#include <cstdlib>

namespace condorg::classad {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto push = [&](TokenKind kind, std::size_t at) {
    Token t;
    t.kind = kind;
    t.offset = at;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '//' and '#' to end of line.
    if (c == '#' || (c == '/' && i + 1 < n && input[i + 1] == '/')) {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      // Number: integer or real (digits, optional fraction/exponent).
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j])))
            ++j;
        }
      }
      Token t;
      t.offset = start;
      const std::string text = input.substr(start, j - start);
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(input[j])) ++j;
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.offset = start;
      t.text = input.substr(start, j - start);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '"') {
      std::string text;
      std::size_t j = i + 1;
      while (j < n && input[j] != '"') {
        if (input[j] == '\\') {
          ++j;
          if (j >= n) throw LexError("unterminated escape", j);
          switch (input[j]) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: throw LexError("bad escape character", j);
          }
        } else {
          text.push_back(input[j]);
        }
        ++j;
      }
      if (j >= n) throw LexError("unterminated string literal", start);
      Token t;
      t.kind = TokenKind::kString;
      t.offset = start;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('=', '?') && i + 2 < n && input[i + 2] == '=') {
      push(TokenKind::kMetaEq, start);
      i += 3;
    } else if (two('=', '!') && i + 2 < n && input[i + 2] == '=') {
      push(TokenKind::kMetaNotEq, start);
      i += 3;
    } else if (two('=', '=')) {
      push(TokenKind::kEqEq, start);
      i += 2;
    } else if (two('!', '=')) {
      push(TokenKind::kNotEq, start);
      i += 2;
    } else if (two('<', '=')) {
      push(TokenKind::kLessEq, start);
      i += 2;
    } else if (two('>', '=')) {
      push(TokenKind::kGreaterEq, start);
      i += 2;
    } else if (two('&', '&')) {
      push(TokenKind::kAnd, start);
      i += 2;
    } else if (two('|', '|')) {
      push(TokenKind::kOr, start);
      i += 2;
    } else {
      TokenKind kind;
      switch (c) {
        case '(': kind = TokenKind::kLParen; break;
        case ')': kind = TokenKind::kRParen; break;
        case '{': kind = TokenKind::kLBrace; break;
        case '}': kind = TokenKind::kRBrace; break;
        case '[': kind = TokenKind::kLBracket; break;
        case ']': kind = TokenKind::kRBracket; break;
        case ',': kind = TokenKind::kComma; break;
        case ';': kind = TokenKind::kSemicolon; break;
        case '.': kind = TokenKind::kDot; break;
        case '+': kind = TokenKind::kPlus; break;
        case '-': kind = TokenKind::kMinus; break;
        case '*': kind = TokenKind::kStar; break;
        case '/': kind = TokenKind::kSlash; break;
        case '%': kind = TokenKind::kPercent; break;
        case '<': kind = TokenKind::kLess; break;
        case '>': kind = TokenKind::kGreater; break;
        case '!': kind = TokenKind::kNot; break;
        case '?': kind = TokenKind::kQuestion; break;
        case ':': kind = TokenKind::kColon; break;
        case '=': kind = TokenKind::kAssign; break;
        default:
          throw LexError(std::string("unexpected character '") + c + "'",
                         start);
      }
      push(kind, start);
      ++i;
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace condorg::classad
